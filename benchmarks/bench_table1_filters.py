"""Benchmark table1 — regenerate Table I (filter banks) and time bank construction."""

from bench_util import assert_reproduced

from repro.analysis.experiments import table1
from repro.filters.qmf import build_bank
from repro.filters.coefficients import TABLE_I


def test_table1_filter_banks(benchmark, save_report):
    """Rebuild all six Table I banks (expansion + high-pass derivation)."""

    def build_all():
        return [build_bank(spec) for spec in TABLE_I.values()]

    banks = benchmark(build_all)
    assert len(banks) == 6

    result = table1.run()
    save_report(result)
    assert_reproduced(result)
