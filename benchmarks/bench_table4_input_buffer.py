"""Benchmark table4 / fig4 — input-buffer sizing, bank folding, Table IV rounds."""

from bench_util import assert_reproduced

from repro.analysis.experiments import fig4, table4
from repro.arch.input_buffer import bank2_rounds_table, simulate_line_occupancy


def test_table4_bank2_rounds(benchmark, save_report):
    """Regenerate Table IV (Bank2 refill rounds per scale, 512x512 image)."""
    table = benchmark(bank2_rounds_table, 512, 6, 6)
    assert {scale: entry["rounds"] for scale, entry in table.items()} == {
        1: 31, 2: 15, 3: 7, 4: 3, 5: 1, 6: 0,
    }

    result = table4.run()
    save_report(result)
    assert_reproduced(result)


def test_fig4_line_occupancy_replay(benchmark, save_report):
    """Replay the scale-1 line schedule (512 samples) and check the 4l+1 bound."""
    report = benchmark(simulate_line_occupancy, 512, 6)
    assert report.fits_minimum_buffer
    assert report.max_live_words <= 25

    result = fig4.run()
    save_report(result)
    assert_reproduced(result)
