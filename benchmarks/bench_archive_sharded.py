"""Sharded-archive pack benchmark: one end-to-end worker per shard.

Not a paper table: this is the perf claim behind
:mod:`repro.archive.sharding` — splitting an archive across N container
files must (a) change nothing about the stored frame bytes (resharding
invariance) and (b) let a pack run one compress-and-write worker per shard,
raising ingest throughput on multi-core hosts past the single-writer
funnel.  On a 32-frame 128x128 CT series packed into a 4-shard set the
benchmark measures end-to-end pack time (create + compress + write +
finalise) at 1 and 4 workers, proves per-frame payload identity against a
plain single-file archive, proves shard-file byte identity between serial
and parallel packs, and writes the numbers to
``benchmarks/reports/bench_archive_sharded.json`` so the trajectory is
diffable across PRs, like ``bench_pipeline_parallel``.

As there, the >= 1.5x speedup gate at 4 workers is only enforced when the
host exposes >= 4 usable CPUs; narrower hosts still run the correctness
half and the report records why the throughput gate was waived.
"""

import time

import pytest

from _gates import cpu_throughput_gate
from repro.archive import ArchiveReader, ArchiveWriter, ShardedArchiveReader, ShardedArchiveWriter
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

FRAME_COUNT = 32
FRAME_SIZE = 128
SHARDS = 4
WORKER_COUNTS = (1, 4)
MIN_SPEEDUP_AT_4 = 1.5


def _names(count):
    return [f"slice_{i:03d}" for i in range(count)]


def _pack_set(directory, frames, workers, repeats=3):
    """Best end-to-end pack time over ``repeats`` fresh packs."""
    best = float("inf")
    target = directory / f"set_w{workers}.dwts"
    for _ in range(repeats):
        for stale in directory.glob(f"set_w{workers}.*"):
            stale.unlink()
        began = time.perf_counter()
        with ShardedArchiveWriter.create(target, shards=SHARDS, workers=workers) as writer:
            writer.append_batch(frames, names=_names(len(frames)))
        best = min(best, time.perf_counter() - began)
    return best, target


def test_sharded_pack_scaling(tmp_path, save_json_record):
    frames = ct_slice_series(count=FRAME_COUNT, size=FRAME_SIZE, seed=20260728)
    gate = cpu_throughput_gate(
        "one worker per shard cannot beat serial without CPUs to run on"
    )

    seconds, sets = {}, {}
    for workers in WORKER_COUNTS:
        seconds[workers], sets[workers] = _pack_set(tmp_path, frames, workers)

    # Correctness half (always enforced).
    # 1. Serial and per-shard-parallel packs produce byte-identical shards.
    for a, b in zip(
        sorted(tmp_path.glob("set_w1.shard*.dwta")),
        sorted(tmp_path.glob("set_w4.shard*.dwta")),
    ):
        assert a.read_bytes() == b.read_bytes(), f"workers changed shard bytes ({a.name})"
    # 2. Resharding invariance: every frame's payload bytes in the 4-shard
    # set equal those of a plain single-file archive of the same frames.
    plain = tmp_path / "plain.dwta"
    with ArchiveWriter.create(plain) as writer:
        writer.append_batch(frames, names=_names(FRAME_COUNT))
    with ArchiveReader(plain) as single, ShardedArchiveReader(sets[1]) as sharded:
        for name in single.names():
            assert single.read_payload(name) == sharded.read_payload(name), (
                f"sharding changed frame payload bytes ({name})"
            )

    pixels = FRAME_COUNT * FRAME_SIZE * FRAME_SIZE
    speedup = seconds[1] / seconds[4]
    record = {
        "frame_count": FRAME_COUNT,
        "frame_size": FRAME_SIZE,
        "shards": SHARDS,
        "usable_cpus": gate.usable_cpus,
        "byte_identical": True,
        "reshard_invariant": True,
        "seconds": {str(w): seconds[w] for w in WORKER_COUNTS},
        "mpixels_per_s": {str(w): pixels / seconds[w] / 1e6 for w in WORKER_COUNTS},
        "speedup_at_4_workers": speedup,
        "min_speedup_at_4": MIN_SPEEDUP_AT_4,
        "throughput_gate": gate.record,
    }
    save_json_record("bench_archive_sharded", record)

    if gate.active:
        assert speedup >= MIN_SPEEDUP_AT_4, (
            f"4-worker sharded pack speedup only {speedup:.2f}x "
            f"({seconds[1] * 1e3:.0f} ms serial vs {seconds[4] * 1e3:.0f} ms parallel)"
        )
