"""Multi-core scaling benchmark of the parallel batch executor.

Not a paper table: this is the perf claim behind
:mod:`repro.coding.executor` — sharding a frame batch across a process
pool must (a) change nothing about the bytes and (b) raise throughput on
multi-core hosts.  On a 32-frame 256x256 CT batch the benchmark measures
end-to-end compress throughput at 1, 2 and 4 workers, proves byte
identity at every width, and writes the measured numbers to
``benchmarks/reports/bench_pipeline_parallel.json`` so the scaling
trajectory is diffable across PRs, like ``bench_accelerator`` and
``bench_archive``.

The >= 1.5x speedup assertion at 4 workers only makes physical sense when
the host actually has 4 CPUs to run on; on narrower hosts (e.g. a
single-core CI container, where a process pool can only add overhead) the
correctness half still runs and the report records the measured numbers
plus the reason the throughput gate was waived.
"""

import time

import pytest

from _gates import cpu_throughput_gate
from repro.coding import compress_frames
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

FRAME_COUNT = 32
FRAME_SIZE = 256
WORKER_COUNTS = (1, 2, 4)
MIN_SPEEDUP_AT_4 = 1.5


def _best_run(frames, workers, repeats=3):
    """(best elapsed seconds, last batch) over ``repeats`` runs."""
    best, batch = float("inf"), None
    for _ in range(repeats):
        began = time.perf_counter()
        batch = compress_frames(frames, codec="s-transform", scales=4, workers=workers)
        best = min(best, time.perf_counter() - began)
    return best, batch


def test_parallel_scaling(save_json_record):
    frames = ct_slice_series(count=FRAME_COUNT, size=FRAME_SIZE, seed=20260728)
    gate = cpu_throughput_gate(
        "a process pool cannot speed up CPU-bound work without CPUs to run on"
    )

    seconds = {}
    batches = {}
    for workers in WORKER_COUNTS:
        seconds[workers], batches[workers] = _best_run(frames, workers)

    # Correctness half (always enforced): every worker count produces
    # byte-identical streams to the serial run.
    reference = batches[1]
    for workers in WORKER_COUNTS[1:]:
        for serial_stream, parallel_stream in zip(
            reference.streams, batches[workers].streams
        ):
            assert serial_stream.chunks == parallel_stream.chunks, (
                f"workers={workers} changed the stream bytes"
            )

    pixels = sum(int(frame.size) for frame in frames)
    speedups = {workers: seconds[1] / seconds[workers] for workers in WORKER_COUNTS}
    record = {
        "frame_count": FRAME_COUNT,
        "frame_size": FRAME_SIZE,
        "usable_cpus": gate.usable_cpus,
        "byte_identical": True,
        "seconds": {str(w): seconds[w] for w in WORKER_COUNTS},
        "mpixels_per_s": {
            str(w): pixels / seconds[w] / 1e6 for w in WORKER_COUNTS
        },
        "speedup_vs_serial": {str(w): speedups[w] for w in WORKER_COUNTS},
        "min_speedup_at_4": MIN_SPEEDUP_AT_4,
        "throughput_gate": gate.record,
    }
    save_json_record("bench_pipeline_parallel", record)

    if gate.active:
        assert speedups[4] >= MIN_SPEEDUP_AT_4, (
            f"4-worker speedup only {speedups[4]:.2f}x "
            f"({seconds[1] * 1e3:.0f} ms serial vs {seconds[4] * 1e3:.0f} ms parallel)"
        )
