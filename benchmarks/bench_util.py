"""Helpers shared by the benchmark modules (kept out of conftest so the
benchmark files can import them explicitly)."""

from __future__ import annotations

from repro.analysis.record import ExperimentResult

__all__ = ["assert_reproduced"]


def assert_reproduced(result: ExperimentResult) -> None:
    """Fail the benchmark if any paper comparison falls outside tolerance."""
    failing = [
        f"{c.quantity}: paper={c.paper_value} measured={c.measured_value}"
        for c in result.comparisons
        if not c.within_tolerance
    ]
    assert not failing, "paper values not reproduced: " + "; ".join(failing)
