"""Benchmark table3 — regenerate Table III (prior-architecture comparison)."""

from bench_util import assert_reproduced

from repro.analysis.experiments import table3
from repro.baselines.comparison import area_ratios, table_iii_comparison


def test_table3_architecture_comparison(benchmark, save_report):
    """Build the five-row comparison at the paper's operating point."""
    rows = benchmark(table_iii_comparison)
    assert len(rows) == 5

    ratios = area_ratios(rows)
    assert all(ratio > 10.0 for ratio in ratios.values())

    result = table3.run()
    save_report(result)
    assert_reproduced(result)


def test_table3_word_length_ablation(benchmark, save_report):
    """Ablation: at 8-bit precision the prior architectures become affordable.

    This regenerates the argument of section 3: the prior architectures were
    designed for 8-bit imagery; it is the 32-bit lossless word length that
    blows up their memory area, which is what motivates the proposed design.
    """

    def both_precisions():
        return (
            table_iii_comparison(word_length=8, include_proposed=False),
            table_iii_comparison(word_length=32, include_proposed=False),
        )

    eight_bit, thirty_two_bit = benchmark(both_precisions)
    for narrow, wide in zip(eight_bit, thirty_two_bit):
        assert narrow.memory_area_mm2 < wide.memory_area_mm2 / 3.0
