"""Benchmark table6 — FIFO depth bounds from the dependence-distance analysis."""

from bench_util import assert_reproduced

from repro.analysis.experiments import table6
from repro.arch.output_fifo import VariableDepthFifo, fifo_bounds_table


def test_table6_fifo_depth_bounds(benchmark, save_report):
    """Regenerate Table VI (MIN(D)/MAX(D) per scale, N=512, L=13)."""
    table = benchmark(fifo_bounds_table, 512, 6, 6)
    ours = {scale: (b.min_depth, b.max_depth) for scale, b in table.items()}
    assert ours == {
        1: (250, 504), 2: (122, 248), 3: (58, 120),
        4: (26, 56), 5: (10, 24), 6: (2, 8),
    }

    result = table6.run()
    save_report(result)
    assert_reproduced(result)


def test_table6_fifo_streaming_throughput(benchmark):
    """Push one full scale-1 column (512 high-pass results) through the FIFO."""
    fifo = VariableDepthFifo(depth=250, capacity=256)

    def stream_column():
        out = []
        for value in range(512):
            delayed = fifo.push(value)
            if delayed is not None:
                out.append(delayed)
        out.extend(fifo.drain())
        return out

    out = benchmark(stream_column)
    assert out == list(range(512))
