"""Benchmark fig1 — the 2-D pyramid building block (one stage and full pyramid)."""

import numpy as np
from bench_util import assert_reproduced

from repro.analysis.experiments import fig1
from repro.dwt.transform2d import analyze_2d_stage, fdwt_2d, idwt_2d
from repro.filters.catalog import get_bank
from repro.imaging.phantoms import shepp_logan


def test_fig1_single_stage(benchmark, save_report):
    """Time one 2-D analysis stage (Fig. 1's building block) on a 256x256 phantom."""
    bank = get_bank("F2")
    image = shepp_logan(256).astype(float)

    hh, details = benchmark(analyze_2d_stage, image, bank)
    assert hh.shape == (128, 128)
    assert details.shape == (128, 128)

    result = fig1.run()
    save_report(result)
    assert_reproduced(result)


def test_fig1_full_pyramid_roundtrip(benchmark):
    """Time a 6-scale forward + inverse float transform of a 256x256 phantom."""
    bank = get_bank("F2")
    image = shepp_logan(256).astype(float)

    def roundtrip():
        pyramid = fdwt_2d(image, bank, 6)
        return idwt_2d(pyramid, bank)

    reconstructed = benchmark(roundtrip)
    assert np.max(np.abs(reconstructed - image)) < 0.5
