"""Extension benchmark — the lossless codecs on medical-image workloads.

Not a paper table: the paper does not specify an entropy-coding back end.
This bench characterises the two extension codecs (coefficient-exact and
S-transform) on the synthetic medical workloads so that downstream users
know what to expect from each, and measures the vectorised coding engine
against the scalar reference at the paper's full 512x512 frame size.
"""

import time

import numpy as np

from repro.coding.codec import LosslessWaveletCodec
from repro.coding.pipeline import compress_frames, decompress_frames
from repro.coding.s_transform import STransformCodec
from repro.imaging.dataset import standard_dataset
from repro.imaging.phantoms import shepp_logan


def test_codec_s_transform_compression(benchmark):
    """S-transform codec on a 256x256 CT phantom: lossless and compressive."""
    codec = STransformCodec(scales=5)
    image = shepp_logan(256)

    reconstructed, stream = benchmark(codec.roundtrip, image)
    assert np.array_equal(reconstructed, image)
    assert stream.compression_ratio > 1.2
    assert stream.bits_per_pixel < 10.0


def test_codec_coefficient_exact_roundtrip(benchmark):
    """Coefficient-exact codec on a 128x128 phantom: lossless (size expands)."""
    codec = LosslessWaveletCodec("F2", scales=3)
    image = shepp_logan(128)

    reconstructed, stream = benchmark(codec.roundtrip, image)
    assert np.array_equal(reconstructed, image)
    assert stream.compressed_bytes > 0


def test_codec_s_transform_512_fast_vs_scalar(benchmark, save_json_record):
    """512x512 roundtrip: vectorised engine benchmarked, >= 10x over scalar.

    The scalar reference engine produces byte-identical streams, so timing
    both engines on the same input (best of three passes each, symmetric
    noise floors) is an apples-to-apples speedup measurement.
    """
    image = shepp_logan(512)
    fast_codec = STransformCodec(scales=5, engine="fast")
    scalar_codec = STransformCodec(scales=5, engine="scalar")

    reconstructed, stream = benchmark(fast_codec.roundtrip, image)
    assert np.array_equal(reconstructed, image)
    assert stream.compression_ratio > 1.2

    fast_seconds = min(_timed(fast_codec.roundtrip, image) for _ in range(3))
    scalar_seconds = min(_timed(scalar_codec.roundtrip, image) for _ in range(3))
    speedup = scalar_seconds / fast_seconds
    save_json_record(
        "codec_speedup_512",
        {
            "image": "shepp_logan_512",
            "scales": 5,
            "fast_seconds": fast_seconds,
            "scalar_seconds": scalar_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= 10.0


def _timed(fn, *args) -> float:
    began = time.perf_counter()
    fn(*args)
    return time.perf_counter() - began


def test_codec_batched_pipeline(benchmark):
    """compress_frames/decompress_frames over a mixed-size batch."""
    frames = [shepp_logan(size) for size in (64, 128, 256, 128, 64, 96, 160, 192)]

    def roundtrip_batch():
        batch = compress_frames(frames, codec="s-transform", scales=4)
        decoded, _ = decompress_frames(batch)
        return batch, decoded

    batch, decoded = benchmark(roundtrip_batch)
    assert all(np.array_equal(a, b) for a, b in zip(frames, decoded))
    assert batch.compression_ratio > 1.2
    assert set(batch.stats.stage_seconds) == {"transform", "entropy_encode"}


def test_codec_workload_sweep(benchmark):
    """S-transform codec across the standard workload mix (CT, MR, ramp, noise)."""
    codec = STransformCodec(scales=4)
    dataset = standard_dataset(size=64)

    def compress_all():
        ratios = {}
        for name, image in dataset:
            reconstructed, stream = codec.roundtrip(image)
            assert np.array_equal(reconstructed, image)
            ratios[name] = stream.compression_ratio
        return ratios

    ratios = benchmark(compress_all)
    # Smooth medical content compresses; uniform noise does not.
    assert ratios["ct_phantom"] > ratios["random"]
