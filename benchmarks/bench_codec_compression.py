"""Extension benchmark — the lossless codecs on medical-image workloads.

Not a paper table: the paper does not specify an entropy-coding back end.
This bench characterises the two extension codecs (coefficient-exact and
S-transform) on the synthetic medical workloads so that downstream users
know what to expect from each.
"""

import numpy as np

from repro.coding.codec import LosslessWaveletCodec
from repro.coding.s_transform import STransformCodec
from repro.imaging.dataset import standard_dataset
from repro.imaging.phantoms import shepp_logan


def test_codec_s_transform_compression(benchmark):
    """S-transform codec on a 256x256 CT phantom: lossless and compressive."""
    codec = STransformCodec(scales=5)
    image = shepp_logan(256)

    reconstructed, stream = benchmark(codec.roundtrip, image)
    assert np.array_equal(reconstructed, image)
    assert stream.compression_ratio > 1.2
    assert stream.bits_per_pixel < 10.0


def test_codec_coefficient_exact_roundtrip(benchmark):
    """Coefficient-exact codec on a 128x128 phantom: lossless (size expands)."""
    codec = LosslessWaveletCodec("F2", scales=3)
    image = shepp_logan(128)

    reconstructed, stream = benchmark(codec.roundtrip, image)
    assert np.array_equal(reconstructed, image)
    assert stream.compressed_bytes > 0


def test_codec_workload_sweep(benchmark):
    """S-transform codec across the standard workload mix (CT, MR, ramp, noise)."""
    codec = STransformCodec(scales=4)
    dataset = standard_dataset(size=64)

    def compress_all():
        ratios = {}
        for name, image in dataset:
            reconstructed, stream = codec.roundtrip(image)
            assert np.array_equal(reconstructed, image)
            ratios[name] = stream.compression_ratio
        return ratios

    ratios = benchmark(compress_all)
    # Smooth medical content compresses; uniform noise does not.
    assert ratios["ct_phantom"] > ratios["random"]
