"""Benchmark table5 — multiplier design comparison (compiled vs pipelined Wallace)."""

from bench_util import assert_reproduced

from repro.analysis.experiments import table5
from repro.arch.multiplier import PipelinedMultiplier, wallace_multiplier_estimate
from repro.technology.timing import multiplier_comparison


def test_table5_multiplier_comparison(benchmark, save_report):
    """Regenerate both Table V rows from the structural models."""
    rows = benchmark(multiplier_comparison)
    assert len(rows) == 2
    assert rows[0].access_time_ns > 25.0 > rows[1].access_time_ns

    result = table5.run()
    save_report(result)
    assert_reproduced(result)


def test_table5_behavioural_multiplier_throughput(benchmark):
    """Throughput of the behavioural 2-stage pipelined multiplier model.

    One product per clock once the pipeline is full — this times the Python
    model itself (a simulator-speed figure, not a silicon figure).
    """
    mult = PipelinedMultiplier(operand_bits=32, stages=2)
    operands = [(a, a + 1) for a in range(256)]

    def stream_products():
        mult.reset()
        completed = 0
        for a, b in operands:
            mult.issue(a, b)
            if mult.tick() is not None:
                completed += 1
        for _ in range(mult.stages):
            mult.issue_bubble()
            if mult.tick() is not None:
                completed += 1
        return completed

    completed = benchmark(stream_products)
    assert completed == len(operands)
    estimate = wallace_multiplier_estimate(32, 2)
    assert estimate.max_clock_mhz > 40.0
