"""Ablation benchmark — DRAM refresh cadence vs multiplier utilisation.

The 99.04 % utilisation figure depends on how often the external DRAM steals
a 6-cycle extension from the macro-cycle.  This bench sweeps the refresh
interval to show the sensitivity (and that the paper's operating point sits
on the flat part of the curve), plus the filter-length sensitivity of the
macro-cycle structure.
"""

from repro.arch.scheduler import utilisation_formula


def test_ablation_refresh_interval_sweep(benchmark):
    """Utilisation as a function of macro-cycles between refreshes."""

    def sweep():
        return {
            interval: utilisation_formula(13, interval, 6)
            for interval in (1, 2, 4, 8, 16, 32, 48, 96, 192)
        }

    curve = benchmark(sweep)
    # Monotone: fewer refreshes -> higher utilisation.
    intervals = sorted(curve)
    values = [curve[i] for i in intervals]
    assert values == sorted(values)
    # The paper's operating point (48) is already above 99%.
    assert curve[48] > 0.99
    # Refreshing every macro-cycle would waste ~1/3 of the multiplier.
    assert curve[1] < 0.70


def test_ablation_filter_length_sweep(benchmark):
    """Utilisation vs filter length: longer macro-cycles hide the refresh better."""

    def sweep():
        return {length: utilisation_formula(length, 48, 6) for length in (2, 5, 9, 13)}

    curve = benchmark(sweep)
    assert curve[13] > curve[9] > curve[5] > curve[2]
