"""Shared fixtures of the benchmark harness.

Every benchmark regenerates one paper table/figure: it times the underlying
computation with pytest-benchmark, asserts the paper-vs-measured comparisons
of the corresponding experiment driver, and writes the rendered table to
``benchmarks/reports/<experiment id>.txt`` so the regenerated rows can be
inspected next to the paper.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.record import ExperimentResult

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture(scope="session")
def save_report(report_dir):
    """Write an ExperimentResult's rendered table to the reports directory."""

    def _save(result: ExperimentResult) -> Path:
        path = report_dir / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")
        return path

    return _save


#: Prior records kept per report file — enough to see a trend across PRs
#: without the files growing unboundedly.
HISTORY_LIMIT = 20


@pytest.fixture(scope="session")
def save_json_record(report_dir):
    """Write a machine-readable benchmark record to ``reports/<name>.json``.

    Used by the perf-tracking benches (coding engine, codec speedup) so the
    throughput trajectory can be diffed across PRs, next to the rendered
    paper tables.  The previous run's record is appended to a bounded
    ``history`` list (oldest first, at most ``HISTORY_LIMIT`` entries), so
    one file carries the whole recent trajectory, not just the last point.
    """

    def _save(name: str, record: dict) -> Path:
        path = report_dir / f"{name}.json"
        history: list = []
        if path.exists():
            try:
                previous = json.loads(path.read_text(encoding="utf-8"))
                history = previous.pop("history", [])
                history.append(previous)
                history = history[-HISTORY_LIMIT:]
            except (json.JSONDecodeError, OSError, AttributeError, TypeError):
                history = []
        payload = dict(record)
        if history:
            payload["history"] = history
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    return _save

