"""Shared fixtures of the benchmark harness.

Every benchmark regenerates one paper table/figure: it times the underlying
computation with pytest-benchmark, asserts the paper-vs-measured comparisons
of the corresponding experiment driver, and writes the rendered table to
``benchmarks/reports/<experiment id>.txt`` so the regenerated rows can be
inspected next to the paper.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.record import ExperimentResult

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture(scope="session")
def save_report(report_dir):
    """Write an ExperimentResult's rendered table to the reports directory."""

    def _save(result: ExperimentResult) -> Path:
        path = report_dir / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")
        return path

    return _save


@pytest.fixture(scope="session")
def save_json_record(report_dir):
    """Write a machine-readable benchmark record to ``reports/<name>.json``.

    Used by the perf-tracking benches (coding engine, codec speedup) so the
    throughput trajectory can be diffed across PRs, next to the rendered
    paper tables.
    """

    def _save(name: str, record: dict) -> Path:
        path = report_dir / f"{name}.json"
        path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    return _save

