"""Benchmark fig3 — the cycle-accurate datapath/accelerator simulation."""

import numpy as np
from bench_util import assert_reproduced

from repro.analysis.experiments import fig3
from repro.arch.accelerator import DwtAccelerator
from repro.arch.config import ArchitectureConfig
from repro.imaging.phantoms import random_image


def test_fig3_cycle_accurate_forward(benchmark, save_report):
    """Simulate the full accelerator forward transform of a 32x32 image.

    This is the simulator-speed figure (how fast the Python model runs), not
    a silicon figure; the asserted properties are the hardware ones — cycle
    counts, utilisation and bit-exactness — via the fig3 experiment.
    """
    config = ArchitectureConfig(image_size=32, scales=3)
    image = random_image(32, seed=11)

    def simulate():
        accelerator = DwtAccelerator(config)
        return accelerator.forward(image)

    pyramid, report = benchmark(simulate)
    assert report.macrocycles == 2 * (32 * 32 + 16 * 16 + 8 * 8)
    assert pyramid.scales == 3

    result = fig3.run()
    save_report(result)
    assert_reproduced(result)


def test_fig3_cycle_accurate_roundtrip_lossless(benchmark):
    """Simulate forward + inverse on the hardware model and check bit-exactness."""
    config = ArchitectureConfig(image_size=16, scales=2)
    image = random_image(16, seed=3)

    def roundtrip():
        accelerator = DwtAccelerator(config)
        reconstructed, _, _, _ = accelerator.roundtrip(image)
        return reconstructed

    reconstructed = benchmark(roundtrip)
    assert np.array_equal(reconstructed, image)
