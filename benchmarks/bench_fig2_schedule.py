"""Benchmark fig2 — macro-cycle schedule generation and utilisation accounting."""

from bench_util import assert_reproduced

from repro.analysis.experiments import fig2
from repro.arch.accelerator import forward_macrocycles
from repro.arch.config import paper_configuration
from repro.arch.scheduler import operation_schedule, simulate_utilisation


def test_fig2_schedule_and_utilisation(benchmark, save_report):
    """Account the cycles of a full 512x512, 6-scale forward transform."""
    config = paper_configuration()
    macrocycles = forward_macrocycles(config.image_size, config.scales)

    report = benchmark(simulate_utilisation, macrocycles, config)
    assert 0.990 < report.utilisation < 0.991

    result = fig2.run()
    save_report(result)
    assert_reproduced(result)


def test_fig2_slot_table_generation(benchmark):
    """Generate the per-cycle slot tables (normal + refresh-extended macro-cycle)."""

    def build_tables():
        return operation_schedule(13), operation_schedule(13, refresh=True)

    normal, extended = benchmark(build_tables)
    assert len(normal) == 13
    assert len(extended) == 19
