"""Ablation benchmark — the §4.3 rounding rule and the word-length choice.

DESIGN.md calls out two design decisions worth ablating:

* the round-half-up rule applied when narrowing the 64-bit accumulator back
  to the 32-bit word (replacing it with plain truncation loses bit-exactness),
* the 32-bit word length with a scale-dependent integer part (shorter words
  eventually cannot hold the integer part Table II requires).
"""

import numpy as np

from repro.filters.catalog import get_bank
from repro.fixedpoint.errors import DynamicRangeError
from repro.fixedpoint.wordlength import plan_word_lengths
from repro.fxdwt.lossless import lossless_word_length_search
from repro.fxdwt.transform import FixedPointDWT
from repro.imaging.phantoms import shepp_logan


def test_ablation_rounding_rule(benchmark):
    """Half-up vs truncation on the same workload: only half-up is lossless."""
    bank = get_bank("F2")
    image = shepp_logan(128)

    def roundtrip_both():
        exact = FixedPointDWT(bank, 4, rounding="half_up").roundtrip(image)[0]
        truncated = FixedPointDWT(bank, 4, rounding="truncate").roundtrip(image)[0]
        return exact, truncated

    exact, truncated = benchmark(roundtrip_both)
    assert np.array_equal(exact, image)
    assert not np.array_equal(truncated, image)
    assert np.abs(truncated - image).max() <= 2  # off by an LSB or two, not garbage


def test_ablation_word_length_sweep(benchmark):
    """Sweep the datapath word length; 32 bits is lossless, short words fail."""
    image = shepp_logan(64)

    sweep = benchmark(
        lossless_word_length_search, image, "F2", 4, range(18, 34, 2)
    )
    assert sweep[32].lossless
    assert any(not report.lossless for report in sweep.values())
    # Losslessness is monotone in the word length.
    statuses = [sweep[w].lossless for w in sorted(sweep)]
    first_lossless = statuses.index(True)
    assert all(statuses[first_lossless:])


def test_ablation_integer_part_must_grow_with_scale(benchmark):
    """Keeping the scale-1 integer part for every scale overflows deep scales.

    This is the §3 argument for the variable integer part: the per-scale
    dynamic-range growth is real, so a fixed split either overflows (too few
    integer bits at deep scales) or wastes fractional precision.
    """
    bank = get_bank("F6")  # the bank with the fastest dynamic-range growth

    def try_fixed_integer_part():
        try:
            # A 22-bit word can hold F6's scale-1/2 integer parts but not the
            # 24..29 bits scales 4..6 need; plan construction must refuse.
            plan_word_lengths(bank, 6, word_length=22)
            return False
        except DynamicRangeError:
            return True

    refused = benchmark(try_fixed_integer_part)
    assert refused
