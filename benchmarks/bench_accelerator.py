"""Fast-vs-scalar accelerator engine benchmark (512x512 forward transform).

Not a paper table: this tracks the throughput of the cycle-accounted
architecture model so the perf trajectory of the simulation hot path is
visible from PR to PR, exactly like ``bench_coding_engine`` does for the
entropy-coding stack.  The fast whole-pass engine must be at least 10x
faster than the per-macro-cycle scalar reference at the paper's 512x512
frame size while producing a bit-identical pyramid and an identical run
report; the measured numbers are written to
``benchmarks/reports/bench_accelerator.json``.

The scalar leg runs a single decomposition scale (the dominant O(N^2)
workload; deeper scales only add a geometric tail) to keep the reference
run to tens of seconds.  The fast engine is additionally timed on the full
paper configuration (6 scales), which has no tractable scalar counterpart.
"""

import dataclasses
import time

import numpy as np

from repro.arch.accelerator import DwtAccelerator
from repro.arch.config import ArchitectureConfig
from repro.imaging.phantoms import random_image

IMAGE_SIZE = 512
MIN_SPEEDUP = 10.0


def _time_forward(accelerator, image, engine):
    began = time.perf_counter()
    pyramid, report = accelerator.forward(image, engine=engine)
    return pyramid, report, time.perf_counter() - began


def test_fast_engine_speedup_512(save_json_record):
    """Fast engine >= 10x over scalar at 512x512, bit-identical outputs."""
    config = ArchitectureConfig(image_size=IMAGE_SIZE, scales=1)
    accelerator = DwtAccelerator(config)
    image = random_image(IMAGE_SIZE, seed=20260728)

    # Warm up the fast path (index-table caches), then time both engines.
    accelerator.forward(image, engine="fast")
    pyramid_fast, report_fast, fast_seconds = _time_forward(accelerator, image, "fast")
    pyramid_scalar, report_scalar, scalar_seconds = _time_forward(
        accelerator, image, "scalar"
    )

    assert np.array_equal(pyramid_fast.approximation, pyramid_scalar.approximation)
    for fast_entry, scalar_entry in zip(pyramid_fast.details, pyramid_scalar.details):
        assert np.array_equal(fast_entry.hg, scalar_entry.hg)
        assert np.array_equal(fast_entry.gh, scalar_entry.gh)
        assert np.array_equal(fast_entry.gg, scalar_entry.gg)
    assert dataclasses.asdict(report_fast) == dataclasses.asdict(report_scalar)

    speedup = scalar_seconds / fast_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"fast engine only {speedup:.1f}x over scalar "
        f"({fast_seconds * 1e3:.1f} ms vs {scalar_seconds:.2f} s)"
    )

    # The full paper configuration on the fast engine (no scalar leg: the
    # per-macro-cycle model would need minutes for the same run).
    paper = DwtAccelerator(ArchitectureConfig(image_size=IMAGE_SIZE, scales=6))
    paper.forward(image)
    began = time.perf_counter()
    _, paper_report = paper.forward(image)
    paper_seconds = time.perf_counter() - began

    save_json_record(
        "bench_accelerator",
        {
            "image_size": IMAGE_SIZE,
            "scales": config.scales,
            "macrocycles": report_fast.macrocycles,
            "fast_seconds": fast_seconds,
            "scalar_seconds": scalar_seconds,
            "speedup": speedup,
            "fast_mpixels_per_s": IMAGE_SIZE * IMAGE_SIZE / fast_seconds / 1e6,
            "paper_config_scales": 6,
            "paper_config_macrocycles": paper_report.macrocycles,
            "paper_config_fast_seconds": paper_seconds,
        },
    )
