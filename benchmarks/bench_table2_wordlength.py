"""Benchmark table2 — regenerate Table II (b_int per scale) from the filters."""

from bench_util import assert_reproduced

from repro.analysis.experiments import table2
from repro.filters.catalog import get_bank
from repro.filters.coefficients import FILTER_NAMES
from repro.fixedpoint.wordlength import integer_bits_schedule


def test_table2_integer_bits_schedule(benchmark, save_report):
    """Derive the full Table II (6 banks x 6 scales) from the dynamic-range analysis."""

    def derive_table():
        return {
            name: integer_bits_schedule(get_bank(name), 6) for name in FILTER_NAMES
        }

    table = benchmark(derive_table)
    assert len(table) == 6

    result = table2.run()
    save_report(result)
    assert_reproduced(result)
