"""Self-healing benchmark: repair throughput and failover read overhead.

Not a paper table: this is the perf claim behind
:mod:`repro.archive.replication` — replication must make damage cheap to
survive.  Two numbers matter:

* **repair throughput** — a damaged shard copy is rebuilt by a byte copy
  from its healthy sibling, so healing should run at storage bandwidth,
  not at codec speed.  The benchmark corrupts one primary of a replicated
  4-shard set, times ``repair_set`` end to end (detect via verify + byte
  copy + re-verify), and reports MB/s over the rebuilt bytes.
* **failover read latency** — a routed read that fails over to a replica
  pays one wasted read plus one reader open.  The benchmark times the
  same random-access read sequence against a clean set and against a set
  with one damaged primary, and reports the per-read overhead factor.

Correctness is always asserted (the rebuilt copy is byte-identical to the
pre-damage bytes, strict verify passes, failover reads decode the right
pixels); the numbers land in
``benchmarks/reports/bench_archive_repair.json`` next to the other bench
artifacts so the trajectory is diffable across PRs.  No throughput gate:
both paths are dominated by I/O on any host, and the report itself is the
evidence the CI chaos job uploads.
"""

import time

import numpy as np
import pytest

from repro.archive import ReplicatedShardSet, ShardedArchiveReader, repair_set
from repro.archive.format import HEADER_SIZE
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

FRAME_COUNT = 32
FRAME_SIZE = 128
SHARDS = 4
READ_PASSES = 3


def _names(count):
    return [f"slice_{i:03d}" for i in range(count)]


def _read_all(path, names, frames):
    """One timed pass of routed random-access reads, each validated."""
    began = time.perf_counter()
    with ShardedArchiveReader(path) as reader:
        for position, name in enumerate(names):
            assert np.array_equal(reader.decode(name), frames[position]), name
        failovers = reader.failovers
    return time.perf_counter() - began, failovers


def test_repair_and_failover_throughput(tmp_path, save_json_record):
    frames = ct_slice_series(count=FRAME_COUNT, size=FRAME_SIZE, seed=20260808)
    names = _names(FRAME_COUNT)
    path = tmp_path / "healer.dwts"
    with ReplicatedShardSet.create(path, shards=SHARDS, replicas=1) as writer:
        writer.append_batch(frames, names=names)

    with ShardedArchiveReader(path) as reader:
        victim = reader.copy_paths[reader.router.route(names[0])][0]
    pristine = victim.read_bytes()

    # Baseline: random-access reads against the clean set.
    clean_seconds = min(_read_all(path, names, frames)[0] for _ in range(READ_PASSES))

    # Damage one primary: every read still succeeds, via failover.
    blob = bytearray(pristine)
    blob[HEADER_SIZE + 2] ^= 0x11
    victim.write_bytes(bytes(blob))
    damaged_seconds, failovers = min(
        (_read_all(path, names, frames) for _ in range(READ_PASSES)),
        key=lambda pair: pair[0],
    )
    assert failovers >= 1, "damage never triggered a failover"

    # Heal, timed end to end (verify + byte copy + re-verify).
    began = time.perf_counter()
    result = repair_set(path)
    repair_seconds = time.perf_counter() - began
    assert result.ok and victim.name in result.repaired
    assert victim.read_bytes() == pristine, "repair is not byte-identical"
    with ShardedArchiveReader(path) as reader:
        assert not reader.verify(strict=True)["failures"]

    repaired_bytes = len(pristine)
    record = {
        "frame_count": FRAME_COUNT,
        "frame_size": FRAME_SIZE,
        "shards": SHARDS,
        "replicas": 1,
        "byte_identical_repair": True,
        "strict_verify_after_repair": True,
        "repair_seconds": repair_seconds,
        "repaired_bytes": repaired_bytes,
        "repair_mb_per_s": repaired_bytes / repair_seconds / 1e6,
        "clean_read_seconds": clean_seconds,
        "failover_read_seconds": damaged_seconds,
        "failover_overhead_factor": damaged_seconds / clean_seconds,
        "failovers_per_pass": failovers,
        "reads_per_pass": FRAME_COUNT,
    }
    save_json_record("bench_archive_repair", record)
