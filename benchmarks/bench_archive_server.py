"""HTTP serving benchmark: many concurrent clients over localhost.

Not a paper table: this is the perf claim behind
:mod:`repro.archive.server` — fronting a replicated sharded set with
per-shard worker pools and a hot-frame cache must sustain many concurrent
clients. 16 synthetic asyncio clients hammer ``GET /frames/<name>``
(mixed with ``Range:`` slice reads and ``/stats`` polls) against a
4-shard replicated set; the benchmark records sustained requests/s and
p50/p99 latency, proves every response byte-identical to a direct reader
decode (correctness half, always enforced), and appends the numbers to
``benchmarks/reports/bench_archive_server.json`` so the trajectory is
diffable across PRs, like ``bench_archive_sharded``.

Throughput gates are only enforced when the host exposes >= 4 usable
CPUs (the event loop, the shard workers and 16 clients all share the
host); narrower hosts still run the correctness half and the report
records why the gate was waived.
"""

import asyncio
import json
import statistics
import time

import numpy as np
import pytest

from _gates import cpu_throughput_gate
from repro.archive import ShardedArchiveReader
from repro.archive.replication import ReplicatedShardSet
from repro.archive.server import ArchiveHTTPServer, ArchiveService
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

FRAME_COUNT = 32
FRAME_SIZE = 64
SHARDS = 4
CLIENTS = 16
REQUESTS_PER_CLIENT = 24
CACHE_BYTES = 32 << 20
#: Modest floor: even a 1-CPU container sustains far more over loopback;
#: the gate exists to catch order-of-magnitude serving regressions.
MIN_REQUESTS_PER_S = 200.0


def _names(count):
    return [f"slice_{i:03d}" for i in range(count)]


async def _client(address, names, rounds, latencies):
    """One synthetic client: full GETs, a slice read and a stats poll."""
    reader, writer = await asyncio.open_connection(*address)

    async def request(raw):
        began = time.perf_counter()
        writer.write(raw)
        await writer.drain()
        status_line = await reader.readline()
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        body = await reader.readexactly(int(headers.get("content-length", 0)))
        latencies.append(time.perf_counter() - began)
        return int(status_line.split()[1]), headers, body

    served = {}
    try:
        for round_no in range(rounds):
            name = names[round_no % len(names)]
            status, headers, body = await request(
                f"GET /frames/{name} HTTP/1.1\r\n\r\n".encode()
            )
            assert status == 200, status
            shape = tuple(int(s) for s in headers["x-frame-shape"].split("x"))
            served[name] = np.frombuffer(body, dtype=headers["x-frame-dtype"]).reshape(shape)
            if round_no % 8 == 3:
                status, _, _ = await request(
                    f"GET /frames/{name} HTTP/1.1\r\nRange: bytes=0-63\r\n\r\n".encode()
                )
                assert status == 206, status
            if round_no % 8 == 7:
                status, _, _ = await request(b"GET /stats HTTP/1.1\r\n\r\n")
                assert status == 200, status
    finally:
        writer.close()
    return served


def test_server_sustained_concurrent_load(tmp_path, save_json_record):
    frames = ct_slice_series(count=FRAME_COUNT, size=FRAME_SIZE, seed=20260808)
    names = _names(FRAME_COUNT)
    path = tmp_path / "served.dwts"
    with ReplicatedShardSet.create(path, shards=SHARDS, replicas=1, scales=2) as writer:
        writer.append_batch(frames, names=names)
    with ShardedArchiveReader(path) as direct:
        expected = {name: direct.decode(name) for name in names}
        payload_layout = direct.manifest.layout
    gate = cpu_throughput_gate(
        "the event loop, shard workers and 16 clients all contend for them"
    )
    latencies = []

    async def scenario():
        service = ArchiveService(path, cache_bytes=CACHE_BYTES)
        server = ArchiveHTTPServer(service, port=0)
        await server.start()
        try:
            # Offset each client into the name list so the first wave
            # fans out across shards instead of stampeding one frame.
            began = time.perf_counter()
            results = await asyncio.gather(
                *(
                    _client(
                        server.address,
                        names[i % FRAME_COUNT:] + names[: i % FRAME_COUNT],
                        REQUESTS_PER_CLIENT,
                        latencies,
                    )
                    for i in range(CLIENTS)
                )
            )
            elapsed = time.perf_counter() - began
            stats = service.stats()
            return results, elapsed, stats
        finally:
            await server.close()

    results, elapsed, stats = asyncio.run(asyncio.wait_for(scenario(), timeout=300))

    # Correctness half (always enforced): every byte every client decoded
    # is identical to the direct reader's decode of the same frame.
    for served in results:
        for name, frame in served.items():
            assert np.array_equal(frame, expected[name]), name

    total_requests = len(latencies)
    requests_per_s = total_requests / elapsed
    ordered = sorted(latencies)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    record = {
        "frame_count": FRAME_COUNT,
        "frame_size": FRAME_SIZE,
        "payload_layout": payload_layout,
        "shards": SHARDS,
        "replicas": 1,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "total_requests": total_requests,
        "usable_cpus": gate.usable_cpus,
        "byte_identical": True,
        "elapsed_s": elapsed,
        "requests_per_s": requests_per_s,
        "latency_p50_ms": p50 * 1e3,
        "latency_p99_ms": p99 * 1e3,
        "cache": stats["cache"],
        "reader": stats["reader"],
        "queue_peaks": stats["queues"]["peak_depths"],
        "min_requests_per_s": MIN_REQUESTS_PER_S,
        "throughput_gate": gate.record,
    }
    save_json_record("bench_archive_server", record)

    # The cache must have done real work under this access pattern.
    assert stats["cache"]["hits"] > 0
    assert stats["reader"]["failovers" if "failovers" in stats["reader"] else "retries"] == 0

    if gate.active:
        assert requests_per_s >= MIN_REQUESTS_PER_S, (
            f"served only {requests_per_s:.0f} req/s "
            f"(p99 {p99 * 1e3:.1f} ms) under {CLIENTS} clients"
        )
