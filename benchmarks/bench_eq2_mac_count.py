"""Benchmark eq2 — MAC operation counts (Eq. (1)/(2)) and the Pentium baseline."""

import numpy as np
from bench_util import assert_reproduced

from repro.analysis.experiments import eq2
from repro.dwt.opcount import count_macs_instrumented
from repro.filters.catalog import get_bank
from repro.perf.opcount_model import PAPER_MAC_COUNT, WorkloadModel
from repro.perf.software_baseline import PentiumBaseline


def test_eq2_mac_counts(benchmark, save_report):
    """Regenerate the 8.99e6-MAC worked example and the 42 s baseline time."""

    def counts():
        workload = WorkloadModel()  # N=512, L=13/13, S=6
        baseline = PentiumBaseline()
        return workload.total_macs(), baseline.seconds_for_workload(workload)

    total_macs, seconds = benchmark(counts)
    assert abs(total_macs - PAPER_MAC_COUNT) / PAPER_MAC_COUNT < 0.02
    assert abs(seconds - 42.0) < 1.0

    result = eq2.run()
    save_report(result)
    assert_reproduced(result)


def test_eq2_instrumented_count_matches_closed_form(benchmark):
    """Walk the actual transform loop structure and count every MAC (128x128)."""
    bank = get_bank("F2")
    image = np.zeros((128, 128))

    per_scale = benchmark(count_macs_instrumented, image, bank, 4)
    workload = WorkloadModel.for_bank(bank, image_size=128, scales=4)
    assert sum(per_scale.values()) == workload.total_macs()
