"""Micro-benchmarks of the vectorised entropy-coding engine.

Not a paper table: this tracks the throughput of the coding primitives
(bit packing, Rice, Huffman, RLE) in Msymbols/s so that the perf trajectory
of the codec hot path is visible from PR to PR.  Each test times the fast
path with pytest-benchmark and writes a JSON record (including the measured
speedup over the ``*_scalar`` reference implementation) to
``benchmarks/reports/``.
"""

import time

import numpy as np

from repro.coding.fastbits import pack_bits, pack_uint_fields, unpack_bits
from repro.coding.huffman import (
    huffman_decode,
    huffman_decode_scalar,
    huffman_encode,
    huffman_encode_scalar,
)
from repro.coding.rice import (
    rice_decode_array,
    rice_decode_scalar,
    rice_encode,
    rice_encode_scalar,
)
from repro.coding.rle import rle_decode, rle_decode_arrays, rle_encode, rle_encode_arrays

N_SYMBOLS = 1 << 18


def _rng():
    return np.random.default_rng(20260728)


def _time_once(fn, *args):
    began = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - began


def _record(save_json_record, name, n_symbols, fast_seconds, scalar_seconds):
    save_json_record(
        name,
        {
            "symbols": n_symbols,
            "fast_seconds": fast_seconds,
            "scalar_seconds": scalar_seconds,
            "speedup": scalar_seconds / fast_seconds if fast_seconds else float("inf"),
            "fast_msymbols_per_s": n_symbols / fast_seconds / 1e6,
        },
    )


def test_pack_unpack_uint_fields(benchmark, save_json_record):
    """Variable-width field packing + unpacking throughput."""
    rng = _rng()
    widths = rng.integers(1, 17, size=N_SYMBOLS)
    values = rng.integers(0, 1 << 16, size=N_SYMBOLS) & ((1 << widths) - 1)

    def pack_and_unpack():
        return unpack_bits(pack_bits(pack_uint_fields(values, widths)))

    bits = benchmark(pack_and_unpack)
    assert bits.size >= int(widths.sum())
    _, fast_s = _time_once(pack_and_unpack)
    save_json_record(
        "coding_engine_pack",
        {
            "symbols": N_SYMBOLS,
            "fast_seconds": fast_s,
            "fast_msymbols_per_s": N_SYMBOLS / fast_s / 1e6,
        },
    )


def test_rice_throughput(benchmark, save_json_record):
    """Rice encode + decode of a geometric source (the codec's workload)."""
    rng = _rng()
    symbols = (rng.geometric(0.2, size=N_SYMBOLS) - 1).astype(np.int64)

    def roundtrip():
        return rice_decode_array(rice_encode(symbols))

    out = benchmark(roundtrip)
    assert np.array_equal(out, symbols)
    _, fast_s = _time_once(roundtrip)
    blob = rice_encode(symbols)
    _, scalar_s = _time_once(lambda: rice_decode_scalar(rice_encode_scalar(symbols)))
    assert rice_encode_scalar(symbols) == blob
    _record(save_json_record, "coding_engine_rice", N_SYMBOLS, fast_s, scalar_s)


def test_huffman_throughput(benchmark, save_json_record):
    """Huffman encode + decode of a 40-symbol skewed alphabet."""
    rng = _rng()
    symbols = np.minimum(rng.geometric(0.15, size=N_SYMBOLS) - 1, 39).astype(np.int64)

    def roundtrip():
        return huffman_decode(huffman_encode(symbols))

    out = benchmark(roundtrip)
    assert out == symbols.tolist()
    _, fast_s = _time_once(roundtrip)
    _, scalar_s = _time_once(
        lambda: huffman_decode_scalar(huffman_encode_scalar(symbols))
    )
    assert huffman_encode_scalar(symbols) == huffman_encode(symbols)
    _record(save_json_record, "coding_engine_huffman", N_SYMBOLS, fast_s, scalar_s)


def test_rle_throughput(benchmark, save_json_record):
    """Array RLE encode + decode of a 70%-zeros source."""
    rng = _rng()
    values = rng.integers(-40, 40, size=N_SYMBOLS)
    values[rng.uniform(size=N_SYMBOLS) < 0.7] = 0

    def roundtrip():
        runs, literals = rle_encode_arrays(values)
        return rle_decode_arrays(runs, literals)

    out = benchmark(roundtrip)
    assert np.array_equal(out, values)
    _, fast_s = _time_once(roundtrip)
    _, scalar_s = _time_once(lambda: rle_decode(rle_encode(values)))
    _record(save_json_record, "coding_engine_rle", N_SYMBOLS, fast_s, scalar_s)
