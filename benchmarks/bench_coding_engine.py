"""Micro-benchmarks of the vectorised entropy-coding engine.

Not a paper table: this tracks the throughput of the coding primitives
(bit packing, Rice, Huffman, RLE) in Msymbols/s so that the perf trajectory
of the codec hot path is visible from PR to PR.  Each test times the fast
path with pytest-benchmark and writes a JSON record (including the measured
speedup over the ``*_scalar`` reference implementation, and — for the
decoders — the ``turbo`` tier's decode-only speedup over ``fast``) to
``benchmarks/reports/``.  The turbo Huffman decode carries a hard gate:
at least 2x over the fast decoder at 262144 symbols.
"""

import time

import numpy as np

from repro.coding.fastbits import pack_bits, pack_uint_fields, unpack_bits
from repro.coding.huffman import (
    huffman_decode,
    huffman_decode_scalar,
    huffman_decode_turbo,
    huffman_encode,
    huffman_encode_scalar,
)
from repro.coding.rice import (
    rice_decode_array,
    rice_decode_array_turbo,
    rice_decode_scalar,
    rice_encode,
    rice_encode_scalar,
)
from repro.coding.rle import rle_decode, rle_decode_arrays, rle_encode, rle_encode_arrays

N_SYMBOLS = 1 << 18
#: Hard floor on the turbo Huffman decode's advantage over the fast tier.
TURBO_HUFFMAN_MIN_SPEEDUP = 2.0


def _rng():
    return np.random.default_rng(20260728)


def _time_once(fn, *args):
    began = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - began


def _compare_decoders(fn_a, fn_b, blob, repeats=7):
    """Interleaved best-of-N timing of two decoders on one stream.

    Alternating the samples (after one untimed warm-up each) means a
    machine-wide slowdown mid-measurement degrades both sides instead of
    poisoning whichever ran second — the gated ratios must not fail on one
    noisy sample from a loaded CI machine.  Returns
    ``(result_a, best_a, result_b, best_b)``.
    """
    result_a = fn_a(blob)
    result_b = fn_b(blob)
    best_a = best_b = float("inf")
    for _ in range(repeats):
        _, seconds = _time_once(fn_a, blob)
        best_a = min(best_a, seconds)
        _, seconds = _time_once(fn_b, blob)
        best_b = min(best_b, seconds)
    return result_a, best_a, result_b, best_b


def _record(save_json_record, name, n_symbols, fast_seconds, scalar_seconds):
    save_json_record(
        name,
        {
            "symbols": n_symbols,
            "fast_seconds": fast_seconds,
            "scalar_seconds": scalar_seconds,
            "speedup": scalar_seconds / fast_seconds if fast_seconds else float("inf"),
            "fast_msymbols_per_s": n_symbols / fast_seconds / 1e6,
        },
    )


def test_pack_unpack_uint_fields(benchmark, save_json_record):
    """Variable-width field packing + unpacking throughput."""
    rng = _rng()
    widths = rng.integers(1, 17, size=N_SYMBOLS)
    values = rng.integers(0, 1 << 16, size=N_SYMBOLS) & ((1 << widths) - 1)

    def pack_and_unpack():
        return unpack_bits(pack_bits(pack_uint_fields(values, widths)))

    bits = benchmark(pack_and_unpack)
    assert bits.size >= int(widths.sum())
    _, fast_s = _time_once(pack_and_unpack)
    save_json_record(
        "coding_engine_pack",
        {
            "symbols": N_SYMBOLS,
            "fast_seconds": fast_s,
            "fast_msymbols_per_s": N_SYMBOLS / fast_s / 1e6,
        },
    )


def test_rice_throughput(benchmark, save_json_record):
    """Rice encode + decode of a geometric source (the codec's workload)."""
    rng = _rng()
    symbols = (rng.geometric(0.2, size=N_SYMBOLS) - 1).astype(np.int64)

    def roundtrip():
        return rice_decode_array(rice_encode(symbols))

    out = benchmark(roundtrip)
    assert np.array_equal(out, symbols)
    _, fast_s = _time_once(roundtrip)
    blob = rice_encode(symbols)
    _, scalar_s = _time_once(lambda: rice_decode_scalar(rice_encode_scalar(symbols)))
    assert rice_encode_scalar(symbols) == blob
    # Decode-only tier comparison on the same stream (turbo is decode-side).
    _, fast_decode_s, turbo_out, turbo_decode_s = _compare_decoders(
        rice_decode_array, rice_decode_array_turbo, blob
    )
    assert np.array_equal(turbo_out, symbols)
    save_json_record(
        "coding_engine_rice",
        {
            "symbols": N_SYMBOLS,
            "fast_seconds": fast_s,
            "scalar_seconds": scalar_s,
            "speedup": scalar_s / fast_s if fast_s else float("inf"),
            "fast_msymbols_per_s": N_SYMBOLS / fast_s / 1e6,
            "fast_decode_seconds": fast_decode_s,
            "turbo_decode_seconds": turbo_decode_s,
            "turbo_decode_speedup": fast_decode_s / turbo_decode_s,
            "turbo_decode_msymbols_per_s": N_SYMBOLS / turbo_decode_s / 1e6,
        },
    )


def test_huffman_throughput(benchmark, save_json_record):
    """Huffman encode + decode of a 40-symbol skewed alphabet."""
    rng = _rng()
    symbols = np.minimum(rng.geometric(0.15, size=N_SYMBOLS) - 1, 39).astype(np.int64)

    def roundtrip():
        return huffman_decode(huffman_encode(symbols))

    out = benchmark(roundtrip)
    assert out == symbols.tolist()
    _, fast_s = _time_once(roundtrip)
    _, scalar_s = _time_once(
        lambda: huffman_decode_scalar(huffman_encode_scalar(symbols))
    )
    blob = huffman_encode(symbols)
    assert huffman_encode_scalar(symbols) == blob
    # The turbo gate: table-driven decode must at least double the fast
    # decoder's throughput on this stream, byte-identically.
    _, fast_decode_s, turbo_out, turbo_decode_s = _compare_decoders(
        huffman_decode, huffman_decode_turbo, blob
    )
    assert turbo_out == symbols.tolist()
    turbo_speedup = fast_decode_s / turbo_decode_s
    assert turbo_speedup >= TURBO_HUFFMAN_MIN_SPEEDUP, (
        f"turbo Huffman decode only {turbo_speedup:.2f}x over fast "
        f"({turbo_decode_s * 1e3:.1f} ms vs {fast_decode_s * 1e3:.1f} ms)"
    )
    save_json_record(
        "coding_engine_huffman",
        {
            "symbols": N_SYMBOLS,
            "fast_seconds": fast_s,
            "scalar_seconds": scalar_s,
            "speedup": scalar_s / fast_s if fast_s else float("inf"),
            "fast_msymbols_per_s": N_SYMBOLS / fast_s / 1e6,
            "fast_decode_seconds": fast_decode_s,
            "turbo_decode_seconds": turbo_decode_s,
            "turbo_decode_speedup": turbo_speedup,
            "turbo_decode_msymbols_per_s": N_SYMBOLS / turbo_decode_s / 1e6,
        },
    )


def test_rle_throughput(benchmark, save_json_record):
    """Array RLE encode + decode of a 70%-zeros source."""
    rng = _rng()
    values = rng.integers(-40, 40, size=N_SYMBOLS)
    values[rng.uniform(size=N_SYMBOLS) < 0.7] = 0

    def roundtrip():
        runs, literals = rle_encode_arrays(values)
        return rle_decode_arrays(runs, literals)

    out = benchmark(roundtrip)
    assert np.array_equal(out, values)
    _, fast_s = _time_once(roundtrip)
    _, scalar_s = _time_once(lambda: rle_decode(rle_encode(values)))
    _record(save_json_record, "coding_engine_rle", N_SYMBOLS, fast_s, scalar_s)
