"""Random-access retrieval benchmark of the persistent archive container.

Not a paper table: this is the perf claim behind :mod:`repro.archive` —
retrieving one frame from an archive must be much cheaper than decoding the
whole archive, because the reader seeks straight to the frame's payload and
never touches the rest.  On a 32-frame archive single-frame retrieval must
beat the full-archive decode by at least 5x (in practice it tracks the
frame count, ~30x), and the byte counters prove the access pattern: one
retrieval reads exactly one payload.  The measured numbers are written to
``benchmarks/reports/bench_archive.json`` so the retrieval trajectory is
diffable across PRs, like ``bench_accelerator`` and ``bench_coding_engine``.
"""

import time

import numpy as np
import pytest

from repro.archive import ArchiveReader, ArchiveWriter
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

FRAME_COUNT = 32
FRAME_SIZE = 64
MIN_SPEEDUP = 5.0
TARGET_FRAME = 17


def _min_seconds(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best


def test_random_access_beats_full_decode(tmp_path, save_json_record):
    """Single-frame retrieval >= 5x faster than decoding all 32 frames."""
    frames = ct_slice_series(count=FRAME_COUNT, size=FRAME_SIZE, seed=20260728)
    path = tmp_path / "bench.dwta"
    began = time.perf_counter()
    with ArchiveWriter.create(path, codec="s-transform", scales=4) as writer:
        writer.add_frames(frames)
    pack_seconds = time.perf_counter() - began

    with ArchiveReader(path) as reader:
        # Correctness first: random access equals full decode, bit for bit.
        full, _ = reader.decode_all()
        single = reader.decode(TARGET_FRAME)
        assert np.array_equal(single, full[TARGET_FRAME])
        assert np.array_equal(single, frames[TARGET_FRAME])

        full_seconds = _min_seconds(lambda: reader.decode_all(), repeats=3)

        reader.bytes_read = 0
        single_seconds = _min_seconds(lambda: reader.decode(TARGET_FRAME), repeats=5)
        bytes_per_access = reader.bytes_read / 5
        total_payload = reader.compressed_bytes
        # The access-pattern proof: one retrieval reads exactly one payload.
        assert bytes_per_access == reader.frames[TARGET_FRAME].length

        speedup = full_seconds / single_seconds
        assert speedup >= MIN_SPEEDUP, (
            f"random access only {speedup:.1f}x over full decode "
            f"({single_seconds * 1e3:.2f} ms vs {full_seconds * 1e3:.1f} ms)"
        )

        save_json_record(
            "bench_archive",
            {
                "frame_count": FRAME_COUNT,
                "frame_size": FRAME_SIZE,
                "archive_bytes": path.stat().st_size,
                "payload_bytes": total_payload,
                "pack_seconds": pack_seconds,
                "full_decode_seconds": full_seconds,
                "single_decode_seconds": single_seconds,
                "speedup": speedup,
                "bytes_read_per_access": bytes_per_access,
                "payload_fraction_touched": bytes_per_access / total_payload,
            },
        )
