"""Random-access retrieval benchmark of the persistent archive container.

Not a paper table: this is the perf claim behind :mod:`repro.archive` —
retrieving one frame from an archive must be much cheaper than decoding the
whole archive, because the reader seeks straight to the frame's payload and
never touches the rest.  On a 32-frame archive single-frame retrieval must
beat the full-archive decode by at least 5x (in practice it tracks the
frame count, ~30x), and the byte counters prove the access pattern: one
retrieval reads exactly one payload.  A second test gates the zero-copy
read path: serving payloads as mmap views must beat the seek+read+copy
path by at least 1.2x on the raw payload reads, with identical
``bytes_read`` accounting.  The measured numbers are written to
``benchmarks/reports/bench_archive.json`` /
``bench_archive_zero_copy.json`` so the retrieval trajectory is diffable
across PRs, like ``bench_accelerator`` and ``bench_coding_engine``.
"""

import time

import numpy as np
import pytest

from repro.archive import ArchiveReader, ArchiveWriter
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

FRAME_COUNT = 32
FRAME_SIZE = 64
MIN_SPEEDUP = 5.0
#: Floor on the zero-copy payload-read path's advantage over seek+read.
MIN_ZERO_COPY_SPEEDUP = 1.2
TARGET_FRAME = 17


def _min_seconds(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best


def test_random_access_beats_full_decode(tmp_path, save_json_record):
    """Single-frame retrieval >= 5x faster than decoding all 32 frames."""
    frames = ct_slice_series(count=FRAME_COUNT, size=FRAME_SIZE, seed=20260728)
    path = tmp_path / "bench.dwta"
    began = time.perf_counter()
    with ArchiveWriter.create(path, codec="s-transform", scales=4) as writer:
        writer.add_frames(frames)
    pack_seconds = time.perf_counter() - began

    with ArchiveReader(path) as reader:
        # Correctness first: random access equals full decode, bit for bit.
        full, _ = reader.decode_all()
        single = reader.decode(TARGET_FRAME)
        assert np.array_equal(single, full[TARGET_FRAME])
        assert np.array_equal(single, frames[TARGET_FRAME])

        full_seconds = _min_seconds(lambda: reader.decode_all(), repeats=3)

        reader.bytes_read = 0
        single_seconds = _min_seconds(lambda: reader.decode(TARGET_FRAME), repeats=5)
        bytes_per_access = reader.bytes_read / 5
        total_payload = reader.compressed_bytes
        # The access-pattern proof: one retrieval reads exactly one payload.
        assert bytes_per_access == reader.frames[TARGET_FRAME].length

        speedup = full_seconds / single_seconds
        assert speedup >= MIN_SPEEDUP, (
            f"random access only {speedup:.1f}x over full decode "
            f"({single_seconds * 1e3:.2f} ms vs {full_seconds * 1e3:.1f} ms)"
        )

        save_json_record(
            "bench_archive",
            {
                "frame_count": FRAME_COUNT,
                "frame_size": FRAME_SIZE,
                "payload_layout": reader.frames[TARGET_FRAME].layout,
                "archive_bytes": path.stat().st_size,
                "payload_bytes": total_payload,
                "pack_seconds": pack_seconds,
                "full_decode_seconds": full_seconds,
                "single_decode_seconds": single_seconds,
                "speedup": speedup,
                "bytes_read_per_access": bytes_per_access,
                "payload_fraction_touched": bytes_per_access / total_payload,
            },
        )


def test_zero_copy_beats_copying_reads(tmp_path, save_json_record):
    """mmap payload views >= 1.2x over seek+read, identical accounting."""
    frames = ct_slice_series(count=FRAME_COUNT, size=FRAME_SIZE, seed=20260728)
    path = tmp_path / "bench_zero_copy.dwta"
    with ArchiveWriter.create(path, codec="s-transform", scales=4) as writer:
        writer.add_frames(frames)

    # Checksums off so the comparison isolates the read paths themselves
    # (CRC work is identical on both and would only dilute the ratio).
    with ArchiveReader(path, verify_checksums=False) as zc, ArchiveReader(
        path, verify_checksums=False, zero_copy=False
    ) as copying:
        # Correctness and accounting first: identical frames, identical
        # bytes_read, and the counters prove which path served each read.
        for index in (0, TARGET_FRAME, FRAME_COUNT - 1):
            assert np.array_equal(zc.decode(index), copying.decode(index))
        assert zc.bytes_read == copying.bytes_read
        assert zc.zero_copy_reads > 0
        assert copying.zero_copy_reads == 0

        def read_all_views():
            for entry in zc.frames:
                zc.read_payload_view(entry)

        def read_all_copies():
            for entry in copying.frames:
                copying.read_payload(entry)

        read_all_views()  # warm the mapping before timing
        read_all_copies()  # ... and the page cache, keeping counters even
        view_seconds = _min_seconds(read_all_views, repeats=30)
        copy_seconds = _min_seconds(read_all_copies, repeats=30)
        read_speedup = copy_seconds / view_seconds
        assert read_speedup >= MIN_ZERO_COPY_SPEEDUP, (
            f"zero-copy payload reads only {read_speedup:.2f}x over copying "
            f"({view_seconds * 1e6:.0f} us vs {copy_seconds * 1e6:.0f} us "
            f"per {FRAME_COUNT}-frame sweep)"
        )

        # End-to-end random-access decode through each path (recorded, not
        # gated: entropy decoding dominates, so the read path is a small
        # slice of this number).
        zc_decode_seconds = _min_seconds(lambda: zc.decode(TARGET_FRAME), repeats=5)
        copy_decode_seconds = _min_seconds(
            lambda: copying.decode(TARGET_FRAME), repeats=5
        )
        assert zc.bytes_read == copying.bytes_read

    save_json_record(
        "bench_archive_zero_copy",
        {
            "frame_count": FRAME_COUNT,
            "frame_size": FRAME_SIZE,
            "payload_read_view_seconds": view_seconds,
            "payload_read_copy_seconds": copy_seconds,
            "payload_read_speedup": read_speedup,
            "decode_zero_copy_seconds": zc_decode_seconds,
            "decode_copy_seconds": copy_decode_seconds,
            "decode_speedup": copy_decode_seconds / zc_decode_seconds,
        },
    )
