"""Benchmark lossless — §3's bit-exact round trip with the 32-bit datapath."""

import numpy as np
from bench_util import assert_reproduced

from repro.analysis.experiments import lossless
from repro.filters.catalog import get_bank
from repro.fxdwt.transform import FixedPointDWT
from repro.imaging.phantoms import random_image, shepp_logan


def test_lossless_roundtrip_ct_phantom(benchmark, save_report):
    """Fixed-point forward + inverse of a 256x256 CT phantom (6 scales, F2)."""
    engine = FixedPointDWT(get_bank("F2"), 6)
    image = shepp_logan(256)

    reconstructed, _ = benchmark(engine.roundtrip, image)
    assert np.array_equal(reconstructed, image)

    result = lossless.run()
    save_report(result)
    assert_reproduced(result)


def test_lossless_roundtrip_random_image(benchmark):
    """The paper's own validation input: a random 12-bit image."""
    engine = FixedPointDWT(get_bank("F2"), 6)
    image = random_image(256, seed=0)

    reconstructed, _ = benchmark(engine.roundtrip, image)
    assert np.array_equal(reconstructed, image)


def test_lossless_roundtrip_all_banks(benchmark):
    """All six Table I banks on one 64x64 phantom (4 scales each)."""
    image = shepp_logan(64)
    engines = [FixedPointDWT(get_bank(name), 4) for name in ("F1", "F2", "F3", "F4", "F5", "F6")]

    def roundtrip_all():
        return [engine.roundtrip(image)[0] for engine in engines]

    reconstructions = benchmark(roundtrip_all)
    assert all(np.array_equal(rec, image) for rec in reconstructions)
