"""Shared CPU-count gating for throughput benchmarks.

Every scaling benchmark in this directory has the same shape: a
correctness half that always runs (byte identity, invariance) and a
throughput half that only makes physical sense when the host actually has
CPUs to scale onto.  On narrow hosts (a single-core CI container) a pool
can only add overhead, so the speedup assertion is *waived* — and the
waiver, with the measured numbers, is recorded in the benchmark's JSON
report so a reader of the trajectory knows the gate was not silently
skipped.

This module is that logic, shared: probe the usable CPU count, decide
enforce-vs-waive against a minimum, and render the uniform record string.
The probe deliberately does **not** go through
:func:`repro.coding.executor.default_workers` — ``REPRO_WORKERS`` pins
pool widths for CI legs, and an environment variable must not be able to
waive (or force) a physical throughput gate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["usable_cpu_count", "cpu_throughput_gate", "ThroughputGate"]


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ThroughputGate:
    """One benchmark's enforce-or-waive decision, plus its report string."""

    usable_cpus: int
    min_cpus: int
    #: Why a waiver is physically justified on a narrow host, e.g.
    #: "a process pool cannot speed up CPU-bound work without CPUs".
    waiver: str

    @property
    def active(self) -> bool:
        return self.usable_cpus >= self.min_cpus

    @property
    def record(self) -> str:
        """The uniform ``throughput_gate`` value for the JSON report."""
        if self.active:
            return "enforced"
        return (
            f"waived: host exposes {self.usable_cpus} usable CPU(s); "
            f"{self.waiver}"
        )


def cpu_throughput_gate(waiver: str, min_cpus: int = 4) -> ThroughputGate:
    """The gate for one benchmark run on this host."""
    return ThroughputGate(usable_cpu_count(), min_cpus, waiver)
