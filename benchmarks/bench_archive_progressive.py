"""Progressive retrieval benchmark: strict-prefix previews on a v2 archive.

The perf claim behind the subband-major payload layout: a client that wants
a coarse preview of a frame must not pay for the frame.  On a 512x512,
4-scale frame stored subband-major, ``read_preview(at_scale=2)`` is gated
two ways —

- **bytes**: the preview reads at most 35% of the payload (in practice
  ~10%: the coarse sections are a small share of a detail-heavy payload),
  and the reader's ``bytes_read`` counter must advance by *exactly* the
  section table's priced prefix, proving the strict-prefix access pattern;
- **time**: the preview decode beats the full decode by at least 3x (less
  entropy decoding and a 4x-smaller synthesis).

Correctness is asserted before any timing: the subband-major full decode is
bit-exact against the same frames stored frame-major (layout is a wire
concern, never a pixel concern), and the scale-0 "preview" is the image.
The measured numbers land in
``benchmarks/reports/bench_archive_progressive.json`` so the progressive
trajectory is diffable across PRs, like every other bench in this suite.
"""

import time

import numpy as np
import pytest

from repro.archive import (
    ArchiveReader,
    ArchiveWriter,
    LAYOUT_FRAME_MAJOR,
    LAYOUT_SUBBAND_MAJOR,
    prefix_length,
)
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

FRAME_SIZE = 512
SCALES = 4
PREVIEW_SCALE = 2
#: Ceiling on the payload fraction a scale-2 preview may read.
MAX_PREFIX_FRACTION = 0.35
#: Floor on the preview decode's speedup over the full decode.
MIN_PREVIEW_SPEEDUP = 3.0


def _min_seconds(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best


def test_preview_reads_a_prefix_and_beats_full_decode(tmp_path, save_json_record):
    frame = ct_slice_series(count=1, size=FRAME_SIZE, seed=20260808)[0]
    subband = tmp_path / "subband.dwta"
    frame_major = tmp_path / "frame_major.dwta"
    with ArchiveWriter.create(
        subband, codec="s-transform", scales=SCALES, layout=LAYOUT_SUBBAND_MAJOR
    ) as writer:
        writer.append_batch([frame], names=["slice"])
    with ArchiveWriter.create(
        frame_major, codec="s-transform", scales=SCALES, layout=LAYOUT_FRAME_MAJOR
    ) as writer:
        writer.append_batch([frame], names=["slice"])

    with ArchiveReader(subband) as reader, ArchiveReader(frame_major) as legacy:
        # Correctness before timing: the layout changes bytes, never pixels.
        assert np.array_equal(reader.decode("slice"), frame)
        assert np.array_equal(reader.decode("slice"), legacy.decode("slice"))
        assert np.array_equal(reader.read_preview("slice", 0), frame)

        entry = reader.find("slice")
        payload_bytes = entry.length
        priced_prefix = prefix_length(reader.read_payload(entry), PREVIEW_SCALE)

        # The access-pattern proof: one preview reads exactly the prefix.
        reader.bytes_read = 0
        preview = reader.read_preview(entry, PREVIEW_SCALE)
        bytes_per_preview = reader.bytes_read
        assert bytes_per_preview == priced_prefix
        side = FRAME_SIZE >> PREVIEW_SCALE
        assert preview.shape == (side, side)

        prefix_fraction = bytes_per_preview / payload_bytes
        assert prefix_fraction <= MAX_PREFIX_FRACTION, (
            f"scale-{PREVIEW_SCALE} preview reads {prefix_fraction:.1%} of the "
            f"payload ({bytes_per_preview} of {payload_bytes} bytes); the gate "
            f"is {MAX_PREFIX_FRACTION:.0%}"
        )

        full_seconds = _min_seconds(lambda: reader.decode(entry), repeats=5)
        preview_seconds = _min_seconds(
            lambda: reader.read_preview(entry, PREVIEW_SCALE), repeats=5
        )
        speedup = full_seconds / preview_seconds
        assert speedup >= MIN_PREVIEW_SPEEDUP, (
            f"scale-{PREVIEW_SCALE} preview only {speedup:.1f}x over the full "
            f"decode ({preview_seconds * 1e3:.2f} ms vs "
            f"{full_seconds * 1e3:.1f} ms)"
        )

        # Recorded, not gated: the whole preview ladder's byte pricing.
        payload = reader.read_payload(entry)
        ladder = {
            str(k): prefix_length(payload, k) / payload_bytes
            for k in range(SCALES + 1)
        }

    save_json_record(
        "bench_archive_progressive",
        {
            "frame_size": FRAME_SIZE,
            "scales": SCALES,
            "preview_scale": PREVIEW_SCALE,
            "payload_layout": LAYOUT_SUBBAND_MAJOR,
            "payload_bytes": payload_bytes,
            "preview_bytes_read": bytes_per_preview,
            "prefix_fraction": prefix_fraction,
            "prefix_fraction_by_scale": ladder,
            "full_decode_seconds": full_seconds,
            "preview_decode_seconds": preview_seconds,
            "preview_speedup": speedup,
        },
    )
