"""Socket-pool scaling benchmark: distributed execution vs fork vs serial.

Not a paper table: this is the perf claim behind
:mod:`repro.coding.netexec` — fanning a frame batch out to socket worker
*processes* must (a) change nothing about the bytes (the same shard
contract the fork pool proves in ``bench_pipeline_parallel``) and (b)
raise throughput on multi-core hosts, where the workers genuinely run on
separate CPUs.  On a 32-frame 128x128 CT batch the benchmark measures
end-to-end compress throughput serially, over a 4-process fork pool, and
over 4 local ``python -m repro.netexec`` worker processes behind one
persistent :class:`~repro.coding.netexec.WorkerPool`, proves byte
identity across all three transports, and writes the numbers to
``benchmarks/reports/bench_netexec.json`` so the trajectory is diffable
across PRs.

As in the sibling scaling benchmarks, the >= 1.5x speedup gate at 4
socket workers is only enforced when the host exposes >= 4 usable CPUs;
narrower hosts (e.g. a single-core CI container, where 4 worker processes
just take turns) still run the correctness half and the report records
why the throughput gate was waived.
"""

import time

import pytest

from _gates import cpu_throughput_gate
from repro.coding import compress_frames
from repro.coding.netexec import SocketPoolExecutor, WorkerPool, local_worker_pool
from repro.coding.spec import CodecSpec
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

FRAME_COUNT = 32
FRAME_SIZE = 128
SOCKET_WORKERS = 4
REPEATS = 3
MIN_SPEEDUP_AT_4 = 1.5
SPEC = CodecSpec(codec="s-transform", scales=4)


def _best(run, repeats=REPEATS):
    """(best elapsed seconds, last batch) over ``repeats`` runs."""
    best, batch = float("inf"), None
    for _ in range(repeats):
        began = time.perf_counter()
        batch = run()
        best = min(best, time.perf_counter() - began)
    return best, batch


def test_socket_pool_scaling(save_json_record):
    frames = ct_slice_series(count=FRAME_COUNT, size=FRAME_SIZE, seed=20260808)
    gate = cpu_throughput_gate(
        "4 worker processes on fewer CPUs just take turns; socket framing "
        "only adds overhead"
    )

    serial_s, serial = _best(lambda: compress_frames(frames, spec=SPEC))
    fork_s, fork = _best(
        lambda: compress_frames(frames, spec=SPEC, workers=SOCKET_WORKERS)
    )

    nodes = [f"bench{i}" for i in range(SOCKET_WORKERS)]
    with local_worker_pool(SOCKET_WORKERS, nodes=nodes) as addresses:
        # One persistent pool across repeats: connections and worker
        # processes stay warm, exactly how a deployment would run it.
        with WorkerPool(addresses) as pool:
            executor = SocketPoolExecutor(pool)
            socket_s, socketed = _best(lambda: executor.compress(frames, SPEC))
            failures = pool.worker_failures
            reassignments = pool.reassignments

    # Correctness half (always enforced): all three transports produce
    # byte-identical streams, and nothing failed over along the way.
    for serial_stream, fork_stream, socket_stream in zip(
        serial.streams, fork.streams, socketed.streams
    ):
        assert serial_stream.chunks == fork_stream.chunks, "fork changed bytes"
        assert serial_stream.chunks == socket_stream.chunks, "sockets changed bytes"
    assert failures == 0 and reassignments == 0

    pixels = FRAME_COUNT * FRAME_SIZE * FRAME_SIZE
    speedup_socket = serial_s / socket_s
    record = {
        "frame_count": FRAME_COUNT,
        "frame_size": FRAME_SIZE,
        "socket_workers": SOCKET_WORKERS,
        "usable_cpus": gate.usable_cpus,
        "byte_identical": True,
        "seconds": {
            "serial": serial_s,
            "fork_4": fork_s,
            "socket_4": socket_s,
        },
        "mpixels_per_s": {
            "serial": pixels / serial_s / 1e6,
            "fork_4": pixels / fork_s / 1e6,
            "socket_4": pixels / socket_s / 1e6,
        },
        "speedup_vs_serial": {
            "fork_4": serial_s / fork_s,
            "socket_4": speedup_socket,
        },
        "worker_failures": failures,
        "reassignments": reassignments,
        "min_speedup_at_4": MIN_SPEEDUP_AT_4,
        "throughput_gate": gate.record,
    }
    save_json_record("bench_netexec", record)

    if gate.active:
        assert speedup_socket >= MIN_SPEEDUP_AT_4, (
            f"4-socket-worker speedup only {speedup_socket:.2f}x "
            f"({serial_s * 1e3:.0f} ms serial vs {socket_s * 1e3:.0f} ms distributed)"
        )
