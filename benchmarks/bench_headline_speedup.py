"""Benchmark headline — §5 figures: 3.5 images/s, 154x speedup, 11.2 mm², 99.04 %."""

from bench_util import assert_reproduced

from repro.analysis.experiments import headline
from repro.arch.config import paper_configuration
from repro.arch.report import proposed_area_breakdown
from repro.perf.software_baseline import measure_reference_dwt
from repro.perf.speedup import speedup_report
from repro.perf.throughput import ThroughputModel, clock_sweep, image_size_sweep


def test_headline_figures(benchmark, save_report):
    """Compute every §5 headline figure from the analytic models."""

    def compute():
        throughput = ThroughputModel.paper()
        return (
            throughput.images_per_second,
            speedup_report().speedup,
            proposed_area_breakdown(paper_configuration()).total_mm2,
            throughput.utilisation,
        )

    images_per_second, speedup, area, utilisation = benchmark(compute)
    assert abs(images_per_second - 3.5) / 3.5 < 0.1
    assert abs(speedup - 154.0) / 154.0 < 0.05
    assert abs(area - 11.2) / 11.2 < 0.10
    assert abs(100 * utilisation - 99.04) < 0.05

    result = headline.run()
    save_report(result)
    assert_reproduced(result)


def test_headline_design_space_sweeps(benchmark):
    """Clock and image-size sweeps around the paper's operating point."""

    def sweeps():
        return (
            clock_sweep([20.0, 25.0, 33.0, 40.0]),
            image_size_sweep([128, 256, 512, 1024]),
        )

    clocks, sizes = benchmark(sweeps)
    assert clocks[40.0].images_per_second > clocks[20.0].images_per_second
    assert sizes[1024].transform_seconds > sizes[512].transform_seconds


def test_headline_reference_software_on_this_machine(benchmark):
    """Wall-clock of our NumPy FDWT (context only, never mixed with paper numbers)."""
    run = benchmark(measure_reference_dwt, 256, 6, None, 1, 0)
    assert run.seconds > 0
