"""Tests for repro.fixedpoint.rounding (the §4.3 rule and helpers)."""

import numpy as np
import pytest

from repro.fixedpoint.rounding import (
    round_half_up_shift,
    round_half_up_to_int,
    truncate_shift,
    wrap_twos_complement,
)


class TestRoundHalfUpShift:
    def test_no_shift_is_identity(self):
        assert round_half_up_shift(17, 0) == 17

    def test_rounds_down_below_half(self):
        # 17 / 4 = 4.25 -> 4
        assert round_half_up_shift(17, 2) == 4

    def test_rounds_up_at_half(self):
        # 18 / 4 = 4.5 -> 5 (MSB of dropped bits is 1)
        assert round_half_up_shift(18, 2) == 5

    def test_rounds_up_above_half(self):
        assert round_half_up_shift(19, 2) == 5

    def test_negative_values_round_towards_plus_infinity_on_ties(self):
        # -18 / 4 = -4.5 -> -4
        assert round_half_up_shift(-18, 2) == -4
        # -19 / 4 = -4.75 -> -5
        assert round_half_up_shift(-19, 2) == -5

    def test_matches_floor_of_half_added(self):
        for value in range(-64, 65):
            for shift in (1, 2, 3, 5):
                expected = int(np.floor(value / 2 ** shift + 0.5))
                assert round_half_up_shift(value, shift) == expected

    def test_numpy_array_input(self):
        values = np.array([17, 18, -18, -19], dtype=np.int64)
        out = round_half_up_shift(values, 2)
        assert list(out) == [4, 5, -4, -5]

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            round_half_up_shift(1, -1)

    @pytest.mark.parametrize("shift", [1, 4, 32, 50])
    def test_array_matches_python_ints_at_int64_boundary(self, shift):
        # The array path must not wrap when value + half would exceed int64:
        # it has to agree with the exact arbitrary-precision scalar path
        # everywhere, including the extreme representable values.
        edges = np.array(
            [
                2**63 - 1,
                2**63 - 2,
                2**63 - (1 << (shift - 1)),
                -(2**63),
                -(2**63) + 1,
                0,
                -1,
                (1 << shift) - 1,
            ],
            dtype=np.int64,
        )
        expected = [round_half_up_shift(int(v), shift) for v in edges]
        assert round_half_up_shift(edges, shift).tolist() == expected

    def test_array_large_shift_falls_back_exactly(self):
        edges = np.array([2**63 - 1, -(2**63), 123], dtype=np.int64)
        expected = [round_half_up_shift(int(v), 63) for v in edges]
        assert round_half_up_shift(edges, 63).tolist() == expected


class TestWrapWideWords:
    @pytest.mark.parametrize("bits", [32, 62, 63, 64])
    def test_array_matches_python_ints(self, bits):
        # The array branch must cover the widths whose Python-int modulus
        # exceeds int64 (63: modulus 2**63; 64: identity on int64 storage).
        edges = np.array(
            [2**63 - 1, 2**62, -(2**63), -(2**62) - 1, 0, -1, 1], dtype=np.int64
        )
        expected = [wrap_twos_complement(int(v), bits) for v in edges]
        assert wrap_twos_complement(edges, bits).tolist() == expected


class TestTruncateShift:
    def test_truncate_is_floor_division(self):
        assert truncate_shift(19, 2) == 4
        assert truncate_shift(-19, 2) == -5  # arithmetic shift: floor

    def test_no_shift_is_identity(self):
        assert truncate_shift(-7, 0) == -7

    def test_array_input(self):
        out = truncate_shift(np.array([19, -19], dtype=np.int64), 2)
        assert list(out) == [4, -5]

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            truncate_shift(1, -2)

    def test_differs_from_rounding_on_large_remainder(self):
        assert truncate_shift(19, 2) != round_half_up_shift(19, 2)


class TestRoundHalfUpToInt:
    def test_scalar(self):
        assert round_half_up_to_int(2.5) == 3
        assert round_half_up_to_int(-2.5) == -2
        assert round_half_up_to_int(2.49) == 2

    def test_array(self):
        out = round_half_up_to_int(np.array([0.5, 1.4, -0.5]))
        assert list(out) == [1, 1, 0]


class TestWrapTwosComplement:
    def test_in_range_unchanged(self):
        assert wrap_twos_complement(100, 8) == 100
        assert wrap_twos_complement(-100, 8) == -100

    def test_wraps_overflow(self):
        assert wrap_twos_complement(128, 8) == -128
        assert wrap_twos_complement(255, 8) == -1
        assert wrap_twos_complement(256, 8) == 0

    def test_wraps_underflow(self):
        assert wrap_twos_complement(-129, 8) == 127

    def test_array(self):
        out = wrap_twos_complement(np.array([127, 128, -129], dtype=np.int64), 8)
        assert list(out) == [127, -128, 127]

    def test_word_length_must_be_positive(self):
        with pytest.raises(ValueError):
            wrap_twos_complement(1, 0)

    def test_64_bit_wrap_matches_python_ints(self):
        big = (1 << 63) + 5
        assert wrap_twos_complement(big, 64) == big - (1 << 64)
