"""Tests for repro.fixedpoint.wordlength (Table II and the format plan)."""

import pytest

from repro.filters.catalog import get_bank
from repro.fixedpoint.errors import DynamicRangeError
from repro.fixedpoint.wordlength import (
    PAPER_COEFFICIENT_FORMAT,
    PAPER_INPUT_BITS,
    PAPER_WORD_LENGTH,
    coefficient_format_for,
    integer_bits_schedule,
    minimum_integer_bits,
    plan_word_lengths,
)

#: Table II of the paper, used as the reference for the derivation.
PAPER_TABLE_II = {
    "F1": [15, 17, 19, 21, 23, 25],
    "F2": [16, 17, 19, 21, 23, 25],
    "F3": [15, 17, 19, 21, 23, 25],
    "F4": [16, 18, 20, 22, 24, 27],
    "F5": [15, 16, 17, 18, 19, 20],
    "F6": [16, 19, 21, 24, 26, 29],
}


class TestPaperConstants:
    def test_input_bits_is_13(self):
        assert PAPER_INPUT_BITS == 13

    def test_word_length_is_32(self):
        assert PAPER_WORD_LENGTH == 32

    def test_coefficient_format_has_two_integer_bits(self):
        # The largest Table I coefficient is 1.060660, so sign + 1 integer bit.
        assert PAPER_COEFFICIENT_FORMAT.integer_bits == 2
        assert PAPER_COEFFICIENT_FORMAT.word_length == 32


class TestTableII:
    @pytest.mark.parametrize("name,expected", sorted(PAPER_TABLE_II.items()))
    def test_integer_bits_schedule_matches_paper(self, name, expected):
        bank = get_bank(name)
        ours = list(integer_bits_schedule(bank, 6).values())
        assert ours == expected

    def test_minimum_integer_bits_monotone_in_scale(self, any_bank):
        bits = [minimum_integer_bits(any_bank, s) for s in range(1, 7)]
        assert bits == sorted(bits)

    def test_scale_must_be_positive(self, bank_f2):
        with pytest.raises(ValueError):
            minimum_integer_bits(bank_f2, 0)

    def test_more_input_bits_need_more_integer_bits(self, bank_f2):
        assert minimum_integer_bits(bank_f2, 1, input_bits=16) == (
            minimum_integer_bits(bank_f2, 1, input_bits=13) + 3
        )


class TestCoefficientFormat:
    def test_f2_coefficients_fit_two_integer_bits(self, bank_f2):
        fmt = coefficient_format_for(bank_f2)
        assert fmt.integer_bits == 2

    def test_all_banks_match_paper_format(self, any_bank):
        assert coefficient_format_for(any_bank) == PAPER_COEFFICIENT_FORMAT

    def test_too_short_word_rejected(self, bank_f2):
        # A 2-bit word leaves no room beyond the 2 integer bits the
        # coefficients need, so no valid format exists.
        with pytest.raises(DynamicRangeError):
            coefficient_format_for(bank_f2, word_length=2)


class TestWordLengthPlan:
    def test_paper_plan_structure(self, bank_f2):
        plan = plan_word_lengths(bank_f2, 6)
        assert plan.scales == 6
        assert plan.input_format.word_length == 13
        assert plan.coefficient_format == PAPER_COEFFICIENT_FORMAT
        assert plan.accumulator_bits == 64
        assert plan.integer_bits() == PAPER_TABLE_II["F2"]

    def test_format_for_scale_zero_is_input(self, bank_f2):
        plan = plan_word_lengths(bank_f2, 3)
        assert plan.format_for_scale(0) == plan.input_format

    def test_format_for_scale_out_of_range(self, bank_f2):
        plan = plan_word_lengths(bank_f2, 3)
        with pytest.raises(KeyError):
            plan.format_for_scale(4)

    def test_word_too_short_for_deep_scales_rejected(self):
        bank = get_bank("F6")  # needs 29 integer bits at scale 6
        with pytest.raises(DynamicRangeError):
            plan_word_lengths(bank, 6, word_length=29)

    def test_fractional_bits_shrink_with_scale(self, bank_f2):
        plan = plan_word_lengths(bank_f2, 6)
        fracs = [plan.format_for_scale(s).fractional_bits for s in range(1, 7)]
        assert fracs == sorted(fracs, reverse=True)
