"""Tests for repro.fixedpoint.fxarray (stored-integer arrays)."""

import numpy as np
import pytest

from repro.fixedpoint.errors import OverflowPolicyError
from repro.fixedpoint.fxarray import FxArray, align_stored, product_format, quantize_real
from repro.fixedpoint.qformat import QFormat


class TestQuantizeReal:
    def test_integer_format_round_trip(self):
        fmt = QFormat(13, 13)
        fx = quantize_real(np.array([0.0, 100.0, 4095.0]), fmt)
        assert list(fx.stored) == [0, 100, 4095]
        assert np.allclose(fx.to_real(), [0.0, 100.0, 4095.0])

    def test_fractional_quantisation_error_bounded(self):
        fmt = QFormat(32, 16)
        values = np.linspace(-100, 100, 257)
        fx = quantize_real(values, fmt)
        assert fx.quantization_error(values) <= fmt.resolution / 2 + 1e-12

    def test_raise_policy_detects_overflow(self):
        fmt = QFormat(8, 8)
        with pytest.raises(OverflowPolicyError):
            quantize_real(np.array([1000.0]), fmt)

    def test_saturate_policy_clips(self):
        fmt = QFormat(8, 8)
        fx = quantize_real(np.array([1000.0, -1000.0]), fmt, policy="saturate")
        assert list(fx.stored) == [127, -128]

    def test_wrap_policy_wraps(self):
        fmt = QFormat(8, 8)
        fx = quantize_real(np.array([128.0]), fmt, policy="wrap")
        assert list(fx.stored) == [-128]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            quantize_real(np.array([1.0]), QFormat(8, 8), policy="ignore")


class TestProductFormat:
    def test_fraction_bits_add(self):
        a = QFormat(32, 16)  # 16 fractional
        b = QFormat(32, 3)   # 29 fractional
        prod = product_format(a, b, 64)
        assert prod.fractional_bits == 45
        assert prod.word_length == 64

    def test_overflowing_fraction_rejected(self):
        a = QFormat(40, 1)
        b = QFormat(40, 1)
        with pytest.raises(ValueError):
            product_format(a, b, 64)


class TestAlignStored:
    def test_narrowing_with_rounding(self):
        src = QFormat(64, 32)  # 32 fractional
        dst = QFormat(32, 16)  # 16 fractional
        stored = (3 << 32) + (1 << 31)  # 3.5 in the source format
        aligned = align_stored(stored, src, dst)
        assert aligned == (3 << 16) + (1 << 15) + 0  # still 3.5, no precision lost
        # Dropping below the target resolution rounds half-up.
        stored = (1 << 15)  # 2^-17 in source units -> rounds to 1 LSB? no: 0.5 LSB exactly
        assert align_stored(stored, src, dst, rounding="half_up") == 1
        assert align_stored(stored, src, dst, rounding="truncate") == 0

    def test_widening_rejected(self):
        src = QFormat(32, 16)
        dst = QFormat(64, 16)
        with pytest.raises(ValueError):
            align_stored(1, src, dst)

    def test_unknown_rounding_rejected(self):
        fmt = QFormat(32, 16)
        with pytest.raises(ValueError):
            align_stored(1, fmt, fmt, rounding="stochastic")


class TestFxArray:
    def test_fits_and_check_range(self):
        fmt = QFormat(8, 8)
        fx = FxArray(np.array([127, -128]), fmt)
        assert fx.fits()
        fx.check_range("raise")

    def test_check_range_raise(self):
        fx = FxArray(np.array([200]), QFormat(8, 8))
        with pytest.raises(OverflowPolicyError):
            fx.check_range("raise")

    def test_check_range_saturate_in_place(self):
        fx = FxArray(np.array([200, -200]), QFormat(8, 8))
        fx.check_range("saturate")
        assert list(fx.stored) == [127, -128]

    def test_check_range_wrap(self):
        fx = FxArray(np.array([130]), QFormat(8, 8))
        fx.check_range("wrap")
        assert list(fx.stored) == [-126]

    def test_realign_changes_format(self):
        src = QFormat(32, 16)
        dst = QFormat(32, 20)
        fx = FxArray(np.array([1 << 16]), src)  # value 1.0
        out = fx.realign(dst)
        assert out.fmt == dst
        assert out.to_real()[0] == pytest.approx(1.0)

    def test_copy_is_independent(self):
        fx = FxArray(np.array([1, 2, 3]), QFormat(8, 8))
        other = fx.copy()
        other.stored[0] = 9
        assert fx.stored[0] == 1

    def test_from_real_alias(self):
        fmt = QFormat(16, 8)
        a = FxArray.from_real(np.array([1.5]), fmt)
        b = quantize_real(np.array([1.5]), fmt)
        assert np.array_equal(a.stored, b.stored)

    def test_shape_and_len(self):
        fx = FxArray(np.zeros((3, 4)), QFormat(8, 8))
        assert fx.shape == (3, 4)
        assert fx.size == 12
        assert len(fx) == 3
