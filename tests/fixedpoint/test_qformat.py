"""Tests for repro.fixedpoint.qformat."""

import pytest

from repro.fixedpoint.qformat import QFormat


class TestConstruction:
    def test_basic_split(self):
        fmt = QFormat(word_length=32, integer_bits=16)
        assert fmt.fractional_bits == 16
        assert fmt.scale == 1 << 16

    def test_integer_bits_must_fit_word(self):
        with pytest.raises(ValueError):
            QFormat(word_length=16, integer_bits=17)

    def test_integer_bits_at_least_one(self):
        with pytest.raises(ValueError):
            QFormat(word_length=16, integer_bits=0)

    def test_word_length_positive(self):
        with pytest.raises(ValueError):
            QFormat(word_length=0, integer_bits=0)

    def test_pure_integer_format(self):
        fmt = QFormat(word_length=13, integer_bits=13)
        assert fmt.fractional_bits == 0
        assert fmt.scale == 1
        assert fmt.resolution == 1.0


class TestRange:
    def test_twos_complement_range(self):
        fmt = QFormat(word_length=8, integer_bits=8)
        assert fmt.min_int == -128
        assert fmt.max_int == 127
        assert fmt.min_value == -128.0
        assert fmt.max_value == 127.0

    def test_fractional_range(self):
        fmt = QFormat(word_length=4, integer_bits=2)  # Q2.2
        assert fmt.max_value == pytest.approx(1.75)
        assert fmt.min_value == pytest.approx(-2.0)
        assert fmt.resolution == pytest.approx(0.25)

    def test_covers_magnitude(self):
        fmt = QFormat(word_length=13, integer_bits=13)
        assert fmt.covers_magnitude(4095)
        assert not fmt.covers_magnitude(5000)


class TestConversions:
    def test_round_trip_integers(self):
        fmt = QFormat(word_length=16, integer_bits=16)
        assert fmt.to_stored(100) == 100
        assert fmt.to_real(100) == 100.0

    def test_rounding_is_half_up(self):
        fmt = QFormat(word_length=16, integer_bits=16)
        assert fmt.to_stored(2.5) == 3
        assert fmt.to_stored(-2.5) == -2
        assert fmt.to_stored(2.4) == 2

    def test_fractional_quantisation(self):
        fmt = QFormat(word_length=8, integer_bits=4)  # Q4.4
        assert fmt.to_stored(1.5) == 24
        assert fmt.to_real(24) == pytest.approx(1.5)


class TestDerivedFormats:
    def test_with_integer_bits(self):
        fmt = QFormat(word_length=32, integer_bits=16)
        other = fmt.with_integer_bits(20)
        assert other.word_length == 32
        assert other.integer_bits == 20

    def test_widened_preserves_fraction(self):
        fmt = QFormat(word_length=32, integer_bits=16)
        wide = fmt.widened(32)
        assert wide.word_length == 64
        assert wide.fractional_bits == fmt.fractional_bits

    def test_widened_rejects_negative(self):
        with pytest.raises(ValueError):
            QFormat(32, 16).widened(-1)
