"""Tests for repro.technology.cells (technology parameter sets)."""

import pytest

from repro.technology.cells import TechnologyParameters, es2_07um, scaled_technology


class TestParameters:
    def test_default_is_es2_07um(self):
        tech = es2_07um()
        assert tech.feature_size_um == pytest.approx(0.7)
        assert "ES2" in tech.name

    def test_all_constants_positive(self):
        tech = es2_07um()
        assert tech.full_adder_delay_ns > 0
        assert tech.ram_bit_area_mm2 > 0
        assert tech.wallace_cell_area_mm2 > tech.array_cell_area_mm2

    def test_invalid_constant_rejected(self):
        with pytest.raises(ValueError):
            TechnologyParameters(full_adder_delay_ns=0.0)
        with pytest.raises(ValueError):
            TechnologyParameters(ram_bit_area_mm2=-1.0)


class TestScaling:
    def test_areas_scale_quadratically(self):
        base = es2_07um()
        scaled = scaled_technology(base, 0.35)
        assert scaled.array_cell_area_mm2 == pytest.approx(base.array_cell_area_mm2 / 4)
        assert scaled.ram_bit_area_mm2 == pytest.approx(base.ram_bit_area_mm2 / 4)

    def test_delays_scale_linearly(self):
        base = es2_07um()
        scaled = scaled_technology(base, 0.35)
        assert scaled.full_adder_delay_ns == pytest.approx(base.full_adder_delay_ns / 2)

    def test_scaling_to_same_size_is_identity(self):
        base = es2_07um()
        same = scaled_technology(base, 0.7)
        assert same.array_cell_area_mm2 == pytest.approx(base.array_cell_area_mm2)

    def test_name_records_target_size(self):
        scaled = scaled_technology(es2_07um(), 0.5)
        assert "0.5" in scaled.name

    def test_invalid_feature_size_rejected(self):
        with pytest.raises(ValueError):
            scaled_technology(es2_07um(), 0.0)
