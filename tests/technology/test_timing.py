"""Tests for repro.technology.timing (Table V comparison and clock checks)."""

import pytest

from repro.technology.timing import (
    PAPER_TABLE_V,
    max_frequency_mhz,
    meets_clock,
    multiplier_comparison,
)


class TestPaperTableV:
    def test_two_rows(self):
        assert len(PAPER_TABLE_V) == 2

    def test_printed_values(self):
        compiled, pipelined = PAPER_TABLE_V
        assert compiled.access_time_ns == pytest.approx(50.88)
        assert compiled.area_mm2 == pytest.approx(2.92)
        assert pipelined.access_time_ns == pytest.approx(23.45)
        assert pipelined.area_mm2 == pytest.approx(8.03)

    def test_max_frequency_property(self):
        compiled = PAPER_TABLE_V[0]
        assert compiled.max_frequency_mhz == pytest.approx(1000.0 / 50.88)


class TestModelComparison:
    def test_model_reproduces_paper_rows(self):
        rows = multiplier_comparison()
        for model_row, paper_row in zip(rows, PAPER_TABLE_V):
            assert model_row.access_time_ns == pytest.approx(paper_row.access_time_ns, rel=0.02)
            assert model_row.area_mm2 == pytest.approx(paper_row.area_mm2, rel=0.02)

    def test_only_pipelined_meets_design_clock(self):
        compiled, pipelined = multiplier_comparison()
        assert not meets_clock(compiled.access_time_ns, 25.0)
        assert meets_clock(pipelined.access_time_ns, 25.0)


class TestClockHelpers:
    def test_meets_clock_boundary(self):
        assert meets_clock(25.0, 25.0)
        assert not meets_clock(25.1, 25.0)

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            meets_clock(0.0, 25.0)
        with pytest.raises(ValueError):
            max_frequency_mhz(0.0)

    def test_max_frequency(self):
        assert max_frequency_mhz(25.0) == pytest.approx(40.0)
