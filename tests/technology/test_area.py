"""Tests for repro.technology.area (block-level area estimators)."""

import pytest

from repro.technology.area import (
    AreaBreakdown,
    adder_area_mm2,
    barrel_shifter_area_mm2,
    multiplier_area_mm2,
    ram_area_mm2,
    register_area_mm2,
)
from repro.technology.cells import es2_07um


class TestBlockEstimators:
    def test_adder_area_linear_in_bits(self):
        assert adder_area_mm2(64) == pytest.approx(2 * adder_area_mm2(32))

    def test_register_area_linear_in_bits(self):
        assert register_area_mm2(128) == pytest.approx(2 * register_area_mm2(64))

    def test_register_area_zero_bits_allowed(self):
        assert register_area_mm2(0) == 0.0

    def test_ram_area_matches_bit_count(self):
        tech = es2_07um()
        assert ram_area_mm2(288, 32) == pytest.approx(288 * 32 * tech.ram_bit_area_mm2)

    def test_ram_area_zero_words(self):
        assert ram_area_mm2(0, 32) == 0.0

    def test_barrel_shifter_grows_with_log_levels(self):
        assert barrel_shifter_area_mm2(64) > barrel_shifter_area_mm2(32)

    def test_multiplier_kinds(self):
        assert multiplier_area_mm2(32, "array") == pytest.approx(2.92, rel=0.01)
        assert multiplier_area_mm2(32, "wallace") == pytest.approx(8.03, rel=0.01)

    def test_unknown_multiplier_kind_rejected(self):
        with pytest.raises(ValueError):
            multiplier_area_mm2(32, "booth")

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            adder_area_mm2(0)
        with pytest.raises(ValueError):
            ram_area_mm2(-1, 32)
        with pytest.raises(ValueError):
            barrel_shifter_area_mm2(0)


class TestAreaBreakdown:
    def test_accumulates_blocks(self):
        breakdown = AreaBreakdown("test")
        breakdown.add("a", 1.5)
        breakdown.add("b", 2.5)
        breakdown.add("a", 0.5)
        assert breakdown.blocks["a"] == pytest.approx(2.0)
        assert breakdown.total_mm2 == pytest.approx(4.5)

    def test_negative_block_rejected(self):
        breakdown = AreaBreakdown("test")
        with pytest.raises(ValueError):
            breakdown.add("bad", -1.0)

    def test_rows_end_with_total(self):
        breakdown = AreaBreakdown("test")
        breakdown.add("x", 1.0)
        rows = breakdown.as_rows()
        assert rows[-1] == ("TOTAL", pytest.approx(1.0))
