"""Worker death and the retry → reassign ladder of the socket pool.

The contract under test: a worker that dies mid-SUBMIT (or is unreachable
to begin with) costs the batch *nothing* — its shard is reassigned to a
live worker and the merged output stays byte-identical to serial — and
every switch is accounted exactly once in ``worker_failures`` /
``reassignments``.  Deterministic job failures are never reassigned, and
only a fully dead pool raises :class:`WorkerUnavailableError`.
"""

import socket

import numpy as np
import pytest

from repro.archive.backend import RetryPolicy
from repro.coding import compress_frames
from repro.coding.netexec import (
    RemoteWorkerError,
    SocketPoolExecutor,
    SocketWorker,
    WorkerPool,
    WorkerUnavailableError,
    local_worker_pool,
)
from repro.coding.spec import CodecSpec
from repro.imaging.phantoms import random_image, shepp_logan

SPEC = CodecSpec(codec="s-transform", scales=2)

#: No backoff sleeps: failures in these tests are permanent, waiting on
#: them only slows the suite down.
FAST_RETRY = RetryPolicy.none()


def batch_frames(count=8):
    return [
        shepp_logan(32) if i % 2 else random_image(32, seed=i) for i in range(count)
    ]


def free_address():
    """An address nothing listens on (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


def killing_worker(node="victim"):
    """A worker whose *first* compress SUBMIT kills it mid-call: the
    connection drops before any RESULT, exactly like a crashed process."""
    worker = SocketWorker(node=node)

    def die_then_serve(payload, _inner=worker.handlers["compress"]):
        if not worker.jobs_done and not getattr(worker, "_died", False):
            worker._died = True
            worker.close()  # drops every connection before a reply exists
            raise OSError("simulated worker crash mid-SUBMIT")
        return _inner(payload)

    worker.handlers["compress"] = die_then_serve
    return worker


class TestMidSubmitDeath:
    def test_shard_reassigned_and_byte_identical(self):
        frames = batch_frames(8)
        serial = compress_frames(frames, spec=SPEC)
        victim = killing_worker()
        survivor = SocketWorker(node="survivor")
        with victim, survivor:
            pool = WorkerPool([victim.address, survivor.address], retry=FAST_RETRY)
            batch = SocketPoolExecutor(pool).compress(frames, SPEC)
            # Byte identity survives the crash: the dead worker's shard was
            # re-run on the survivor, and the merge restored frame order.
            for a, b in zip(serial.streams, batch.streams):
                assert a.chunks == b.chunks
            # Exactly-once accounting: one worker died, one shard moved.
            assert pool.worker_failures == 1
            assert pool.reassignments == 1
            assert pool.live_indices() == [1]
            assert pool.submits == 2  # both shards completed
            assert victim.jobs_done == 0
            assert survivor.jobs_done == 2

    def test_subprocess_sigkill_mid_batch(self):
        """The real thing: SIGKILL a worker *process* between batches and
        let the ladder move its shard."""
        frames = batch_frames(6)
        serial = compress_frames(frames, spec=SPEC)
        with local_worker_pool(2, nodes=["k0", "k1"]) as addresses:
            from repro.coding.netexec import start_local_worker  # noqa: F401

            pool = WorkerPool(addresses, retry=FAST_RETRY)
            with pool:
                pool.ensure_connected()
                assert pool.live_count == 2
                # Kill worker 0 under the pool's feet; its connection is
                # already open, so the death is discovered mid-call.
                victim_pid = pool._clients[0].worker_pid
                import os
                import signal

                os.kill(victim_pid, signal.SIGKILL)
                batch = SocketPoolExecutor(pool).compress(frames, SPEC)
            for a, b in zip(serial.streams, batch.streams):
                assert a.chunks == b.chunks
            assert pool.worker_failures == 1
            assert pool.reassignments == 1

    def test_death_with_no_survivor_raises(self):
        victim = killing_worker()
        with victim:
            pool = WorkerPool([victim.address], retry=FAST_RETRY)
            with pytest.raises(WorkerUnavailableError, match="no live workers"):
                SocketPoolExecutor(pool).compress(batch_frames(4), SPEC)
            assert pool.worker_failures == 1
            assert pool.reassignments == 0  # nowhere to move the shard


class TestConnectLadder:
    def test_unreachable_worker_is_skipped_at_connect(self):
        frames = batch_frames(4)
        serial = compress_frames(frames, spec=SPEC)
        with SocketWorker(node="only") as worker:
            pool = WorkerPool([free_address(), worker.address], retry=FAST_RETRY)
            batch = SocketPoolExecutor(pool).compress(frames, SPEC)
            for a, b in zip(serial.streams, batch.streams):
                assert a.chunks == b.chunks
            # Failing at connect time is a worker failure but not a
            # reassignment: no shard had been placed on it yet.
            assert pool.worker_failures == 1
            assert pool.reassignments == 0
            assert batch.stats.workers == 1

    def test_all_workers_unreachable(self):
        pool = WorkerPool([free_address(), free_address()], retry=FAST_RETRY)
        with pytest.raises(WorkerUnavailableError, match="no live workers"):
            pool.ensure_connected()
        assert pool.worker_failures == 2
        with pytest.raises(WorkerUnavailableError):
            pool.call("echo", 1)

    def test_retry_absorbs_transient_connect_failure(self):
        """The PR 6 ladder in action: the first connect attempts fail, a
        later one succeeds, and nothing is marked dead."""
        with SocketWorker(node="late") as worker:
            flaky = {"failures_left": 2}
            real_connection = socket.create_connection

            def flaky_connection(address, *args, **kwargs):
                if flaky["failures_left"] > 0:
                    flaky["failures_left"] -= 1
                    raise ConnectionRefusedError("not up yet")
                return real_connection(address, *args, **kwargs)

            pool = WorkerPool(
                [worker.address],
                retry=RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0),
            )
            socket.create_connection = flaky_connection
            try:
                assert pool.ensure_connected() == [0]
            finally:
                socket.create_connection = real_connection
            assert pool.worker_failures == 0
            assert pool.call("echo", 5) == (5, "late")


class TestDeterministicFailures:
    def test_job_error_is_not_reassigned(self):
        """A job that fails because of its *input* fails everywhere;
        moving it to another worker would just fail again."""
        with SocketWorker(node="a") as a, SocketWorker(node="b") as b:
            pool = WorkerPool([a.address, b.address], retry=FAST_RETRY)
            with pytest.raises(RemoteWorkerError):
                pool.call("compress", {"spec": SPEC, "items": [object()]})
            assert pool.reassignments == 0
            assert pool.worker_failures == 0
            assert pool.live_count == 2
            # Exactly one worker ever saw the poisoned job.
            assert a.jobs_done == b.jobs_done == 0

    def test_executor_propagates_job_errors(self):
        bad = [np.full((32, 32), 1 << 14, dtype=np.int64)]  # outside 12-bit range
        with SocketWorker(node="x") as worker:
            with pytest.raises(RemoteWorkerError, match="range"):
                SocketPoolExecutor(worker.address).compress(bad * 4, SPEC)
