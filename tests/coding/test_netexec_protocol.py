"""Fuzzing the socket-pool wire protocol: hostile bytes in either direction.

A table-driven corpus (style of ``tests/archive/test_server_protocol.py``)
of truncated length prefixes, bad CRCs, wrong-version handshakes and
oversized frames.  The contract under test, for every case:

* a worker answers malformed input with a *typed* ERROR frame (or drops a
  stream it cannot resync, counting it in ``protocol_errors``) and loses
  only that one connection — it serves a well-formed job afterwards, and
* a client faced with a misbehaving server raises the matching typed
  exception (:class:`ProtocolError` / :class:`FrameCrcError` /
  :class:`FrameTooLargeError` / :class:`VersionMismatchError` /
  :class:`WorkerUnavailableError`), never a misparse.
"""

import contextlib
import pickle
import socket
import threading

import pytest

from repro.coding.netexec import (
    MAX_FRAME_BYTES,
    MSG_ERROR,
    MSG_HELLO,
    MSG_HELLO_OK,
    MSG_RESULT,
    MSG_SUBMIT,
    PROTOCOL_VERSION,
    FrameCrcError,
    FrameTooLargeError,
    ProtocolError,
    RemoteWorkerError,
    SocketWorker,
    VersionMismatchError,
    WorkerClient,
    WorkerUnavailableError,
    _FRAME_HEAD,
    _frame_crc,
    recv_message,
    send_message,
)


def frame(msg_type, payload, crc=None):
    """One wire frame, optionally with a deliberately wrong CRC."""
    crc = _frame_crc(msg_type, payload) if crc is None else crc
    return _FRAME_HEAD.pack(len(payload), crc, msg_type) + payload


HELLO = frame(MSG_HELLO, pickle.dumps({"version": PROTOCOL_VERSION}))

#: (case id, raw bytes, ERROR code answered — ``None`` means the worker may
#: only drop the connection silently, counts toward ``protocol_errors``).
CORPUS = [
    ("truncated-length-prefix", b"\x04\x00", None, True),
    ("truncated-payload", _FRAME_HEAD.pack(100, 0, MSG_HELLO) + b"short", None, True),
    ("bad-crc", frame(MSG_HELLO, pickle.dumps({"version": 1}), crc=0xDEADBEEF), "bad-crc", True),
    ("oversized-declared-length", _FRAME_HEAD.pack(MAX_FRAME_BYTES + 1, 0, MSG_SUBMIT), "frame-too-large", True),
    ("wrong-version-hello", frame(MSG_HELLO, pickle.dumps({"version": 99})), "version-mismatch", False),
    ("hello-payload-garbage", frame(MSG_HELLO, b"\xff\xfe not a pickle"), "protocol", True),
    ("hello-payload-not-a-mapping", frame(MSG_HELLO, pickle.dumps(42)), "protocol", True),
    ("submit-before-hello", frame(MSG_SUBMIT, pickle.dumps({"job": 1, "kind": "echo", "payload": None})), "protocol", True),
    ("result-before-hello", frame(MSG_RESULT, pickle.dumps({"job": 1})), "protocol", True),
    ("unknown-type-after-hello", HELLO + frame(77, b""), "protocol", True),
    ("submit-payload-garbage", HELLO + frame(MSG_SUBMIT, b"junk junk junk"), "protocol", True),
    ("submit-payload-not-a-job", HELLO + frame(MSG_SUBMIT, pickle.dumps([1, 2, 3])), "protocol", True),
]


@pytest.fixture(scope="module")
def worker():
    with SocketWorker(node="fuzzed") as served:
        yield served


def poke(worker, raw, timeout=10):
    """Send raw bytes; return the first ERROR code answered, or ``None``
    when the worker just closes the connection."""
    with socket.create_connection((worker.host, worker.port), timeout=timeout) as conn:
        conn.sendall(raw)
        conn.shutdown(socket.SHUT_WR)
        while True:
            message = recv_message(conn)
            if message is None:
                return None
            msg_type, payload = message
            if msg_type == MSG_ERROR:
                return pickle.loads(payload)["code"]
            assert msg_type == MSG_HELLO_OK  # the only benign interim reply


def assert_still_serving(worker):
    with WorkerClient(worker.address, timeout=10) as client:
        assert client.call("echo", "still-alive") == "still-alive"


class TestHostileClient:
    @pytest.mark.parametrize(
        "case,raw,code,counted", CORPUS, ids=[c[0] for c in CORPUS]
    )
    def test_malformed_input_gets_typed_error(self, worker, case, raw, code, counted):
        before = worker.protocol_errors
        assert poke(worker, raw) == code, case
        # The violation cost one connection, nothing more: the very same
        # worker keeps serving well-formed jobs.
        assert_still_serving(worker)
        if counted:
            assert worker.protocol_errors > before, case

    def test_oversized_frame_rejected_by_small_cap(self):
        """A worker's cap applies before allocation, at whatever size."""
        with SocketWorker(node="tiny", max_frame_bytes=1024) as worker:
            raw = _FRAME_HEAD.pack(2048, 0, MSG_HELLO)
            assert poke(worker, raw) == "frame-too-large"
            with pytest.raises(FrameTooLargeError):
                WorkerClient(worker.address, max_frame_bytes=1024).connect().call(
                    "echo", "x" * 4096
                )

    def test_unknown_job_kind_is_remote_error(self, worker):
        with WorkerClient(worker.address) as client:
            with pytest.raises(RemoteWorkerError, match="no-such-kind"):
                client.call("no-such-kind", {})
            # A job-level error does not cost the connection.
            assert client.call("echo", 7) == 7

    def test_job_failure_is_remote_error(self, worker):
        from repro.coding.spec import CodecSpec

        with WorkerClient(worker.address) as client:
            with pytest.raises(RemoteWorkerError, match="Error"):
                client.call(
                    "compress",
                    {"spec": CodecSpec(scales=2), "items": [object()]},
                )
            assert client.call("echo", 8) == 8

    def test_protocol_errors_visible_in_heartbeat(self, worker):
        poke(worker, b"\x01")
        with WorkerClient(worker.address) as client:
            status = client.heartbeat()
        assert status["protocol_errors"] >= 1


# ---------------------------------------------------------------------------
# The other direction: a misbehaving *server* and the client's taxonomy.
# ---------------------------------------------------------------------------

@contextlib.contextmanager
def evil_server(script):
    """One accepted connection handled by ``script(conn)``, then closed."""
    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]

    def serve():
        try:
            conn, _ = listener.accept()
        except OSError:
            return
        with conn:
            try:
                script(conn)
            except OSError:
                pass

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        yield f"127.0.0.1:{port}"
    finally:
        listener.close()
        thread.join(timeout=5)


def _drain_hello(conn):
    assert recv_message(conn)[0] == MSG_HELLO


def reply_wrong_version(conn):
    _drain_hello(conn)
    send_message(conn, MSG_HELLO_OK, pickle.dumps({"version": 99, "node": "evil"}))


def reply_wrong_type(conn):
    _drain_hello(conn)
    send_message(conn, MSG_RESULT, pickle.dumps({"job": 1, "payload": None}))


def reply_error_frame(conn):
    _drain_hello(conn)
    send_message(conn, MSG_ERROR, pickle.dumps({"code": "protocol", "message": "no"}))


def close_without_reply(conn):
    _drain_hello(conn)


def reply_truncated_header(conn):
    _drain_hello(conn)
    conn.sendall(b"\x01\x02\x03")


def reply_bad_crc(conn):
    _drain_hello(conn)
    conn.sendall(frame(MSG_HELLO_OK, pickle.dumps({"version": 1}), crc=0xBADBAD))


def reply_oversized(conn):
    _drain_hello(conn)
    conn.sendall(_FRAME_HEAD.pack(MAX_FRAME_BYTES + 1, 0, MSG_HELLO_OK))


EVIL = [
    ("wrong-version-reply", reply_wrong_version, VersionMismatchError),
    ("unexpected-reply-type", reply_wrong_type, ProtocolError),
    ("error-frame-reply", reply_error_frame, ProtocolError),
    ("close-without-reply", close_without_reply, WorkerUnavailableError),
    ("truncated-reply-header", reply_truncated_header, ProtocolError),
    ("bad-reply-crc", reply_bad_crc, FrameCrcError),
    ("oversized-reply", reply_oversized, FrameTooLargeError),
]


class TestMisbehavingServer:
    @pytest.mark.parametrize("case,script,expected", EVIL, ids=[c[0] for c in EVIL])
    def test_client_raises_typed_error(self, case, script, expected):
        with evil_server(script) as address:
            client = WorkerClient(address, timeout=10)
            with pytest.raises(expected):
                client.connect()
            assert not client.connected  # a failed handshake leaves no socket

    def test_client_send_cap_applies_before_sending(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(FrameTooLargeError):
                send_message(left, MSG_SUBMIT, b"x" * 64, max_frame_bytes=10)
            right.settimeout(0.2)
            with pytest.raises(socket.timeout):
                right.recv(1)  # nothing was written at all
        finally:
            left.close()
            right.close()
