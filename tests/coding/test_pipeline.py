"""Tests for the batched compression pipeline (repro.coding.pipeline)."""

import numpy as np
import pytest

from repro.coding.pipeline import (
    compress_frames,
    decompress_frames,
    max_dyadic_scales,
)
from repro.imaging.mr import mr_slice
from repro.imaging.phantoms import (
    checkerboard,
    gradient_image,
    random_image,
    shepp_logan,
)


def mixed_batch():
    """A batch of >= 8 mixed-size, mixed-content frames."""
    return [
        shepp_logan(64),
        shepp_logan(128),
        gradient_image(32),
        checkerboard(64, tile=8),
        random_image(96, seed=3),
        mr_slice(128),
        gradient_image(48),
        random_image(40, seed=7),
        shepp_logan(256),
    ]


class TestMaxDyadicScales:
    def test_power_of_two(self):
        assert max_dyadic_scales((64, 64)) == 6
        assert max_dyadic_scales((256, 256)) == 8

    def test_mixed_dimensions(self):
        assert max_dyadic_scales((64, 32)) == 5
        assert max_dyadic_scales((48, 48)) == 4
        assert max_dyadic_scales((40, 40)) == 3

    def test_odd_unsupported(self):
        assert max_dyadic_scales((63, 63)) == 0


class TestCompressDecompressFrames:
    @pytest.mark.parametrize("codec", ["s-transform", "coefficient"])
    def test_mixed_batch_roundtrip_lossless(self, codec):
        frames = mixed_batch()
        batch = compress_frames(frames, codec=codec, scales=4)
        decoded, stats = decompress_frames(batch)
        assert len(decoded) == len(frames)
        for original, reconstructed in zip(frames, decoded):
            assert np.array_equal(original, reconstructed)
        assert stats.frames == len(frames)
        assert stats.pixels == sum(int(f.size) for f in frames)

    def test_byte_identical_to_scalar_codec(self):
        frames = mixed_batch()
        fast = compress_frames(frames, codec="s-transform", scales=4, engine="fast")
        scalar = compress_frames(frames, codec="s-transform", scales=4, engine="scalar")
        for stream_fast, stream_scalar in zip(fast.streams, scalar.streams):
            assert stream_fast.chunks == stream_scalar.chunks

    def test_cross_engine_decode(self):
        frames = mixed_batch()[:4]
        batch = compress_frames(frames, codec="s-transform", scales=4)
        decoded, _ = decompress_frames(batch, engine="scalar")
        for original, reconstructed in zip(frames, decoded):
            assert np.array_equal(original, reconstructed)

    def test_scales_clamped_per_frame(self):
        batch = compress_frames([shepp_logan(64), random_image(40, seed=1)], scales=5)
        assert batch.streams[0].scales == 5
        assert batch.streams[1].scales == 3  # 40 = 8 * 5 supports only 3 scales

    def test_stats_accounting(self):
        frames = mixed_batch()
        batch = compress_frames(frames, codec="s-transform", scales=4)
        stats = batch.stats
        assert set(stats.stage_seconds) == {"transform", "entropy_encode"}
        assert stats.total_seconds > 0
        assert stats.compressed_bytes == batch.compressed_bytes
        assert stats.raw_bytes == batch.original_bytes
        assert batch.compression_ratio == pytest.approx(
            stats.raw_bytes / stats.compressed_bytes
        )
        assert "Mpixel/s" in stats.render()

    def test_compresses_smooth_content(self):
        batch = compress_frames([shepp_logan(128)] * 2, codec="s-transform", scales=4)
        assert batch.compression_ratio > 1.2

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            compress_frames([shepp_logan(64)], codec="jpeg2000")

    def test_undecomposable_frame_rejected(self):
        with pytest.raises(ValueError):
            compress_frames([np.zeros((63, 63), dtype=np.int64)])

    def test_coefficient_codec_options_forwarded(self):
        batch = compress_frames(
            [shepp_logan(32)], codec="coefficient", scales=2, bank="F1", use_rle=False
        )
        assert batch.streams[0].bank_name == "F1"
        decoded, _ = decompress_frames(batch)
        assert np.array_equal(decoded[0], shepp_logan(32))


class TestAcceleratorTransform:
    """End-to-end image -> accelerator transform -> codec -> bitstream path."""

    def square_frames(self):
        return [shepp_logan(64), random_image(32, seed=11), shepp_logan(128)]

    def test_streams_wire_identical_to_software_transform(self):
        frames = self.square_frames()
        software = compress_frames(frames, codec="coefficient", scales=3)
        hardware = compress_frames(
            frames, codec="coefficient", scales=3, transform="accelerator"
        )
        assert hardware.transform == "accelerator"
        for sw, hw in zip(software.streams, hardware.streams):
            assert sw.chunks == hw.chunks

    def test_roundtrip_lossless_with_run_reports(self):
        frames = self.square_frames()
        batch = compress_frames(
            frames, codec="coefficient", scales=3, transform="accelerator"
        )
        reports = batch.stats.accelerator_reports
        assert len(reports) == len(frames)
        assert all(report.direction == "forward" for report in reports)
        assert all(report.macrocycles > 0 for report in reports)
        decoded, stats = decompress_frames(batch)
        for original, reconstructed in zip(frames, decoded):
            assert np.array_equal(original, reconstructed)
        # The batch remembers its transform: decode also ran the accelerator.
        assert len(stats.accelerator_reports) == len(frames)
        assert all(report.direction == "inverse" for report in stats.accelerator_reports)

    def test_cross_transform_decode(self):
        frames = self.square_frames()
        hardware = compress_frames(
            frames, codec="coefficient", scales=3, transform="accelerator"
        )
        decoded, stats = decompress_frames(hardware, transform="software")
        for original, reconstructed in zip(frames, decoded):
            assert np.array_equal(original, reconstructed)
        assert stats.accelerator_reports == []
        software = compress_frames(frames, codec="coefficient", scales=3)
        decoded, stats = decompress_frames(software, transform="accelerator")
        for original, reconstructed in zip(frames, decoded):
            assert np.array_equal(original, reconstructed)
        assert len(stats.accelerator_reports) == len(frames)

    def test_scalar_transform_engine(self):
        frames = [random_image(32, seed=2)]
        fast = compress_frames(
            frames, codec="coefficient", scales=2, transform="accelerator"
        )
        scalar = compress_frames(
            frames,
            codec="coefficient",
            scales=2,
            transform="accelerator",
            transform_engine="scalar",
        )
        for a, b in zip(fast.streams, scalar.streams):
            assert a.chunks == b.chunks
        assert [r.macrocycles for r in fast.stats.accelerator_reports] == [
            r.macrocycles for r in scalar.stats.accelerator_reports
        ]

    def test_custom_bank_rejected(self):
        # A non-catalog bank would silently be replaced by the catalog taps
        # of the same name inside the accelerator config; refuse instead.
        import dataclasses

        from repro.filters.catalog import get_bank

        custom = dataclasses.replace(get_bank("F2"))
        with pytest.raises(ValueError, match="catalog"):
            compress_frames(
                [shepp_logan(64)],
                codec="coefficient",
                scales=2,
                transform="accelerator",
                bank=custom,
            )

    def test_s_transform_codec_rejected(self):
        with pytest.raises(ValueError):
            compress_frames([shepp_logan(64)], transform="accelerator")

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError):
            compress_frames(
                [shepp_logan(64)], codec="coefficient", transform="fpga"
            )

    def test_non_square_frame_rejected(self):
        with pytest.raises(ValueError):
            compress_frames(
                [np.zeros((64, 32), dtype=np.int64)],
                codec="coefficient",
                transform="accelerator",
            )

    @pytest.mark.parametrize("transform_engine", ["fast", "scalar"])
    def test_non_square_stream_rejected_on_decode(self, transform_engine):
        # A rectangular frame compresses fine on the software path, but
        # decoding it through the square-only accelerator must fail with a
        # clean ValueError, not run (or crash) on a rectangle.
        batch = compress_frames(
            [np.arange(64 * 32, dtype=np.int64).reshape(64, 32) % 4096],
            codec="coefficient",
            scales=3,
        )
        with pytest.raises(ValueError, match="square"):
            decompress_frames(
                batch, transform="accelerator", transform_engine=transform_engine
            )
