"""Tests for repro.coding.bitstream."""

import pytest

from repro.coding.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_bits_pack_msb_first(self):
        writer = BitWriter()
        writer.write_bits([1, 0, 1, 0, 0, 0, 0, 1])
        assert writer.getvalue() == bytes([0b10100001])

    def test_partial_byte_zero_padded(self):
        writer = BitWriter()
        writer.write_bits([1, 1, 1])
        assert writer.getvalue() == bytes([0b11100000])

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_unary_code(self):
        writer = BitWriter()
        writer.write_unary(3)
        assert writer.getvalue() == bytes([0b11100000])

    def test_negative_unary_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)

    def test_uint_width_checked(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_uint(4, 2)
        with pytest.raises(ValueError):
            writer.write_uint(-1, 4)

    def test_len_counts_padded_bytes(self):
        writer = BitWriter()
        writer.write_bits([1] * 9)
        assert len(writer) == 2
        assert writer.bits_written == 9


class TestBitReader:
    def test_round_trip_bits(self):
        writer = BitWriter()
        pattern = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        writer.write_bits(pattern)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(len(pattern)) == pattern

    def test_round_trip_uint(self):
        writer = BitWriter()
        writer.write_uint(12345, 16)
        writer.write_uint(7, 3)
        reader = BitReader(writer.getvalue())
        assert reader.read_uint(16) == 12345
        assert reader.read_uint(3) == 7

    def test_round_trip_unary(self):
        writer = BitWriter()
        for value in (0, 1, 5, 13):
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_unary() for _ in range(4)] == [0, 1, 5, 13]

    def test_eof_raises(self):
        reader = BitReader(b"")
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_bits_remaining(self):
        reader = BitReader(bytes(2))
        assert reader.bits_remaining == 16
        reader.read_bits(5)
        assert reader.bits_remaining == 11

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BitReader(bytes(1)).read_bits(-1)
