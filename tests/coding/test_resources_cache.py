"""Process-wide codec/accelerator LRU: amortisation across runs and layers."""

import pytest

from repro.coding.pipeline import (
    CodecResources,
    clear_resource_cache,
    compress_frames,
    resource_cache_info,
)
from repro.coding.spec import CodecSpec
from repro.filters.catalog import get_bank
from repro.imaging import shepp_logan


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_resource_cache()
    yield
    clear_resource_cache()


def test_codec_shared_across_resource_instances():
    spec = CodecSpec(codec="coefficient", scales=2, bank="F2")
    first = CodecResources(spec).codec_for(2)
    second = CodecResources(spec).codec_for(2)
    assert first is second  # word-length planning ran once, not twice
    info = resource_cache_info()
    assert info["misses"] == 1 and info["hits"] == 1


def test_equal_specs_share_even_when_rebuilt():
    """Two separately-constructed equal specs hit the same cache slot."""
    a = CodecSpec(codec="coefficient", scales=3, bank="F2")
    b = CodecSpec.from_json(a.to_json())
    assert CodecResources(a).codec_for(3) is CodecResources(b).codec_for(3)


def test_different_scales_are_distinct_entries():
    spec = CodecSpec(codec="s-transform", scales=4)
    resources = CodecResources(spec)
    assert resources.codec_for(2) is not resources.codec_for(3)
    assert resource_cache_info()["size"] == 2


def test_accelerators_cached_per_run_only():
    """Accelerators reuse within one CodecResources (per geometry) but are
    never shared across instances: a DwtAccelerator run mutates its DRAM
    model, so a process-wide instance would corrupt concurrent encodes."""
    spec = CodecSpec(codec="coefficient", scales=2, transform="accelerator")
    resources = CodecResources(spec)
    codec = resources.codec_for(2)
    first = resources.accelerator_for(codec, 32, 2)
    assert resources.accelerator_for(codec, 32, 2) is first
    assert resources.accelerator_for(codec, 64, 2) is not first
    assert CodecResources(spec).accelerator_for(codec, 32, 2) is not first


def test_pipeline_runs_amortise_across_batches():
    """Two compress_frames calls with the same spec build the codec once."""
    frames = [shepp_logan(32)]
    spec = CodecSpec(codec="coefficient", scales=2, bank="F2")
    compress_frames(frames, spec=spec)
    misses_after_first = resource_cache_info()["misses"]
    compress_frames(frames, spec=spec)
    info = resource_cache_info()
    assert info["misses"] == misses_after_first  # second batch: all hits
    assert info["hits"] > 0


def test_instance_bank_specs_stay_local():
    """Specs carrying live bank objects must not alias in the shared cache:
    they compare by catalog name, which would collide two different banks."""
    bank = get_bank("F2")
    spec = CodecSpec(codec="coefficient", scales=2, bank=bank)
    resources = CodecResources(spec)
    codec = resources.codec_for(2)
    assert resources.codec_for(2) is codec  # still cached, but locally
    assert resource_cache_info()["size"] == 0


def test_lru_evicts_oldest():
    from repro.coding import pipeline

    original = pipeline._RESOURCE_CACHE.maxsize
    pipeline._RESOURCE_CACHE.maxsize = 2
    try:
        resources = CodecResources(CodecSpec(codec="s-transform", scales=4))
        resources.codec_for(1)
        resources.codec_for(2)
        resources.codec_for(3)  # evicts scales=1
        assert resource_cache_info()["size"] == 2
        resources.codec_for(1)  # rebuilt: a miss, not a hit
        assert resource_cache_info()["misses"] == 4
    finally:
        pipeline._RESOURCE_CACHE.maxsize = original
