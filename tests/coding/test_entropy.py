"""Tests for the entropy-coding primitives (mapper, RLE, Rice, Huffman)."""

import numpy as np
import pytest

from repro.coding.huffman import (
    HuffmanCode,
    build_code_lengths,
    canonical_codes,
    huffman_decode,
    huffman_encode,
)
from repro.coding.mapper import flatten_pyramid, zigzag_decode, zigzag_encode
from repro.coding.rice import (
    optimal_rice_parameter,
    rice_code_length,
    rice_decode,
    rice_encode,
)
from repro.coding.rle import LITERAL, ZERO_RUN, RleEvent, rle_decode, rle_encode, zero_fraction


class TestZigzag:
    def test_known_mapping(self):
        values = np.array([0, -1, 1, -2, 2, -3])
        assert list(zigzag_encode(values)) == [0, 1, 2, 3, 4, 5]

    def test_round_trip(self, rng):
        values = rng.integers(-10000, 10000, size=500)
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    def test_decode_rejects_negative_symbols(self):
        with pytest.raises(ValueError):
            zigzag_decode(np.array([-1]))

    def test_small_magnitudes_get_small_symbols(self):
        assert zigzag_encode(np.array([100])).item() < zigzag_encode(np.array([-200])).item()


class TestRle:
    def test_runs_and_literals(self):
        events = rle_encode([0, 0, 0, 5, 0, -2, 0, 0])
        assert events == [
            RleEvent(ZERO_RUN, 3),
            RleEvent(LITERAL, 5),
            RleEvent(ZERO_RUN, 1),
            RleEvent(LITERAL, -2),
            RleEvent(ZERO_RUN, 2),
        ]

    def test_round_trip(self, rng):
        values = rng.integers(-3, 4, size=300)
        values[rng.uniform(size=300) < 0.6] = 0
        assert np.array_equal(rle_decode(rle_encode(values)), values)

    def test_max_run_splitting(self):
        events = rle_encode([0] * 10, max_run=4)
        assert [e.value for e in events] == [4, 4, 2]

    def test_all_literals(self):
        events = rle_encode([1, 2, 3])
        assert all(e.kind == LITERAL for e in events)

    def test_zero_fraction(self):
        assert zero_fraction([0, 0, 1, 0]) == pytest.approx(0.75)
        assert zero_fraction([]) == 0.0

    def test_invalid_event_rejected(self):
        with pytest.raises(ValueError):
            RleEvent("literal?", 1)
        with pytest.raises(ValueError):
            RleEvent(ZERO_RUN, 0)


class TestRice:
    def test_code_length_formula(self):
        assert rice_code_length(0, 0) == 1
        assert rice_code_length(5, 2) == (5 >> 2) + 1 + 2

    def test_round_trip_fixed_parameter(self):
        symbols = [0, 1, 2, 3, 17, 255, 1024]
        assert rice_decode(rice_encode(symbols, k=4)) == symbols

    def test_round_trip_optimal_parameter(self, rng):
        symbols = list(rng.geometric(0.05, size=400) - 1)
        assert rice_decode(rice_encode(symbols)) == symbols

    def test_optimal_parameter_tracks_magnitude(self):
        small = optimal_rice_parameter([0, 1, 0, 2, 1])
        large = optimal_rice_parameter([1000, 2000, 1500])
        assert large > small

    def test_optimal_parameter_empty_block(self):
        assert optimal_rice_parameter([]) == 0

    def test_negative_symbols_rejected(self):
        with pytest.raises(ValueError):
            rice_encode([-1])
        with pytest.raises(ValueError):
            optimal_rice_parameter([-1])

    def test_empty_block_round_trip(self):
        assert rice_decode(rice_encode([])) == []


class TestHuffman:
    def test_code_lengths_respect_frequencies(self):
        lengths = build_code_lengths({0: 100, 1: 10, 2: 1})
        assert lengths[0] <= lengths[1] <= lengths[2]

    def test_kraft_equality_for_complete_code(self):
        code = HuffmanCode.from_symbols([0, 0, 0, 1, 1, 2, 3, 3, 3, 3])
        assert code.kraft_sum() == pytest.approx(1.0)

    def test_single_symbol_alphabet(self):
        code = HuffmanCode.from_symbols([7, 7, 7])
        assert code.lengths == {7: 1}
        assert huffman_decode(huffman_encode([7, 7, 7], code)) == [7, 7, 7]

    def test_canonical_codes_are_prefix_free(self):
        code = HuffmanCode.from_symbols([0, 1, 1, 2, 2, 2, 3, 3, 3, 3])
        codes = canonical_codes(code.lengths)
        bit_strings = [format(value, f"0{length}b") for value, length in codes.values()]
        for a in bit_strings:
            for b in bit_strings:
                if a != b:
                    assert not b.startswith(a)

    def test_round_trip(self, rng):
        symbols = list(rng.integers(0, 20, size=500))
        assert huffman_decode(huffman_encode(symbols)) == symbols

    def test_expected_length_beats_fixed_width_for_skewed_source(self):
        symbols = [0] * 900 + [1] * 50 + [2] * 30 + [3] * 20
        code = HuffmanCode.from_symbols(symbols)
        frequencies = {0: 900, 1: 50, 2: 30, 3: 20}
        assert code.expected_length(frequencies) < 2.0  # fixed width would be 2 bits

    def test_encoding_unknown_symbol_rejected(self):
        code = HuffmanCode.from_symbols([0, 1])
        with pytest.raises(ValueError):
            huffman_encode([5], code)

    def test_negative_symbols_rejected(self):
        with pytest.raises(ValueError):
            huffman_encode([-3])

    def test_empty_stream_round_trip(self):
        assert huffman_decode(huffman_encode([])) == []


class TestFlattenPyramid:
    def test_descriptor_count_and_sample_total(self, bank_f2, ct_image_64):
        from repro.fxdwt.transform import FixedPointDWT

        pyramid = FixedPointDWT(bank_f2, 3).forward(ct_image_64)
        descriptors, samples = flatten_pyramid(pyramid)
        assert len(descriptors) == 1 + 3 * 3
        assert samples.size == 64 * 64

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            flatten_pyramid(object())
