"""Bitstream wire-compatibility: every engine tier against every other.

Every block coder ships a vectorised (``fast``) and a bit-by-bit
(``scalar``) implementation, plus a table-driven ``turbo`` decode tier;
these tests pin the contract that they are drop-in interchangeable at the
byte level — identical encoded streams, and each decoder accepts each
encoder's output — on random inputs and on phantom-image workloads.
"""

import numpy as np
import pytest

from repro.coding.codec import LosslessWaveletCodec
from repro.coding.huffman import (
    huffman_decode,
    huffman_decode_scalar,
    huffman_decode_turbo,
    huffman_encode,
    huffman_encode_scalar,
)
from repro.coding.mapper import zigzag_encode
from repro.coding.rice import (
    rice_decode,
    rice_decode_scalar,
    rice_decode_turbo,
    rice_encode,
    rice_encode_scalar,
)
from repro.coding.rle import (
    events_to_arrays,
    rle_decode,
    rle_decode_arrays,
    rle_encode,
    rle_encode_arrays,
)
from repro.coding.s_transform import STransformCodec
from repro.imaging.phantoms import gradient_image, random_image, shepp_logan


def _phantom_symbols():
    """Zig-zagged detail-like samples from a real phantom image."""
    image = shepp_logan(64).astype(np.int64)
    return zigzag_encode(np.diff(image, axis=1).ravel())


class TestRiceWireCompat:
    @pytest.fixture(params=["random", "geometric", "phantom", "zeros", "empty"])
    def symbols(self, request, rng):
        return {
            "random": rng.integers(0, 4096, size=700),
            "geometric": rng.geometric(0.1, size=500) - 1,
            "phantom": _phantom_symbols(),
            "zeros": np.zeros(300, dtype=np.int64),
            "empty": np.zeros(0, dtype=np.int64),
        }[request.param]

    def test_streams_byte_identical(self, symbols):
        assert rice_encode(symbols) == rice_encode_scalar(symbols)

    def test_fast_encode_scalar_decode(self, symbols):
        assert rice_decode_scalar(rice_encode(symbols)) == symbols.tolist()

    def test_scalar_encode_fast_decode(self, symbols):
        assert rice_decode(rice_encode_scalar(symbols)) == symbols.tolist()

    def test_turbo_decode_matches_both_encoders(self, symbols):
        assert rice_decode_turbo(rice_encode(symbols)) == symbols.tolist()
        assert rice_decode_turbo(rice_encode_scalar(symbols)) == symbols.tolist()

    @pytest.mark.parametrize("k", [0, 1, 5, 11, 18, 26])
    def test_explicit_parameter(self, rng, k):
        symbols = rng.integers(0, 2000, size=400)
        assert rice_encode(symbols, k=k) == rice_encode_scalar(symbols, k=k)
        assert rice_decode(rice_encode_scalar(symbols, k=k)) == symbols.tolist()
        # Turbo's adaptive run-scan/remainder strategies switch on k; every
        # branch must land on the same symbols.
        assert rice_decode_turbo(rice_encode(symbols, k=k)) == symbols.tolist()


class TestHuffmanWireCompat:
    @pytest.fixture(params=["random", "skewed", "phantom", "single", "empty"])
    def symbols(self, request, rng):
        return {
            "random": rng.integers(0, 40, size=600),
            "skewed": np.minimum(rng.geometric(0.3, size=800) - 1, 30),
            "phantom": np.minimum(_phantom_symbols(), 63),
            "single": np.full(40, 7, dtype=np.int64),
            "empty": np.zeros(0, dtype=np.int64),
        }[request.param]

    def test_streams_byte_identical(self, symbols):
        assert huffman_encode(symbols) == huffman_encode_scalar(symbols)

    def test_fast_encode_scalar_decode(self, symbols):
        assert huffman_decode_scalar(huffman_encode(symbols)) == symbols.tolist()

    def test_scalar_encode_fast_decode(self, symbols):
        assert huffman_decode(huffman_encode_scalar(symbols)) == symbols.tolist()

    def test_turbo_decode_matches_both_encoders(self, symbols):
        assert huffman_decode_turbo(huffman_encode(symbols)) == symbols.tolist()
        assert huffman_decode_turbo(huffman_encode_scalar(symbols)) == symbols.tolist()

    def test_turbo_long_code_fallback(self):
        # Fibonacci frequencies build a maximally skewed tree whose longest
        # code exceeds the turbo LUT cap; the decoder must fall back to the
        # fast path and still agree byte for byte.
        counts = [1, 1]
        while len(counts) < 22:
            counts.append(counts[-1] + counts[-2])
        symbols = np.repeat(np.arange(len(counts)), counts)
        encoded = huffman_encode(symbols)
        assert huffman_decode_turbo(encoded) == huffman_decode(encoded)


class TestRleWireCompat:
    @pytest.fixture(params=["sparse", "dense", "all_zero", "phantom"])
    def values(self, request, rng):
        sparse = rng.integers(-5, 6, size=900)
        sparse[rng.uniform(size=900) < 0.7] = 0
        return {
            "sparse": sparse,
            "dense": rng.integers(1, 9, size=300),
            "all_zero": np.zeros(500, dtype=np.int64),
            "phantom": np.diff(shepp_logan(32).astype(np.int64), axis=0).ravel(),
        }[request.param]

    def test_arrays_match_events(self, values):
        runs, literals = rle_encode_arrays(values)
        runs_ref, literals_ref = events_to_arrays(rle_encode(values))
        assert runs.tolist() == runs_ref.tolist()
        assert literals.tolist() == literals_ref.tolist()

    def test_array_decode_inverts_event_encode(self, values):
        runs, literals = events_to_arrays(rle_encode(values))
        assert np.array_equal(rle_decode_arrays(runs, literals), values)

    def test_event_decode_inverts_array_encode(self, values):
        runs, literals = rle_encode_arrays(values)
        from repro.coding.rle import LITERAL, ZERO_RUN, RleEvent

        events, literal_index = [], 0
        for run in runs.tolist():
            if run > 0:
                events.append(RleEvent(ZERO_RUN, run))
            else:
                events.append(RleEvent(LITERAL, int(literals[literal_index])))
                literal_index += 1
        assert np.array_equal(rle_decode(events), values)

    @pytest.mark.parametrize("max_run", [1, 3, 16])
    def test_max_run_splitting_matches(self, values, max_run):
        runs, literals = rle_encode_arrays(values, max_run=max_run)
        runs_ref, literals_ref = events_to_arrays(rle_encode(values, max_run=max_run))
        assert runs.tolist() == runs_ref.tolist()
        assert literals.tolist() == literals_ref.tolist()


ENGINES = ("fast", "scalar", "turbo")


class TestSTransformCodecWireCompat:
    @pytest.mark.parametrize(
        "image_factory",
        [shepp_logan, gradient_image, lambda size: random_image(size, seed=5)],
        ids=["ct", "gradient", "random"],
    )
    def test_engines_byte_identical_and_cross_decode(self, image_factory):
        image = image_factory(64)
        codecs = {name: STransformCodec(scales=3, engine=name) for name in ENGINES}
        streams = {name: codec.encode(image) for name, codec in codecs.items()}
        for name in ENGINES[1:]:
            assert streams[name].chunks == streams["fast"].chunks
        # Full cross matrix: every tier decodes every tier's stream.
        for codec in codecs.values():
            for stream in streams.values():
                assert np.array_equal(codec.decode(stream), image)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            STransformCodec(engine="simd")


class TestLosslessCodecWireCompat:
    @pytest.mark.parametrize("use_rle", [True, False], ids=["rle", "no-rle"])
    @pytest.mark.parametrize(
        "image_factory",
        [shepp_logan, lambda size: random_image(size, seed=11)],
        ids=["ct", "random"],
    )
    def test_engines_byte_identical_and_cross_decode(self, image_factory, use_rle):
        image = image_factory(32)
        codecs = {
            name: LosslessWaveletCodec("F2", scales=2, use_rle=use_rle, engine=name)
            for name in ENGINES
        }
        streams = {name: codec.encode(image) for name, codec in codecs.items()}
        for name in ENGINES[1:]:
            assert streams[name].chunks == streams["fast"].chunks
        for codec in codecs.values():
            for stream in streams.values():
                assert np.array_equal(codec.decode(stream), image)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            LosslessWaveletCodec("F2", scales=2, engine="simd")
