"""Tests for the vectorised bit engine (repro.coding.fastbits)."""

import numpy as np
import pytest

from repro.coding.bitstream import BitReader, BitWriter
from repro.coding.fastbits import (
    bit_windows64,
    orbit,
    pack_bits,
    pack_uint_fields,
    ragged_arange,
    read_uint,
    read_uints,
    unpack_bits,
)


class TestPackUnpack:
    def test_pack_bits_matches_bitwriter(self, rng):
        bits = rng.integers(0, 2, size=77)
        writer = BitWriter()
        writer.write_bits(bits.tolist())
        assert pack_bits(bits) == writer.getvalue()

    def test_unpack_inverts_pack(self, rng):
        bits = rng.integers(0, 2, size=64).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits)), bits)

    def test_ragged_arange(self):
        assert ragged_arange([3, 0, 2]).tolist() == [0, 1, 2, 0, 1]
        assert ragged_arange([]).size == 0


class TestUintFields:
    def test_matches_bitwriter_fields(self, rng):
        widths = rng.integers(1, 17, size=50)
        values = rng.integers(0, 1 << 16, size=50) & ((1 << widths) - 1)
        writer = BitWriter()
        for value, width in zip(values.tolist(), widths.tolist()):
            writer.write_uint(value, width)
        assert pack_bits(pack_uint_fields(values, widths)) == writer.getvalue()

    def test_scalar_width_broadcast(self):
        bits = pack_uint_fields([1, 2, 3], 4)
        reader = BitReader(pack_bits(bits))
        assert [reader.read_uint(4) for _ in range(3)] == [1, 2, 3]

    def test_value_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_uint_fields([4], [2])
        with pytest.raises(ValueError):
            pack_uint_fields([-1], [4])

    def test_read_uints_roundtrip(self, rng):
        values = rng.integers(0, 32, size=40)
        bits = unpack_bits(pack_bits(pack_uint_fields(values, 5)))
        assert np.array_equal(read_uints(bits, 0, 40, 5), values)

    def test_read_uint_scalar(self):
        bits = unpack_bits(pack_bits(pack_uint_fields([12345], [16])))
        assert read_uint(bits, 0, 16) == 12345

    def test_read_past_end_raises(self):
        bits = unpack_bits(b"\x00")
        with pytest.raises(EOFError):
            read_uint(bits, 0, 16)
        with pytest.raises(EOFError):
            read_uints(bits, 0, 3, 4)


class TestEdgeWidths:
    """Zero-width fields, wide (>= 32-bit) fields, and empty field groups."""

    def test_width_zero_reads(self):
        bits = unpack_bits(b"\xff")
        assert read_uint(bits, 0, 0) == 0
        assert read_uints(bits, 0, 5, 0).tolist() == [0, 0, 0, 0, 0]
        # Zero total bits means no stream access at all — even past the end.
        assert read_uints(bits, 8, 4, 0).tolist() == [0, 0, 0, 0]

    def test_width_zero_pack(self):
        assert pack_uint_fields([0, 0], [0, 0]).size == 0
        # A zero-width field can only hold the value 0.
        with pytest.raises(ValueError):
            pack_uint_fields([1], [0])
        # Mixed widths: the zero-width field vanishes from the stream.
        bits = pack_uint_fields([0, 9], [0, 4])
        assert read_uint(bits, 0, 4) == 9

    @pytest.mark.parametrize("width", [32, 40, 57, 62])
    def test_wide_fields_roundtrip(self, rng, width):
        values = rng.integers(0, np.int64(1) << min(width, 62), size=8)
        bits = pack_uint_fields(values, width)
        assert np.array_equal(read_uints(bits, 0, 8, width), values)
        assert read_uint(bits, 0, width) == int(values[0])

    def test_wide_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_uint_fields([1 << 32], [32])

    def test_empty_field_group(self):
        assert pack_uint_fields([], []).size == 0
        assert read_uints(unpack_bits(b""), 0, 0, 7).size == 0
        assert ragged_arange([0, 0, 0]).size == 0


class TestBitWindows64:
    def test_empty_stream(self):
        assert bit_windows64(b"").size == 0

    def test_single_byte_is_left_justified(self):
        assert bit_windows64(b"\x80")[0] == np.uint64(1) << np.uint64(63)

    def test_peek_matches_read_uint(self, rng):
        data = rng.integers(0, 256, size=25, dtype=np.uint8).tobytes()
        bits = unpack_bits(data)
        windows = bit_windows64(data)
        for position in range(0, 8 * len(data) - 13):
            peek = int(
                (windows[position >> 3] << np.uint64(position & 7))
                >> np.uint64(64 - 13)
            )
            assert peek == read_uint(bits, position, 13)

    def test_accepts_memoryview_without_copy(self):
        data = bytes(range(16))
        assert np.array_equal(bit_windows64(memoryview(data)), bit_windows64(data))


class TestOrbit:
    def test_matches_scalar_walk(self, rng):
        n = 500
        successor = np.minimum(
            np.arange(n) + rng.integers(1, 5, size=n), n - 1
        ).astype(np.int32)
        for count in (0, 1, 7, 64, 129, 400):
            expected = []
            position = 3
            for _ in range(count):
                expected.append(position)
                position = int(successor[position])
            assert orbit(successor, 3, count).tolist() == expected

    def test_large_orbit_blocked_path(self):
        n = 10_000
        successor = np.minimum(np.arange(n) + 2, n - 1).astype(np.int32)
        seq = orbit(successor, 0, 4000)
        assert seq.tolist() == list(range(0, 8000, 2))
