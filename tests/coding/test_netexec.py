"""Distributed socket-pool execution: byte-identity and the executor seam.

The contract under test mirrors ``test_executor.py`` over TCP: sharding a
batch across socket workers changes *nothing* about the streams — both
codecs, every entropy engine tier (fast/scalar/turbo), software and
accelerator transforms, at 1/2/4 workers — and the ``workers="host:port"``
seam reaches the socket pool from every existing call site signature.
"""

import json
import os
import socket
import time

import numpy as np
import pytest

from repro.coding import compress_frames, decompress_frames
from repro.coding.executor import (
    ParallelExecutor,
    default_workers,
    is_socket_workers,
    make_executor,
)
from repro.coding.netexec import (
    MSG_HEARTBEAT,
    MSG_HELLO,
    PROTOCOL_VERSION,
    SocketPoolExecutor,
    SocketWorker,
    WorkerClient,
    WorkerPool,
    local_worker_pool,
    main,
    parse_worker_addresses,
    recv_message,
    send_message,
)
from repro.coding.spec import CodecSpec
from repro.imaging.mr import mr_slice
from repro.imaging.phantoms import (
    checkerboard,
    gradient_image,
    random_image,
    shepp_logan,
)


def mixed_batch_32():
    """32 mixed-size, mixed-content square frames (accelerator-compatible)."""
    makers = [
        lambda i: shepp_logan(32),
        lambda i: random_image(16, seed=i),
        lambda i: gradient_image(64),
        lambda i: checkerboard(48, tile=8),
        lambda i: mr_slice(32),
        lambda i: random_image(64, seed=100 + i),
        lambda i: shepp_logan(48),
        lambda i: random_image(32, seed=200 + i),
    ]
    return [makers[i % len(makers)](i) for i in range(32)]


#: The acceptance matrix: both codecs x {fast, scalar, turbo} entropy tiers
#: x software + accelerator transforms.
CONFIGS = [
    CodecSpec(codec="s-transform", scales=3, engine="fast"),
    CodecSpec(codec="s-transform", scales=3, engine="scalar"),
    CodecSpec(codec="s-transform", scales=3, engine="turbo"),
    CodecSpec(codec="coefficient", scales=3, engine="fast"),
    CodecSpec(codec="coefficient", scales=3, engine="scalar"),
    CodecSpec(codec="coefficient", scales=3, engine="turbo"),
    CodecSpec(codec="coefficient", scales=3, engine="fast", transform="accelerator"),
    CodecSpec(
        codec="coefficient",
        scales=2,
        engine="turbo",
        transform="accelerator",
        transform_engine="scalar",
    ),
]


def _chunks(stream):
    return stream.chunks


@pytest.fixture(scope="module")
def cluster():
    """Four named in-process socket workers, shared by the module."""
    workers = [SocketWorker(node=f"node{i}") for i in range(4)]
    for worker in workers:
        worker.start()
    yield workers
    for worker in workers:
        worker.close()


@pytest.fixture(scope="module")
def addresses(cluster):
    return [worker.address for worker in cluster]


class TestByteIdentity:
    @pytest.mark.parametrize(
        "spec",
        CONFIGS,
        ids=lambda s: f"{s.codec}-{s.engine}-{s.transform[:5]}-{s.transform_engine}",
    )
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_socket_pool_equals_serial(self, addresses, spec, workers):
        # The scalar tiers are the deliberately slow bit-by-bit references;
        # a smaller batch keeps the matrix fast without losing coverage.
        frames = mixed_batch_32()
        if spec.engine == "scalar" or spec.transform_engine == "scalar":
            frames = frames[:8]
        pool = ",".join(addresses[:workers])
        serial = compress_frames(frames, spec=spec)
        distributed = compress_frames(frames, spec=spec, workers=pool)
        assert len(distributed.streams) == len(frames)
        for a, b in zip(serial.streams, distributed.streams):
            assert _chunks(a) == _chunks(b)
        assert distributed.stats.frames == serial.stats.frames
        assert distributed.stats.pixels == serial.stats.pixels
        assert distributed.stats.compressed_bytes == serial.stats.compressed_bytes
        assert set(distributed.stats.stage_seconds) == set(serial.stats.stage_seconds)
        assert distributed.stats.workers == min(workers, len(frames))
        assert distributed.stats.wall_seconds > 0.0
        if spec.transform == "accelerator":
            # Per-frame run reports come back in frame order, like serial.
            assert [r.macrocycles for r in distributed.stats.accelerator_reports] == [
                r.macrocycles for r in serial.stats.accelerator_reports
            ]
        # And the decode direction reconstructs bit for bit through the pool.
        decoded, stats = decompress_frames(distributed, workers=pool)
        for original, reconstructed in zip(frames, decoded):
            assert np.array_equal(original, reconstructed)
        assert stats.frames == len(frames)

    def test_distributed_equals_fork_pool(self, addresses):
        """Transport does not matter: socket shards == fork shards == serial."""
        frames = mixed_batch_32()
        spec = CodecSpec(codec="s-transform", scales=3)
        fork = ParallelExecutor(2).compress(frames, spec)
        sockets = SocketPoolExecutor(",".join(addresses[:2])).compress(frames, spec)
        for a, b in zip(fork.streams, sockets.streams):
            assert _chunks(a) == _chunks(b)


class TestExecutorSeam:
    def test_is_socket_workers_classification(self):
        assert not is_socket_workers(None)
        assert not is_socket_workers(1)
        assert not is_socket_workers(4)
        assert not is_socket_workers(np.int64(2))
        assert is_socket_workers("127.0.0.1:9999")
        assert is_socket_workers(["127.0.0.1:9999"])

    def test_make_executor_resolves_transport(self, addresses):
        assert isinstance(make_executor(None), ParallelExecutor)
        assert isinstance(make_executor(2), ParallelExecutor)
        executor = make_executor(",".join(addresses[:2]))
        assert isinstance(executor, SocketPoolExecutor)
        assert executor.workers == 2
        # An executor passes through unchanged, a pool is borrowed.
        assert make_executor(executor) is executor
        pool = WorkerPool(addresses[:2])
        assert make_executor(pool).pool is pool

    def test_borrowed_pool_persists_connections(self, addresses):
        frames = [shepp_logan(32), random_image(32, seed=3)]
        with WorkerPool(addresses[:2]) as pool:
            compress_frames(frames, spec=CodecSpec(scales=2), workers=pool)
            assert pool.live_count == 2
            assert all(client.connected for client in pool._clients.values())
            compress_frames(frames, spec=CodecSpec(scales=2), workers=pool)
            assert pool.submits == 4  # two batches x two shards, same pool

    def test_owned_pool_disconnects_after_batch(self, addresses):
        executor = SocketPoolExecutor(",".join(addresses[:2]))
        executor.compress([shepp_logan(32)] * 4, CodecSpec(scales=2))
        assert executor.pool._clients == {}  # no leaked sockets

    def test_empty_batch_degenerates_to_serial(self, addresses):
        batch = SocketPoolExecutor(addresses[0]).compress([], CodecSpec(scales=2))
        assert batch.streams == []

    def test_spec_override_rejection(self, addresses):
        with pytest.raises(ValueError, match="not both"):
            SocketPoolExecutor(addresses[0]).compress(
                [shepp_logan(32)], spec=CodecSpec(), codec="s-transform"
            )

    def test_worker_nodes_registered(self, addresses, cluster):
        with WorkerPool(addresses) as pool:
            pool.ensure_connected()
            nodes = pool.nodes()
        assert sorted(nodes) == ["node0", "node1", "node2", "node3"]
        assert nodes["node2"] == cluster[2].address


class TestWorkerRpc:
    def test_hello_reports_capabilities(self, addresses):
        with WorkerClient(addresses[0]) as client:
            assert client.node == "node0"
            assert client.worker_pid == os.getpid()
            for kind in ("compress", "decompress", "verify_copy", "verify_frames"):
                assert kind in client.capabilities

    def test_echo_roundtrip(self, addresses):
        payload = {"arr": np.arange(7), "text": "x" * 1000}
        with WorkerClient(addresses[0]) as client:
            result = client.call("echo", payload)
        assert np.array_equal(result["arr"], payload["arr"])
        assert result["text"] == payload["text"]

    def test_heartbeat_counters(self, cluster):
        with SocketWorker(node="beat") as worker:
            with WorkerClient(worker.address) as client:
                before = client.heartbeat()
                client.call("echo", 1)
                client.call("echo", 2)
                after = client.heartbeat()
        assert before["node"] == after["node"] == "beat"
        assert after["jobs_done"] == before["jobs_done"] + 2
        assert after["jobs_by_kind"]["echo"] == 2
        assert after["uptime_s"] >= 0.0

    def test_shutdown_drains_worker(self):
        worker = SocketWorker(node="drain")
        worker.start()
        with WorkerClient(worker.address) as client:
            status = client.shutdown()
        assert status["node"] == "drain"
        worker._closing.wait(timeout=5)
        assert worker._closing.is_set()
        # The listening socket closes in the worker's connection thread just
        # after SHUTDOWN_OK is sent; poll until the port actually refuses.
        deadline = time.monotonic() + 5
        refused = False
        while time.monotonic() < deadline and not refused:
            try:
                probe = socket.create_connection((worker.host, worker.port), timeout=0.5)
                probe.close()
                time.sleep(0.02)
            except OSError:
                refused = True
        assert refused

    def test_framing_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_message(left, MSG_HEARTBEAT, b"\x00\x01payload")
            assert recv_message(right) == (MSG_HEARTBEAT, b"\x00\x01payload")
            send_message(left, MSG_HELLO, b"")
            assert recv_message(right) == (MSG_HELLO, b"")
            left.close()
            assert recv_message(right) is None  # clean EOF at a boundary
        finally:
            right.close()


class TestAddressParsing:
    def test_forms(self):
        assert parse_worker_addresses("a:1,b:2") == [("a", 1), ("b", 2)]
        assert parse_worker_addresses(" a:1 , b:2 ") == [("a", 1), ("b", 2)]
        assert parse_worker_addresses(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]
        assert parse_worker_addresses("::1:9000") == [("::1", 9000)]

    @pytest.mark.parametrize("bad", ["", ",", "nohost", ":1", "a:banana"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_worker_addresses(bad)


class TestDefaultWorkersEnv:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_invalid_string(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()

    def test_env_below_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match=">= 1"):
            default_workers()

    def test_env_unset_uses_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1


class TestWorkerProcesses:
    def test_subprocess_workers_end_to_end(self, capsys):
        """Real ``python -m repro.netexec`` workers: byte identity, node
        registration, and the ping CLI against a live process."""
        frames = mixed_batch_32()[:6]
        spec = CodecSpec(codec="s-transform", scales=2)
        serial = compress_frames(frames, spec=spec)
        with local_worker_pool(2, nodes=["proc0", "proc1"]) as addresses:
            pool = WorkerPool(addresses)
            with pool:
                distributed = compress_frames(frames, spec=spec, workers=pool)
                assert sorted(pool.nodes()) == ["proc0", "proc1"]
                pids = {
                    pool._clients[i].worker_pid for i in pool.live_indices()
                }
                assert os.getpid() not in pids  # genuinely out of process
            for a, b in zip(serial.streams, distributed.streams):
                assert _chunks(a) == _chunks(b)
            assert main(["ping", addresses[0]]) == 0
            status = json.loads(capsys.readouterr().out)
            assert status["node"] == "proc0"
            assert status["jobs_done"] >= 1

    def test_cli_shutdown(self, capsys):
        worker = SocketWorker(node="clidrain")
        worker.start()
        assert main(["shutdown", worker.address]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["node"] == "clidrain"
        worker._closing.wait(timeout=5)
        assert worker._closing.is_set()

    def test_cli_errors_on_dead_address(self, capsys):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["ping", f"127.0.0.1:{port}"]) == 1
        assert "error:" in capsys.readouterr().err
