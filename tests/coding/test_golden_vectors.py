"""Wire-format golden vectors: fixed encoded byte strings, pinned forever.

The property tests in ``test_wire_compat.py`` prove the engine tiers agree
with *each other*; these vectors prove they agree with the **past**.  Each
case hardcodes the exact bytes the encoder produced when the vector was
minted, so any change to the stream layout — header fields, unary runs,
canonical code assignment, zig-zag order — fails loudly here even if every
engine drifts in unison.  Every tier (``fast``, ``scalar``, ``turbo``)
must decode each golden stream to the same symbols.
"""

import numpy as np
import pytest

from repro.coding.huffman import (
    huffman_decode,
    huffman_decode_scalar,
    huffman_decode_turbo,
    huffman_encode,
    huffman_encode_scalar,
)
from repro.coding.mapper import zigzag_decode, zigzag_encode
from repro.coding.rice import (
    rice_decode,
    rice_decode_scalar,
    rice_decode_turbo,
    rice_encode,
    rice_encode_scalar,
)
from repro.coding.rle import rle_decode_arrays, rle_encode_arrays

RICE_DECODERS = {
    "fast": rice_decode,
    "scalar": rice_decode_scalar,
    "turbo": rice_decode_turbo,
}
HUFFMAN_DECODERS = {
    "fast": huffman_decode,
    "scalar": huffman_decode_scalar,
    "turbo": huffman_decode_turbo,
}

# Each vector: (symbols, optional explicit k, golden stream hex).
RICE_VECTORS = {
    "fibonacci": (
        [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 0, 7, 512, 3, 1, 0],
        None,
        "0500000012001083148355855f67d0007ffff0030400",
    ),
    "k0-unary": ([0, 1, 2, 0, 0, 3, 1, 0], 0, "000000000858e8"),
    "k11-wide": ([1000, 0, 2047, 13, 700, 700], 11, "0b000000063e80007ff00d2bc2bc"),
    "empty": ([], None, "0000000000"),
}

HUFFMAN_VECTORS = {
    "pi-digits": (
        [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6,
         4, 3, 3, 8, 3, 2, 7, 9, 5],
        "000a0106220c8418c00000080cdc75731cbf444de5da105f58",
    ),
    "single-symbol": ([2, 2, 2, 2, 2], "000300020000000a00"),
    "empty": ([], "000000000000"),
}

# One RLE-coded band exactly as the lossless codec stores it: the run
# symbols and the zig-zagged literals each go through Rice.
RLE_VALUES = [0, 0, 0, 4, 0, 0, -2, 7, 0, 0, 0, 0, 0, 1, 0, 0, 3, 0, 0, 0,
              -5, 0, 0, 0, 0, 0, 0, 0, 2]
RLE_RUNS_GOLDEN = "000000000de63e673f80"
RLE_LITERALS_GOLDEN = "0200000007c3e95660"


class TestRiceGolden:
    @pytest.mark.parametrize("name", sorted(RICE_VECTORS))
    def test_encoders_reproduce_golden_bytes(self, name):
        symbols, k, golden = RICE_VECTORS[name]
        array = np.asarray(symbols, dtype=np.int64)
        assert rice_encode(array, k=k).hex() == golden
        assert rice_encode_scalar(array, k=k).hex() == golden

    @pytest.mark.parametrize("engine", sorted(RICE_DECODERS))
    @pytest.mark.parametrize("name", sorted(RICE_VECTORS))
    def test_every_tier_decodes_golden_bytes(self, name, engine):
        symbols, _, golden = RICE_VECTORS[name]
        assert RICE_DECODERS[engine](bytes.fromhex(golden)) == symbols


class TestHuffmanGolden:
    @pytest.mark.parametrize("name", sorted(HUFFMAN_VECTORS))
    def test_encoders_reproduce_golden_bytes(self, name):
        symbols, golden = HUFFMAN_VECTORS[name]
        array = np.asarray(symbols, dtype=np.int64)
        assert huffman_encode(array).hex() == golden
        assert huffman_encode_scalar(array).hex() == golden

    @pytest.mark.parametrize("engine", sorted(HUFFMAN_DECODERS))
    @pytest.mark.parametrize("name", sorted(HUFFMAN_VECTORS))
    def test_every_tier_decodes_golden_bytes(self, name, engine):
        symbols, golden = HUFFMAN_VECTORS[name]
        assert HUFFMAN_DECODERS[engine](bytes.fromhex(golden)) == symbols


class TestRleGolden:
    def test_encode_reproduces_golden_bytes(self):
        runs, literals = rle_encode_arrays(np.asarray(RLE_VALUES, dtype=np.int64))
        assert rice_encode(runs).hex() == RLE_RUNS_GOLDEN
        assert rice_encode(zigzag_encode(literals)).hex() == RLE_LITERALS_GOLDEN

    @pytest.mark.parametrize("engine", sorted(RICE_DECODERS))
    def test_every_tier_decodes_golden_bytes(self, engine):
        decode = RICE_DECODERS[engine]
        runs = np.asarray(decode(bytes.fromhex(RLE_RUNS_GOLDEN)), dtype=np.int64)
        literals = zigzag_decode(
            np.asarray(decode(bytes.fromhex(RLE_LITERALS_GOLDEN)), dtype=np.int64)
        )
        assert rle_decode_arrays(runs, literals).tolist() == RLE_VALUES
