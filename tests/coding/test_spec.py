"""Tests for the unified codec configuration (repro.coding.spec)."""

import pytest

from repro.coding import compress_frames
from repro.coding.codec import CompressedImage, LosslessWaveletCodec
from repro.coding.pipeline import CODEC_NAMES
from repro.coding.s_transform import CompressedSImage, STransformCodec
from repro.coding.spec import (
    CodecFamily,
    CodecSpec,
    UnknownCodecError,
    codec_names,
    codec_wire_ids,
    family_for_stream,
    get_family,
    register_codec,
)
from repro.filters.catalog import get_bank
from repro.imaging.phantoms import shepp_logan


class TestRegistry:
    def test_builtin_families_registered(self):
        assert codec_names() == ("s-transform", "coefficient")
        assert get_family("s-transform").factory is STransformCodec
        assert get_family("coefficient").factory is LosslessWaveletCodec

    def test_wire_ids_stable(self):
        # The wire ids are the archive container's on-disk codec ids;
        # changing them breaks every existing archive.
        assert codec_wire_ids() == {"s-transform": 1, "coefficient": 2}

    def test_unknown_codec_raises(self):
        with pytest.raises(UnknownCodecError, match="jpeg2000"):
            get_family("jpeg2000")
        assert issubclass(UnknownCodecError, ValueError)

    def test_family_for_stream(self):
        s = CompressedSImage(scales=2, image_shape=(32, 32), bit_depth=12)
        c = CompressedImage(bank_name="F2", scales=2, image_shape=(32, 32), bit_depth=12)
        assert family_for_stream(s).name == "s-transform"
        assert family_for_stream(c).name == "coefficient"
        with pytest.raises(TypeError, match="not a compressed stream"):
            family_for_stream(object())

    def test_duplicate_registration_rejected(self):
        family = get_family("coefficient")
        with pytest.raises(ValueError, match="already registered"):
            register_codec(family)
        with pytest.raises(ValueError, match="wire id"):
            register_codec(
                CodecFamily(
                    name="coefficient-2",
                    wire_id=family.wire_id,
                    stream_type=CompressedImage,
                    factory=LosslessWaveletCodec,
                    option_names=(),
                    uses_bank=True,
                    supports_accelerator=False,
                )
            )

    def test_pipeline_and_format_tables_derive_from_registry(self):
        from repro.archive.format import CODEC_IDS

        assert CODEC_NAMES == codec_names()
        assert CODEC_IDS == codec_wire_ids()

    def test_format_tables_are_live_registry_views(self, monkeypatch):
        """Registering a family makes its wire id valid in the archive
        format tables immediately — they are views, not import-time
        snapshots."""
        import repro.coding.spec as spec_module
        from repro.archive.format import CODEC_IDS, CODEC_NAMES_BY_ID

        family = CodecFamily(
            name="test-live-view",
            wire_id=240,
            stream_type=CompressedSImage,
            factory=STransformCodec,
            option_names=("bit_depth",),
            uses_bank=False,
            supports_accelerator=False,
        )
        registry = dict(spec_module._REGISTRY)
        registry[family.name] = family
        monkeypatch.setattr(spec_module, "_REGISTRY", registry)
        assert CODEC_IDS["test-live-view"] == 240
        assert CODEC_NAMES_BY_ID[240] == "test-live-view"
        assert 240 in CODEC_NAMES_BY_ID
        import repro.coding as coding_package
        import repro.coding.pipeline as pipeline_module

        assert "test-live-view" in pipeline_module.CODEC_NAMES
        assert "test-live-view" in coding_package.CODEC_NAMES


class TestValidation:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        spec = CodecSpec()
        assert spec.codec == "s-transform"
        assert spec.scales == 4
        assert spec.engine == "fast"
        assert spec.transform == "software"
        assert spec.bank is None and spec.use_rle is None

    def test_engine_default_resolves_through_environment(self, monkeypatch):
        from repro.coding.spec import default_engine

        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        assert default_engine() == "turbo"
        assert CodecSpec().engine == "turbo"
        # An explicit engine always beats the environment override.
        assert CodecSpec(engine="scalar").engine == "scalar"
        monkeypatch.setenv("REPRO_ENGINE", "simd")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            CodecSpec()

    def test_turbo_engine_accepted_entropy_only(self):
        assert CodecSpec(engine="turbo").engine == "turbo"
        # The accelerator model has no turbo tier: transform_engine keeps
        # the narrower fast/scalar validation.
        with pytest.raises(ValueError, match="transform_engine"):
            CodecSpec(codec="coefficient", transform_engine="turbo")

    def test_coefficient_normalises_bank_and_rle(self):
        spec = CodecSpec(codec="coefficient")
        assert spec.bank == "F2"
        assert spec.use_rle is True
        assert spec.bank_name == "F2"

    def test_unknown_codec(self):
        with pytest.raises(UnknownCodecError):
            CodecSpec(codec="jpeg2000")

    @pytest.mark.parametrize("field", ["engine", "transform_engine"])
    def test_bad_engine(self, field):
        with pytest.raises(ValueError, match="unknown"):
            CodecSpec(**{field: "quantum"})

    def test_bad_transform(self):
        with pytest.raises(ValueError, match="transform"):
            CodecSpec(transform="fpga")

    def test_accelerator_requires_capable_codec(self):
        with pytest.raises(ValueError, match="accelerator"):
            CodecSpec(codec="s-transform", transform="accelerator")
        # The coefficient codec supports it.
        CodecSpec(codec="coefficient", transform="accelerator")

    def test_scales_and_bit_depth_ranges(self):
        with pytest.raises(ValueError, match="scales"):
            CodecSpec(scales=0)
        with pytest.raises(ValueError, match="bit_depth"):
            CodecSpec(bit_depth=0)
        with pytest.raises(ValueError, match="bit_depth"):
            CodecSpec(bit_depth=17)

    def test_bankless_codec_rejects_bank_fields(self):
        with pytest.raises(ValueError, match="filter bank"):
            CodecSpec(codec="s-transform", bank="F2")
        with pytest.raises(ValueError, match="use_rle"):
            CodecSpec(codec="s-transform", use_rle=True)

    def test_unknown_extra_rejected(self):
        with pytest.raises(ValueError, match="quality"):
            CodecSpec(codec="coefficient", extras=(("quality", 5),))

    def test_field_masquerading_as_extra_rejected(self):
        with pytest.raises(ValueError, match="bit_depth"):
            CodecSpec(codec="coefficient", extras=(("bit_depth", 8),))

    def test_frozen(self):
        spec = CodecSpec()
        with pytest.raises(AttributeError):
            spec.scales = 2


class TestCompatShim:
    def test_from_kwargs_matches_direct_construction(self):
        assert CodecSpec.from_kwargs() == CodecSpec()
        assert CodecSpec.from_kwargs(
            codec="coefficient", scales=3, engine="scalar", bank="F1",
            bit_depth=10, use_rle=False,
        ) == CodecSpec(
            codec="coefficient", scales=3, engine="scalar", bank="F1",
            bit_depth=10, use_rle=False,
        )

    def test_from_kwargs_forwards_extras(self):
        from repro.fixedpoint.wordlength import plan_word_lengths

        plan = plan_word_lengths(get_bank("F2"), 2)
        spec = CodecSpec.from_kwargs(codec="coefficient", scales=2, plan=plan)
        assert dict(spec.extras) == {"plan": plan}
        codec = spec.build_codec()
        assert codec.plan is plan

    def test_bank_object_accepted(self):
        bank = get_bank("F1")
        spec = CodecSpec.from_kwargs(codec="coefficient", bank=bank)
        assert spec.bank is bank
        assert spec.bank_name == "F1"

    def test_compress_frames_rejects_spec_plus_kwargs(self):
        with pytest.raises(ValueError, match="not both"):
            compress_frames([shepp_logan(32)], spec=CodecSpec(), bit_depth=12)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scales": 6},
            {"codec": "coefficient"},
            {"engine": "scalar"},
            {"transform": "software"},
        ],
    )
    def test_spec_plus_explicit_keyword_never_silently_ignored(self, kwargs):
        with pytest.raises(ValueError, match="not both"):
            compress_frames([shepp_logan(32)], spec=CodecSpec(), **kwargs)

    def test_writer_rejects_spec_plus_keywords(self, tmp_path):
        from repro.archive import ArchiveWriter

        with pytest.raises(ValueError, match="not both"):
            ArchiveWriter.create(tmp_path / "x.dwta", spec=CodecSpec(), scales=2)
        path = tmp_path / "y.dwta"
        with ArchiveWriter.create(path, spec=CodecSpec(scales=2)) as writer:
            writer.append_batch([shepp_logan(32)])
        with pytest.raises(ValueError, match="not both"):
            ArchiveWriter.append(path, spec=CodecSpec(), engine="scalar")
        # The rejected append must not leak its open file handle.
        import warnings, gc

        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            gc.collect()
        # And the archive is still appendable afterwards.
        with ArchiveWriter.append(path) as writer:
            assert writer.spec.scales == 2


class TestBuildAndReplace:
    def test_build_codec_at_clamped_scales(self):
        spec = CodecSpec(codec="coefficient", scales=4, engine="scalar")
        codec = spec.build_codec(2)
        assert isinstance(codec, LosslessWaveletCodec)
        assert codec.scales == 2
        assert codec.engine == "scalar"
        assert codec.bank.name == "F2"

    def test_with_scales_identity(self):
        spec = CodecSpec(scales=4)
        assert spec.with_scales(4) is spec
        assert spec.with_scales(2).scales == 2

    def test_replace_revalidates(self):
        spec = CodecSpec(codec="coefficient")
        with pytest.raises(ValueError):
            spec.replace(engine="quantum")
        assert spec.replace(transform="accelerator").transform == "accelerator"


class TestSerialisation:
    @pytest.mark.parametrize(
        "spec",
        [
            CodecSpec(),
            CodecSpec(codec="s-transform", scales=6, engine="scalar", bit_depth=8),
            CodecSpec(codec="coefficient", bank="F1", use_rle=False, bit_depth=10),
            CodecSpec(
                codec="coefficient",
                transform="accelerator",
                transform_engine="scalar",
                scales=2,
            ),
        ],
    )
    def test_json_roundtrip(self, spec):
        assert CodecSpec.from_json(spec.to_json()) == spec
        assert CodecSpec.from_dict(spec.to_dict()) == spec

    def test_bank_object_serialises_by_name(self):
        spec = CodecSpec(codec="coefficient", bank=get_bank("F1"))
        restored = CodecSpec.from_json(spec.to_json())
        assert restored.bank == "F1"
        assert restored.bank_name == spec.bank_name

    def test_for_stream(self):
        frames = [shepp_logan(32)]
        coeff = compress_frames(frames, codec="coefficient", scales=2, use_rle=False)
        spec = CodecSpec.for_stream(coeff.streams[0])
        assert spec.codec == "coefficient"
        assert spec.scales == 2
        assert spec.use_rle is False
        s = compress_frames(frames, codec="s-transform", scales=2)
        assert CodecSpec.for_stream(s.streams[0]).codec == "s-transform"

    def test_bank_instance_specs_compare_and_hash(self):
        """Equality/hash must not choke on bank objects (they carry
        coefficient arrays); instances compare by catalog name."""
        import dataclasses

        a = CodecSpec(codec="coefficient", bank=get_bank("F2"))
        b = CodecSpec(codec="coefficient", bank=dataclasses.replace(get_bank("F2")))
        assert a == b
        assert hash(a) == hash(b)
        assert a == CodecSpec(codec="coefficient", bank="F2")
        assert a != CodecSpec(codec="coefficient", bank="F1")
        assert a != "not a spec"
        assert len({a, b}) == 1

    def test_replace_options_routes_fields_and_extras(self):
        from repro.fixedpoint.wordlength import plan_word_lengths

        spec = CodecSpec(codec="coefficient", scales=2)
        plan = plan_word_lengths(get_bank("F2"), 2)
        updated = spec.replace_options(bit_depth=10, use_rle=False, plan=plan)
        assert updated.bit_depth == 10
        assert updated.use_rle is False
        assert dict(updated.extras) == {"plan": plan}
        assert spec.replace_options() is spec

    def test_describe_is_compact(self):
        text = CodecSpec(codec="coefficient", transform="accelerator").describe()
        assert "coefficient" in text and "bank=F2" in text
        assert "accelerator(fast)" in text
        assert "\n" not in text


class TestBatchSpec:
    def test_compress_frames_attaches_spec(self):
        batch = compress_frames([shepp_logan(32)], codec="coefficient", scales=2)
        assert batch.spec == CodecSpec(codec="coefficient", scales=2)
        assert batch.resolved_spec() is batch.spec
        # Legacy mirror fields stay in sync with the spec.
        assert batch.codec == "coefficient"
        assert batch.codec_options["bank"] == "F2"

    def test_resolved_spec_from_legacy_fields(self):
        from repro.coding.pipeline import CompressedBatch, PipelineStats

        batch = CompressedBatch(
            codec="coefficient",
            engine="scalar",
            codec_options={"bit_depth": 10, "bank": "F1"},
            streams=[],
            stats=PipelineStats(),
        )
        spec = batch.resolved_spec()
        assert spec.codec == "coefficient"
        assert spec.engine == "scalar"
        assert spec.bank == "F1"
        assert spec.bit_depth == 10
