"""Parallel/serial byte-identity of the multi-core executor.

The contract under test: sharding a batch across a process pool changes
*nothing* about the streams — every codec/engine/transform combination
produces byte-identical output at every worker count, and parallel decode
reconstructs every frame bit for bit.
"""

import numpy as np
import pytest

from repro.coding import compress_frames, decompress_frames
from repro.coding.executor import ParallelExecutor, default_workers
from repro.coding.pipeline import PipelineStats
from repro.coding.spec import CodecSpec
from repro.imaging.mr import mr_slice
from repro.imaging.phantoms import (
    checkerboard,
    gradient_image,
    random_image,
    shepp_logan,
)


def mixed_batch_32():
    """32 mixed-size, mixed-content square frames (accelerator-compatible)."""
    makers = [
        lambda i: shepp_logan(32),
        lambda i: random_image(16, seed=i),
        lambda i: gradient_image(64),
        lambda i: checkerboard(48, tile=8),
        lambda i: mr_slice(32),
        lambda i: random_image(64, seed=100 + i),
        lambda i: shepp_logan(48),
        lambda i: random_image(32, seed=200 + i),
    ]
    return [makers[i % len(makers)](i) for i in range(32)]


#: Every codec/engine/transform combination the pipeline supports.
CONFIGS = [
    CodecSpec(codec="s-transform", scales=3, engine="fast"),
    CodecSpec(codec="s-transform", scales=3, engine="scalar"),
    CodecSpec(codec="coefficient", scales=3, engine="fast"),
    CodecSpec(codec="coefficient", scales=3, engine="scalar"),
    CodecSpec(codec="coefficient", scales=3, engine="fast", transform="accelerator"),
    CodecSpec(
        codec="coefficient",
        scales=2,
        engine="fast",
        transform="accelerator",
        transform_engine="scalar",
    ),
]


def _chunks(stream):
    # CompressedImage keeps a chunk list, CompressedSImage a chunk dict;
    # both compare by value.
    return stream.chunks


class TestByteIdentity:
    @pytest.mark.parametrize(
        "spec", CONFIGS, ids=lambda s: f"{s.codec}-{s.engine}-{s.transform[:5]}-{s.transform_engine}"
    )
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_equals_serial(self, spec, workers):
        # The scalar entropy engine is the deliberately slow bit-by-bit
        # reference; a smaller batch keeps the matrix fast without losing
        # the mixed-size coverage.
        frames = mixed_batch_32()
        if spec.engine == "scalar" or spec.transform_engine == "scalar":
            frames = frames[:8]
        serial = compress_frames(frames, spec=spec)
        parallel = compress_frames(frames, spec=spec, workers=workers)
        assert len(parallel.streams) == len(frames)
        for a, b in zip(serial.streams, parallel.streams):
            assert _chunks(a) == _chunks(b)
        # Stats survive the merge: same totals, same stage names.
        assert parallel.stats.frames == serial.stats.frames
        assert parallel.stats.pixels == serial.stats.pixels
        assert parallel.stats.compressed_bytes == serial.stats.compressed_bytes
        assert set(parallel.stats.stage_seconds) == set(serial.stats.stage_seconds)
        if workers > 1:
            assert parallel.stats.workers == min(workers, len(frames))
            assert parallel.stats.wall_seconds > 0.0
            # Parallel render shows both denominators: worker CPU time and
            # batch elapsed time.
            rendered = parallel.stats.render()
            assert "cpu total" in rendered and "elapsed" in rendered
        if spec.transform == "accelerator":
            # Per-frame run reports come back in frame order, like serial.
            assert [r.macrocycles for r in parallel.stats.accelerator_reports] == [
                r.macrocycles for r in serial.stats.accelerator_reports
            ]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_decode_lossless(self, workers):
        frames = mixed_batch_32()
        batch = compress_frames(frames, codec="s-transform", scales=3)
        decoded, stats = decompress_frames(batch, workers=workers)
        assert len(decoded) == len(frames)
        for original, reconstructed in zip(frames, decoded):
            assert np.array_equal(original, reconstructed)
        assert stats.frames == len(frames)
        assert set(stats.stage_seconds) == {"entropy_decode", "inverse"}

    def test_decode_keeps_spec_transform_engine(self):
        """An omitted transform_engine override keeps the batch spec's
        stored accelerator engine instead of clobbering it to "fast"."""
        frames = [shepp_logan(32)]
        spec = CodecSpec(
            codec="coefficient",
            scales=2,
            transform="accelerator",
            transform_engine="scalar",
        )
        batch = compress_frames(frames, spec=spec)
        decoded, stats = decompress_frames(batch)
        assert np.array_equal(decoded[0], frames[0])
        # The run report proves which engine decoded: the scalar engine was
        # requested by the spec and must have been used (engine choice does
        # not change the report's counters, so assert via the spec plumbing).
        from repro.coding.pipeline import CodecResources

        resources = CodecResources(batch.resolved_spec())
        accelerator = resources.accelerator_for(resources.codec_for(2), 32, 2)
        assert accelerator.engine == "scalar"

    def test_parallel_decode_accelerator_transform(self):
        frames = [shepp_logan(32), random_image(32, seed=5), shepp_logan(64)]
        spec = CodecSpec(codec="coefficient", scales=2, transform="accelerator")
        batch = compress_frames(frames, spec=spec, workers=2)
        decoded, stats = decompress_frames(batch, workers=2)
        for original, reconstructed in zip(frames, decoded):
            assert np.array_equal(original, reconstructed)
        assert len(stats.accelerator_reports) == len(frames)
        assert all(r.direction == "inverse" for r in stats.accelerator_reports)


class TestExecutorApi:
    def test_workers_one_degenerates_to_serial(self):
        frames = [shepp_logan(32)] * 3
        executor = ParallelExecutor(1)
        batch = executor.compress(frames, CodecSpec(scales=2))
        assert batch.stats.workers == 1
        assert batch.stats.wall_seconds == 0.0  # serial path: no pool ran

    def test_single_frame_skips_the_pool(self):
        batch = ParallelExecutor(4).compress([shepp_logan(32)], CodecSpec(scales=2))
        assert batch.stats.workers == 1

    def test_more_workers_than_frames(self):
        frames = [shepp_logan(32), random_image(32, seed=1)]
        batch = ParallelExecutor(8).compress(frames, CodecSpec(scales=2))
        assert batch.stats.workers == 2  # shards are capped at the frame count

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_compress_kwargs_shim(self):
        batch = ParallelExecutor(2).compress(
            [shepp_logan(32)] * 2, codec="s-transform", scales=2
        )
        assert batch.spec == CodecSpec(scales=2)
        with pytest.raises(ValueError, match="not both"):
            ParallelExecutor(2).compress(
                [shepp_logan(32)], spec=CodecSpec(), codec="s-transform"
            )

    def test_merge_keeps_serial_elapsed_time(self):
        """Merging a serial run into a parallel one must not drop the
        serial run's elapsed time from the wall clock."""
        parallel = PipelineStats(workers=2, wall_seconds=2.0)
        parallel.add_stage("transform", 3.5)
        serial = PipelineStats()
        serial.add_stage("transform", 3.0)
        parallel.merge(serial)
        assert parallel.elapsed_seconds == pytest.approx(5.0)  # 2.0 + 3.0
        # And the symmetric order: serial accumulated first.
        first = PipelineStats()
        first.add_stage("transform", 3.0)
        second = PipelineStats(workers=2, wall_seconds=2.0)
        second.add_stage("transform", 3.5)
        first.merge(second)
        assert first.elapsed_seconds == pytest.approx(5.0)
        # All-serial merges keep the old semantics: elapsed == stage sum.
        a, b = PipelineStats(), PipelineStats()
        a.add_stage("transform", 1.0)
        b.add_stage("transform", 2.0)
        a.merge(b)
        assert a.wall_seconds == 0.0
        assert a.elapsed_seconds == pytest.approx(3.0)

    def test_merge_is_associative_on_counts(self):
        a = PipelineStats(frames=2, pixels=100, raw_bytes=10, compressed_bytes=5)
        a.add_stage("transform", 0.5)
        b = PipelineStats(frames=3, pixels=50, raw_bytes=4, compressed_bytes=2, workers=4)
        b.add_stage("transform", 0.25)
        b.add_stage("entropy_encode", 0.25)
        a.merge(b)
        assert a.frames == 5 and a.pixels == 150
        assert a.stage_seconds == {"transform": 0.75, "entropy_encode": 0.25}
        assert a.workers == 4

    def test_errors_propagate_from_workers(self):
        bad = [np.full((32, 32), 1 << 14, dtype=np.int64)]  # outside 12-bit range
        with pytest.raises(ValueError, match="range"):
            ParallelExecutor(2).compress(bad * 4, CodecSpec(scales=2))
