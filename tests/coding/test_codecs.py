"""Tests for the two lossless codecs (coefficient-exact and S-transform)."""

import numpy as np
import pytest

from repro.coding.codec import LosslessWaveletCodec
from repro.coding.s_transform import (
    STransformCodec,
    s_transform_forward_1d,
    s_transform_forward_2d,
    s_transform_inverse_1d,
    s_transform_inverse_2d,
)
from repro.imaging.phantoms import checkerboard, gradient_image, random_image, shepp_logan


class TestLosslessWaveletCodec:
    @pytest.fixture(scope="class")
    def codec(self):
        return LosslessWaveletCodec("F2", scales=3)

    def test_round_trip_ct_phantom(self, codec, ct_image_64):
        reconstructed, stream = codec.roundtrip(ct_image_64)
        assert np.array_equal(reconstructed, ct_image_64)
        assert stream.compressed_bytes > 0

    def test_round_trip_random_image(self, codec, random_image_64):
        reconstructed, _ = codec.roundtrip(random_image_64)
        assert np.array_equal(reconstructed, random_image_64)

    def test_round_trip_all_banks(self, random_image_32):
        for bank_name in ("F1", "F4", "F5"):
            codec = LosslessWaveletCodec(bank_name, scales=2)
            reconstructed, _ = codec.roundtrip(random_image_32)
            assert np.array_equal(reconstructed, random_image_32)

    def test_round_trip_without_rle(self, ct_image_64):
        codec = LosslessWaveletCodec("F2", scales=2, use_rle=False)
        reconstructed, stream = codec.roundtrip(ct_image_64)
        assert np.array_equal(reconstructed, ct_image_64)
        assert all(not chunk.use_rle for chunk in stream.chunks)

    def test_stream_accounting(self, codec, ct_image_64):
        stream = codec.encode(ct_image_64)
        assert stream.original_bytes == 64 * 64 * 12 // 8
        assert stream.bits_per_pixel == pytest.approx(
            8 * stream.compressed_bytes / (64 * 64)
        )
        assert set(stream.size_by_scale()) == {1, 2, 3}

    def test_chunk_lookup(self, codec, ct_image_64):
        stream = codec.encode(ct_image_64)
        assert stream.chunk("HH", 3).shape == (8, 8)
        with pytest.raises(KeyError):
            stream.chunk("HH", 1)

    def test_decoder_configuration_mismatch_rejected(self, codec, ct_image_64):
        stream = codec.encode(ct_image_64)
        other = LosslessWaveletCodec("F1", scales=3)
        with pytest.raises(ValueError):
            other.decode(stream)

    def test_rejects_out_of_range_image(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.full((16, 16), 5000, dtype=np.int64))

    def test_rejects_non_2d(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.zeros(64, dtype=np.int64))

    def test_invalid_bit_depth_rejected(self):
        with pytest.raises(ValueError):
            LosslessWaveletCodec("F2", scales=2, bit_depth=0)


class TestSTransform:
    def test_1d_round_trip(self, rng):
        signal = rng.integers(0, 4096, size=64)
        approx, detail = s_transform_forward_1d(signal)
        assert np.array_equal(s_transform_inverse_1d(approx, detail), signal)

    def test_1d_rejects_odd_length(self):
        with pytest.raises(ValueError):
            s_transform_forward_1d(np.arange(7))

    def test_1d_rejects_floats(self):
        with pytest.raises(ValueError):
            s_transform_forward_1d(np.linspace(0, 1, 8))

    def test_2d_round_trip(self, rng):
        image = rng.integers(0, 4096, size=(32, 32))
        pyramid = s_transform_forward_2d(image, 3)
        assert np.array_equal(s_transform_inverse_2d(pyramid), image)

    def test_2d_pyramid_structure(self):
        pyramid = s_transform_forward_2d(shepp_logan(64), 4)
        assert pyramid.scales == 4
        assert pyramid.approximation.shape == (4, 4)
        assert pyramid.details[0]["HG"].shape == (32, 32)

    def test_2d_scale_validation(self):
        with pytest.raises(ValueError):
            s_transform_forward_2d(np.zeros((24, 24), dtype=np.int64), 4)


class TestSTransformCodec:
    @pytest.fixture(scope="class")
    def codec(self):
        return STransformCodec(scales=4)

    @pytest.mark.parametrize(
        "image_factory",
        [shepp_logan, gradient_image, lambda size: checkerboard(size, tile=4),
         lambda size: random_image(size, seed=9)],
        ids=["ct", "gradient", "checkerboard", "random"],
    )
    def test_lossless_on_all_workloads(self, codec, image_factory):
        image = image_factory(64)
        reconstructed, _ = codec.roundtrip(image)
        assert np.array_equal(reconstructed, image)

    def test_compresses_smooth_medical_content(self, codec):
        _, stream = codec.roundtrip(shepp_logan(128))
        assert stream.compression_ratio > 1.0
        assert stream.bits_per_pixel < 12.0

    def test_random_images_do_not_compress(self, codec):
        _, stream = codec.roundtrip(random_image(64, seed=0))
        assert stream.compression_ratio < 1.1

    def test_scale_mismatch_rejected(self, codec):
        stream = codec.encode(shepp_logan(64))
        other = STransformCodec(scales=2)
        with pytest.raises(ValueError):
            other.decode(stream)

    def test_missing_band_rejected(self, codec):
        stream = codec.encode(shepp_logan(64))
        del stream.chunks[("GG", 1)]
        with pytest.raises(KeyError):
            codec.decode(stream)

    def test_range_validation(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.full((32, 32), 9999, dtype=np.int64))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            STransformCodec(scales=0)
        with pytest.raises(ValueError):
            STransformCodec(bit_depth=40)
