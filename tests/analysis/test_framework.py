"""Tests for repro.analysis.tabulate and repro.analysis.record."""

import pytest

from repro.analysis.record import Comparison, ExperimentResult
from repro.analysis.tabulate import format_cell, format_table


class TestFormatCell:
    def test_none_is_empty(self):
        assert format_cell(None) == ""

    def test_bool_rendering(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_digits(self):
        assert format_cell(3.14159, float_digits=2) == "3.14"

    def test_large_float_uses_scientific(self):
        assert "e" in format_cell(8.99e6)

    def test_nan_and_inf(self):
        assert format_cell(float("nan")) == "nan"
        assert format_cell(float("inf")) == "inf"

    def test_integers_unchanged(self):
        assert format_cell(512) == "512"


class TestFormatTable:
    def test_basic_rendering(self):
        table = format_table(("name", "value"), [("a", 1), ("bb", 22)])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0]
        assert "bb" in lines[3]

    def test_title_prepended(self):
        table = format_table(("x",), [(1,)], title="My table")
        assert table.splitlines()[0] == "My table"

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_columns_are_aligned(self):
        table = format_table(("col",), [(1,), (100,)])
        lines = table.splitlines()
        assert len(lines[2]) == len(lines[3])


class TestComparison:
    def test_relative_error(self):
        comparison = Comparison("x", paper_value=10.0, measured_value=11.0)
        assert comparison.relative_error == pytest.approx(0.1)
        assert comparison.within_tolerance  # default tolerance 10%

    def test_outside_tolerance(self):
        comparison = Comparison("x", 10.0, 12.0, tolerance=0.1)
        assert not comparison.within_tolerance

    def test_zero_paper_value(self):
        assert Comparison("x", 0.0, 0.0).relative_error == 0.0
        assert Comparison("x", 0.0, 1.0).relative_error == float("inf")

    def test_row_contains_status(self):
        row = Comparison("q", 1.0, 1.0).row()
        assert row[0] == "q"
        assert row[-1] == "ok"


class TestExperimentResult:
    def test_add_row_and_comparison(self):
        result = ExperimentResult("exp", "Title", headers=("a", "b"))
        result.add_row((1, 2))
        result.add_comparison("metric", 10.0, 10.5)
        result.add_note("a note")
        assert len(result.rows) == 1
        assert result.all_within_tolerance

    def test_render_includes_everything(self):
        result = ExperimentResult("exp", "Title", headers=("a",))
        result.add_row((1,))
        result.add_comparison("metric", 1.0, 2.0, tolerance=0.05)
        result.add_note("deviation explained")
        text = result.render()
        assert "Title" in text
        assert "DEVIATES" in text
        assert "deviation explained" in text

    def test_all_within_tolerance_reflects_failures(self):
        result = ExperimentResult("exp", "Title", headers=("a",))
        result.add_comparison("good", 1.0, 1.0)
        result.add_comparison("bad", 1.0, 2.0, tolerance=0.01)
        assert not result.all_within_tolerance
