"""Tests for the per-table/figure experiment drivers.

These are the executable form of EXPERIMENTS.md: every driver must run and
every paper-vs-measured comparison it declares must fall within its declared
tolerance.  One test per experiment keeps failures attributable.
"""

import pytest

from repro.analysis.experiments import EXPERIMENTS, experiment_ids, run_all, run_experiment


class TestRegistry:
    def test_all_design_md_experiments_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "fig1", "fig2", "fig3", "fig4", "eq2", "headline", "lossless",
        }
        assert set(experiment_ids()) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_run_all_returns_every_experiment(self):
        # Smoke check on the cheap experiments only (run_all is exercised by
        # the EXPERIMENTS.md generator; here we only check the plumbing).
        assert set(EXPERIMENTS) == set(experiment_ids())


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_reproduces_paper_values(experiment_id):
    result = run_experiment(experiment_id)
    assert result.experiment_id == experiment_id
    assert result.rows, "experiment produced no table rows"
    assert result.comparisons, "experiment declared no paper comparisons"
    failing = [c.quantity for c in result.comparisons if not c.within_tolerance]
    assert not failing, f"comparisons outside tolerance: {failing}"


def test_render_produces_readable_report():
    result = run_experiment("table2")
    text = result.render()
    assert "Table II" in text
    assert "Paper vs measured" in text
