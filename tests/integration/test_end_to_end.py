"""Integration tests spanning several subsystems.

These exercise the paths a downstream user actually runs: phantom ->
fixed-point transform -> codec -> file, hardware model vs software model,
and the analytic performance model vs the cycle-accurate simulator.
"""

import numpy as np
import pytest

from repro.arch import ArchitectureConfig, DwtAccelerator, estimate_performance
from repro.coding import LosslessWaveletCodec, STransformCodec
from repro.filters import get_bank
from repro.fxdwt import FixedPointDWT, verify_lossless
from repro.imaging import archive_dataset, read_pgm, standard_dataset, write_pgm
from repro.perf import PentiumBaseline, WorkloadModel, speedup_report


class TestMedicalArchivePipeline:
    def test_archive_compresses_and_restores_every_slice(self, tmp_path):
        dataset = archive_dataset(slices=3, size=32)
        codec = STransformCodec(scales=3)
        total_original = 0
        total_compressed = 0
        for name, image in dataset:
            reconstructed, stream = codec.roundtrip(image)
            assert np.array_equal(reconstructed, image)
            total_original += stream.original_bytes
            total_compressed += stream.compressed_bytes
            # Round-trip through the PGM container as the archive would.
            path = tmp_path / f"{name}.pgm"
            write_pgm(path, reconstructed, max_value=4095)
            assert np.array_equal(read_pgm(path), image)
        assert total_compressed < 2 * total_original  # sanity on accounting

    def test_coefficient_exact_codec_round_trips_phantoms(self):
        dataset = standard_dataset(size=32)
        codec = LosslessWaveletCodec("F2", scales=2)
        for _, image in dataset:
            reconstructed, _ = codec.roundtrip(image)
            assert np.array_equal(reconstructed, image)


class TestHardwareSoftwareEquivalence:
    @pytest.mark.parametrize("bank_name", ["F2", "F5"])
    def test_accelerator_equals_software_for_multiple_banks(self, bank_name, random_image_32):
        config = ArchitectureConfig(image_size=32, scales=2, bank_name=bank_name)
        accelerator = DwtAccelerator(config)
        pyramid, _ = accelerator.forward(random_image_32)
        software = FixedPointDWT(get_bank(bank_name), 2).forward(random_image_32)
        assert np.array_equal(pyramid.approximation, software.approximation)
        for ours, reference in zip(pyramid.details, software.details):
            for key in ("hg", "gh", "gg"):
                assert np.array_equal(getattr(ours, key), getattr(reference, key))

    def test_hardware_roundtrip_matches_lossless_report(self, random_image_32):
        config = ArchitectureConfig(image_size=32, scales=2)
        accelerator = DwtAccelerator(config)
        reconstructed, _, _, _ = accelerator.roundtrip(random_image_32)
        report = verify_lossless(random_image_32, get_bank("F2"), 2)
        assert report.lossless
        assert np.array_equal(reconstructed, random_image_32)


class TestPerformanceConsistency:
    def test_simulator_and_analytic_model_agree_on_cycles(self, random_image_32):
        config = ArchitectureConfig(image_size=32, scales=2)
        accelerator = DwtAccelerator(config)
        _, report = accelerator.forward(random_image_32)
        estimate = estimate_performance(config)
        assert report.macrocycles == estimate.macrocycles
        assert report.total_cycles == estimate.total_cycles

    def test_speedup_report_consistent_with_its_parts(self):
        report = speedup_report()
        baseline = PentiumBaseline()
        workload = WorkloadModel()
        assert report.baseline_seconds == pytest.approx(
            baseline.seconds_for_workload(workload)
        )
        assert report.speedup == pytest.approx(
            report.baseline_seconds / report.accelerator_seconds
        )


class TestPublicApi:
    def test_top_level_exports_work_together(self, random_image_32):
        import repro

        bank = repro.get_bank("F2")
        engine = repro.FixedPointDWT(bank, 2)
        reconstructed, _ = engine.roundtrip(random_image_32)
        assert np.array_equal(reconstructed, random_image_32)
        assert repro.available_banks() == ["F1", "F2", "F3", "F4", "F5", "F6"]
        assert repro.__version__

    def test_paper_configuration_accessible_from_top_level(self):
        import repro

        estimate = repro.estimate_performance(repro.paper_configuration())
        assert estimate.images_per_second == pytest.approx(3.5, rel=0.05)
