"""Tests for repro.imaging.metrics, io_pgm and dataset."""

import numpy as np
import pytest

from repro.imaging.dataset import archive_dataset, paper_validation_dataset, standard_dataset
from repro.imaging.io_pgm import read_pgm, write_pgm
from repro.imaging.metrics import (
    are_identical,
    fidelity_report,
    mae,
    max_abs_error,
    mse,
    psnr,
    snr,
)


class TestMetrics:
    def test_identical_images(self):
        image = np.arange(16).reshape(4, 4)
        assert are_identical(image, image.copy())
        assert mse(image, image) == 0.0
        assert psnr(image, image) == float("inf")
        assert snr(image, image) == float("inf")

    def test_known_error_values(self):
        reference = np.zeros((2, 2))
        candidate = np.array([[1.0, 0.0], [0.0, -1.0]])
        assert mse(reference, candidate) == pytest.approx(0.5)
        assert mae(reference, candidate) == pytest.approx(0.5)
        assert max_abs_error(reference, candidate) == 1.0

    def test_psnr_uses_explicit_peak(self):
        reference = np.full((4, 4), 100.0)
        candidate = reference + 1.0
        assert psnr(reference, candidate, peak=4095) > psnr(reference, candidate, peak=100)

    def test_psnr_invalid_peak(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.ones((2, 2)), peak=0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_fidelity_report_bundles_everything(self):
        reference = np.arange(16).reshape(4, 4).astype(float)
        report = fidelity_report(reference, reference + 1.0, peak=4095)
        assert not report.identical
        assert report.max_abs_error == 1.0
        assert report.psnr_db > 60.0


class TestPgmIo:
    def test_round_trip_12bit(self, tmp_path):
        image = np.arange(64, dtype=np.int64).reshape(8, 8) * 60
        path = tmp_path / "test.pgm"
        write_pgm(path, image, max_value=4095)
        back = read_pgm(path)
        assert np.array_equal(back, image)

    def test_round_trip_8bit(self, tmp_path):
        image = np.arange(64, dtype=np.int64).reshape(8, 8) % 256
        path = tmp_path / "test8.pgm"
        write_pgm(path, image, max_value=255)
        assert np.array_equal(read_pgm(path), image)

    def test_ascii_variant_read(self, tmp_path):
        path = tmp_path / "ascii.pgm"
        path.write_bytes(b"P2\n# comment\n2 2\n255\n0 10\n20 30\n")
        assert np.array_equal(read_pgm(path), np.array([[0, 10], [20, 30]]))

    def test_rejects_negative_values(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "bad.pgm", np.array([[-1]]), max_value=255)

    def test_rejects_values_above_maxval(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "bad.pgm", np.array([[300]]), max_value=255)

    def test_rejects_non_pgm_file(self, tmp_path):
        path = tmp_path / "not.pgm"
        path.write_bytes(b"GIF89a")
        with pytest.raises(ValueError):
            read_pgm(path)

    def test_rejects_truncated_payload(self, tmp_path):
        path = tmp_path / "short.pgm"
        path.write_bytes(b"P5\n4 4\n255\n\x00\x01")
        with pytest.raises(ValueError):
            read_pgm(path)


class TestDatasets:
    def test_standard_dataset_contents(self):
        dataset = standard_dataset(size=32)
        assert set(dataset.names()) == {
            "ct_phantom", "mr_slice", "gradient", "checkerboard", "random",
        }
        assert dataset.total_pixels() == 5 * 32 * 32

    def test_dataset_validation_passes(self):
        standard_dataset(size=32).validate()
        archive_dataset(slices=3, size=32).validate()
        paper_validation_dataset(size=32).validate()

    def test_archive_dataset_slice_count(self):
        dataset = archive_dataset(slices=4, size=32)
        assert len(dataset) == 4

    def test_get_unknown_image(self):
        dataset = standard_dataset(size=32)
        with pytest.raises(KeyError):
            dataset.get("missing")

    def test_map_produces_new_dataset(self):
        dataset = standard_dataset(size=32)
        doubled = dataset.map(lambda image: np.clip(image * 2, 0, 4095))
        assert doubled.get("gradient").max() == 4095
        assert dataset.get("gradient").max() == 4095  # original untouched

    def test_validation_catches_out_of_range(self):
        dataset = standard_dataset(size=32)
        broken = dataset.map(lambda image: image + 100000)
        with pytest.raises(ValueError):
            broken.validate()

    def test_iteration_yields_name_image_pairs(self):
        for name, image in standard_dataset(size=32):
            assert isinstance(name, str)
            assert image.shape == (32, 32)
