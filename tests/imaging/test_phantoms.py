"""Tests for repro.imaging.phantoms and repro.imaging.mr (synthetic workloads)."""

import numpy as np
import pytest

from repro.imaging.mr import bias_field, mr_slice, rician_noise
from repro.imaging.phantoms import (
    DEFAULT_BIT_DEPTH,
    checkerboard,
    ct_slice_series,
    gradient_image,
    random_image,
    shepp_logan,
)


class TestBasicGenerators:
    def test_random_image_range_and_dtype(self):
        image = random_image(32, bit_depth=12, seed=0)
        assert image.shape == (32, 32)
        assert image.dtype == np.int64
        assert image.min() >= 0
        assert image.max() <= 4095

    def test_random_image_deterministic_per_seed(self):
        assert np.array_equal(random_image(16, seed=3), random_image(16, seed=3))
        assert not np.array_equal(random_image(16, seed=3), random_image(16, seed=4))

    def test_gradient_spans_full_range(self):
        image = gradient_image(64)
        assert image.min() == 0
        assert image.max() == 4095

    def test_checkerboard_has_two_levels(self):
        image = checkerboard(32, tile=4)
        assert set(np.unique(image)) == {0, 4095}

    def test_checkerboard_tile_validation(self):
        with pytest.raises(ValueError):
            checkerboard(32, tile=0)

    def test_default_bit_depth_is_12(self):
        assert DEFAULT_BIT_DEPTH == 12

    def test_custom_bit_depth(self):
        image = random_image(16, bit_depth=8, seed=0)
        assert image.max() <= 255


class TestSheppLogan:
    def test_shape_and_range(self):
        image = shepp_logan(64)
        assert image.shape == (64, 64)
        assert image.min() >= 0
        assert image.max() == 4095

    def test_has_smooth_interior_structure(self):
        image = shepp_logan(128).astype(float)
        # The skull ring is the brightest structure and the background is dark.
        assert image[0, 0] == 0
        assert image[64, 64] > 0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            shepp_logan(1)

    def test_ct_series_varies_between_slices(self):
        series = ct_slice_series(count=3, size=32, seed=1)
        assert len(series) == 3
        assert not np.array_equal(series[0], series[2])

    def test_ct_series_within_range(self):
        for slice_image in ct_slice_series(count=2, size=32):
            assert slice_image.min() >= 0
            assert slice_image.max() <= 4095

    def test_ct_series_count_validation(self):
        with pytest.raises(ValueError):
            ct_slice_series(count=0)


class TestMrGenerators:
    def test_bias_field_range(self):
        field = bias_field(32, strength=0.3, seed=0)
        assert field.shape == (32, 32)
        assert field.min() >= 0.7 - 1e-9
        assert field.max() <= 1.3 + 1e-9

    def test_bias_field_strength_validation(self):
        with pytest.raises(ValueError):
            bias_field(32, strength=1.5)

    def test_rician_noise_non_negative(self):
        noisy = rician_noise(np.zeros((16, 16)), sigma=5.0, seed=0)
        assert np.all(noisy >= 0)

    def test_rician_noise_sigma_validation(self):
        with pytest.raises(ValueError):
            rician_noise(np.zeros((4, 4)), sigma=-1.0)

    def test_mr_slice_is_valid_12bit_image(self):
        image = mr_slice(32, seed=2)
        assert image.dtype == np.int64
        assert image.min() >= 0
        assert image.max() <= 4095

    def test_mr_slice_differs_from_clean_phantom(self):
        assert not np.array_equal(mr_slice(32, seed=0), shepp_logan(32))
