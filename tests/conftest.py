"""Shared fixtures of the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.filters import FILTER_NAMES, get_bank
from repro.imaging import random_image, shepp_logan


@pytest.fixture(scope="session")
def bank_f2():
    """The default 13/11-tap bank the paper's worked examples use."""
    return get_bank("F2")


@pytest.fixture(scope="session", params=FILTER_NAMES)
def any_bank(request):
    """Parametrised over all six Table I banks."""
    return get_bank(request.param)


@pytest.fixture(scope="session")
def ct_image_64():
    """A 64x64 12-bit CT-like phantom."""
    return shepp_logan(64)


@pytest.fixture(scope="session")
def random_image_64():
    """A 64x64 12-bit random image (the paper's own validation input)."""
    return random_image(64, seed=0)


@pytest.fixture(scope="session")
def random_image_32():
    """A 32x32 12-bit random image for the slower cycle-accurate tests."""
    return random_image(32, seed=1)


@pytest.fixture
def rng():
    """A deterministic NumPy random generator for per-test noise."""
    return np.random.default_rng(1234)
