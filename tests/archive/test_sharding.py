"""Sharded archive sets: manifest, routing, invariance, parallel packs."""

import numpy as np
import pytest

from repro.archive import (
    ArchiveFormatError,
    ArchiveIntegrityError,
    ArchiveReader,
    ArchiveWriter,
    HashRouter,
    RangeRouter,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    ShardManifest,
    is_sharded,
    make_router,
    open_archive,
)
from repro.archive.format import MANIFEST_VERSION, pack_manifest, unpack_manifest
from repro.coding.spec import CodecSpec
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive


def series(count=8, size=32, seed=3):
    return ct_slice_series(count=count, size=size, seed=seed)


def names_for(count):
    return [f"slice_{i:03d}" for i in range(count)]


def make_set(tmp_path, shards, frames, label="set", **kwargs):
    path = tmp_path / f"{label}.dwts"
    with ShardedArchiveWriter.create(path, shards=shards, **kwargs) as writer:
        writer.append_batch(frames, names=names_for(len(frames)))
    return path


# -- manifest ---------------------------------------------------------------------------

class TestManifest:
    def test_roundtrip(self):
        manifest = ShardManifest(
            version=MANIFEST_VERSION,
            router="hash",
            shard_names=("a.shard000.dwta", "a.shard001.dwta"),
            spec_json=CodecSpec().to_json(),
        )
        assert unpack_manifest(pack_manifest(manifest)) == manifest

    def test_range_roundtrip(self):
        manifest = ShardManifest(
            version=MANIFEST_VERSION,
            router="range",
            shard_names=("s0", "s1", "s2"),
            spec_json=CodecSpec().to_json(),
            boundaries=("m", "t"),
        )
        assert unpack_manifest(pack_manifest(manifest)) == manifest

    def test_bad_magic(self):
        with pytest.raises(ArchiveFormatError, match="bad magic"):
            unpack_manifest(b"\x00" * 64)

    def test_corrupted_manifest(self):
        manifest = ShardManifest(
            version=MANIFEST_VERSION,
            router="hash",
            shard_names=("s0",),
            spec_json=CodecSpec().to_json(),
        )
        data = bytearray(pack_manifest(manifest))
        data[20] ^= 0x01
        with pytest.raises(ArchiveIntegrityError, match="checksum"):
            unpack_manifest(bytes(data))

    def test_boundary_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="boundaries"):
            pack_manifest(
                ShardManifest(
                    version=MANIFEST_VERSION,
                    router="range",
                    shard_names=("s0", "s1"),
                    spec_json="{}",
                    boundaries=(),
                )
            )


# -- routers ----------------------------------------------------------------------------

class TestRouters:
    def test_hash_router_deterministic_and_in_range(self):
        router = HashRouter(4)
        for name in names_for(64):
            shard = router.route(name)
            assert 0 <= shard < 4
            assert router.route(name) == shard  # stable

    def test_hash_router_spreads(self):
        router = HashRouter(4)
        used = {router.route(name) for name in names_for(64)}
        assert used == {0, 1, 2, 3}

    def test_range_router(self):
        router = RangeRouter(3, ["b", "d"])
        assert router.route("a") == 0
        assert router.route("b") == 1  # boundary itself goes right
        assert router.route("c") == 1
        assert router.route("zebra") == 2

    def test_range_router_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            RangeRouter(3, ["d", "b"])

    def test_make_router_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("modulo", 2)


# -- resharding invariance (acceptance) -------------------------------------------------

class TestReshardingInvariance:
    def test_payloads_and_pixels_identical_across_shard_counts(self, tmp_path):
        """1 shard vs N shards: same per-frame payload bytes, same pixels."""
        frames = series(count=10)
        single = tmp_path / "plain.dwta"
        with ArchiveWriter.create(single) as writer:
            writer.append_batch(frames, names=names_for(10))
        set1 = make_set(tmp_path, 1, frames, label="one")
        set3 = make_set(tmp_path, 3, frames, label="three")

        with ArchiveReader(single) as plain, ShardedArchiveReader(
            set1
        ) as r1, ShardedArchiveReader(set3) as r3:
            assert r1.names() == r3.names() == sorted(plain.names())
            for name in plain.names():
                payload = plain.read_payload(name)
                assert r1.read_payload(name) == payload
                assert r3.read_payload(name) == payload
            decoded1, _ = r1.decode_all()
            decoded3, _ = r3.decode_all()
            for a, b in zip(decoded1, decoded3):
                assert np.array_equal(a, b)
            # And both match the source pixels (set order is name-sorted,
            # names_for() is already sorted, so positions line up).
            for image, original in zip(decoded3, frames):
                assert np.array_equal(image, original)

    def test_parallel_pack_byte_identical_to_serial(self, tmp_path):
        """One end-to-end worker per shard changes nothing about the bytes."""
        frames = series(count=10)
        serial = make_set(tmp_path, 3, frames, label="serial")
        parallel = make_set(tmp_path, 3, frames, label="parallel", workers=3)
        serial_shards = sorted(tmp_path.glob("serial.shard*.dwta"))
        parallel_shards = sorted(tmp_path.glob("parallel.shard*.dwta"))
        assert len(serial_shards) == len(parallel_shards) == 3
        for a, b in zip(serial_shards, parallel_shards):
            assert a.read_bytes() == b.read_bytes()


# -- routed random access (acceptance) --------------------------------------------------

class TestRoutedAccess:
    def test_decode_by_name_opens_only_target_shard(self, tmp_path):
        frames = series(count=12)
        path = make_set(tmp_path, 4, frames)
        probe = "slice_007"
        with ShardedArchiveReader(tmp_path / "set.dwts") as locator:
            expected_shard = locator.router.route(probe)
            expected_length = locator.find(probe).length

        with ShardedArchiveReader(path) as reader:
            image = reader.decode(probe)
            assert np.array_equal(image, frames[7])
            # The router sent us to exactly one shard, and only that
            # frame's payload bytes were read — the counters are the proof.
            assert reader.opened_shards == [expected_shard]
            assert reader.bytes_read == expected_length

    def test_decode_by_index_uses_set_order(self, tmp_path):
        frames = series(count=6)
        path = make_set(tmp_path, 3, frames)
        with ShardedArchiveReader(path) as reader:
            assert np.array_equal(reader.decode(2), frames[2])
            assert np.array_equal(reader.decode(reader.find("slice_005")), frames[5])

    def test_missing_frame(self, tmp_path):
        path = make_set(tmp_path, 2, series(count=4))
        with ShardedArchiveReader(path) as reader:
            with pytest.raises(KeyError, match="no frame named"):
                reader.decode("nope")


# -- writer behaviour -------------------------------------------------------------------

class TestShardedWriter:
    def test_create_refuses_to_clobber(self, tmp_path):
        make_set(tmp_path, 2, series(count=2))
        with pytest.raises(FileExistsError):
            ShardedArchiveWriter.create(tmp_path / "set.dwts", shards=2)

    def test_append_inherits_manifest_spec(self, tmp_path):
        frames = series(count=4)
        path = tmp_path / "set.dwts"
        spec = CodecSpec(codec="coefficient", scales=2, bank="F2")
        with ShardedArchiveWriter.create(path, shards=2, spec=spec) as writer:
            writer.append_batch(frames, names=names_for(4))
        with ShardedArchiveWriter.append(path) as writer:
            assert writer.spec == spec
            writer.append_batch(series(count=2, seed=9), names=["extra_0", "extra_1"])
        with ShardedArchiveReader(path) as reader:
            assert len(reader) == 6
            assert {entry.codec for entry in reader} == {"coefficient"}
            assert {entry.scales for entry in reader} == {2}

    def test_duplicate_names_rejected(self, tmp_path):
        path = make_set(tmp_path, 2, series(count=3))
        with ShardedArchiveWriter.append(path) as writer:
            with pytest.raises(ValueError, match="already has a frame"):
                writer.append_batch(series(count=1, seed=8), names=["slice_001"])

    def test_auto_names_are_set_unique(self, tmp_path):
        path = tmp_path / "auto.dwts"
        with ShardedArchiveWriter.create(path, shards=2) as writer:
            writer.append_batch(series(count=3))
        with ShardedArchiveWriter.append(path) as writer:
            writer.append_batch(series(count=2, seed=7))
        with ShardedArchiveReader(path) as reader:
            assert len(set(reader.names())) == 5

    def test_empty_shard_is_valid_and_spec_aware(self, tmp_path):
        """A shard that happens to receive no frames is still a clean,
        finalised archive the tools can open."""
        path = tmp_path / "sparse.dwts"
        with ShardedArchiveWriter.create(path, shards=4) as writer:
            writer.append_batch(series(count=1))
        with ShardedArchiveReader(path) as reader:
            report = reader.verify(deep=True)
            assert report["frames"] == 1 and report["shards"] == 4

    def test_range_router_set(self, tmp_path):
        frames = series(count=6)
        path = tmp_path / "ranged.dwts"
        with ShardedArchiveWriter.create(
            path, shards=2, router="range", boundaries=["slice_003"]
        ) as writer:
            writer.append_batch(frames, names=names_for(6))
        with ShardedArchiveReader(path) as reader:
            assert reader.router.route("slice_000") == 0
            assert reader.router.route("slice_004") == 1
            with ArchiveReader(reader.shard_paths[0]) as shard0:
                assert shard0.names() == names_for(3)
            decoded, _ = reader.decode_all()
            for image, original in zip(decoded, frames):
                assert np.array_equal(image, original)


# -- open_archive dispatch --------------------------------------------------------------

class TestOpenArchive:
    def test_dispatch_by_magic(self, tmp_path):
        frames = series(count=2)
        sharded = make_set(tmp_path, 2, frames)
        plain = tmp_path / "plain.dwta"
        with ArchiveWriter.create(plain) as writer:
            writer.append_batch(frames)
        assert is_sharded(sharded) and not is_sharded(plain)
        with open_archive(sharded) as reader:
            assert isinstance(reader, ShardedArchiveReader)
        with open_archive(plain) as reader:
            assert isinstance(reader, ArchiveReader)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises((ArchiveFormatError, FileNotFoundError)):
            ShardedArchiveReader(tmp_path / "absent.dwts")
