"""Shared plumbing for the HTTP server tests: a tiny raw asyncio client.

Deliberately *not* ``http.client``: the tests exercise the server's own
HTTP/1.1 parser — including malformed input no compliant client library
would emit — so requests are composed byte by byte over a plain asyncio
connection.
"""

import asyncio
import contextlib
import json

import numpy as np

from repro.archive import ArchiveHTTPServer, ArchiveService, ArchiveWriter
from repro.archive.replication import ReplicatedShardSet
from repro.archive.server import encode_ingest_record
from repro.archive.sharding import ShardedArchiveWriter
from repro.imaging import ct_slice_series


def frame_names(count):
    return [f"slice_{i:03d}" for i in range(count)]


def series(count=9, size=32, seed=5):
    """A named synthetic CT series: ``{name: frame}`` in series order."""
    return dict(zip(frame_names(count), ct_slice_series(count=count, size=size, seed=seed)))


def build_plain(path, frames, scales=2):
    with ArchiveWriter.create(path, scales=scales) as writer:
        writer.append_batch(list(frames.values()), names=list(frames))
    return path

def build_sharded(path, frames, shards=3, scales=2):
    with ShardedArchiveWriter.create(path, shards=shards, scales=scales) as writer:
        writer.append_batch(list(frames.values()), names=list(frames))
    return path


def build_replicated(path, frames, shards=4, replicas=1, scales=2):
    with ReplicatedShardSet.create(
        path, shards=shards, replicas=replicas, scales=scales
    ) as writer:
        writer.append_batch(list(frames.values()), names=list(frames))
    return path


@contextlib.asynccontextmanager
async def running_server(target, **service_options):
    """An :class:`ArchiveHTTPServer` on an ephemeral port, closed on exit."""
    server = ArchiveHTTPServer(ArchiveService(target, **service_options), port=0)
    await server.start()
    try:
        yield server
    finally:
        await server.close()


class HTTPClient:
    """One keep-alive connection speaking minimal HTTP/1.1."""

    def __init__(self, address):
        self.host, self.port = address
        self._reader = None
        self._writer = None

    async def __aenter__(self):
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def __aexit__(self, exc_type, exc, tb):
        await self.aclose()

    async def aclose(self):
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(Exception):
                await self._writer.wait_closed()
            self._writer = None

    async def send_raw(self, raw: bytes):
        self._writer.write(raw)
        await self._writer.drain()

    async def read_response(self):
        """Parse one response: ``(status, headers, body)``."""
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = await self._reader.readexactly(int(headers.get("content-length", 0)))
        return status, headers, body

    async def request(self, method, path, headers=None, body=b""):
        lines = [f"{method} {path} HTTP/1.1", "Host: test"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if body and "transfer-encoding" not in {k.lower() for k in (headers or {})}:
            lines.append(f"Content-Length: {len(body)}")
        raw = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        await self.send_raw(raw)
        return await self.read_response()

    async def get_json(self, path):
        status, headers, body = await self.request("GET", path)
        return status, json.loads(body)


async def http_request(address, method, path, headers=None, body=b""):
    """One request on a fresh connection (closed afterwards)."""
    async with HTTPClient(address) as client:
        return await client.request(method, path, headers=headers, body=body)


def response_frame(headers, body):
    """Rebuild the decoded frame a 200 /frames response carries."""
    shape = tuple(int(side) for side in headers["x-frame-shape"].split("x"))
    return np.frombuffer(body, dtype=headers["x-frame-dtype"]).reshape(shape)


def ingest_body(frames):
    """The POST /ingest body for ``{name: frame}``."""
    return b"".join(encode_ingest_record(name, frame) for name, frame in frames.items())


def chunk_encode(payload, chunk_size=512):
    """``payload`` as a chunked transfer encoding body."""
    parts = []
    for start in range(0, len(payload), chunk_size):
        piece = payload[start:start + chunk_size]
        parts.append(f"{len(piece):x}\r\n".encode() + piece + b"\r\n")
    parts.append(b"0\r\n\r\n")
    return b"".join(parts)
