"""CodecSpec round trips through archive frame headers, and parallel packing."""

import numpy as np
import pytest

from repro.archive import (
    ArchiveReader,
    ArchiveWriter,
    deserialize_stream_with_spec,
    frame_spec,
    serialize_stream,
    spec_for_stream,
)
from repro.archive.format import ArchiveFormatError
from repro.coding import compress_frames
from repro.coding.spec import CodecSpec
from repro.imaging.phantoms import random_image, shepp_logan

pytestmark = pytest.mark.archive


def frames_4():
    return [shepp_logan(32), random_image(32, seed=1), shepp_logan(64), random_image(48, seed=2)]


SPECS = [
    CodecSpec(codec="s-transform", scales=3, bit_depth=12),
    CodecSpec(codec="coefficient", scales=2, bank="F1", use_rle=False, bit_depth=12),
    CodecSpec(codec="coefficient", scales=3, bank="F2", use_rle=True, bit_depth=12),
]


class TestSpecThroughFrameHeaders:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_payload_header_roundtrip(self, spec):
        """serialize -> deserialize recovers the stream AND its spec."""
        batch = compress_frames(frames_4(), spec=spec)
        for stream in batch.streams:
            payload = serialize_stream(stream)
            restored, restored_spec = deserialize_stream_with_spec(payload)
            assert spec_for_stream(restored) == restored_spec
            # The stored spec is the writer's spec at the frame's clamped
            # depth (transform/engine are runtime choices, not wire format).
            assert restored_spec == CodecSpec(
                codec=spec.codec,
                scales=stream.scales,
                bit_depth=spec.bit_depth,
                bank=spec.bank if spec.family.uses_bank else None,
                use_rle=spec.use_rle,
            )

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_index_entry_roundtrip(self, spec, tmp_path):
        """frame_spec(entry) rebuilds the spec from the index alone."""
        path = tmp_path / "spec.dwta"
        with ArchiveWriter.create(path, spec=spec) as writer:
            writer.append_batch(frames_4())
        with ArchiveReader(path) as reader:
            for entry, stream in zip(reader.frames, frames_4()):
                stored = frame_spec(entry)
                assert stored.codec == spec.codec
                assert stored.bit_depth == spec.bit_depth
                assert stored.bank_name == spec.bank_name
                assert stored.use_rle == spec.use_rle
                # And the reader's view applies its decode engine on top.
                assert reader.spec_for(entry) == stored.replace(engine=reader.engine)
                # JSON round trip of the stored spec.
                assert CodecSpec.from_json(stored.to_json()) == stored
                # No payload bytes were read to reconstruct any of this.
            assert reader.bytes_read == 0

    def test_spec_survives_writer_append_inheritance(self, tmp_path):
        path = tmp_path / "inherit.dwta"
        spec = CodecSpec(codec="coefficient", scales=2, bank="F1", use_rle=False)
        with ArchiveWriter.create(path, spec=spec) as writer:
            writer.append_batch(frames_4()[:2])
        appender = ArchiveWriter.append(path)
        try:
            assert appender.spec.codec == "coefficient"
            assert appender.spec.bank_name == "F1"
            assert appender.spec.use_rle is False
            assert appender.spec.scales == 2
        finally:
            appender.close()

    def test_unregistered_codec_id_is_a_format_error(self):
        batch = compress_frames(frames_4()[:1], codec="s-transform", scales=2)
        payload = bytearray(serialize_stream(batch.streams[0]))
        payload[4] = 0xEE  # first meta byte is the codec wire id
        with pytest.raises(ArchiveFormatError, match="codec id"):
            deserialize_stream_with_spec(bytes(payload))


class TestParallelPacking:
    def test_parallel_pack_is_byte_identical_on_disk(self, tmp_path):
        """workers=4 writes the exact same archive file as workers=1."""
        frames = [random_image(32, seed=i) for i in range(8)]
        serial_path = tmp_path / "serial.dwta"
        parallel_path = tmp_path / "parallel.dwta"
        with ArchiveWriter.create(serial_path, codec="s-transform", scales=3) as writer:
            writer.append_batch(frames, workers=1)
        with ArchiveWriter.create(parallel_path, codec="s-transform", scales=3) as writer:
            writer.append_batch(frames, workers=4)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_writer_level_workers_default(self, tmp_path):
        frames = [random_image(32, seed=i) for i in range(4)]
        path = tmp_path / "w.dwta"
        with ArchiveWriter.create(path, codec="s-transform", scales=3, workers=2) as writer:
            writer.append_batch(frames)
            assert writer.stats.workers == 2
        with ArchiveReader(path) as reader:
            decoded, _ = reader.decode_all()
            for original, reconstructed in zip(frames, decoded):
                assert np.array_equal(original, reconstructed)

    def test_reader_parallel_decode_all(self, tmp_path):
        frames = [random_image(32, seed=i) for i in range(6)]
        path = tmp_path / "r.dwta"
        with ArchiveWriter.create(path, codec="s-transform", scales=3) as writer:
            writer.append_batch(frames)
        with ArchiveReader(path) as reader:
            decoded, stats = reader.decode_all(workers=2)
            assert stats.workers == 2
            for original, reconstructed in zip(frames, decoded):
                assert np.array_equal(original, reconstructed)
