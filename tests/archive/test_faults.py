"""Robustness primitives: RetryPolicy schedules and deterministic fault injection."""

import errno
import os

import pytest

from repro.archive import (
    ArchiveIntegrityError,
    ArchiveReader,
    ArchiveWriter,
    Fault,
    FaultInjectionBackend,
    FileBackend,
    MemoryBackend,
    RetryPolicy,
    TruncatedArchiveError,
    seeded_fault_plan,
)
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

# Chaos seeds: the CI chaos job widens this set via REPRO_FAULT_SEED.
SEEDS = [3, 11, 42]
if os.environ.get("REPRO_FAULT_SEED"):
    SEEDS = sorted({*SEEDS, int(os.environ["REPRO_FAULT_SEED"])})


class RecordingSleep:
    """An injectable sleep that records the schedule instead of waiting."""

    def __init__(self):
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)


class TestRetryPolicy:
    def test_backoff_schedule_is_exact(self):
        sleep = RecordingSleep()
        policy = RetryPolicy(attempts=4, base_delay=0.01, factor=2.0, sleep=sleep)
        calls = []

        def flaky():
            calls.append(len(calls))
            if len(calls) < 4:
                raise OSError(errno.EIO, "transient")
            return "payload"

        assert policy.run(flaky) == "payload"
        assert calls == [0, 1, 2, 3]
        # Exponential: 0.01, 0.02, 0.04 — asserted, not trusted.
        assert sleep.delays == pytest.approx([0.01, 0.02, 0.04])
        assert policy.delays() == pytest.approx([0.01, 0.02, 0.04])

    def test_max_delay_caps_the_schedule(self):
        policy = RetryPolicy(attempts=6, base_delay=0.5, factor=4.0, max_delay=1.0, sleep=lambda s: None)
        assert policy.delays() == pytest.approx([0.5, 1.0, 1.0, 1.0, 1.0])

    def test_exhausted_attempts_reraise_the_last_error(self):
        sleep = RecordingSleep()
        policy = RetryPolicy(attempts=3, base_delay=0.01, sleep=sleep)
        with pytest.raises(OSError, match="persistent"):
            policy.run(lambda: (_ for _ in ()).throw(OSError(errno.EIO, "persistent")))
        assert len(sleep.delays) == 2  # slept between attempts, not after the last

    def test_give_up_on_wins_over_retry_on(self):
        """A missing file is not transient: no retries, no sleeping."""
        sleep = RecordingSleep()
        policy = RetryPolicy(attempts=5, sleep=sleep)

        def missing():
            raise FileNotFoundError("gone")

        with pytest.raises(FileNotFoundError):
            policy.run(missing)
        assert sleep.delays == []

    def test_non_retryable_errors_propagate_immediately(self):
        sleep = RecordingSleep()
        policy = RetryPolicy(attempts=5, sleep=sleep)
        with pytest.raises(ArchiveIntegrityError):
            policy.run(lambda: (_ for _ in ()).throw(ArchiveIntegrityError("rot")))
        assert sleep.delays == []

    def test_on_retry_counts_absorbed_faults(self):
        absorbed = []
        policy = RetryPolicy(attempts=3, sleep=lambda s: None)
        state = {"calls": 0}

        def flaky():
            state["calls"] += 1
            if state["calls"] < 3:
                raise OSError(errno.EIO, "blip")
            return state["calls"]

        assert policy.run(flaky, on_retry=absorbed.append) == 3
        assert len(absorbed) == 2
        assert all(isinstance(exc, OSError) for exc in absorbed)

    def test_none_is_single_attempt(self):
        policy = RetryPolicy.none()
        assert policy.attempts == 1 and policy.delays() == []
        with pytest.raises(OSError):
            policy.run(lambda: (_ for _ in ()).throw(OSError("once")))

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="gamma-ray")

    def test_zero_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            Fault(kind="io-error", times=0)

    def test_bad_mask_rejected(self):
        with pytest.raises(ValueError, match="mask"):
            Fault(kind="bit-flip", mask=0)


@pytest.fixture()
def small_archive(tmp_path):
    path = tmp_path / "faulty.dwta"
    frames = ct_slice_series(count=3, size=32, seed=2)
    with ArchiveWriter.create(path, scales=2) as writer:
        writer.add_frames(frames, names=["a", "b", "c"])
    return path, frames


class TestFaultInjectionBackend:
    def test_io_error_fires_on_exactly_the_nth_read(self):
        backend = FaultInjectionBackend(
            MemoryBackend(b"0123456789"), faults=(Fault(kind="io-error", at_read=2),)
        )
        fh = backend.open_read()
        assert fh.read(2) == b"01"
        assert fh.read(2) == b"23"
        with pytest.raises(OSError):
            fh.read(2)  # read #2 (0-based)
        assert fh.read(2) == b"45"  # fires once, then heals
        assert backend.reads == 4
        assert [index for index, _ in backend.fired] == [2]

    def test_fail_then_succeed_fires_k_times(self):
        backend = FaultInjectionBackend(
            MemoryBackend(b"abcdef"), faults=(Fault(kind="io-error", at_read=0, times=3),)
        )
        fh = backend.open_read()
        for _ in range(3):
            with pytest.raises(OSError):
                fh.read(1)
        assert fh.read(1) == b"a"

    def test_bit_flip_corrupts_the_read_not_the_store(self):
        inner = MemoryBackend(b"\x00" * 8)
        backend = FaultInjectionBackend(
            inner, faults=(Fault(kind="bit-flip", offset=3, mask=0x80),)
        )
        fh = backend.open_read()
        assert fh.read() == b"\x00\x00\x00\x80\x00\x00\x00\x00"
        assert inner.getvalue() == b"\x00" * 8  # bit rot, not a write

    def test_truncate_clamps_reads_and_end_seeks(self):
        backend = FaultInjectionBackend(
            MemoryBackend(b"0123456789"), faults=(Fault(kind="truncate", offset=4),)
        )
        fh = backend.open_read()
        fh.seek(0, 2)
        assert fh.tell() == 4
        fh.seek(0)
        assert fh.read() == b"0123"

    def test_reader_surfaces_bit_flip_as_integrity_error(self, small_archive):
        path, _ = small_archive
        with ArchiveReader(path) as clean:
            entry = clean.find("b")
        backend = FaultInjectionBackend(
            FileBackend(path),
            faults=(Fault(kind="bit-flip", offset=entry.offset + 1, mask=0x04),),
        )
        with ArchiveReader(backend) as reader:
            with pytest.raises(ArchiveIntegrityError, match="checksum"):
                reader.read_payload("b")
            # The other frames are untouched by the single flipped bit.
            reader.read_payload("a")

    def test_reader_surfaces_truncation(self, small_archive):
        path, _ = small_archive
        size = path.stat().st_size
        backend = FaultInjectionBackend(
            FileBackend(path), faults=(Fault(kind="truncate", offset=size - 5),)
        )
        with pytest.raises(TruncatedArchiveError):
            ArchiveReader(backend)

    def test_retry_absorbs_transient_io_error(self, small_archive):
        """The fail-then-succeed shape the retry ladder exists for."""
        path, frames = small_archive
        backend = FaultInjectionBackend(
            FileBackend(path), faults=(Fault(kind="io-error", at_read=2, times=2),)
        )
        sleep = RecordingSleep()
        policy = RetryPolicy(attempts=3, base_delay=0.01, sleep=sleep)
        with ArchiveReader(backend, retry=policy) as reader:
            import numpy as np

            assert np.array_equal(reader.decode("a"), frames[0])
            assert reader.retries == 2
        assert len(sleep.delays) == 2

    def test_unretried_reader_fails_where_retried_succeeds(self, small_archive):
        path, _ = small_archive

        def faulted():
            return FaultInjectionBackend(
                FileBackend(path), faults=(Fault(kind="io-error", at_read=0, times=1),)
            )

        with pytest.raises(OSError):
            ArchiveReader(faulted())
        reader = ArchiveReader(faulted(), retry=RetryPolicy(attempts=2, sleep=lambda s: None))
        assert reader.retries == 1
        reader.close()


class TestSeededPlans:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_plan(self, seed):
        first = seeded_fault_plan(seed, file_size=4096, faults=4)
        second = seeded_fault_plan(seed, file_size=4096, faults=4)
        assert first == second
        assert len(first) == 4

    def test_different_seeds_differ(self):
        plans = {tuple(seeded_fault_plan(seed, 4096, faults=3)) for seed in range(20)}
        assert len(plans) > 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_plan_fields_in_range(self, seed):
        size = 512
        for fault in seeded_fault_plan(seed, size, faults=16):
            if fault.kind == "truncate":
                assert 1 <= fault.offset < size
            elif fault.kind == "bit-flip":
                assert 0 <= fault.offset < size
                assert fault.mask and fault.mask & (fault.mask - 1) == 0  # one bit
            else:
                assert 0 <= fault.at_read < 8 and 1 <= fault.times <= 2

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_run_replays_identically(self, seed, small_archive):
        """The whole faulted read workload — not just the plan — replays
        byte for byte from the seed: same fired log, same outcomes."""
        path, _ = small_archive
        plan = seeded_fault_plan(seed, path.stat().st_size, faults=2)

        def run_once():
            backend = FaultInjectionBackend(FileBackend(path), faults=plan)
            outcomes = []
            try:
                reader = ArchiveReader(
                    backend, retry=RetryPolicy(attempts=3, sleep=lambda s: None)
                )
            except Exception as exc:
                return [f"open:{type(exc).__name__}"], backend.fired
            with reader:
                for name in ("a", "b", "c"):
                    try:
                        reader.read_payload(name)
                        outcomes.append(f"{name}:ok")
                    except Exception as exc:
                        outcomes.append(f"{name}:{type(exc).__name__}")
            return outcomes, backend.fired

        assert run_once() == run_once()

    def test_rejects_tiny_files(self):
        with pytest.raises(ValueError, match="file_size"):
            seeded_fault_plan(0, file_size=1)


class TestMidSessionDisappearance:
    """A path that existed and then vanished is archive damage, not a
    configuration mistake: it must surface as ``ArchiveTruncatedError``
    (alias of ``TruncatedArchiveError``) so the retry → failover → 503
    ladder handles it — never as a raw ``FileNotFoundError``."""

    def test_alias_names_the_same_class(self):
        from repro.archive import ArchiveTruncatedError

        assert ArchiveTruncatedError is TruncatedArchiveError

    def test_open_archive_on_vanished_path(self, small_archive):
        """The file exists when its magic is probed, then disappears before
        the reader's own open (modelled via backend_factory, which runs in
        exactly that window)."""
        from repro.archive import open_archive

        path, _ = small_archive

        def vanish(p):
            p.unlink()
            return FileBackend(p)

        with pytest.raises(TruncatedArchiveError, match="disappeared"):
            open_archive(path, backend_factory=vanish)
        assert not path.exists()

    def test_open_archive_on_never_existing_path(self, tmp_path):
        """A path that never existed is still the caller's mistake: a plain
        ``FileNotFoundError``, untouched."""
        from repro.archive import open_archive

        with pytest.raises(FileNotFoundError):
            open_archive(tmp_path / "never_was.dwta")

    def test_deleted_shard_copy_surfaces_in_the_taxonomy(self, tmp_path):
        """An unreplicated shard file deleted mid-session: the manifest
        names it, so reads of its frames raise ``TruncatedArchiveError``."""
        from repro.archive import ShardedArchiveReader, ShardedArchiveWriter

        frames = ct_slice_series(count=8, size=32, seed=4)
        path = tmp_path / "bare.dwts"
        with ShardedArchiveWriter.create(path, shards=3, scales=2) as writer:
            writer.append_batch(frames, names=[f"s{i}" for i in range(8)])
        with ShardedArchiveReader(path) as reader:
            victim_shard = reader.router.route("s0")
            reader.shard_paths[victim_shard].unlink()
            with pytest.raises(TruncatedArchiveError, match="missing"):
                reader.decode("s0")

    def test_replicated_set_fails_over_past_a_deleted_copy(self, tmp_path):
        """With a replica, the deleted primary is absorbed by failover."""
        import numpy as np

        from repro.archive import ShardedArchiveReader
        from repro.archive.replication import ReplicatedShardSet

        frames = ct_slice_series(count=8, size=32, seed=4)
        path = tmp_path / "healer.dwts"
        with ReplicatedShardSet.create(path, shards=3, replicas=1, scales=2) as writer:
            writer.append_batch(frames, names=[f"s{i}" for i in range(8)])
        with ShardedArchiveReader(path) as reader:
            victim_shard = reader.router.route("s0")
            reader.copy_paths[victim_shard][0].unlink()
            assert np.array_equal(reader.decode("s0"), frames[0])
            assert reader.failovers == 1


class TestSubbandMajorTruncationSweep:
    """Truncation sweep over the v2 subband-major payload's structure.

    Every cut point in the payload must map to ``TruncatedArchiveError``
    naming where the bytes end — the head, the table prologue, a specific
    section descriptor, or a specific section — and a cut *after* a
    preview's prefix must leave that preview decodable: the prefix
    property is exactly what makes partial payloads useful rather than
    merely diagnosable."""

    @pytest.fixture(scope="class")
    def payload(self):
        from repro.archive import LAYOUT_SUBBAND_MAJOR, serialize_stream
        from repro.coding import STransformCodec
        from repro.imaging import shepp_logan

        stream = STransformCodec(scales=3).encode(shepp_logan(64))
        return serialize_stream(stream, layout=LAYOUT_SUBBAND_MAJOR)

    def test_cut_inside_the_head(self, payload):
        from repro.archive.serialize import PAYLOAD_HEAD_SIZE, parse_section_table

        for cut in range(PAYLOAD_HEAD_SIZE):
            with pytest.raises(TruncatedArchiveError, match="head"):
                parse_section_table(payload[:cut])

    def test_cut_inside_the_prologue(self, payload):
        from repro.archive.serialize import PAYLOAD_HEAD_SIZE, parse_section_table

        with pytest.raises(TruncatedArchiveError, match="prologue"):
            parse_section_table(payload[: PAYLOAD_HEAD_SIZE + 5])

    def test_cut_inside_each_descriptor_names_its_index(self, payload):
        from repro.archive.serialize import PAYLOAD_HEAD_SIZE, parse_section_table

        table = parse_section_table(payload)
        # s-transform meta block: 13-byte prologue, then one fixed 18-byte
        # descriptor per section.
        prologue, descriptor = 13, 18
        for index in range(len(table.sections)):
            cut = PAYLOAD_HEAD_SIZE + prologue + index * descriptor + descriptor // 2
            with pytest.raises(
                TruncatedArchiveError,
                match=f"descriptor {index} of {len(table.sections)}",
            ):
                parse_section_table(payload[:cut])

    def test_cut_inside_the_table_checksum(self, payload):
        from repro.archive.serialize import parse_section_table

        table = parse_section_table(payload)
        with pytest.raises(TruncatedArchiveError, match="checksum"):
            parse_section_table(payload[: table.body_offset - 2])

    def test_cut_at_each_section_boundary(self, payload):
        """Sweep the cut across every section boundary: previews whose
        prefix survived the cut decode; the first missing section is named
        for the ones that did not."""
        from repro.archive.serialize import deserialize_prefix, parse_section_table

        table = parse_section_table(payload)
        scales = table.scales
        for section in table.sections:
            cut = payload[: section.offset + section.length]
            for at_scale in range(scales, -1, -1):
                needed = table.prefix_length(at_scale)
                if needed <= len(cut):
                    stream, _ = deserialize_prefix(cut, at_scale)
                    kinds = (
                        stream.chunks
                        if isinstance(stream.chunks, dict)
                        else {(c.kind, c.scale) for c in stream.chunks}
                    )
                    assert ("HH", scales) in kinds
                else:
                    # Prefix sections are a leading run, so the first one the
                    # cut lost is the section right after the boundary.
                    with pytest.raises(
                        TruncatedArchiveError,
                        match=f"section {section.index + 1} ",
                    ):
                        deserialize_prefix(cut, at_scale)

    def test_cut_mid_section_names_that_section(self, payload):
        from repro.archive.serialize import deserialize_prefix, parse_section_table

        table = parse_section_table(payload)
        for section in table.sections:
            if section.length < 2:
                continue
            cut = payload[: section.offset + section.length // 2]
            with pytest.raises(
                TruncatedArchiveError, match=f"section {section.index} "
            ):
                deserialize_prefix(cut, 0)

    def test_reader_guards_an_inflated_section_table(self, tmp_path):
        """A bit flip that inflates ``meta_len`` past the stored payload
        must surface as ``TruncatedArchiveError`` before any parse."""
        from repro.archive import LAYOUT_SUBBAND_MAJOR
        from repro.imaging import shepp_logan

        path = tmp_path / "prog.dwta"
        with ArchiveWriter.create(
            path, scales=3, layout=LAYOUT_SUBBAND_MAJOR
        ) as writer:
            writer.append_batch([shepp_logan(64)], names=["frame"])
        with ArchiveReader(path) as clean:
            entry = clean.find("frame")
        backend = FaultInjectionBackend(
            FileBackend(path),
            # Head layout "<IBI": offset 7 is the third byte of meta_len,
            # so the flip adds 0x400000 — far past the payload's length.
            faults=(Fault(kind="bit-flip", offset=entry.offset + 7, mask=0x40),),
        )
        with ArchiveReader(backend) as reader:
            with pytest.raises(TruncatedArchiveError, match="section table"):
                reader.read_preview("frame", 2)
