"""Progressive retrieval: subband-major payloads, strict-prefix previews, ROI.

Three layers of the tentpole property under test:

- the **wire**: a subband-major payload orders its independently CRC'd
  sections coarsest-first, so the bytes a scale-``k`` preview needs are a
  strict prefix (:func:`prefix_length` prices it, :func:`deserialize_prefix`
  decodes it, a full parse stays bit-exact with frame-major);
- the **readers**: ``read_preview`` advances ``bytes_read`` by exactly the
  prefix, ``read_roi`` matches a full-decode row slice, v1 frame-major
  archives keep decoding bit for bit, and the result is identical across
  entropy engines and worker counts;
- the **server**: ``GET /frames/<name>/preview`` returns byte-identical
  pixels to a direct ``read_preview``, the hot cache keys previews per
  scale with per-kind hit/miss counters, and an ingest invalidates them.
"""

import asyncio
import json
import struct

import numpy as np
import pytest

from repro.archive import (
    ArchiveFormatError,
    ArchiveIntegrityError,
    ArchiveReader,
    ArchiveWriter,
    LAYOUT_FRAME_MAJOR,
    LAYOUT_SUBBAND_MAJOR,
    TruncatedArchiveError,
    deserialize_prefix,
    deserialize_stream,
    payload_layout,
    prefix_length,
    serialize_stream,
)
from repro.archive.serialize import (
    PAYLOAD_HEAD_SIZE,
    parse_section_table,
)
from repro.archive.sharding import ShardedArchiveReader, ShardedArchiveWriter
from repro.coding import LosslessWaveletCodec, STransformCodec
from repro.imaging import ct_slice_series, shepp_logan
from server_util import (
    HTTPClient,
    build_plain,
    ingest_body,
    response_frame,
    running_server,
    series,
)

pytestmark = pytest.mark.archive

SCALES = 3


@pytest.fixture(scope="module")
def image():
    return shepp_logan(64)


CODECS = {
    "s-transform": lambda: STransformCodec(scales=SCALES),
    "coefficient": lambda: LosslessWaveletCodec(bank="F2", scales=SCALES),
}


@pytest.fixture(params=sorted(CODECS))
def codec(request):
    return CODECS[request.param]()


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# Wire level: the subband-major payload and its prefix property
# ---------------------------------------------------------------------------

class TestSubbandMajorPayload:
    def test_layouts_are_distinguishable(self, codec, image):
        stream = codec.encode(image)
        assert payload_layout(serialize_stream(stream)) == LAYOUT_FRAME_MAJOR
        assert (
            payload_layout(serialize_stream(stream, layout=LAYOUT_SUBBAND_MAJOR))
            == LAYOUT_SUBBAND_MAJOR
        )

    def test_full_roundtrip_is_bit_exact(self, codec, image):
        payload = serialize_stream(codec.encode(image), layout=LAYOUT_SUBBAND_MAJOR)
        assert np.array_equal(codec.decode(deserialize_stream(payload)), image)

    def test_sections_are_coarsest_first(self, codec, image):
        payload = serialize_stream(codec.encode(image), layout=LAYOUT_SUBBAND_MAJOR)
        table = parse_section_table(payload)
        scales_seen = [s.scale for s in table.sections]
        assert scales_seen == sorted(scales_seen, reverse=True)
        assert table.sections[0].kind == "HH"
        assert table.sections[0].scale == SCALES

    def test_prefix_length_prices_every_scale(self, codec, image):
        payload = serialize_stream(codec.encode(image), layout=LAYOUT_SUBBAND_MAJOR)
        lengths = [prefix_length(payload, k) for k in range(SCALES + 1)]
        # Scale 0 is the whole payload; every coarser preview is a strictly
        # shorter prefix of it.
        assert lengths[0] == len(payload)
        assert lengths == sorted(lengths, reverse=True)
        assert lengths[-1] < lengths[0]

    @pytest.mark.parametrize("at_scale", range(SCALES + 1))
    def test_prefix_bytes_decode_the_preview(self, codec, image, at_scale):
        stream = codec.encode(image)
        payload = serialize_stream(stream, layout=LAYOUT_SUBBAND_MAJOR)
        # Hand deserialize_prefix EXACTLY the prefix — one byte fewer must
        # fail, so succeeding here proves the strict-prefix property.
        cut = payload[: prefix_length(payload, at_scale)]
        partial, spec = deserialize_prefix(cut, at_scale)
        assert spec.scales == SCALES
        expected = codec.decode_preview(stream, at_scale)
        assert np.array_equal(codec.decode_preview(partial, at_scale), expected)
        side = image.shape[0] >> at_scale
        assert expected.shape == (side, side)

    def test_one_byte_short_of_the_prefix_fails(self, codec, image):
        payload = serialize_stream(codec.encode(image), layout=LAYOUT_SUBBAND_MAJOR)
        cut = payload[: prefix_length(payload, SCALES) - 1]
        with pytest.raises(TruncatedArchiveError, match="section"):
            deserialize_prefix(cut, SCALES)

    def test_scale_zero_prefix_equals_full_decode(self, codec, image):
        stream = codec.encode(image)
        payload = serialize_stream(stream, layout=LAYOUT_SUBBAND_MAJOR)
        partial, _ = deserialize_prefix(payload, 0)
        assert np.array_equal(codec.decode(partial), image)

    def test_section_crc_guards_each_section(self, codec, image):
        payload = bytearray(
            serialize_stream(codec.encode(image), layout=LAYOUT_SUBBAND_MAJOR)
        )
        table = parse_section_table(bytes(payload))
        payload[table.sections[0].offset] ^= 0xFF
        with pytest.raises(ArchiveIntegrityError, match="section 0"):
            deserialize_stream(bytes(payload))
        with pytest.raises(ArchiveIntegrityError, match="section 0"):
            deserialize_prefix(bytes(payload), SCALES)

    def test_meta_crc_guards_the_table(self, codec, image):
        payload = bytearray(
            serialize_stream(codec.encode(image), layout=LAYOUT_SUBBAND_MAJOR)
        )
        payload[PAYLOAD_HEAD_SIZE] ^= 0x01  # first meta byte (the codec id)
        with pytest.raises((ArchiveIntegrityError, ArchiveFormatError)):
            parse_section_table(bytes(payload))

    def test_trailing_bytes_raise(self, codec, image):
        payload = serialize_stream(codec.encode(image), layout=LAYOUT_SUBBAND_MAJOR)
        with pytest.raises(ArchiveFormatError, match="trailing"):
            deserialize_stream(payload + b"\x00")

    def test_declared_but_missing_sections_raise(self, codec, image):
        payload = serialize_stream(codec.encode(image), layout=LAYOUT_SUBBAND_MAJOR)
        with pytest.raises(TruncatedArchiveError):
            deserialize_stream(payload[:-1])

    def test_out_of_order_sections_are_rejected(self, image):
        """A doctored table whose sections are not coarsest-first must be
        refused outright — the prefix property would silently not hold."""
        stream = STransformCodec(scales=SCALES).encode(image)
        payload = serialize_stream(stream, layout=LAYOUT_SUBBAND_MAJOR)
        _, _, meta_len = struct.unpack_from("<IBI", payload, 0)
        meta = bytearray(payload[PAYLOAD_HEAD_SIZE : PAYLOAD_HEAD_SIZE + meta_len])
        # s-transform meta: 13-byte prologue then fixed 18-byte descriptors.
        prologue, desc = 13, 18
        meta[prologue : prologue + desc], meta[prologue + desc : prologue + 2 * desc] = (
            meta[prologue + desc : prologue + 2 * desc],
            meta[prologue : prologue + desc],
        )
        import zlib

        doctored = (
            payload[:PAYLOAD_HEAD_SIZE]
            + bytes(meta)
            + struct.pack("<I", zlib.crc32(bytes(meta)) & 0xFFFFFFFF)
            + payload[PAYLOAD_HEAD_SIZE + meta_len + 4 :]
        )
        with pytest.raises(ArchiveFormatError, match="coarsest-first"):
            parse_section_table(doctored)


# ---------------------------------------------------------------------------
# Cross-version matrix: v1 compatibility, engines, workers
# ---------------------------------------------------------------------------

class TestCrossVersionMatrix:
    FRAME_COUNT = 3

    def _write(self, path, layout, workers=1, **kwargs):
        frames = ct_slice_series(count=self.FRAME_COUNT, size=64, seed=7)
        with ArchiveWriter.create(
            path, scales=SCALES, layout=layout, workers=workers, **kwargs
        ) as writer:
            writer.append_batch(list(frames), names=["a", "b", "c"])
        return list(frames)

    def test_frame_major_archive_stays_version_1(self, tmp_path):
        path = tmp_path / "v1.dwta"
        frames = self._write(path, LAYOUT_FRAME_MAJOR)
        with ArchiveReader(path) as reader:
            assert reader.header.version == 1
            for name, frame in zip(["a", "b", "c"], frames):
                entry = reader.find(name)
                assert entry.layout == LAYOUT_FRAME_MAJOR
                assert np.array_equal(reader.decode(entry), frame)

    def test_subband_major_archive_is_version_2(self, tmp_path):
        path = tmp_path / "v2.dwta"
        frames = self._write(path, LAYOUT_SUBBAND_MAJOR)
        with ArchiveReader(path) as reader:
            assert reader.header.version == 2
            for name, frame in zip(["a", "b", "c"], frames):
                entry = reader.find(name)
                assert entry.layout == LAYOUT_SUBBAND_MAJOR
                assert np.array_equal(reader.decode(entry), frame)

    @pytest.mark.parametrize("engine", ["scalar", "fast", "turbo"])
    def test_layouts_decode_identically_under_every_engine(self, tmp_path, engine):
        v1, v2 = tmp_path / "v1.dwta", tmp_path / "v2.dwta"
        self._write(v1, LAYOUT_FRAME_MAJOR)
        self._write(v2, LAYOUT_SUBBAND_MAJOR)
        with ArchiveReader(v1, engine=engine) as a, ArchiveReader(v2, engine=engine) as b:
            for name in ["a", "b", "c"]:
                assert np.array_equal(a.decode(name), b.decode(name)), (engine, name)
                assert np.array_equal(
                    a.read_preview(name, 2), b.read_preview(name, 2)
                ), (engine, name)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_never_changes_the_bytes(self, tmp_path, workers):
        serial, pooled = tmp_path / "serial.dwta", tmp_path / "pooled.dwta"
        self._write(serial, LAYOUT_SUBBAND_MAJOR, workers=1)
        frames = self._write(pooled, LAYOUT_SUBBAND_MAJOR, workers=workers)
        assert serial.read_bytes() == pooled.read_bytes()
        with ArchiveReader(pooled) as reader:
            decoded, _ = reader.decode_all(workers=workers)
        assert len(decoded) == len(frames)
        for frame, image in zip(frames, decoded):
            assert np.array_equal(frame, image)

    def test_mixed_layout_archive_reads_every_frame(self, tmp_path):
        """Appending frame-major frames to a subband-major archive keeps the
        container at v2 and every frame individually decodable."""
        path = tmp_path / "mixed.dwta"
        frames = self._write(path, LAYOUT_SUBBAND_MAJOR)
        extra = ct_slice_series(count=1, size=64, seed=11)[0]
        with ArchiveWriter.append(path, layout=LAYOUT_FRAME_MAJOR) as writer:
            writer.append_batch([extra], names=["legacy"])
        with ArchiveReader(path) as reader:
            assert reader.header.version == 2
            assert reader.find("legacy").layout == LAYOUT_FRAME_MAJOR
            assert reader.find("a").layout == LAYOUT_SUBBAND_MAJOR
            assert np.array_equal(reader.decode("legacy"), extra)
            assert np.array_equal(reader.decode("a"), frames[0])
            # The frame-major frame still previews (full-read fallback).
            assert reader.read_preview("legacy", 1).shape == (32, 32)

    def test_append_inherits_the_layout(self, tmp_path):
        path = tmp_path / "inherit.dwta"
        self._write(path, LAYOUT_SUBBAND_MAJOR)
        extra = ct_slice_series(count=1, size=64, seed=12)[0]
        with ArchiveWriter.append(path) as writer:  # no explicit layout
            writer.append_batch([extra], names=["d"])
        with ArchiveReader(path) as reader:
            assert reader.find("d").layout == LAYOUT_SUBBAND_MAJOR


# ---------------------------------------------------------------------------
# Reader level: byte accounting, previews, ROI
# ---------------------------------------------------------------------------

class TestReaderProgressive:
    @pytest.fixture(params=sorted(CODECS))
    def archive(self, request, tmp_path, image):
        path = tmp_path / "prog.dwta"
        codec_name = request.param
        kwargs = {"bank": "F2"} if codec_name == "coefficient" else {}
        with ArchiveWriter.create(
            path,
            codec=codec_name,
            scales=SCALES,
            layout=LAYOUT_SUBBAND_MAJOR,
            **kwargs,
        ) as writer:
            writer.append_batch([image], names=["frame"])
        return path, image

    def test_preview_reads_exactly_the_prefix(self, archive):
        path, image = archive
        with ArchiveReader(path) as reader:
            entry = reader.find("frame")
            payload = bytes(reader.read_payload(entry))
            for at_scale in range(SCALES + 1):
                before = reader.bytes_read
                preview = reader.read_preview(entry, at_scale)
                assert reader.bytes_read - before == prefix_length(payload, at_scale)
                side = image.shape[0] >> at_scale
                assert preview.shape == (side, side)

    def test_preview_fraction_shrinks_with_scale(self, archive):
        path, _ = archive
        with ArchiveReader(path) as reader:
            entry = reader.find("frame")
            before = reader.bytes_read
            reader.read_preview(entry, 2)
            fraction = (reader.bytes_read - before) / entry.length
        # The acceptance gate is <= 0.35 at 512^2/4 scales; at 64^2/3 scales
        # the coarse sections are an even smaller share.
        assert fraction <= 0.35

    def test_preview_scale_zero_is_the_image(self, archive):
        path, image = archive
        with ArchiveReader(path) as reader:
            assert np.array_equal(reader.read_preview("frame", 0), image)

    def test_preview_out_of_range_scale_raises(self, archive):
        path, _ = archive
        with ArchiveReader(path) as reader:
            with pytest.raises(ValueError, match="at_scale"):
                reader.read_preview("frame", SCALES + 1)
            with pytest.raises(ValueError, match="at_scale"):
                reader.read_preview("frame", -1)

    def test_roi_matches_the_full_decode_rows(self, archive):
        path, image = archive
        with ArchiveReader(path) as reader:
            full = reader.decode("frame")
            for y0, y1 in [(0, 8), (13, 37), (32, 64), (0, 64)]:
                assert np.array_equal(reader.read_roi("frame", y0, y1), full[y0:y1])
        assert np.array_equal(full, image)

    def test_roi_rejects_bad_windows(self, archive):
        path, _ = archive
        with ArchiveReader(path) as reader:
            for y0, y1 in [(-1, 8), (8, 8), (9, 8), (0, 65)]:
                with pytest.raises(ValueError):
                    reader.read_roi("frame", y0, y1)

    def test_frame_major_preview_falls_back_to_full_read(self, tmp_path, image):
        path = tmp_path / "v1.dwta"
        with ArchiveWriter.create(path, scales=SCALES) as writer:
            writer.append_batch([image], names=["frame"])
        with ArchiveReader(path) as reader:
            entry = reader.find("frame")
            before = reader.bytes_read
            preview = reader.read_preview(entry, 2)
            # No prefix property on v1: the whole payload is read, but the
            # preview itself is still the early-stopped synthesis.
            assert reader.bytes_read - before == entry.length
            assert preview.shape == (16, 16)


class TestShardedProgressive:
    @pytest.fixture()
    def sharded(self, tmp_path):
        path = tmp_path / "set.dwts"
        frames = series(count=6, size=64, seed=3)
        with ShardedArchiveWriter.create(
            path, shards=3, scales=SCALES, layout=LAYOUT_SUBBAND_MAJOR
        ) as writer:
            writer.append_batch(list(frames.values()), names=list(frames))
        return path, frames

    def test_routed_previews_and_rois(self, sharded):
        path, frames = sharded
        with ShardedArchiveReader(path) as reader:
            assert reader.manifest.layout == LAYOUT_SUBBAND_MAJOR
            for name in frames:
                full = reader.decode(name)
                preview = reader.read_preview(name, 1)
                assert preview.shape == (32, 32)
                assert np.array_equal(
                    reader.read_preview(name, 0), full
                )
                assert np.array_equal(reader.read_roi(name, 8, 24), full[8:24])


# ---------------------------------------------------------------------------
# Server level: the preview endpoint and the per-kind cache
# ---------------------------------------------------------------------------

class TestServerPreview:
    @pytest.fixture()
    def subband_archive(self, tmp_path):
        frames = series(count=4, size=64, seed=5)
        path = tmp_path / "prog.dwta"
        with ArchiveWriter.create(
            path, scales=SCALES, layout=LAYOUT_SUBBAND_MAJOR
        ) as writer:
            writer.append_batch(list(frames.values()), names=list(frames))
        return path, frames

    def test_preview_bytes_match_a_direct_read(self, subband_archive):
        path, frames = subband_archive
        with ArchiveReader(path) as reader:
            expected = {
                (name, k): reader.read_preview(name, k)
                for name in frames
                for k in range(SCALES + 1)
            }

        async def scenario():
            async with running_server(path) as server:
                async with HTTPClient(server.address) as client:
                    for (name, k), direct in expected.items():
                        status, headers, body = await client.request(
                            "GET", f"/frames/{name}/preview?scale={k}"
                        )
                        assert status == 200
                        assert headers["x-frame-scale"] == str(k)
                        assert headers["x-frame-layout"] == LAYOUT_SUBBAND_MAJOR
                        served = response_frame(headers, body)
                        assert body == direct.astype(direct.dtype).tobytes()
                        assert np.array_equal(served, direct), (name, k)

        run(scenario())

    def test_preview_defaults_to_scale_one(self, subband_archive):
        path, frames = subband_archive
        name = next(iter(frames))

        async def scenario():
            async with running_server(path) as server:
                status, headers, _ = await asyncio.wait_for(
                    self._get(server.address, f"/frames/{name}/preview"), 10
                )
                assert status == 200
                assert headers["x-frame-scale"] == "1"
                assert headers["x-frame-shape"] == "32x32"

        run(scenario())

    @staticmethod
    async def _get(address, target):
        async with HTTPClient(address) as client:
            return await client.request("GET", target)

    def test_roi_param_serves_the_row_band(self, subband_archive):
        path, frames = subband_archive
        name = next(iter(frames))
        with ArchiveReader(path) as reader:
            direct = reader.read_roi(name, 8, 24)

        async def scenario():
            async with running_server(path) as server:
                status, headers, body = await self._get(
                    server.address, f"/frames/{name}/preview?roi=8-24"
                )
                assert status == 200
                assert headers["x-frame-roi"] == "8-24"
                assert np.array_equal(response_frame(headers, body), direct)

        run(scenario())

    def test_bad_preview_requests_are_400(self, subband_archive):
        path, frames = subband_archive
        name = next(iter(frames))

        async def scenario():
            async with running_server(path) as server:
                for target in (
                    f"/frames/{name}/preview?scale=zz",
                    f"/frames/{name}/preview?scale={SCALES + 1}",
                    f"/frames/{name}/preview?scale=-1",
                    f"/frames/{name}/preview?roi=5",
                    f"/frames/{name}/preview?roi=8-4",
                    f"/frames/{name}/preview?scale=1&roi=0-8",
                ):
                    status, _, _ = await self._get(server.address, target)
                    assert status == 400, target
                status, _, _ = await self._get(
                    server.address, "/frames/no_such/preview?scale=1"
                )
                assert status == 404

        run(scenario())

    def test_cache_counts_preview_hits_per_kind(self, subband_archive):
        path, frames = subband_archive
        name = next(iter(frames))

        async def scenario():
            async with running_server(path) as server:
                async with HTTPClient(server.address) as client:
                    _, h1, _ = await client.request(
                        "GET", f"/frames/{name}/preview?scale=2"
                    )
                    _, h2, _ = await client.request(
                        "GET", f"/frames/{name}/preview?scale=2"
                    )
                    # A different scale is a different cache entry.
                    _, h3, _ = await client.request(
                        "GET", f"/frames/{name}/preview?scale=1"
                    )
                    await client.request("GET", f"/frames/{name}")
                    status, stats = await client.get_json("/stats")
                assert h1["x-archive-cache"] == "miss"
                assert h2["x-archive-cache"] == "hit"
                assert h3["x-archive-cache"] == "miss"
                assert status == 200
                kinds = stats["cache"]["kinds"]
                assert kinds["preview"] == {"hits": 1, "misses": 2}
                assert kinds["full"]["misses"] == 1

        run(scenario())

    def test_ingest_invalidates_cached_previews(self, subband_archive, tmp_path):
        path, frames = subband_archive
        name = next(iter(frames))
        new_frames = series(count=1, size=64, seed=99)
        body = ingest_body({"fresh_000": next(iter(new_frames.values()))})

        async def scenario():
            async with running_server(path) as server:
                async with HTTPClient(server.address) as client:
                    _, first, _ = await client.request(
                        "GET", f"/frames/{name}/preview?scale=2"
                    )
                    assert first["x-archive-cache"] == "miss"
                    _, warm, _ = await client.request(
                        "GET", f"/frames/{name}/preview?scale=2"
                    )
                    assert warm["x-archive-cache"] == "hit"
                    status, _, _ = await client.request(
                        "POST", "/ingest", body=body
                    )
                    assert status == 200
                    # The generation bumped: the cached preview is stale.
                    _, after, _ = await client.request(
                        "GET", f"/frames/{name}/preview?scale=2"
                    )
                    assert after["x-archive-cache"] == "miss"
                    # The ingested frame previews too.
                    status, headers, _ = await client.request(
                        "GET", "/frames/fresh_000/preview?scale=1"
                    )
                    assert status == 200
                    assert headers["x-frame-shape"] == "32x32"

        run(scenario())

    def test_meta_reports_the_layout(self, subband_archive):
        path, frames = subband_archive
        name = next(iter(frames))

        async def scenario():
            async with running_server(path) as server:
                async with HTTPClient(server.address) as client:
                    status, meta = await client.get_json(f"/frames/{name}/meta")
                assert status == 200
                assert meta["layout"] == LAYOUT_SUBBAND_MAJOR

        run(scenario())
