"""End-to-end CLI: pack, list, extract, verify against real files."""

import json

import numpy as np
import pytest

from repro.archive.cli import main
from repro.imaging import read_pgm, shepp_logan, write_pgm

pytestmark = pytest.mark.archive


@pytest.fixture()
def pgm_dir(tmp_path):
    directory = tmp_path / "scans"
    directory.mkdir()
    for index in range(3):
        image = np.clip(shepp_logan(64) + index, 0, 4095)
        write_pgm(directory / f"scan_{index}.pgm", image, max_value=4095)
    return directory


def test_pack_list_extract_verify(tmp_path, pgm_dir, capsys):
    archive = tmp_path / "cli.dwta"
    inputs = sorted(str(p) for p in pgm_dir.glob("*.pgm"))

    assert main(["pack", str(archive), *inputs]) == 0
    out = capsys.readouterr().out
    assert "packed 3 frames" in out
    assert archive.exists()

    assert main(["list", str(archive)]) == 0
    out = capsys.readouterr().out
    assert "scan_1" in out and "s-transform" in out and "3 frames" in out

    assert main(["list", str(archive), "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert [r["name"] for r in records] == ["scan_0", "scan_1", "scan_2"]
    assert records[0]["bit_depth"] == 12

    extracted = tmp_path / "scan_1_out.pgm"
    assert main(["extract", str(archive), "scan_1", "-o", str(extracted)]) == 0
    assert np.array_equal(read_pgm(extracted), read_pgm(pgm_dir / "scan_1.pgm"))

    assert main(["verify", str(archive), "--deep"]) == 0
    assert "OK" in capsys.readouterr().out


def test_pack_synthetic_and_append(tmp_path, capsys):
    archive = tmp_path / "synthetic.dwta"
    assert main(["pack", str(archive), "--synthetic", "4", "--size", "32"]) == 0
    assert main(["pack", str(archive), "--synthetic", "2", "--size", "32", "--seed", "9", "--append"]) == 0
    capsys.readouterr()
    assert main(["list", str(archive), "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert len(records) == 6


def test_append_inherits_codec_and_scales(tmp_path, pgm_dir, capsys):
    """--append without --codec/--scales keeps the archive's configuration."""
    archive = tmp_path / "inherit.dwta"
    inputs = sorted(str(p) for p in pgm_dir.glob("*.pgm"))
    assert main(["pack", str(archive), inputs[0], "--codec", "coefficient", "--scales", "2"]) == 0
    assert main(["pack", str(archive), inputs[1], "--append"]) == 0
    capsys.readouterr()
    assert main(["list", str(archive), "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert {r["codec"] for r in records} == {"coefficient"}
    assert {r["scales"] for r in records} == {2}
    assert {r["bank"] for r in records} == {"F2"}


def test_extract_all_to_directory(tmp_path, capsys):
    archive = tmp_path / "all.dwta"
    assert main(["pack", str(archive), "--synthetic", "3", "--size", "32"]) == 0
    out_dir = tmp_path / "extracted"
    assert main(["extract", str(archive), "-o", str(out_dir)]) == 0
    assert sorted(p.name for p in out_dir.glob("*.pgm")) == [
        "slice_000.pgm",
        "slice_001.pgm",
        "slice_002.pgm",
    ]


def test_extract_by_index(tmp_path, capsys):
    archive = tmp_path / "byidx.dwta"
    assert main(["pack", str(archive), "--synthetic", "2", "--size", "32"]) == 0
    out = tmp_path / "frame.pgm"
    assert main(["extract", str(archive), "1", "-o", str(out)]) == 0
    assert out.exists()


def test_coefficient_pack_roundtrip(tmp_path, pgm_dir, capsys):
    archive = tmp_path / "coeff.dwta"
    inputs = sorted(str(p) for p in pgm_dir.glob("*.pgm"))[:1]
    assert main(["pack", str(archive), *inputs, "--codec", "coefficient", "--bank", "F2", "--scales", "2"]) == 0
    out = tmp_path / "back.pgm"
    assert main(["extract", str(archive), "scan_0", "-o", str(out)]) == 0
    assert np.array_equal(read_pgm(out), read_pgm(inputs[0]))


def test_pack_with_workers_matches_serial(tmp_path, capsys):
    """--workers N packs a byte-identical archive (just sharded)."""
    serial = tmp_path / "serial.dwta"
    parallel = tmp_path / "parallel.dwta"
    assert main(["pack", str(serial), "--synthetic", "4", "--size", "32"]) == 0
    assert main(["pack", str(parallel), "--synthetic", "4", "--size", "32", "--workers", "2"]) == 0
    assert "2 workers" in capsys.readouterr().out
    assert serial.read_bytes() == parallel.read_bytes()


def test_pack_rejects_non_positive_workers(tmp_path, capsys):
    archive = tmp_path / "w0.dwta"
    with pytest.raises(SystemExit):
        main(["pack", str(archive), "--synthetic", "2", "--size", "32", "--workers", "0"])
    assert "must be >= 1" in capsys.readouterr().err
    assert not archive.exists()  # rejected before the file was created


def test_list_verbose_prints_spec(tmp_path, capsys):
    archive = tmp_path / "verbose.dwta"
    assert main(["pack", str(archive), "--synthetic", "2", "--size", "32", "--codec", "coefficient", "--scales", "2"]) == 0
    capsys.readouterr()

    assert main(["list", str(archive), "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "spec:" in out and "bank=F2" in out and "scales=2" in out

    assert main(["list", str(archive), "--json", "--verbose"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert records[0]["spec"]["codec"] == "coefficient"
    assert records[0]["spec"]["bank"] == "F2"
    assert records[0]["spec"]["use_rle"] is True


def test_pack_sharded_list_extract_verify(tmp_path, capsys):
    """--shards N: pack a sharded set and run every command against it."""
    manifest = tmp_path / "set.dwts"
    assert main(["pack", str(manifest), "--synthetic", "6", "--size", "32", "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "3 shards" in out
    assert sorted(p.name for p in tmp_path.glob("set.shard*.dwta")) == [
        "set.shard000.dwta",
        "set.shard001.dwta",
        "set.shard002.dwta",
    ]

    assert main(["list", str(manifest)]) == 0
    out = capsys.readouterr().out
    assert "6 frames in 3 shards" in out and "hash-routed" in out

    assert main(["list", str(manifest), "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert [r["name"] for r in records] == [f"slice_{i:03d}" for i in range(6)]
    assert {r["shard"] for r in records} <= {0, 1, 2}

    out_pgm = tmp_path / "one.pgm"
    assert main(["extract", str(manifest), "slice_004", "-o", str(out_pgm)]) == 0
    assert out_pgm.exists()

    assert main(["verify", str(manifest), "--deep"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "3 shards" in out


def test_sharded_append_inherits_manifest(tmp_path, capsys):
    manifest = tmp_path / "set.dwts"
    assert main(["pack", str(manifest), "--synthetic", "3", "--size", "32", "--shards", "2", "--scales", "2"]) == 0
    assert main(["pack", str(manifest), "--synthetic", "2", "--size", "32", "--seed", "7", "--append"]) == 0
    capsys.readouterr()
    assert main(["list", str(manifest), "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert len(records) == 5
    assert {r["scales"] for r in records} == {2}


def test_sharded_append_rejects_config_overrides(tmp_path, capsys):
    manifest = tmp_path / "set.dwts"
    assert main(["pack", str(manifest), "--synthetic", "2", "--size", "32", "--shards", "2"]) == 0
    capsys.readouterr()
    base = ["pack", str(manifest), "--synthetic", "1", "--size", "32", "--append"]
    # Every configuration flag is rejected loudly, never silently dropped.
    for flags in (["--codec", "s-transform"], ["--scales", "3"], ["--bit-depth", "16"], ["--no-rle"]):
        with pytest.raises(SystemExit, match="manifest"):
            main([*base, *flags])
    # --engine is an execution choice (byte-identical streams), so it passes.
    assert main([*base, "--seed", "7", "--engine", "scalar"]) == 0


def test_codec_value_errors_exit_cleanly(tmp_path, capsys):
    """Codec-layer ValueErrors keep the single-line/exit-1 CLI contract."""
    import numpy as np

    from repro.imaging import write_pgm

    deep = tmp_path / "deep.pgm"
    write_pgm(deep, np.full((32, 32), 60000, dtype=np.int64), max_value=65535)
    archive = tmp_path / "narrow.dwta"
    assert main(["pack", str(archive), str(deep), "--bit-depth", "8"]) == 1
    assert "error:" in capsys.readouterr().err


def test_sharded_pack_with_workers_matches_serial(tmp_path, capsys):
    common = ["--synthetic", "6", "--size", "32", "--shards", "3"]
    assert main(["pack", str(tmp_path / "serial.dwts"), *common]) == 0
    assert main(["pack", str(tmp_path / "parallel.dwts"), *common, "--workers", "3"]) == 0
    for a, b in zip(
        sorted(tmp_path.glob("serial.shard*.dwta")),
        sorted(tmp_path.glob("parallel.shard*.dwta")),
    ):
        assert a.read_bytes() == b.read_bytes()


def test_stream_pack_matches_batch(tmp_path, capsys):
    batch = tmp_path / "batch.dwta"
    stream = tmp_path / "stream.dwta"
    common = ["--synthetic", "5", "--size", "32"]
    assert main(["pack", str(batch), *common]) == 0
    assert main(["pack", str(stream), *common, "--stream", "--queue-depth", "2"]) == 0
    assert "streamed" in capsys.readouterr().out
    assert batch.read_bytes() == stream.read_bytes()


def test_stream_pack_sharded(tmp_path, capsys):
    manifest = tmp_path / "set.dwts"
    assert main(["pack", str(manifest), "--synthetic", "4", "--size", "32", "--shards", "2", "--stream"]) == 0
    capsys.readouterr()
    assert main(["verify", str(manifest), "--deep"]) == 0
    assert "OK" in capsys.readouterr().out


def test_stream_rejects_workers(tmp_path):
    with pytest.raises(SystemExit, match="serially"):
        main(["pack", str(tmp_path / "x.dwta"), "--synthetic", "2", "--size", "32", "--stream", "--workers", "2"])


def test_verify_workers_single_archive(tmp_path, capsys):
    archive = tmp_path / "par.dwta"
    assert main(["pack", str(archive), "--synthetic", "4", "--size", "32"]) == 0
    capsys.readouterr()
    assert main(["verify", str(archive), "--deep", "--workers", "2"]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_sharded_isolates_damage(tmp_path, capsys):
    manifest = tmp_path / "set.dwts"
    assert main(["pack", str(manifest), "--synthetic", "6", "--size", "32", "--shards", "3"]) == 0
    capsys.readouterr()
    shards = sorted(tmp_path.glob("set.shard*.dwta"))
    victim = shards[0]
    victim.write_bytes(victim.read_bytes()[:-5])
    assert main(["verify", str(manifest), "--deep"]) == 1
    captured = capsys.readouterr()
    assert victim.name in captured.err
    assert "DAMAGED" in captured.out and "verified clean" in captured.out


def _replicated_set(tmp_path, capsys, shards=3, replicas=1, frames=6):
    manifest = tmp_path / "set.dwts"
    assert (
        main(
            [
                "pack",
                str(manifest),
                "--synthetic",
                str(frames),
                "--size",
                "32",
                "--shards",
                str(shards),
                "--replicas",
                str(replicas),
            ]
        )
        == 0
    )
    capsys.readouterr()
    return manifest


def test_pack_replicas_creates_copies(tmp_path, capsys):
    manifest = _replicated_set(tmp_path, capsys)
    primaries = sorted(p.name for p in tmp_path.glob("set.shard???.dwta"))
    replicas = sorted(p.name for p in tmp_path.glob("set.shard???.r0.dwta"))
    assert len(primaries) == 3 and len(replicas) == 3
    for primary, replica in zip(primaries, replicas):
        assert (tmp_path / primary).read_bytes() == (tmp_path / replica).read_bytes()
    assert main(["verify", str(manifest), "--deep"]) == 0


def test_pack_replicas_requires_shards(tmp_path):
    with pytest.raises(SystemExit, match="--shards"):
        main(["pack", str(tmp_path / "x.dwts"), "--synthetic", "2", "--size", "32", "--replicas", "1"])


def test_verify_json_contract(tmp_path, capsys):
    """--json: per-shard status map, exit 1 iff any shard is damaged."""
    manifest = _replicated_set(tmp_path, capsys)
    assert main(["verify", str(manifest), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert set(report["shard_status"].values()) == {"ok"}
    assert report["copies"] == 6 and report["shards"] == 3

    victim = sorted(tmp_path.glob("set.shard???.dwta"))[0]
    victim.write_bytes(victim.read_bytes()[:-5])
    assert main(["verify", str(manifest), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert report["shard_status"][victim.name] == "damaged"
    assert victim.name in report["failures"]


def test_verify_json_single_archive(tmp_path, capsys):
    archive = tmp_path / "one.dwta"
    assert main(["pack", str(archive), "--synthetic", "2", "--size", "32"]) == 0
    capsys.readouterr()
    assert main(["verify", str(archive), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True and report["frames"] == 2


def test_repair_heals_and_exits_zero(tmp_path, capsys):
    """The repair --verify contract: exit 0 after a successful heal."""
    manifest = _replicated_set(tmp_path, capsys)
    victim = sorted(tmp_path.glob("set.shard???.dwta"))[0]
    pristine = victim.read_bytes()
    victim.write_bytes(pristine[:-9])

    assert main(["verify", str(manifest)]) == 1
    capsys.readouterr()

    assert main(["repair", str(manifest), "--verify"]) == 0
    out = capsys.readouterr().out
    assert f"repaired {victim.name}" in out and "re-verified clean" in out
    assert victim.read_bytes() == pristine

    assert main(["verify", str(manifest), "--deep"]) == 0


def test_repair_json_statuses(tmp_path, capsys):
    manifest = _replicated_set(tmp_path, capsys)
    victim = sorted(tmp_path.glob("set.shard???.dwta"))[0]
    victim.write_bytes(victim.read_bytes()[:-9])
    assert main(["repair", str(manifest), "--verify", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True and report["verified"] is True
    assert report["shard_status"][victim.name] == "repaired"
    assert set(report["shard_status"].values()) <= {"ok", "repaired"}
    assert report["repaired"][victim.name].endswith(".r0.dwta")


def test_repair_exits_one_when_unrepairable(tmp_path, capsys):
    manifest = _replicated_set(tmp_path, capsys)
    victims = sorted(tmp_path.glob("set.shard000.*dwta"))
    assert len(victims) == 2  # primary + replica
    for victim in victims:
        victim.write_bytes(victim.read_bytes()[:-9])
    assert main(["repair", str(manifest), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert report["shard_status"]["set.shard000.dwta"] == "damaged"
    assert sorted(report["unrepairable"]) == [v.name for v in victims]


def test_repair_rejects_single_archives(tmp_path, capsys):
    archive = tmp_path / "single.dwta"
    assert main(["pack", str(archive), "--synthetic", "1", "--size", "32"]) == 0
    with pytest.raises(SystemExit, match="manifest"):
        main(["repair", str(archive)])


def test_errors_exit_nonzero(tmp_path, capsys):
    missing = tmp_path / "missing.dwta"
    assert main(["verify", str(missing)]) == 1
    assert "error:" in capsys.readouterr().err

    garbage = tmp_path / "garbage.dwta"
    garbage.write_bytes(b"\x00" * 128)
    assert main(["list", str(garbage)]) == 1
    assert "error:" in capsys.readouterr().err

    archive = tmp_path / "ok.dwta"
    assert main(["pack", str(archive), "--synthetic", "1", "--size", "32"]) == 0
    capsys.readouterr()
    assert main(["extract", str(archive), "nope", "-o", str(tmp_path / "x.pgm")]) == 1
    assert "no frame named" in capsys.readouterr().err
    # Refuses to clobber without --overwrite.
    assert main(["pack", str(archive), "--synthetic", "1", "--size", "32"]) == 1
