"""Damage handling: truncated and corrupted archives fail loudly and cleanly."""

import pytest

from repro.archive import (
    ArchiveError,
    ArchiveFormatError,
    ArchiveIntegrityError,
    ArchiveReader,
    ArchiveWriter,
    TruncatedArchiveError,
)
from repro.archive.format import HEADER_SIZE, read_header
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive


@pytest.fixture()
def archive(tmp_path):
    path = tmp_path / "victim.dwta"
    with ArchiveWriter.create(path) as writer:
        writer.add_frames(ct_slice_series(count=3, size=32, seed=5))
    return path


def test_not_an_archive(tmp_path):
    path = tmp_path / "noise.dwta"
    path.write_bytes(b"definitely not an archive, but long enough to parse" * 2)
    with pytest.raises(ArchiveFormatError, match="bad magic"):
        ArchiveReader(path)


def test_truncated_header(tmp_path, archive):
    short = tmp_path / "short.dwta"
    short.write_bytes(archive.read_bytes()[: HEADER_SIZE - 5])
    with pytest.raises(TruncatedArchiveError):
        ArchiveReader(short)


def test_truncated_index(tmp_path, archive):
    cut = tmp_path / "cut.dwta"
    cut.write_bytes(archive.read_bytes()[:-7])
    with pytest.raises(TruncatedArchiveError, match="index table"):
        ArchiveReader(cut)


def test_unfinalised_archive_detected(tmp_path):
    path = tmp_path / "crashed.dwta"
    writer = ArchiveWriter.create(path)
    writer.add_frames(ct_slice_series(count=1, size=32))
    writer._fh.flush()  # simulate a crash: payload on disk, no close()
    with pytest.raises(ArchiveFormatError, match="never finalised"):
        ArchiveReader(path)
    writer.close()
    with ArchiveReader(path) as reader:  # after close it is a valid archive
        assert len(reader) == 1


def test_crash_during_append_preserves_old_archive(archive):
    """An append that never closes must leave the original archive intact."""
    with ArchiveReader(archive) as reader:
        before = reader.decode_range(0)
    writer = ArchiveWriter.append(archive)
    writer.add_frames(ct_slice_series(count=1, size=32, seed=8), names=["doomed"])
    writer._fh.flush()  # simulate a crash: payload on disk, no close()
    with ArchiveReader(archive) as reader:  # still the pre-append archive
        assert reader.names() == ["frame_00000", "frame_00001", "frame_00002"]
        for image, original in zip(reader.decode_range(0), before):
            assert (image == original).all()
        assert reader.verify(deep=True)["frames"] == 3
    writer.close()
    with ArchiveReader(archive) as reader:  # after close the append lands
        assert len(reader) == 4 and reader.names()[-1] == "doomed"


def test_corrupted_payload_checksum(archive):
    data = bytearray(archive.read_bytes())
    data[HEADER_SIZE + 10] ^= 0xFF  # flip a byte inside frame 0's payload
    archive.write_bytes(bytes(data))
    with ArchiveReader(archive) as reader:
        with pytest.raises(ArchiveIntegrityError, match="checksum mismatch"):
            reader.decode(0)
        with pytest.raises(ArchiveIntegrityError):
            reader.verify()
        # Undamaged frames remain individually retrievable.
        reader.decode(1)
        reader.decode(2)


def test_corrupted_payload_found_even_without_per_read_checks(archive):
    data = bytearray(archive.read_bytes())
    data[HEADER_SIZE + 10] ^= 0xFF
    archive.write_bytes(bytes(data))
    with ArchiveReader(archive, verify_checksums=False) as reader:
        with pytest.raises(ArchiveIntegrityError):
            reader.verify()


def test_corrupted_index_checksum(archive):
    with open(archive, "rb") as fh:
        header = read_header(fh)
    data = bytearray(archive.read_bytes())
    data[header.index_offset + 3] ^= 0x01
    archive.write_bytes(bytes(data))
    with pytest.raises(ArchiveIntegrityError, match="index table checksum"):
        ArchiveReader(archive)


def test_corrupted_header_field(archive):
    data = bytearray(archive.read_bytes())
    data[12] ^= 0x01  # frame_count, protected by the header CRC
    archive.write_bytes(bytes(data))
    with pytest.raises(ArchiveIntegrityError, match="header checksum"):
        ArchiveReader(archive)


def test_every_failure_is_an_archive_error(tmp_path, archive):
    """The whole taxonomy roots at ArchiveError, so callers can catch once."""
    bad = tmp_path / "bad.dwta"
    bad.write_bytes(b"\x00" * 100)
    for path in (bad,):
        with pytest.raises(ArchiveError):
            ArchiveReader(path)
