"""The mmap zero-copy read path: correctness, accounting, and fallbacks.

Zero-copy reads must be invisible except in speed: identical decoded
frames, identical ``bytes_read`` accounting, identical errors on damage.
These tests pin that contract for file and memory backends, prove the
``zero_copy_reads`` counter reports which path served each read, and check
the cross-tier property that an archive packed under any engine tier
decodes identically under every other tier.
"""

import numpy as np
import pytest

from repro.archive.backend import (
    Fault,
    FaultInjectionBackend,
    FileBackend,
    MemoryBackend,
)
from repro.archive.format import ArchiveIntegrityError
from repro.archive.reader import ArchiveReader
from repro.archive.serialize import materialize_stream, serialize_stream
from repro.archive.sharding import ShardedArchiveReader, ShardedArchiveWriter
from repro.archive.writer import ArchiveWriter

ENGINES = ("fast", "scalar", "turbo")


@pytest.fixture
def frames(rng):
    return [
        rng.integers(0, 4096, size=(32, 32)).astype(np.int64) for _ in range(6)
    ]


@pytest.fixture
def archive_path(tmp_path, frames):
    path = tmp_path / "frames.dwta"
    with ArchiveWriter.create(path, scales=2) as writer:
        writer.append_batch(frames)
    return path


class TestFileBackendReadRange:
    def test_serves_memoryview_of_mapping(self, archive_path):
        backend = FileBackend(archive_path)
        data = archive_path.read_bytes()
        view = backend.read_range(4, 32)
        assert isinstance(view, memoryview)
        assert view.tobytes() == data[4:36]
        backend.release()

    def test_short_at_end_of_file(self, archive_path):
        backend = FileBackend(archive_path)
        size = archive_path.stat().st_size
        view = backend.read_range(size - 10, 64)
        assert view is not None and len(view) == 10
        backend.release()

    def test_remaps_after_growth(self, tmp_path):
        path = tmp_path / "grow.bin"
        path.write_bytes(b"a" * 64)
        backend = FileBackend(path)
        assert backend.read_range(0, 64).tobytes() == b"a" * 64
        with open(path, "ab") as fh:
            fh.write(b"b" * 64)
        assert backend.read_range(64, 64).tobytes() == b"b" * 64
        backend.release()

    def test_release_then_reuse(self, archive_path):
        backend = FileBackend(archive_path)
        first = backend.read_range(0, 4).tobytes()
        backend.release()
        assert backend.read_range(0, 4).tobytes() == first
        backend.release()

    def test_missing_file_returns_none(self, tmp_path):
        assert FileBackend(tmp_path / "nope.bin").read_range(0, 8) is None

    def test_invalid_range_rejected(self, archive_path):
        backend = FileBackend(archive_path)
        with pytest.raises(ValueError):
            backend.read_range(-1, 4)
        with pytest.raises(ValueError):
            backend.read_range(0, -4)


class TestMemoryBackendReadRange:
    def test_serves_buffer_slice(self):
        backend = MemoryBackend(b"0123456789")
        view = backend.read_range(2, 5)
        assert isinstance(view, memoryview)
        assert view.tobytes() == b"23456"

    def test_short_at_end(self):
        assert MemoryBackend(b"abc").read_range(1, 10).tobytes() == b"bc"


class TestReaderZeroCopy:
    def test_decodes_identically_to_copy_path(self, archive_path, frames):
        with ArchiveReader(archive_path) as zc, ArchiveReader(
            archive_path, zero_copy=False
        ) as copy:
            for i, frame in enumerate(frames):
                assert np.array_equal(zc.decode(i), frame)
                assert np.array_equal(copy.decode(i), frame)
            assert zc.bytes_read == copy.bytes_read
            assert zc.zero_copy_reads == len(frames)
            assert copy.zero_copy_reads == 0

    def test_memory_backend_is_zero_copy(self, frames):
        backend = MemoryBackend()
        with ArchiveWriter.create(backend, scales=2) as writer:
            writer.append_batch(frames)
        with ArchiveReader(backend) as reader:
            assert np.array_equal(reader.decode(0), frames[0])
            assert reader.zero_copy_reads == 1

    def test_unsupported_backend_falls_back(self, archive_path):
        # FaultInjectionBackend (fault-free plan) has no read_range: reads
        # must silently take the counted copy path.
        backend = FaultInjectionBackend(FileBackend(archive_path))
        with ArchiveReader(backend) as reader:
            reader.decode(0)
            assert reader.zero_copy_reads == 0
            assert reader.bytes_read > 0
            assert backend.reads > 0

    def test_checksum_still_verified(self, archive_path, frames):
        with ArchiveReader(archive_path) as reader:
            entry = reader.frames[2]
        data = bytearray(archive_path.read_bytes())
        data[entry.offset + 5] ^= 0x10
        archive_path.write_bytes(bytes(data))
        with ArchiveReader(archive_path) as reader:
            with pytest.raises(ArchiveIntegrityError):
                reader.decode(2)
            assert reader.zero_copy_reads == 1  # the read happened, then failed CRC

    def test_parallel_decode_materializes_views(self, archive_path, frames):
        with ArchiveReader(archive_path) as reader:
            images, _ = reader.decode_all(workers=2)
        assert all(np.array_equal(a, b) for a, b in zip(images, frames))

    def test_materialize_stream_copies_views(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            stream = reader.read_stream(0)
            payload_before = serialize_stream(stream)
            materialize_stream(stream)
        # The materialised stream survives the reader (and its mapping).
        assert serialize_stream(stream) == payload_before

    def test_faulted_reads_still_fire_without_zero_copy_path(self, archive_path):
        backend = FaultInjectionBackend(
            FileBackend(archive_path), [Fault(kind="io-error", at_read=0, times=1)]
        )
        with pytest.raises(OSError):
            ArchiveReader(backend)
        assert backend.fired


class TestShardedZeroCopy:
    def test_counters_aggregate_across_shards(self, tmp_path, frames):
        manifest = tmp_path / "set.dwtm"
        with ShardedArchiveWriter.create(manifest, shards=3, scales=2) as writer:
            writer.append_batch(frames, names=[f"f{i}" for i in range(len(frames))])
        with ShardedArchiveReader(manifest) as reader:
            for i in range(len(frames)):
                reader.decode(f"f{i}")
            assert reader.zero_copy_reads == len(frames)
            assert reader.bytes_read > 0
        with ShardedArchiveReader(manifest, zero_copy=False) as reader:
            reader.decode("f0")
            assert reader.zero_copy_reads == 0

    def test_parallel_decode_all(self, tmp_path, frames):
        manifest = tmp_path / "set.dwtm"
        with ShardedArchiveWriter.create(manifest, shards=2, scales=2) as writer:
            writer.append_batch(frames, names=[f"f{i}" for i in range(len(frames))])
        with ShardedArchiveReader(manifest) as reader:
            images, _ = reader.decode_all(workers=2)
        expected = [frame for _, frame in sorted(zip(
            [f"f{i}" for i in range(len(frames))], frames), key=lambda p: p[0])]
        assert all(np.array_equal(a, b) for a, b in zip(images, expected))


class TestCrossTierArchives:
    @pytest.mark.parametrize("pack_engine", ENGINES)
    def test_any_tier_decodes_any_tier_archive(self, tmp_path, frames, pack_engine):
        path = tmp_path / f"{pack_engine}.dwta"
        with ArchiveWriter.create(path, scales=2, engine=pack_engine) as writer:
            writer.append_batch(frames[:3])
        streams = {}
        for decode_engine in ENGINES:
            with ArchiveReader(path, engine=decode_engine) as reader:
                images = [reader.decode(i) for i in range(3)]
                for image, frame in zip(images, frames):
                    assert np.array_equal(image, frame)
            streams[decode_engine] = images

    def test_packed_bytes_identical_across_tiers(self, tmp_path, frames):
        digests = set()
        for engine in ENGINES:
            path = tmp_path / f"bytes-{engine}.dwta"
            with ArchiveWriter.create(path, scales=2, engine=engine) as writer:
                writer.append_batch(frames[:3])
            digests.add(path.read_bytes())
        assert len(digests) == 1
