"""Storage backends: file/memory parity, byte identity, writer/reader seam."""

import numpy as np
import pytest

from repro.archive import (
    ArchiveFormatError,
    ArchiveReader,
    ArchiveWriter,
    FileBackend,
    MemoryBackend,
    resolve_backend,
)
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive


def names_for(count):
    return [f"slice_{i:03d}" for i in range(count)]


def test_resolve_backend():
    assert isinstance(resolve_backend("x.dwta"), FileBackend)
    memory = MemoryBackend()
    assert resolve_backend(memory) is memory


def test_memory_backend_bytes_identical_to_file(tmp_path):
    """The container format never sees the backend: same frames, same bytes."""
    frames = ct_slice_series(count=5, size=32, seed=3)
    path = tmp_path / "file.dwta"
    memory = MemoryBackend()
    for target in (path, memory):
        with ArchiveWriter.create(target) as writer:
            writer.append_batch(frames, names=names_for(5))
    assert memory.getvalue() == path.read_bytes()


def test_memory_backend_full_lifecycle():
    frames = ct_slice_series(count=4, size=32, seed=6)
    memory = MemoryBackend()
    assert not memory.exists()
    with ArchiveWriter.create(memory) as writer:
        writer.append_batch(frames[:2], names=names_for(2))
    assert memory.exists()
    # Append through the same backend object, then read everything back.
    with ArchiveWriter.append(memory) as writer:
        writer.append_batch(frames[2:], names=["extra_0", "extra_1"])
    with ArchiveReader(memory) as reader:
        assert len(reader) == 4
        assert np.array_equal(reader.decode("extra_1"), frames[3])
        assert reader.verify(deep=True)["frames"] == 4


def test_memory_backend_refuses_missing_container():
    with pytest.raises(FileNotFoundError):
        MemoryBackend().open_read()


def test_create_refuses_existing_backend_container():
    memory = MemoryBackend(name="scratch")
    with ArchiveWriter.create(memory) as writer:
        writer.append_batch(ct_slice_series(count=1, size=32))
    with pytest.raises(FileExistsError, match="scratch"):
        ArchiveWriter.create(memory)
    # overwrite=True starts over.
    with ArchiveWriter.create(memory, overwrite=True) as writer:
        writer.append_batch(ct_slice_series(count=2, size=32))
    with ArchiveReader(memory) as reader:
        assert len(reader) == 2


def test_memory_backend_damage_detection():
    """Format errors surface identically regardless of the backend."""
    memory = MemoryBackend()
    with ArchiveWriter.create(memory) as writer:
        writer.append_batch(ct_slice_series(count=1, size=32))
    truncated = MemoryBackend(initial=memory.getvalue()[:-5])
    with pytest.raises(ArchiveFormatError):
        ArchiveReader(truncated)


def test_file_and_memory_roundtrip_interchangeable(tmp_path):
    """Bytes written through one backend open through the other."""
    frames = ct_slice_series(count=3, size=32, seed=8)
    memory = MemoryBackend()
    with ArchiveWriter.create(memory) as writer:
        writer.append_batch(frames, names=names_for(3))
    path = tmp_path / "copied.dwta"
    path.write_bytes(memory.getvalue())
    with ArchiveReader(path) as reader:
        for position, name in enumerate(names_for(3)):
            assert np.array_equal(reader.decode(name), frames[position])
