"""Byte-level format layer: header/index packing and the error taxonomy."""

import pytest

from repro.archive.format import (
    HEADER_SIZE,
    MAGIC,
    VERSION,
    ArchiveFormatError,
    ArchiveIntegrityError,
    FrameInfo,
    Header,
    TruncatedArchiveError,
    crc32,
    pack_header,
    pack_index,
    unpack_header,
    unpack_index,
)

pytestmark = pytest.mark.archive


def _entry(index=0, name="frame", codec="s-transform", bank="", use_rle=False):
    return FrameInfo(
        index=index,
        name=name,
        codec=codec,
        scales=4,
        bit_depth=12,
        shape=(64, 64),
        offset=HEADER_SIZE + 100 * index,
        length=100,
        crc32=0xDEADBEEF,
        raw_bytes=6144,
        bank_name=bank,
        use_rle=use_rle,
    )


class TestHeader:
    def test_roundtrip(self):
        header = Header(
            version=VERSION,
            flags=0,
            frame_count=7,
            index_offset=1234,
            index_size=321,
            index_crc=0xCAFEBABE,
        )
        packed = pack_header(header)
        assert len(packed) == HEADER_SIZE
        assert packed.startswith(MAGIC)
        assert unpack_header(packed) == header

    def test_bad_magic(self):
        packed = bytearray(pack_header(Header(VERSION, 0, 0, 0, 0, 0)))
        packed[0] ^= 0xFF
        with pytest.raises(ArchiveFormatError, match="bad magic"):
            unpack_header(bytes(packed))

    def test_short_header_is_truncation(self):
        with pytest.raises(TruncatedArchiveError):
            unpack_header(MAGIC + b"\x00" * 4)

    def test_corrupted_header_crc(self):
        packed = bytearray(pack_header(Header(VERSION, 0, 3, 500, 100, 1)))
        packed[12] ^= 0x01  # flip a frame_count bit
        with pytest.raises(ArchiveIntegrityError, match="header checksum"):
            unpack_header(bytes(packed))

    def test_future_version_rejected(self):
        packed = pack_header(Header(VERSION + 1, 0, 0, 0, 0, 0))
        with pytest.raises(ArchiveFormatError, match="newer than supported"):
            unpack_header(packed)


class TestIndex:
    def test_roundtrip_mixed_entries(self):
        entries = [
            _entry(0, "a"),
            _entry(1, "unicode-ﬀrame", codec="coefficient", bank="F2", use_rle=True),
            _entry(2, "c" * 300),
        ]
        packed = pack_index(entries)
        assert unpack_index(packed, 3) == entries

    def test_empty_index(self):
        assert pack_index([]) == b""
        assert unpack_index(b"", 0) == []

    def test_truncated_index(self):
        packed = pack_index([_entry(0), _entry(1)])
        with pytest.raises(TruncatedArchiveError, match="entry 1 of 2"):
            unpack_index(packed[:-10], 2)

    def test_trailing_garbage_rejected(self):
        packed = pack_index([_entry(0)])
        with pytest.raises(ArchiveFormatError, match="trailing bytes"):
            unpack_index(packed + b"\x00", 1)

    def test_unknown_codec_id(self):
        packed = bytearray(pack_index([_entry(0, "x")]))
        # codec_id byte sits after the 2-byte name length, the name, and the
        # offset/length/crc fields (8 + 8 + 4 bytes).
        packed[2 + 1 + 20] = 99
        with pytest.raises(ArchiveFormatError, match="unknown codec id"):
            unpack_index(bytes(packed), 1)

    def test_crc32_is_unsigned(self):
        assert 0 <= crc32(b"anything") <= 0xFFFFFFFF
