"""The serving layer under concurrent load, faults and live ingest.

What must hold with N clients hammering at once:

* every response carries exactly the frame its request named (no
  cross-talk between interleaved requests on different connections),
* the ``/stats`` counters account for every request exactly,
* cache hit counts only ever grow (monotone under interleaving),
* a fault-injected shard (seeded plan) fails over to its replica
  transparently — and **exactly once**, however many clients race it,
* persistent, unreplicated damage surfaces as 503 + ``Retry-After``.
"""

import asyncio
import json
import os
import zlib

import numpy as np
import pytest

from repro.archive import RetryPolicy, seeded_fault_plan
from server_util import (
    HTTPClient,
    build_replicated,
    build_sharded,
    chunk_encode,
    frame_names,
    http_request,
    ingest_body,
    response_frame,
    running_server,
    series,
)

pytestmark = pytest.mark.archive

# Chaos seeds: the CI chaos job widens this set via REPRO_FAULT_SEED.
SEEDS = [3, 11, 42]
if os.environ.get("REPRO_FAULT_SEED"):
    SEEDS = sorted({*SEEDS, int(os.environ["REPRO_FAULT_SEED"])})

FRAMES = series(count=12, size=32, seed=7)


def shard_of(name, shards):
    """The hash router's routing, recomputed independently of the server."""
    return (zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF) % shards


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


class TestConcurrentMixedLoad:
    def test_gets_during_live_ingest_with_exact_accounting(self, tmp_path):
        target = build_replicated(tmp_path / "set.dwts", FRAMES, shards=4, replicas=1)
        new_frames = {f"live_{i}": frame for i, frame in enumerate(series(count=4, size=24, seed=21).values())}
        clients, rounds = 8, 6
        hit_samples = []

        async def reader_client(index, address):
            """GET every frame repeatedly; every body must match its name."""
            async with HTTPClient(address) as client:
                requested = {"frames": 0, "meta": 0, "stats": 0}
                for round_no in range(rounds):
                    for name, expected in FRAMES.items():
                        status, headers, body = await client.request(
                            "GET", f"/frames/{name}"
                        )
                        assert status == 200
                        assert headers["x-frame-name"] == name
                        assert np.array_equal(response_frame(headers, body), expected)
                        requested["frames"] += 1
                    status, _, body = await client.request(
                        "GET", f"/frames/{frame_names(12)[index]}/meta"
                    )
                    assert status == 200
                    requested["meta"] += 1
                    status, _, body = await client.request("GET", "/stats")
                    assert status == 200
                    requested["stats"] += 1
                    hit_samples.append(json.loads(body)["cache"]["hits"])
                return requested

        async def ingest_client(address):
            status, _, body = await http_request(
                address,
                "POST",
                "/ingest",
                headers={"Transfer-Encoding": "chunked"},
                body=chunk_encode(ingest_body(new_frames), chunk_size=256),
            )
            assert status == 200
            assert json.loads(body)["frames"] == len(new_frames)
            return {"ingest": 1}

        async def full_scenario():
            async with running_server(target, cache_bytes=32 << 20) as server:
                results = await asyncio.gather(
                    *(reader_client(i, server.address) for i in range(clients)),
                    ingest_client(server.address),
                )
                totals = {}
                for result in results:
                    for endpoint, count in result.items():
                        totals[endpoint] = totals.get(endpoint, 0) + count
                status, _, body = await http_request(server.address, "GET", "/stats")
                assert status == 200
                stats = json.loads(body)
                totals["stats"] = totals.get("stats", 0) + 1  # this request too
                # Exact accounting: the server saw precisely what was sent.
                for endpoint, count in totals.items():
                    assert stats["requests"][endpoint] == count, endpoint
                assert stats["requests"]["total"] == sum(totals.values())
                # Nothing errored under load, and the ingest landed.
                assert set(stats["responses"]) == {"200"}
                assert stats["ingest"] == {
                    "ingests": 1,
                    "frames_ingested": len(new_frames),
                    "generation": 1,
                }
                # The ingested frames serve back byte-identically.
                for name, expected in new_frames.items():
                    status, headers, body = await http_request(
                        server.address, "GET", f"/frames/{name}"
                    )
                    assert status == 200
                    assert np.array_equal(response_frame(headers, body), expected)

            # Cache hits never went backwards, however the clients interleaved.
            assert hit_samples == sorted(hit_samples)
            assert hit_samples[-1] > 0

        run(full_scenario())

    def test_queue_backpressure_bounds_inflight_work(self, tmp_path):
        """More concurrent requests than queue slots still all succeed —
        the surplus defers at ``queue.put`` instead of failing."""
        target = build_sharded(tmp_path / "set.dwts", FRAMES, shards=2)

        async def scenario():
            async with running_server(
                target, cache_bytes=0, queue_depth=2, workers_per_shard=1
            ) as server:

                async def one_get(name):
                    status, headers, body = await http_request(
                        server.address, "GET", f"/frames/{name}"
                    )
                    assert status == 200
                    return np.array_equal(response_frame(headers, body), FRAMES[name])

                names = [name for name in FRAMES for _ in range(4)]
                outcomes = await asyncio.gather(*(one_get(name) for name in names))
                assert all(outcomes)
                status, _, body = await http_request(server.address, "GET", "/stats")
                stats = json.loads(body)
                assert max(stats["queues"]["peak_depths"]) <= 2
                assert stats["queues"]["submitted"] == len(names)

        run(scenario())


class TestFailoverUnderLoad:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_damage_fails_over_transparently_exactly_once(self, tmp_path, seed):
        path = build_replicated(
            tmp_path / f"faulty_{seed}.dwts", FRAMES, shards=4, replicas=1
        )
        from repro.archive import ShardedArchiveReader

        with ShardedArchiveReader(path) as reader:
            copies = [list(shard) for shard in reader.copy_paths]
        primary = copies[0][0]
        blob = primary.read_bytes()
        # Seeded truncation: damages the whole shard copy (index and all),
        # so the very first touch of shard 0 must fail over at open.
        fault = seeded_fault_plan(seed, len(blob), faults=1)[0]
        cut = max(1, fault.offset % (len(blob) // 2))
        primary.write_bytes(blob[:-cut])

        shard0_names = [name for name in FRAMES if shard_of(name, 4) == 0]
        assert shard0_names, "series always spreads across 4 shards"
        policy = RetryPolicy(attempts=3, base_delay=0.001, sleep=lambda s: None)

        async def scenario():
            async with running_server(path, cache_bytes=0, retry=policy) as server:

                async def hammer(name):
                    status, headers, body = await http_request(
                        server.address, "GET", f"/frames/{name}"
                    )
                    assert status == 200
                    assert np.array_equal(response_frame(headers, body), FRAMES[name])

                # 16 concurrent reads racing into the damaged shard.
                await asyncio.gather(
                    *(hammer(name) for name in (shard0_names * 16)[:16])
                )
                status, _, body = await http_request(server.address, "GET", "/stats")
                stats = json.loads(body)
                # Transparent: not a single non-200 response...
                assert set(stats["responses"]) == {"200"}
                # ...and exactly one failover, however many clients raced.
                assert stats["reader"]["failovers"] == 1

        run(scenario())

    def test_persistent_damage_is_503_with_retry_after(self, tmp_path):
        path = build_sharded(tmp_path / "bare.dwts", FRAMES, shards=3)
        from repro.archive import ShardedArchiveReader

        with ShardedArchiveReader(path) as reader:
            shard_paths = list(reader.shard_paths)
        shard_paths[1].unlink()  # no replica to fail over to

        dead = [name for name in FRAMES if shard_of(name, 3) == 1]
        alive = [name for name in FRAMES if shard_of(name, 3) != 1]
        assert dead and alive

        async def scenario():
            async with running_server(path, cache_bytes=0) as server:
                async with HTTPClient(server.address) as client:
                    status, headers, body = await client.request(
                        "GET", f"/frames/{dead[0]}"
                    )
                    assert status == 503
                    assert float(headers["retry-after"]) > 0
                    assert "error" in json.loads(body)
                    # Damage is isolated: the other shards keep serving on
                    # the very same connection.
                    for name in alive:
                        status, headers, body = await client.request(
                            "GET", f"/frames/{name}"
                        )
                        assert status == 200
                        assert np.array_equal(response_frame(headers, body), FRAMES[name])
                    status, _, body = await client.request("GET", "/stats")
                    stats = json.loads(body)
                    assert stats["responses"]["503"] == 1

        run(scenario())
