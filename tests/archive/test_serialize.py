"""Frame-payload serialisation: compressed streams survive the byte trip."""

import numpy as np
import pytest

from repro.archive.format import ArchiveFormatError
from repro.archive.serialize import deserialize_stream, serialize_stream
from repro.coding import LosslessWaveletCodec, STransformCodec
from repro.imaging import shepp_logan

pytestmark = pytest.mark.archive


@pytest.fixture(scope="module")
def image():
    return shepp_logan(32)


def _assert_coefficient_equal(a, b):
    assert a.bank_name == b.bank_name
    assert a.scales == b.scales
    assert a.image_shape == b.image_shape
    assert a.bit_depth == b.bit_depth
    assert a.chunks == b.chunks


def test_s_transform_stream_roundtrip(image):
    codec = STransformCodec(scales=3)
    stream = codec.encode(image)
    recovered = deserialize_stream(serialize_stream(stream))
    assert recovered.scales == stream.scales
    assert recovered.image_shape == stream.image_shape
    assert recovered.bit_depth == stream.bit_depth
    assert recovered.chunks == stream.chunks
    assert recovered.shapes == stream.shapes
    assert np.array_equal(codec.decode(recovered), image)


@pytest.mark.parametrize("use_rle", [True, False])
def test_coefficient_stream_roundtrip(image, use_rle):
    codec = LosslessWaveletCodec(bank="F2", scales=2, use_rle=use_rle)
    stream = codec.encode(image)
    recovered = deserialize_stream(serialize_stream(stream))
    _assert_coefficient_equal(recovered, stream)
    assert np.array_equal(codec.decode(recovered), image)


def test_payload_is_deterministic(image):
    stream = STransformCodec(scales=2).encode(image)
    assert serialize_stream(stream) == serialize_stream(stream)


def test_truncated_payload_raises(image):
    payload = serialize_stream(STransformCodec(scales=2).encode(image))
    with pytest.raises(ArchiveFormatError):
        deserialize_stream(payload[: len(payload) // 2])
    with pytest.raises(ArchiveFormatError, match="length prefix"):
        deserialize_stream(payload[:3])


def test_trailing_bytes_raise(image):
    payload = serialize_stream(STransformCodec(scales=2).encode(image))
    with pytest.raises(ArchiveFormatError, match="trailing bytes"):
        deserialize_stream(payload + b"\x00")


def test_unknown_codec_id_raises(image):
    payload = bytearray(serialize_stream(STransformCodec(scales=2).encode(image)))
    payload[4] = 0xEE  # first meta byte is the codec id
    with pytest.raises(ArchiveFormatError, match="unknown codec id"):
        deserialize_stream(bytes(payload))


def test_word_length_metadata_guard(image):
    """A doctored word-length field must be rejected, not silently decoded."""
    payload = bytearray(serialize_stream(LosslessWaveletCodec(scales=2).encode(image)))
    # meta layout: codec_id, scales, h(4), w(4), bit_depth, bank_len, "F2",
    # then word_length — offset 4 (prefix) + 11 + 1 + 2 = 18.
    offset = 4 + 11 + 1 + 2
    assert payload[offset] == 32
    payload[offset] = 16
    with pytest.raises(ArchiveFormatError, match="word-length plan"):
        deserialize_stream(bytes(payload))
