"""Fuzzing the HTTP parser: hostile input never reaches the event loop.

A table-driven corpus (no hypothesis dependency) of malformed request
lines, oversized heads, broken chunked framing and early disconnects.
The contract under test, for every case:

* the server either answers with a deliberate 4xx/5xx or closes the
  connection cleanly — it never hangs and never raises into the event
  loop (asserted via ``loop.set_exception_handler``), and
* the server still serves a well-formed request afterwards.
"""

import asyncio
import contextlib

import numpy as np
import pytest

from server_util import HTTPClient, build_plain, response_frame, running_server, series

pytestmark = pytest.mark.archive

FRAMES = series(count=3, size=24, seed=2)

#: (case id, raw request bytes, statuses allowed — empty set means "a clean
#: connection close with no response is also acceptable").
CORPUS = [
    ("empty-line-only", b"\r\n", set()),
    ("garbage-line", b"garbage\r\n\r\n", {400}),
    ("two-token-line", b"GET /stats\r\n\r\n", {400}),
    ("four-token-line", b"GET /stats HTTP/1.1 extra\r\n\r\n", {400}),
    ("bad-version-token", b"GET /stats JUNK/9\r\n\r\n", {400}),
    ("http2-version", b"GET /stats HTTP/2.0\r\n\r\n", {505}),
    ("http09-version", b"GET /stats HTTP/0.9\r\n\r\n", {505}),
    ("non-ascii-line", b"GET /\xff\xfe HTTP/1.1\r\n\r\n", {400}),
    ("oversized-request-line", b"GET /" + b"a" * 10000 + b" HTTP/1.1\r\n\r\n", {431}),
    ("oversized-header-line", b"GET /stats HTTP/1.1\r\nX-Big: " + b"b" * 10000 + b"\r\n\r\n", {431}),
    ("too-many-headers", b"GET /stats HTTP/1.1\r\n" + b"".join(f"X-{i}: v\r\n".encode() for i in range(200)) + b"\r\n", {431}),
    ("header-without-colon", b"GET /stats HTTP/1.1\r\nnocolon\r\n\r\n", {400}),
    ("colon-only-header", b"GET /stats HTTP/1.1\r\n: value\r\n\r\n", {400}),
    ("unknown-method", b"BREW /stats HTTP/1.1\r\n\r\n", {405}),
    ("null-bytes", b"\x00\x00\x00\r\n\r\n", {400}),
    ("unknown-path", b"GET /../../etc/passwd HTTP/1.1\r\n\r\n", {404}),
    ("frames-traversal", b"GET /frames/a/b/c HTTP/1.1\r\n\r\n", {404}),
    ("bad-range-syntax", b"GET /frames/slice_000 HTTP/1.1\r\nRange: bytes=zz-qq\r\n\r\n", {400}),
    ("range-out-of-payload", b"GET /frames/slice_000 HTTP/1.1\r\nRange: bytes=9999999-\r\n\r\n", {416}),
    ("multi-range", b"GET /frames/slice_000 HTTP/1.1\r\nRange: bytes=0-1,3-4\r\n\r\n", {400}),
    ("post-no-length", b"POST /ingest HTTP/1.1\r\n\r\n", {411}),
    ("post-bad-length", b"POST /ingest HTTP/1.1\r\nContent-Length: banana\r\n\r\n", {400}),
    ("post-negative-length", b"POST /ingest HTTP/1.1\r\nContent-Length: -5\r\n\r\n", {400}),
    ("post-exotic-encoding", b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", {501}),
    ("chunk-size-not-hex", b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n", {400}),
    ("chunk-bad-terminator", b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nAAAAXX0\r\n\r\n", {400}),
    ("chunk-huge-size", b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffffffff\r\n\r\n", {413}),
    ("body-shorter-than-record-head", b"POST /ingest HTTP/1.1\r\nContent-Length: 2\r\nX: y\r\n\r\nAB", {400}),
    ("record-name-length-zero", b"POST /ingest HTTP/1.1\r\nContent-Length: 4\r\n\r\n\x00\x00\x00\x00", {400}),
    ("record-name-length-huge", b"POST /ingest HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xff\xff\xff", {400}),
    ("record-name-not-utf8", b"POST /ingest HTTP/1.1\r\nContent-Length: 8\r\n\r\n\x02\x00\x00\x00\xff\xfe\x00\x00", {400}),
]

#: Raw prefixes after which the client simply vanishes (early disconnect):
#: no response is owed; the server must just stay healthy.
DISCONNECTS = [
    ("mid-request-line", b"GET /frame"),
    ("mid-headers", b"GET /stats HTTP/1.1\r\nX-Part"),
    ("after-headers-no-body", b"POST /ingest HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"),
    ("mid-chunked-body", b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n10\r\nAB"),
    ("nothing-at-all", b""),
]


@contextlib.asynccontextmanager
async def loop_guard():
    """Collects anything that escapes to the event loop during the block."""
    loop = asyncio.get_running_loop()
    escaped = []
    previous = loop.get_exception_handler()
    loop.set_exception_handler(lambda l, context: escaped.append(context))
    try:
        yield escaped
    finally:
        loop.set_exception_handler(previous)


async def poke(address, raw, timeout=10):
    """Send raw bytes; return the status answered, or None on clean close."""
    async with HTTPClient(address) as client:
        await client.send_raw(raw)
        try:
            status, _, _ = await asyncio.wait_for(client.read_response(), timeout)
            return status
        except (ConnectionError, asyncio.IncompleteReadError):
            return None


async def assert_still_serving(address):
    async with HTTPClient(address) as client:
        status, headers, body = await client.request("GET", "/frames/slice_000")
        assert status == 200
        assert np.array_equal(response_frame(headers, body), FRAMES["slice_000"])


class TestHostileInput:
    @pytest.mark.parametrize("case,raw,allowed", CORPUS, ids=[c[0] for c in CORPUS])
    def test_malformed_input_is_answered_or_closed(self, tmp_path, case, raw, allowed):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target) as server:
                async with loop_guard() as escaped:
                    status = await poke(server.address, raw)
                    if allowed:
                        assert status in allowed, f"{case}: got {status}"
                    else:
                        assert status is None or status >= 400, case
                    await assert_still_serving(server.address)
                assert escaped == [], case

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    @pytest.mark.parametrize("case,prefix", DISCONNECTS, ids=[c[0] for c in DISCONNECTS])
    def test_early_disconnect_leaves_server_healthy(self, tmp_path, case, prefix):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target) as server:
                async with loop_guard() as escaped:
                    async with HTTPClient(server.address) as client:
                        if prefix:
                            await client.send_raw(prefix)
                    # The client is gone; give the handler a beat to notice.
                    await asyncio.sleep(0.05)
                    await assert_still_serving(server.address)
                assert escaped == [], case

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_whole_corpus_on_one_server_back_to_back(self, tmp_path):
        """The full corpus against a single server instance: damage from
        one hostile connection never leaks into the next."""
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target) as server:
                async with loop_guard() as escaped:
                    for case, raw, allowed in CORPUS:
                        status = await poke(server.address, raw)
                        if allowed:
                            assert status in allowed, case
                    for case, prefix in DISCONNECTS:
                        async with HTTPClient(server.address) as client:
                            if prefix:
                                await client.send_raw(prefix)
                    await asyncio.sleep(0.05)
                    await assert_still_serving(server.address)
                assert escaped == []

        asyncio.run(asyncio.wait_for(scenario(), timeout=120))
