"""Manifest v3 shard placement: format, routing, counters, CLI, server.

The contract under test: a placement table (shard file name → preferred
worker node id) rides the manifest as version 3 — version-2 and version-1
manifests still read, and an *unplaced* set keeps stamping version 2 so
its bytes never change — and distributed appends/verifies route each
shard's work to its placed node (``placement_hits``) with silent
any-worker fallback (``placement_fallbacks``) when a placed node is down.
Placement is advisory: the bytes are identical either way.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.archive import (
    ArchiveReader,
    ReplicatedShardSet,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    ShardManifest,
    assign_round_robin,
    normalize_placement,
    placement_of,
)
from repro.archive.cli import main as cli_main
from repro.archive.format import (
    MANIFEST_VERSION,
    pack_manifest,
    unpack_manifest,
)
from repro.archive.sharding import shard_file_names
from repro.coding.netexec import SocketWorker, WorkerPool
from repro.coding.spec import CodecSpec
from repro.imaging import ct_slice_series, write_pgm

pytestmark = pytest.mark.archive


def series(count=6, size=32, seed=3):
    return ct_slice_series(count=count, size=size, seed=seed)


def names_for(count):
    return [f"slice_{i:03d}" for i in range(count)]


@pytest.fixture(scope="module")
def cluster():
    """Two named in-process socket workers, shared by the module."""
    workers = [SocketWorker(node=f"node{i}") for i in range(2)]
    for worker in workers:
        worker.start()
    yield workers
    for worker in workers:
        worker.close()


@pytest.fixture(scope="module")
def addresses(cluster):
    return [worker.address for worker in cluster]


def shard_frame_counts(path, manifest):
    """Frames stored per shard file (placement-independent ground truth)."""
    counts = []
    for name in manifest.shard_names:
        with ArchiveReader(path.parent / name) as reader:
            counts.append(len(reader))
    return counts


def build_set(tmp_path, label, placement=None, workers=None, shards=2, frames=None):
    frames = series() if frames is None else frames
    path = tmp_path / f"{label}.dwts"
    with ShardedArchiveWriter.create(
        path, shards=shards, scales=2, placement=placement
    ) as writer:
        writer.append_batch(frames, names=names_for(len(frames)), workers=workers)
        hits, fallbacks = writer.placement_hits, writer.placement_fallbacks
    return path, hits, fallbacks


# -- manifest format --------------------------------------------------------------------

class TestManifestV3:
    def base(self, **kwargs):
        return ShardManifest(
            version=kwargs.pop("version", MANIFEST_VERSION),
            router="hash",
            shard_names=("a.shard000.dwta", "a.shard001.dwta"),
            spec_json=CodecSpec().to_json(),
            **kwargs,
        )

    def test_placement_roundtrip(self):
        manifest = self.base(node_ids=("node0", "node1"))
        assert unpack_manifest(pack_manifest(manifest)) == manifest
        assert manifest.placement == {
            "a.shard000.dwta": "node0",
            "a.shard001.dwta": "node1",
        }

    def test_partial_placement_roundtrip(self):
        manifest = self.base(node_ids=("node0", ""))
        decoded = unpack_manifest(pack_manifest(manifest))
        assert decoded.node_ids == ("node0", "")
        assert decoded.placement == {"a.shard000.dwta": "node0"}

    def test_placement_with_replicas_roundtrip(self):
        manifest = self.base(
            node_ids=("n0", "n1"),
            replica_names=(("a.r1",), ("b.r1",)),
        )
        assert unpack_manifest(pack_manifest(manifest)) == manifest

    def test_v2_manifest_reads_with_empty_placement(self):
        manifest = self.base(version=2)
        decoded = unpack_manifest(pack_manifest(manifest))
        assert decoded.version == 2
        assert decoded.node_ids == ()
        assert decoded.placement == {}

    def test_v1_manifest_reads_with_empty_placement(self):
        manifest = self.base(version=1)
        decoded = unpack_manifest(pack_manifest(manifest))
        assert decoded.version == 1
        assert decoded.node_ids == ()
        assert decoded.placement == {}

    def test_unplaced_v3_decodes_to_empty_tuple(self):
        """An all-empty placement table is normalised back to "unplaced"."""
        manifest = self.base()
        decoded = unpack_manifest(pack_manifest(manifest))
        assert decoded.node_ids == ()

    def test_placement_needs_version_3(self):
        with pytest.raises(ValueError, match="version >= 3"):
            pack_manifest(self.base(version=2, node_ids=("n0", "n1")))

    def test_placement_length_must_match_shards(self):
        with pytest.raises(ValueError, match="placement table covers"):
            pack_manifest(self.base(node_ids=("n0",)))


class TestNormalize:
    NAMES = ("s0", "s1", "s2")

    def test_mapping_form(self):
        assert normalize_placement({"s1": "b", "s0": "a"}, self.NAMES) == ("a", "b", "")

    def test_sequence_form(self):
        assert normalize_placement(["a", None, "c"], self.NAMES) == ("a", "", "c")

    def test_empty_inputs(self):
        assert normalize_placement(None, self.NAMES) == ()
        assert normalize_placement({}, self.NAMES) == ()
        assert normalize_placement(["", None, ""], self.NAMES) == ()

    def test_unknown_shard_rejected(self):
        with pytest.raises(ValueError, match="unknown shards"):
            normalize_placement({"nope": "a"}, self.NAMES)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="3 shards"):
            normalize_placement(["a"], self.NAMES)

    def test_round_robin(self):
        assert assign_round_robin(self.NAMES, ["n0", "n1"]) == {
            "s0": "n0",
            "s1": "n1",
            "s2": "n0",
        }
        with pytest.raises(ValueError, match="no node ids"):
            assign_round_robin(self.NAMES, [])

    def test_placement_of_tolerates_missing_field(self):
        class Old:
            shard_names = ("s0",)

        assert placement_of(Old()) == {}


# -- placed sets over live workers ------------------------------------------------------

class TestPlacedAppend:
    def test_unplaced_set_stays_version_2(self, tmp_path):
        path, _, _ = build_set(tmp_path, "plain")
        with ShardedArchiveReader(path) as reader:
            assert reader.manifest.version == 2
            assert reader.manifest.placement == {}

    def test_placed_set_stamps_version_3(self, tmp_path):
        names = shard_file_names(tmp_path / "placed.dwts", 2)
        placement = assign_round_robin(names, ["node0", "node1"])
        path, _, _ = build_set(tmp_path, "placed", placement=placement)
        with ShardedArchiveReader(path) as reader:
            assert reader.manifest.version == MANIFEST_VERSION
            assert reader.manifest.placement == placement

    def test_placed_distributed_append_is_byte_identical(
        self, tmp_path, cluster, addresses
    ):
        serial_path, _, _ = build_set(tmp_path, "serial")
        names = shard_file_names(tmp_path / "routed.dwts", 2)
        placement = assign_round_robin(names, ["node0", "node1"])
        jobs_before = [worker.jobs_done for worker in cluster]
        placed_path, hits, fallbacks = build_set(
            tmp_path, "routed", placement=placement, workers=",".join(addresses)
        )
        with ShardedArchiveReader(placed_path) as reader:
            manifest = reader.manifest
            filled = sum(1 for n in shard_frame_counts(placed_path, manifest) if n)
            assert reader.verify(deep=True)["deep"]
        # Every non-empty shard routed to its placed node, none fell back …
        assert hits == filled
        assert fallbacks == 0
        assert [w.jobs_done for w in cluster] != jobs_before
        # … and the shard files carry the exact serial bytes regardless.
        with ShardedArchiveReader(serial_path) as reader:
            serial_names = reader.manifest.shard_names
        for serial_name, placed_name in zip(serial_names, manifest.shard_names):
            assert (serial_path.parent / serial_name).read_bytes() == (
                placed_path.parent / placed_name
            ).read_bytes()

    def test_down_placed_node_falls_back(self, tmp_path, addresses):
        """A placement naming no live worker degrades to any-worker
        routing — counted, byte-identical, never an error."""
        serial_path, _, _ = build_set(tmp_path, "ref")
        names = shard_file_names(tmp_path / "ghost.dwts", 2)
        placement = {name: "ghost-node" for name in names}
        ghost_path, hits, fallbacks = build_set(
            tmp_path, "ghost", placement=placement, workers=",".join(addresses)
        )
        with ShardedArchiveReader(ghost_path) as reader:
            manifest = reader.manifest
            filled = sum(1 for n in shard_frame_counts(ghost_path, manifest) if n)
        assert hits == 0
        assert fallbacks == filled
        with ShardedArchiveReader(serial_path) as serial_reader:
            for serial_name, ghost_name in zip(
                serial_reader.manifest.shard_names, manifest.shard_names
            ):
                assert (serial_path.parent / serial_name).read_bytes() == (
                    ghost_path.parent / ghost_name
                ).read_bytes()

    def test_borrowed_pool_appends(self, tmp_path, addresses):
        """A caller-managed WorkerPool routes appends and survives them."""
        with WorkerPool(addresses) as pool:
            path, _, _ = build_set(tmp_path, "pooled", workers=pool)
            assert pool.live_count == 2
        with ShardedArchiveReader(path) as reader:
            assert reader.verify(deep=True)["deep"]


class TestPlacedVerify:
    def test_verify_routes_to_placed_workers(self, tmp_path, addresses):
        names = shard_file_names(tmp_path / "v.dwts", 2)
        placement = assign_round_robin(names, ["node0", "node1"])
        path, _, _ = build_set(tmp_path, "v", placement=placement)
        with ShardedArchiveReader(path) as reader:
            report = reader.verify(deep=True, workers=",".join(addresses))
            assert report["frames"] == 6
            assert reader.placement_hits == 2  # one per placed shard copy
            assert reader.placement_fallbacks == 0

    def test_verify_falls_back_when_node_missing(self, tmp_path, addresses):
        names = shard_file_names(tmp_path / "vg.dwts", 2)
        path, _, _ = build_set(
            tmp_path, "vg", placement={name: "gone" for name in names}
        )
        with ShardedArchiveReader(path) as reader:
            assert reader.verify(deep=True, workers=",".join(addresses))["deep"]
            assert reader.placement_hits == 0
            assert reader.placement_fallbacks == 2

    def test_plain_reader_verify_and_decode_over_sockets(self, tmp_path, addresses):
        from repro.archive import ArchiveWriter

        frames = series()
        path = tmp_path / "plain.dwta"
        with ArchiveWriter.create(path, scales=2) as writer:
            writer.append_batch(frames, names=names_for(len(frames)))
        with ArchiveReader(path) as reader:
            report = reader.verify(deep=True, workers=",".join(addresses))
            assert report["deep"] and report["frames"] == len(frames)

    def test_replicated_set_with_placement(self, tmp_path, addresses):
        frames = series()
        path = tmp_path / "rep.dwts"
        names = shard_file_names(path, 2)
        placement = assign_round_robin(names, ["node0", "node1"])
        with ReplicatedShardSet.create(
            path, shards=2, replicas=1, scales=2, placement=placement
        ) as writer:
            writer.append_batch(frames, names=names_for(len(frames)))
        with ShardedArchiveReader(path) as reader:
            assert reader.manifest.version == MANIFEST_VERSION
            assert reader.manifest.placement == placement
            assert reader.manifest.replicas == 1
            assert reader.verify(deep=True, workers=",".join(addresses))["deep"]
            # Every copy of every shard was verified over the pool.
            assert reader.placement_hits + reader.placement_fallbacks == 4


# -- CLI and HTTP surfaces --------------------------------------------------------------

class TestCliPlacement:
    @pytest.fixture()
    def pgm_dir(self, tmp_path):
        directory = tmp_path / "scans"
        directory.mkdir()
        for index, frame in enumerate(series(count=4)):
            write_pgm(directory / f"scan_{index}.pgm", frame, max_value=4095)
        return directory

    def test_pack_place_list_verify(self, tmp_path, pgm_dir, addresses, capsys):
        archive = tmp_path / "cli.dwts"
        inputs = sorted(str(p) for p in pgm_dir.glob("*.pgm"))
        assert (
            cli_main(
                [
                    "pack",
                    str(archive),
                    *inputs,
                    "--shards",
                    "2",
                    "--place",
                    "node0,node1",
                    "--workers",
                    ",".join(addresses),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert cli_main(["list", str(archive)]) == 0
        header = capsys.readouterr().out
        assert "manifest v3" in header
        assert "2 shards placed on 2 nodes" in header
        assert cli_main(["list", str(archive), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert {r["placed_node"] for r in records} <= {"node0", "node1"}
        assert cli_main(
            ["verify", str(archive), "--deep", "--workers", ",".join(addresses)]
        ) == 0
        assert "OK" in capsys.readouterr().out

    def test_place_requires_shards(self, tmp_path, pgm_dir):
        inputs = sorted(str(p) for p in pgm_dir.glob("*.pgm"))
        with pytest.raises(SystemExit, match="--shards"):
            cli_main(
                ["pack", str(tmp_path / "x.dwta"), *inputs, "--place", "node0"]
            )

    def test_workers_flag_still_takes_integers(self, tmp_path, pgm_dir, capsys):
        archive = tmp_path / "int.dwts"
        inputs = sorted(str(p) for p in pgm_dir.glob("*.pgm"))
        assert (
            cli_main(
                ["pack", str(archive), *inputs, "--shards", "2", "--workers", "2"]
            )
            == 0
        )
        assert cli_main(["verify", str(archive), "--workers", "2"]) == 0


class TestServerPlacement:
    def test_manifest_and_stats_expose_placement(self, tmp_path, addresses):
        from server_util import http_request, running_server

        frames = dict(zip(names_for(6), series()))
        path = tmp_path / "srv.dwts"
        names = shard_file_names(path, 2)
        placement = assign_round_robin(names, ["node0", "node1"])
        with ShardedArchiveWriter.create(
            path, shards=2, scales=2, placement=placement
        ) as writer:
            writer.append_batch(list(frames.values()), names=list(frames))

        async def scenario():
            async with running_server(path) as server:
                status, _, body = await http_request(server.address, "GET", "/manifest")
                assert status == 200
                manifest = json.loads(body)
                assert manifest["shards"]["manifest_version"] == MANIFEST_VERSION
                assert manifest["shards"]["placement"] == placement
                status, _, body = await http_request(server.address, "GET", "/stats")
                assert status == 200
                stats = json.loads(body)
                assert stats["placement"] == placement
                assert stats["reader"]["placement_hits"] == 0
                assert stats["reader"]["placement_fallbacks"] == 0

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))
