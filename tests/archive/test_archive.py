"""Writer/reader corner cases: the acceptance checklist of the container."""

import numpy as np
import pytest

from repro.archive import ArchiveReader, ArchiveWriter
from repro.coding import compress_frames
from repro.imaging import ct_slice_series, random_image, shepp_logan

pytestmark = pytest.mark.archive


def _mixed_frames(count=32, seed=0):
    """Mixed-size 12-bit frames: 64x64, 32x32 and 48x48 in rotation."""
    sizes = [64, 32, 48]
    return [random_image(sizes[i % len(sizes)], seed=seed + i) for i in range(count)]


@pytest.fixture(scope="module")
def mixed_archive(tmp_path_factory):
    frames = _mixed_frames()
    path = tmp_path_factory.mktemp("archive") / "mixed.dwta"
    with ArchiveWriter.create(path, codec="s-transform", scales=4) as writer:
        writer.add_frames(frames)
    return path, frames


class TestRoundTrip:
    def test_32_frame_mixed_size_roundtrip(self, mixed_archive):
        path, frames = mixed_archive
        with ArchiveReader(path) as reader:
            assert len(reader) == 32
            decoded, stats = reader.decode_all()
            assert stats.frames == 32
            for image, original in zip(decoded, frames):
                assert np.array_equal(image, original)
            # Mixed geometry means per-frame scales were clamped.
            assert {entry.scales for entry in reader} == {4}
            assert {entry.shape for entry in reader} == {(64, 64), (32, 32), (48, 48)}

    def test_random_access_equals_full_decode(self, mixed_archive):
        path, frames = mixed_archive
        with ArchiveReader(path) as reader:
            full, _ = reader.decode_all()
        for index in (0, 7, 17, 31):
            with ArchiveReader(path) as reader:
                single = reader.decode(index)
                assert np.array_equal(single, full[index])
                assert np.array_equal(single, frames[index])
                # Only that frame's payload bytes were read off disk.
                assert reader.bytes_read == reader.frames[index].length
                assert reader.bytes_read < reader.compressed_bytes / 5

    def test_decode_range(self, mixed_archive):
        path, frames = mixed_archive
        with ArchiveReader(path) as reader:
            middle = reader.decode_range(10, 13)
            assert len(middle) == 3
            for image, original in zip(middle, frames[10:13]):
                assert np.array_equal(image, original)
            touched = sum(entry.length for entry in reader.frames[10:13])
            assert reader.bytes_read == touched

    def test_lookup_by_name_and_negative_index(self, mixed_archive):
        path, frames = mixed_archive
        with ArchiveReader(path) as reader:
            assert np.array_equal(reader.decode("frame_00003"), frames[3])
            assert np.array_equal(reader.decode(-1), frames[-1])
            with pytest.raises(KeyError, match="no frame named"):
                reader.find("nope")
            with pytest.raises(KeyError, match="no index"):
                reader.find(99)


class TestCornerCases:
    def test_empty_archive(self, tmp_path):
        path = tmp_path / "empty.dwta"
        with ArchiveWriter.create(path):
            pass
        with ArchiveReader(path) as reader:
            assert len(reader) == 0
            assert reader.names() == []
            decoded, stats = reader.decode_all()
            assert decoded == [] and stats.frames == 0
            assert reader.verify(deep=True)["frames"] == 0

    def test_single_frame(self, tmp_path):
        path = tmp_path / "one.dwta"
        image = shepp_logan(64)
        with ArchiveWriter.create(path) as writer:
            writer.add_frames([image], names=["only"])
        with ArchiveReader(path) as reader:
            assert reader.names() == ["only"]
            assert np.array_equal(reader.decode("only"), image)

    def test_append_then_read(self, tmp_path):
        path = tmp_path / "series.dwta"
        first = ct_slice_series(count=3, size=64, seed=1)
        second = ct_slice_series(count=2, size=64, seed=2)
        with ArchiveWriter.create(path) as writer:
            writer.add_frames(first)
        size_after_create = path.stat().st_size
        with ArchiveWriter.append(path) as writer:
            # Config (codec, scales, bit depth) is inherited from the archive.
            assert writer.codec == "s-transform"
            assert writer.codec_options["bit_depth"] == 12
            writer.add_frames(second, names=["extra_0", "extra_1"])
        assert path.stat().st_size > size_after_create
        with ArchiveReader(path) as reader:
            assert len(reader) == 5
            for index, image in enumerate(list(first) + list(second)):
                assert np.array_equal(reader.decode(index), image)

    def test_append_to_empty_archive(self, tmp_path):
        path = tmp_path / "grow.dwta"
        with ArchiveWriter.create(path):
            pass
        with ArchiveWriter.append(path) as writer:
            writer.add_frames([shepp_logan(32)])
        with ArchiveReader(path) as reader:
            assert len(reader) == 1

    def test_duplicate_name_rejected(self, tmp_path):
        path = tmp_path / "dup.dwta"
        with ArchiveWriter.create(path) as writer:
            writer.add_frames([shepp_logan(32)], names=["a"])
            with pytest.raises(ValueError, match="already has a frame named"):
                writer.add_frames([shepp_logan(32)], names=["a"])

    def test_create_refuses_to_clobber(self, tmp_path):
        path = tmp_path / "exists.dwta"
        with ArchiveWriter.create(path):
            pass
        with pytest.raises(FileExistsError):
            ArchiveWriter.create(path)
        with ArchiveWriter.create(path, overwrite=True) as writer:
            writer.add_frames([shepp_logan(32)])
        with ArchiveReader(path) as reader:
            assert len(reader) == 1

    def test_coefficient_codec_archive(self, tmp_path):
        path = tmp_path / "coeff.dwta"
        image = shepp_logan(64)
        with ArchiveWriter.create(path, codec="coefficient", bank="F4", scales=3) as writer:
            writer.add_frames([image])
        with ArchiveReader(path) as reader:
            entry = reader.frames[0]
            assert entry.codec == "coefficient"
            assert entry.bank_name == "F4"
            assert entry.use_rle
            assert np.array_equal(reader.decode(0), image)

    def test_add_batch_from_pipeline(self, tmp_path):
        """compress_frames output archives directly, stats carried over."""
        path = tmp_path / "batch.dwta"
        frames = _mixed_frames(count=4)
        batch = compress_frames(frames, codec="s-transform", scales=4)
        with ArchiveWriter.create(path) as writer:
            writer.add_batch(batch, names=["a", "b", "c", "d"])
            assert writer.stats.frames == 4
            assert writer.stats.compressed_bytes == batch.stats.compressed_bytes
        with ArchiveReader(path) as reader:
            for name, original in zip("abcd", frames):
                assert np.array_equal(reader.decode(name), original)

    def test_add_batch_codec_mismatch(self, tmp_path):
        batch = compress_frames([shepp_logan(32)], codec="s-transform", scales=2)
        with ArchiveWriter.create(tmp_path / "x.dwta", codec="coefficient") as writer:
            with pytest.raises(ValueError, match="configured for"):
                writer.add_batch(batch)

    def test_scalar_engine_decodes_fast_stream(self, mixed_archive):
        """Archives are wire-compatible across entropy-coding engines."""
        path, frames = mixed_archive
        with ArchiveReader(path, engine="scalar") as reader:
            assert np.array_equal(reader.decode(5), frames[5])

    def test_verify_reports(self, mixed_archive):
        path, _ = mixed_archive
        with ArchiveReader(path) as reader:
            report = reader.verify()
            assert report["frames"] == 32
            assert report["payload_bytes"] == reader.compressed_bytes
            assert reader.verify(deep=True)["deep"] is True
