"""Many threads, one ShardedArchiveReader: counters must never cross-talk."""

import random
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.archive import (
    Fault,
    FaultInjectionBackend,
    FileBackend,
    ReplicatedShardSet,
    RetryPolicy,
    ShardedArchiveReader,
    ShardedArchiveWriter,
)
from repro.archive.format import HEADER_SIZE
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

THREADS = 8
READS_PER_THREAD = 24


def names_for(count):
    return [f"slice_{i:03d}" for i in range(count)]


@pytest.fixture()
def busy_set(tmp_path):
    frames = ct_slice_series(count=16, size=32, seed=13)
    path = tmp_path / "busy.dwts"
    with ReplicatedShardSet.create(path, shards=4, replicas=1, scales=2) as writer:
        writer.append_batch(frames, names=names_for(16))
    return path, frames


def hammer(reader, frames, seed):
    """One thread's workload: seeded random routed reads, each validated."""
    rng = random.Random(seed)
    names = names_for(16)
    done = []
    for _ in range(READS_PER_THREAD):
        position = rng.randrange(len(names))
        image = reader.decode(names[position])
        assert np.array_equal(image, frames[position]), names[position]
        done.append(position)
    return done


class TestConcurrentReaders:
    def test_clean_set_counters_add_up(self, busy_set):
        path, frames = busy_set
        with ShardedArchiveReader(path) as reader:
            expected_lengths = {e.name: e.length for e in reader.frames}
        with ShardedArchiveReader(path) as reader:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                results = list(
                    pool.map(
                        lambda seed: hammer(reader, frames, seed), range(THREADS)
                    )
                )
            # bytes_read is the exact sum of every performed read's payload
            # length — interleaved threads never lose or double-count.
            names = names_for(16)
            expected = sum(
                expected_lengths[names[position]]
                for thread in results
                for position in thread
            )
            assert reader.bytes_read == expected
            assert reader.failovers == 0
            assert reader.retries == 0
            touched = {reader.router.route(n) for n in names}
            assert set(reader.opened_shards) == touched

    def test_failover_under_concurrency_is_exactly_once_per_shard(self, busy_set):
        """All threads hitting a damaged primary at once must produce ONE
        failover for that shard (compare-and-advance), not one per thread —
        and every read still returns correct pixels."""
        path, frames = busy_set
        with ShardedArchiveReader(path) as probe:
            victim_shard = probe.router.route("slice_000")
            victim = probe.copy_paths[victim_shard][0]
        data = bytearray(victim.read_bytes())
        data[HEADER_SIZE + 3] ^= 0x20  # payload rot on the primary
        victim.write_bytes(bytes(data))

        with ShardedArchiveReader(path) as reader:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                list(pool.map(lambda seed: hammer(reader, frames, seed), range(THREADS)))
            assert reader.failovers == 1
            assert reader.retries == 0

    def test_transient_faults_under_concurrency(self, busy_set):
        """Injected fail-then-succeed faults on every copy: retries absorb
        them (counted), no failover fires, reads stay correct."""
        path, frames = busy_set

        def flaky(path_):
            return FaultInjectionBackend(
                FileBackend(path_), faults=(Fault(kind="io-error", at_read=3, times=1),)
            )

        policy = RetryPolicy(attempts=3, base_delay=0.0, sleep=lambda s: None)
        with ShardedArchiveReader(path, retry=policy, backend_factory=flaky) as reader:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                list(pool.map(lambda seed: hammer(reader, frames, seed), range(THREADS)))
            touched = {reader.router.route(n) for n in names_for(16)}
            # One injected fault per opened copy backend, each absorbed.
            assert reader.retries == len(touched)
            assert reader.failovers == 0

    def test_unreplicated_set_is_thread_safe_too(self, tmp_path):
        frames = ct_slice_series(count=16, size=32, seed=13)
        path = tmp_path / "bare.dwts"
        with ShardedArchiveWriter.create(path, shards=4, scales=2) as writer:
            writer.append_batch(frames, names=names_for(16))
        with ShardedArchiveReader(path) as reader:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                list(pool.map(lambda seed: hammer(reader, frames, seed), range(THREADS)))
            assert reader.failovers == 0
