"""HTTP serving layer: endpoint matrix over every archive kind and backend.

The matrix is {plain, sharded, replicated} × {file, memory}: every
endpoint must behave identically whatever storage serves it, and — the
core acceptance — the frame bytes a client decodes from HTTP must be
identical to a direct :class:`ArchiveReader` decode of the same archive.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.archive import MemoryBackend, open_archive
from repro.archive.server import parse_range, HTTPError
from server_util import (
    HTTPClient,
    build_plain,
    build_replicated,
    build_sharded,
    chunk_encode,
    http_request,
    ingest_body,
    response_frame,
    running_server,
    series,
)

pytestmark = pytest.mark.archive

FRAMES = series(count=9, size=32, seed=5)

KINDS = ("plain", "sharded", "replicated")
BUILDERS = {
    "plain": build_plain,
    "sharded": build_sharded,
    "replicated": build_replicated,
}


def build_target(kind, storage, tmp_path):
    """One matrix leg: the service target + its extra service options.

    The memory legs serve preloaded :class:`MemoryBackend` buffers — a
    plain archive as the target itself, a sharded/replicated set through
    ``backend_factory`` (the manifest stays a file; each shard container
    resolves to an in-memory copy).  Memory legs are read-only by nature
    (ingest writes through paths), which the matrix respects.
    """
    path = tmp_path / ("set.dwts" if kind != "plain" else "arc.dwta")
    BUILDERS[kind](path, FRAMES)
    if storage == "file":
        return path, {}
    if kind == "plain":
        return MemoryBackend(path.read_bytes(), name=str(path)), {}
    blobs = {}

    def factory(shard_path):
        key = str(shard_path)
        if key not in blobs:
            blobs[key] = MemoryBackend(shard_path.read_bytes(), name=key)
        return blobs[key]

    return path, {"backend_factory": factory}


@pytest.fixture(params=[f"{kind}-{storage}" for kind in KINDS for storage in ("file", "memory")])
def matrix_leg(request, tmp_path):
    kind, storage = request.param.split("-")
    target, options = build_target(kind, storage, tmp_path)
    return kind, storage, target, options


def run(coro):
    return asyncio.run(coro)


class TestFrameByteIdentity:
    def test_http_decode_matches_direct_reader(self, matrix_leg, tmp_path):
        kind, storage, target, options = matrix_leg
        direct_path = tmp_path / ("set.dwts" if kind != "plain" else "arc.dwta")

        async def scenario():
            with open_archive(direct_path) as reader:
                expected = {name: reader.decode(name) for name in reader.names()}
            async with running_server(target, **options) as server:
                async with HTTPClient(server.address) as client:
                    for name, direct in expected.items():
                        status, headers, body = await client.request(
                            "GET", f"/frames/{name}"
                        )
                        assert status == 200
                        assert headers["x-frame-name"] == name
                        served = response_frame(headers, body)
                        assert served.dtype == direct.dtype
                        assert np.array_equal(served, direct), name

        run(scenario())

    def test_source_pixels_survive_the_round_trip(self, matrix_leg):
        _, _, target, options = matrix_leg

        async def scenario():
            async with running_server(target, **options) as server:
                status, headers, body = await http_request(
                    server.address, "GET", "/frames/slice_004"
                )
                assert status == 200
                assert np.array_equal(response_frame(headers, body), FRAMES["slice_004"])

        run(scenario())


class TestMetaAndManifest:
    def test_meta_matches_the_index_entry(self, matrix_leg, tmp_path):
        kind, _, target, options = matrix_leg
        direct_path = tmp_path / ("set.dwts" if kind != "plain" else "arc.dwta")

        async def scenario():
            with open_archive(direct_path) as reader:
                entry = reader.find("slice_002")
                spec = reader.spec_for(entry)
            async with running_server(target, **options) as server:
                status, _, body = await http_request(
                    server.address, "GET", "/frames/slice_002/meta"
                )
                assert status == 200
                meta = json.loads(body)
                assert meta["name"] == "slice_002"
                assert meta["shape"] == list(entry.shape)
                assert meta["stored_bytes"] == entry.length
                assert meta["crc32"] == f"{entry.crc32:08x}"
                assert meta["spec"]["codec"] == spec.to_dict()["codec"]
                assert meta["spec"]["scales"] == entry.scales
                if kind != "plain":
                    assert isinstance(meta["shard"], int)

        run(scenario())

    def test_manifest_lists_every_frame_and_the_layout(self, matrix_leg):
        kind, _, target, options = matrix_leg

        async def scenario():
            async with running_server(target, **options) as server:
                status, _, body = await http_request(server.address, "GET", "/manifest")
                assert status == 200
                manifest = json.loads(body)
                assert manifest["kind"] == kind
                assert sorted(f["name"] for f in manifest["frames"]) == sorted(FRAMES)
                shards = manifest["shards"]
                if kind == "plain":
                    assert shards["count"] == 1
                else:
                    assert shards["count"] == len(shards["names"])
                    assert shards["router"] == "hash"
                    replicas = shards["replicas"]
                    assert sorted(replicas) == sorted(shards["names"])
                    per_shard = {len(copies) for copies in replicas.values()}
                    assert per_shard == ({1} if kind == "replicated" else {0})
                assert manifest["spec"] is not None

        run(scenario())


class TestStatusTaxonomy:
    """404/405/400/416/411/505: every misuse maps to one deliberate status."""

    def test_unknown_frame_is_404(self, matrix_leg):
        _, _, target, options = matrix_leg

        async def scenario():
            async with running_server(target, **options) as server:
                async with HTTPClient(server.address) as client:
                    for path in ("/frames/nope", "/frames/nope/meta", "/bogus", "/frames/"):
                        status, _, body = await client.request("GET", path)
                        assert status == 404, path
                        assert "error" in json.loads(body)

        run(scenario())

    def test_wrong_method_is_405_with_allow(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target) as server:
                # Fresh connection per misuse: the server closes after a
                # POST error (the body may be unconsumed).
                status, headers, _ = await http_request(server.address, "POST", "/stats")
                assert status == 405
                assert headers["allow"] == "GET"
                status, headers, _ = await http_request(server.address, "GET", "/ingest")
                assert status == 405
                assert headers["allow"] == "POST"

        run(scenario())

    def test_bad_ranges_are_400_and_unsatisfiable_416(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target) as server:
                async with HTTPClient(server.address) as client:
                    for bad in ("bytes=5-2", "bytes=a-b", "frames=0-1", "bytes=1-2,4-5", "bytes=-"):
                        status, _, _ = await client.request(
                            "GET", "/frames/slice_000", headers={"Range": bad}
                        )
                        assert status == 400, bad
                    status, headers, _ = await client.request(
                        "GET", "/frames/slice_000", headers={"Range": "bytes=999999-"}
                    )
                    assert status == 416
                    assert headers["content-range"].startswith("bytes */")

        run(scenario())

    def test_ingest_without_length_is_411(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target) as server:
                status, _, _ = await http_request(server.address, "POST", "/ingest")
                assert status == 411

        run(scenario())

    def test_unsupported_http_version_is_505(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target) as server:
                async with HTTPClient(server.address) as client:
                    await client.send_raw(b"GET /stats HTTP/2.0\r\n\r\n")
                    status, _, _ = await client.read_response()
                    assert status == 505

        run(scenario())


class TestRangeReads:
    """Range slice reads touch only the requested payload window."""

    def test_slice_bytes_match_the_stored_payload(self, matrix_leg, tmp_path):
        kind, _, target, options = matrix_leg
        direct_path = tmp_path / ("set.dwts" if kind != "plain" else "arc.dwta")

        async def scenario():
            with open_archive(direct_path) as reader:
                payload = bytes(reader.read_payload("slice_003"))
            async with running_server(target, **options) as server:
                async with HTTPClient(server.address) as client:
                    status, headers, body = await client.request(
                        "GET", "/frames/slice_003", headers={"Range": "bytes=4-19"}
                    )
                    assert status == 206
                    assert body == payload[4:20]
                    assert headers["content-range"] == f"bytes 4-19/{len(payload)}"
                    # Open-ended and suffix forms.
                    status, _, tail = await client.request(
                        "GET", "/frames/slice_003", headers={"Range": "bytes=-8"}
                    )
                    assert status == 206 and tail == payload[-8:]
                    status, _, rest = await client.request(
                        "GET", "/frames/slice_003", headers={"Range": "bytes=10-"}
                    )
                    assert status == 206 and rest == payload[10:]

        run(scenario())

    def test_bytes_read_is_the_slice_not_the_payload(self, tmp_path):
        target = build_sharded(tmp_path / "set.dwts", FRAMES)

        async def scenario():
            async with running_server(target) as server:
                async with HTTPClient(server.address) as client:
                    _, stats0 = await client.get_json("/stats")
                    _, meta = await client.get_json("/frames/slice_001/meta")
                    payload_bytes = meta["stored_bytes"]
                    assert payload_bytes > 16
                    status, _, body = await client.request(
                        "GET", "/frames/slice_001", headers={"Range": "bytes=0-15"}
                    )
                    assert status == 206 and len(body) == 16
                    _, stats1 = await client.get_json("/stats")
                    delta = stats1["reader"]["bytes_read"] - stats0["reader"]["bytes_read"]
                    assert delta == 16
                    assert delta < payload_bytes

        run(scenario())


class TestHotFrameCache:
    def test_repeat_get_hits_the_cache(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target, cache_bytes=8 << 20) as server:
                async with HTTPClient(server.address) as client:
                    _, h1, b1 = await client.request("GET", "/frames/slice_000")
                    _, h2, b2 = await client.request("GET", "/frames/slice_000")
                    assert (h1["x-archive-cache"], h2["x-archive-cache"]) == ("miss", "hit")
                    assert b1 == b2
                    _, stats = await client.get_json("/stats")
                    assert stats["cache"]["hits"] == 1
                    assert stats["cache"]["entries"] == 1
                    assert stats["cache"]["bytes"] > 0

        run(scenario())

    def test_zero_budget_disables_caching(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target, cache_bytes=0) as server:
                async with HTTPClient(server.address) as client:
                    _, h1, _ = await client.request("GET", "/frames/slice_000")
                    _, h2, _ = await client.request("GET", "/frames/slice_000")
                    assert (h1["x-archive-cache"], h2["x-archive-cache"]) == ("miss", "miss")

        run(scenario())


class TestIngest:
    def test_content_length_ingest_roundtrip(self, tmp_path):
        target = build_replicated(tmp_path / "set.dwts", FRAMES)
        new = series(count=3, size=24, seed=9)
        renamed = {f"new_{name}": frame for name, frame in new.items()}

        async def scenario():
            async with running_server(target) as server:
                async with HTTPClient(server.address) as client:
                    # Warm the cache, so the append provably invalidates it.
                    _, h, _ = await client.request("GET", "/frames/slice_000")
                    _, h, _ = await client.request("GET", "/frames/slice_000")
                    assert h["x-archive-cache"] == "hit"
                    status, _, body = await client.request(
                        "POST", "/ingest", body=ingest_body(renamed)
                    )
                    assert status == 200
                    report = json.loads(body)
                    assert report["frames"] == len(renamed)
                    assert report["generation"] == 1
                    for name, frame in renamed.items():
                        status, headers, raw = await client.request(
                            "GET", f"/frames/{name}"
                        )
                        assert status == 200
                        assert np.array_equal(response_frame(headers, raw), frame)
                    # Same name, new generation: a fresh decode, not a stale hit.
                    _, h, _ = await client.request("GET", "/frames/slice_000")
                    assert h["x-archive-cache"] == "miss"
                    _, manifest = await client.get_json("/manifest")
                    assert len(manifest["frames"]) == len(FRAMES) + len(renamed)

        run(scenario())

    def test_chunked_ingest_roundtrip(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)
        extra = {"chunked_0": series(count=1, size=24, seed=13)["slice_000"]}

        async def scenario():
            async with running_server(target) as server:
                async with HTTPClient(server.address) as client:
                    status, _, body = await client.request(
                        "POST",
                        "/ingest",
                        headers={"Transfer-Encoding": "chunked"},
                        body=chunk_encode(ingest_body(extra), chunk_size=97),
                    )
                    assert status == 200
                    assert json.loads(body)["frames"] == 1
                    status, headers, raw = await client.request("GET", "/frames/chunked_0")
                    assert status == 200
                    assert np.array_equal(response_frame(headers, raw), extra["chunked_0"])

        run(scenario())

    def test_readonly_rejects_ingest_with_403(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)

        async def scenario():
            async with running_server(target, readonly=True) as server:
                status, _, _ = await http_request(
                    server.address, "POST", "/ingest", body=b"ignored"
                )
                assert status == 403

        run(scenario())

    def test_body_ending_mid_record_is_400(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)
        body = ingest_body({"partial": series(count=1, size=24, seed=3)["slice_000"]})
        half = body[: len(body) // 2]

        async def scenario():
            async with running_server(target) as server:
                # Content-Length matches what is sent, but the last record
                # is cut short: a deliberate 400, not a hang or a 500.
                status, _, _ = await http_request(
                    server.address, "POST", "/ingest", body=half
                )
                assert status == 400
                # The service still serves afterwards.
                status, _, _ = await http_request(
                    server.address, "GET", "/frames/slice_000"
                )
                assert status == 200

        run(asyncio.wait_for(scenario(), timeout=30))

    def test_early_disconnect_mid_ingest_leaves_served_set_sane(self, tmp_path):
        target = build_plain(tmp_path / "arc.dwta", FRAMES)
        body = ingest_body({"partial": series(count=1, size=24, seed=3)["slice_000"]})

        async def scenario():
            async with running_server(target) as server:
                async with HTTPClient(server.address) as client:
                    head = f"POST /ingest HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
                    await client.send_raw(head.encode() + body[: len(body) // 2])
                # Connection dropped mid-body; the server must absorb the
                # incomplete read and keep serving.
                status, _, _ = await http_request(
                    server.address, "GET", "/frames/slice_000"
                )
                assert status == 200

        run(asyncio.wait_for(scenario(), timeout=30))


class TestStats:
    def test_request_and_response_counters_accumulate(self, tmp_path):
        target = build_sharded(tmp_path / "set.dwts", FRAMES)

        async def scenario():
            async with running_server(target) as server:
                async with HTTPClient(server.address) as client:
                    await client.request("GET", "/frames/slice_000")
                    await client.request("GET", "/frames/nope")
                    await client.request("GET", "/frames/slice_000/meta")
                    await client.request("GET", "/manifest")
                    _, stats = await client.get_json("/stats")
                    assert stats["kind"] == "sharded"
                    assert stats["requests"]["frames"] == 2
                    assert stats["requests"]["meta"] == 1
                    assert stats["requests"]["manifest"] == 1
                    assert stats["requests"]["stats"] == 1
                    assert stats["responses"]["404"] == 1
                    assert stats["reader"]["bytes_read"] > 0
                    assert stats["queues"]["capacity"] >= 1
                    assert len(stats["queues"]["depths"]) == 3
                    assert stats["ingest"]["generation"] == 0

        run(scenario())


class TestParseRange:
    """Unit coverage of the Range grammar, away from sockets."""

    @pytest.mark.parametrize(
        "value,size,expected",
        [
            ("bytes=0-9", 100, (0, 10)),
            ("bytes=10-", 100, (10, 90)),
            ("bytes=-7", 100, (93, 7)),
            ("bytes=0-0", 1, (0, 1)),
            ("bytes=90-500", 100, (90, 10)),  # stop clamps to the payload
            ("bytes=-500", 100, (0, 100)),
        ],
    )
    def test_valid_forms(self, value, size, expected):
        assert parse_range(value, size) == expected

    @pytest.mark.parametrize(
        "value,status",
        [
            ("bytes=5-2", 400),
            ("bytes=abc-2", 400),
            ("items=0-2", 400),
            ("bytes=1-2,3-4", 400),
            ("bytes=-", 400),
            ("bytes=", 400),
            ("bytes=100-", 416),
            ("bytes=-0", 416),
        ],
    )
    def test_rejections(self, value, status):
        with pytest.raises(HTTPError) as excinfo:
            parse_range(value, 100)
        assert excinfo.value.status == status
