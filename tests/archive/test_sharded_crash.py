"""Crash safety and damage isolation on sharded archive sets (acceptance)."""

import numpy as np
import pytest

from repro.archive import (
    ArchiveError,
    ArchiveIntegrityError,
    ArchiveReader,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    write_manifest,
)
from repro.archive.format import HEADER_SIZE
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive


def names_for(count):
    return [f"slice_{i:03d}" for i in range(count)]


@pytest.fixture()
def victim_set(tmp_path):
    frames = ct_slice_series(count=9, size=32, seed=5)
    path = tmp_path / "victim.dwts"
    with ShardedArchiveWriter.create(path, shards=3) as writer:
        writer.append_batch(frames, names=names_for(9))
    return path, frames


def _shard_with_frames(path):
    """(shard_index, shard_path, frame_names) of the first non-empty shard."""
    with ShardedArchiveReader(path) as reader:
        for shard, shard_path in enumerate(reader.shard_paths):
            with ArchiveReader(shard_path) as shard_reader:
                if len(shard_reader):
                    return shard, shard_path, shard_reader.names()
    raise AssertionError("set has no frames")


class TestDamageIsolation:
    def test_corrupted_shard_detected_and_isolated(self, victim_set):
        path, frames = victim_set
        shard, shard_path, damaged_names = _shard_with_frames(path)
        data = bytearray(shard_path.read_bytes())
        data[HEADER_SIZE + 10] ^= 0xFF  # flip a payload byte in one shard
        shard_path.write_bytes(bytes(data))

        with ShardedArchiveReader(path) as reader:
            report = reader.verify(deep=True, strict=False)
            assert list(report["failures"]) == [shard_path.name]
            assert "checksum" in report["failures"][shard_path.name]
            # Every frame outside the damaged shard verified and decodes.
            assert report["frames"] == 9 - len(damaged_names)
            for position, name in enumerate(names_for(9)):
                if name in damaged_names:
                    continue
                assert np.array_equal(reader.decode(name), frames[position])

    def test_truncated_shard_detected_and_isolated(self, victim_set):
        path, frames = victim_set
        shard, shard_path, damaged_names = _shard_with_frames(path)
        data = shard_path.read_bytes()
        shard_path.write_bytes(data[:-7])  # cut into the index table

        with ShardedArchiveReader(path) as reader:
            report = reader.verify(strict=False)
            assert list(report["failures"]) == [shard_path.name]
            assert "Truncated" in report["failures"][shard_path.name]
            healthy = [n for n in names_for(9) if n not in damaged_names]
            for name in healthy:
                reader.decode(name)
            # The damaged shard fails loudly, not silently.
            with pytest.raises(ArchiveError):
                reader.decode(damaged_names[0])

    def test_strict_verify_raises_but_names_clean_shards(self, victim_set):
        path, _ = victim_set
        _, shard_path, _ = _shard_with_frames(path)
        shard_path.write_bytes(shard_path.read_bytes()[:-3])
        with ShardedArchiveReader(path) as reader:
            with pytest.raises(ArchiveIntegrityError, match="other shards verified clean"):
                reader.verify()

    def test_parallel_verify_matches_serial(self, victim_set):
        path, _ = victim_set
        _, shard_path, _ = _shard_with_frames(path)
        data = bytearray(shard_path.read_bytes())
        data[HEADER_SIZE + 4] ^= 0xFF
        shard_path.write_bytes(bytes(data))
        with ShardedArchiveReader(path) as reader:
            serial = reader.verify(deep=True, strict=False)
        with ShardedArchiveReader(path) as reader:
            parallel = reader.verify(deep=True, workers=3, strict=False)
        assert dict(serial) == dict(parallel)


class TestInterruptedAppend:
    def test_failed_append_batch_leaves_every_shard_valid(self, victim_set):
        """A mid-batch codec failure aborts the append, but closing the
        writer finalises every shard into a valid archive."""
        path, _ = victim_set
        good = ct_slice_series(count=2, size=32, seed=8)
        poison = np.full((32, 32), 1 << 15, dtype=np.int64)  # exceeds 12-bit
        with ShardedArchiveWriter.append(path) as writer:
            with pytest.raises(ValueError, match="12-bit"):
                writer.append_batch(
                    [good[0], poison, good[1]],
                    names=["extra_0", "poison", "extra_1"],
                )
        with ShardedArchiveReader(path) as reader:
            report = reader.verify(deep=True)
            assert not report["failures"]
            assert "poison" not in reader.names()

    def test_crash_before_close_preserves_pre_append_state(self, victim_set):
        """Simulated hard crash (no close): every shard still reads as its
        pre-append state, because shard headers are only patched on close."""
        path, frames = victim_set
        writer = ShardedArchiveWriter.append(path)
        writer.append_batch(
            ct_slice_series(count=3, size=32, seed=11),
            names=["doomed_0", "doomed_1", "doomed_2"],
        )
        for shard_writer in writer._writers.values():
            shard_writer._fh.flush()  # payloads hit disk, headers untouched

        with ShardedArchiveReader(path) as reader:
            assert reader.names() == names_for(9)  # the append never happened
            report = reader.verify(deep=True)
            assert report["frames"] == 9 and not report["failures"]
            for position, name in enumerate(names_for(9)):
                assert np.array_equal(reader.decode(name), frames[position])

        writer.close()  # the append lands atomically on close
        with ShardedArchiveReader(path) as reader:
            assert len(reader) == 12
            assert not reader.verify(deep=True)["failures"]


class TestManifestCrashSafety:
    def test_kill_mid_rewrite_leaves_the_old_manifest_intact(
        self, victim_set, monkeypatch
    ):
        """A writer killed between writing the temp manifest and renaming it
        (the only non-atomic window) must leave the original manifest byte
        for byte — the set stays fully readable."""
        import repro.archive.sharding as sharding

        path, frames = victim_set
        original = path.read_bytes()
        with ShardedArchiveReader(path) as reader:
            manifest = reader.manifest

        def crash(src, dst):
            raise KeyboardInterrupt("killed mid-rewrite")

        monkeypatch.setattr(sharding.os, "replace", crash)
        with pytest.raises(KeyboardInterrupt):
            write_manifest(path, manifest)
        monkeypatch.undo()

        # The target was never touched; only a stale .tmp remains.
        assert path.read_bytes() == original
        assert path.with_name(path.name + ".tmp").exists()
        with ShardedArchiveReader(path) as reader:
            assert not reader.verify(deep=True)["failures"]
            assert np.array_equal(reader.decode("slice_000"), frames[0])

        # The next (uninterrupted) write overwrites the stale temp file.
        write_manifest(path, manifest)
        assert not path.with_name(path.name + ".tmp").exists()
        assert path.read_bytes() == original

    def test_successful_write_leaves_no_temp_file(self, tmp_path, victim_set):
        path, _ = victim_set
        with ShardedArchiveReader(path) as reader:
            write_manifest(path, reader.manifest)
        assert not path.with_name(path.name + ".tmp").exists()
        with ShardedArchiveReader(path) as reader:
            assert reader.names() == names_for(9)
