"""Self-healing replicated shard sets: fan-out, failover, verify-driven repair."""

import os

import numpy as np
import pytest

from repro.archive import (
    ArchiveError,
    ArchiveIntegrityError,
    ArchiveWriter,
    Fault,
    FaultInjectionBackend,
    FileBackend,
    RetryPolicy,
    ReplicatedShardSet,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    ShardManifest,
    repair_set,
    seeded_fault_plan,
    shard_replica_names,
)
from repro.archive.format import HEADER_SIZE, pack_manifest, unpack_manifest
from repro.archive.ingest import ingest_frames
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive

SEEDS = [3, 11, 42]
if os.environ.get("REPRO_FAULT_SEED"):
    SEEDS = sorted({*SEEDS, int(os.environ["REPRO_FAULT_SEED"])})


def names_for(count):
    return [f"slice_{i:03d}" for i in range(count)]


def copy_files(path):
    """Per shard: [primary, replica0, ...] paths, from the manifest."""
    with ShardedArchiveReader(path) as reader:
        return [list(copies) for copies in reader.copy_paths]


def assert_copies_identical(path):
    for copies in copy_files(path):
        blobs = [p.read_bytes() for p in copies]
        assert all(blob == blobs[0] for blob in blobs[1:]), copies


@pytest.fixture()
def replicated_set(tmp_path):
    frames = ct_slice_series(count=9, size=32, seed=5)
    path = tmp_path / "healer.dwts"
    with ReplicatedShardSet.create(path, shards=4, replicas=1, scales=2) as writer:
        writer.append_batch(frames, names=names_for(9))
    return path, frames


def _shard_with_frames(path):
    """(shard, primary_path, replica_paths, frame_names) of a non-empty shard."""
    with ShardedArchiveReader(path) as reader:
        for shard, copies in enumerate(reader.copy_paths):
            with ShardedArchiveReader(path) as probe:
                names = [
                    e.name for e in probe._shard_op(shard, lambda r: list(r.frames))
                ]
            if names:
                return shard, copies[0], copies[1:], names
    raise AssertionError("set has no frames")


class TestManifestReplicaMap:
    def test_v2_roundtrip_with_replicas(self, tmp_path):
        replica_names = shard_replica_names(tmp_path / "x.dwts", 3, 2)
        manifest = ShardManifest(
            version=2,
            router="hash",
            shard_names=("a.dwta", "b.dwta", "c.dwta"),
            spec_json='{"codec": "s-transform"}',
            replica_names=replica_names,
        )
        assert unpack_manifest(pack_manifest(manifest)) == manifest
        assert manifest.replicas == 2

    def test_replica_map_needs_version_2(self):
        manifest = ShardManifest(
            version=1,
            router="hash",
            shard_names=("a.dwta",),
            spec_json="{}",
            replica_names=(("a.r0.dwta",),),
        )
        with pytest.raises(ValueError, match="version"):
            pack_manifest(manifest)

    def test_replica_map_must_cover_every_shard(self):
        manifest = ShardManifest(
            version=2,
            router="hash",
            shard_names=("a.dwta", "b.dwta"),
            spec_json="{}",
            replica_names=(("a.r0.dwta",),),
        )
        with pytest.raises(ValueError, match="shard"):
            pack_manifest(manifest)


class TestWriteFanOut:
    def test_create_materialises_every_copy(self, replicated_set):
        path, _ = replicated_set
        copies = copy_files(path)
        assert len(copies) == 4 and all(len(c) == 2 for c in copies)
        for shard_copies in copies:
            for copy in shard_copies:
                assert copy.exists()
        assert_copies_identical(path)

    def test_serial_and_pooled_appends_are_byte_identical(self, tmp_path):
        frames = ct_slice_series(count=8, size=32, seed=3)
        serial = tmp_path / "serial.dwts"
        pooled = tmp_path / "pooled.dwts"
        for path, workers in ((serial, 1), (pooled, 3)):
            with ReplicatedShardSet.create(path, shards=3, replicas=1, scales=2) as writer:
                writer.append_batch(frames, names=names_for(8), workers=workers)
            assert_copies_identical(path)
        for a, b in zip(copy_files(serial), copy_files(pooled)):
            assert a[0].read_bytes() == b[0].read_bytes()

    def test_base_class_append_dispatches_to_replication(self, replicated_set):
        """Opening a replicated manifest through the base writer still fans
        out — replication is a property of the set, not the code path."""
        path, _ = replicated_set
        extra = ct_slice_series(count=2, size=32, seed=8)
        with ShardedArchiveWriter.append(path) as writer:
            assert isinstance(writer, ReplicatedShardSet)
            writer.append_batch(extra, names=["extra_0", "extra_1"])
        assert_copies_identical(path)

    def test_streamed_ingest_replicates(self, tmp_path):
        """Frame-at-a-time ingest keeps every copy byte-identical and lands
        the same bytes as a batch append of the same frames."""
        frames = ct_slice_series(count=6, size=32, seed=4)
        streamed = tmp_path / "streamed.dwts"
        batched = tmp_path / "batched.dwts"
        with ReplicatedShardSet.create(streamed, shards=2, replicas=1, scales=2) as writer:
            report = ingest_frames(
                writer, zip(names_for(6), frames), queue_depth=2
            )
            assert report.frames == 6
        with ReplicatedShardSet.create(batched, shards=2, replicas=1, scales=2) as writer:
            writer.append_batch(frames, names=names_for(6))
        assert_copies_identical(streamed)
        for a, b in zip(copy_files(streamed), copy_files(batched)):
            assert a[0].read_bytes() == b[0].read_bytes()


class TestReadFailover:
    @pytest.mark.parametrize(
        "damage",
        ["header", "payload-crc", "truncation"],
    )
    def test_reads_survive_primary_damage(self, replicated_set, damage):
        path, frames = replicated_set
        _, primary, _, _ = _shard_with_frames(path)
        original = primary.read_bytes()
        if damage == "header":
            data = bytearray(original)
            data[3] ^= 0xFF  # magic bytes — the copy won't even open
            primary.write_bytes(bytes(data))
        elif damage == "payload-crc":
            data = bytearray(original)
            data[HEADER_SIZE + 6] ^= 0x10
            primary.write_bytes(bytes(data))
        else:
            primary.write_bytes(original[:-9])  # torn index
        with ShardedArchiveReader(path) as reader:
            for position, name in enumerate(names_for(9)):
                assert np.array_equal(reader.decode(name), frames[position]), name
            assert reader.failovers >= 1

    def test_failover_counter_sits_next_to_the_others(self, replicated_set):
        path, frames = replicated_set
        shard, primary, _, damaged_names = _shard_with_frames(path)
        data = bytearray(primary.read_bytes())
        data[HEADER_SIZE + 2] ^= 0x01
        primary.write_bytes(bytes(data))
        with ShardedArchiveReader(path) as reader:
            assert reader.failovers == 0
            for name in names_for(9):
                reader.decode(name)
            assert reader.failovers == 1  # one switch serves every later read
            assert shard in reader.opened_shards
            assert reader.bytes_read > 0
            assert reader.retries == 0

    def test_retry_absorbs_transient_fault_without_failover(self, replicated_set):
        """Transient errors are the retry ladder's job; failover is only for
        persistent damage.  A fail-then-succeed fault must not burn a copy."""
        path, frames = replicated_set

        def flaky(path_):
            return FaultInjectionBackend(
                FileBackend(path_), faults=(Fault(kind="io-error", at_read=1, times=1),)
            )

        policy = RetryPolicy(attempts=3, base_delay=0.001, sleep=lambda s: None)
        with ShardedArchiveReader(path, retry=policy, backend_factory=flaky) as reader:
            for position, name in enumerate(names_for(9)):
                assert np.array_equal(reader.decode(name), frames[position])
            assert reader.retries >= 1
            assert reader.failovers == 0

    def test_bounded_retries_then_failover_on_persistent_fault(self, replicated_set):
        """A copy whose reads keep failing exhausts its bounded retries and
        fails over; the replica (opened through a clean backend) serves."""
        path, frames = replicated_set

        calls = {"n": 0}

        def poisoned_primaries(path_):
            calls["n"] += 1
            if path_.name.endswith(".r0.dwta"):
                return FileBackend(path_)
            return FaultInjectionBackend(
                FileBackend(path_), faults=(Fault(kind="io-error", at_read=0, times=99),)
            )

        policy = RetryPolicy(attempts=2, base_delay=0.001, sleep=lambda s: None)
        with ShardedArchiveReader(path, retry=policy, backend_factory=poisoned_primaries) as reader:
            touched = {reader.router.route(name) for name in names_for(9)}
            for position, name in enumerate(names_for(9)):
                assert np.array_equal(reader.decode(name), frames[position])
            # One switch per shard actually read; empty shards never open.
            assert reader.failovers == len(touched)
            assert reader.retries >= 1  # bounded retries ran before each switch

    def test_unreplicated_set_still_raises(self, tmp_path):
        frames = ct_slice_series(count=6, size=32, seed=5)
        path = tmp_path / "bare.dwts"
        with ShardedArchiveWriter.create(path, shards=2, scales=2) as writer:
            writer.append_batch(frames, names=names_for(6))
        with ShardedArchiveReader(path) as probe:
            shard_path = probe.shard_paths[0]
        with ShardedArchiveReader(path) as victim_probe:
            victim_names = [
                e.name for e in victim_probe._shard_op(0, lambda r: list(r.frames))
            ]
        shard_path.write_bytes(shard_path.read_bytes()[:-5])
        with ShardedArchiveReader(path) as reader:
            with pytest.raises(ArchiveError):
                reader.decode(victim_names[0])
            assert reader.failovers == 0

    def test_both_copies_damaged_raises(self, replicated_set):
        path, _ = replicated_set
        _, primary, replicas, damaged_names = _shard_with_frames(path)
        for target in (primary, *replicas):
            target.write_bytes(target.read_bytes()[:-7])
        with ShardedArchiveReader(path) as reader:
            with pytest.raises(ArchiveError):
                reader.decode(damaged_names[0])


class TestVerifyAndRepair:
    def test_verify_covers_every_copy(self, replicated_set):
        path, _ = replicated_set
        _, primary, replicas, _ = _shard_with_frames(path)
        # Damage only the REPLICA: reads from primaries stay clean, but
        # verify must still flag the set (the safety margin is gone).
        replica = replicas[0]
        data = bytearray(replica.read_bytes())
        data[HEADER_SIZE + 1] ^= 0x40
        replica.write_bytes(bytes(data))
        with ShardedArchiveReader(path) as reader:
            report = reader.verify(strict=False)
            assert list(report["failures"]) == [replica.name]
            assert report["shard_status"][primary.name] == "damaged"
            assert report["copies"] == 8
            with pytest.raises(ArchiveIntegrityError, match="other shards verified clean"):
                reader.verify(strict=True)

    def test_parallel_verify_matches_serial(self, replicated_set):
        path, _ = replicated_set
        _, primary, _, _ = _shard_with_frames(path)
        primary.write_bytes(primary.read_bytes()[:-3])
        with ShardedArchiveReader(path) as reader:
            serial = reader.verify(strict=False)
        with ShardedArchiveReader(path) as reader:
            parallel = reader.verify(strict=False, workers=4)
        assert dict(serial) == dict(parallel)

    def test_repair_rebuilds_byte_identical(self, replicated_set):
        path, _ = replicated_set
        _, primary, _, _ = _shard_with_frames(path)
        pristine = primary.read_bytes()
        data = bytearray(pristine)
        data[HEADER_SIZE + 4] ^= 0x08
        primary.write_bytes(bytes(data))
        result = repair_set(path)
        assert result.ok
        assert result.shard_status[primary.name] == "repaired"
        assert primary.read_bytes() == pristine  # byte-identical, not re-encoded
        with ShardedArchiveReader(path) as reader:
            assert not reader.verify(strict=True)["failures"]

    def test_repair_heals_a_damaged_replica_from_the_primary(self, replicated_set):
        path, _ = replicated_set
        _, primary, replicas, _ = _shard_with_frames(path)
        replica = replicas[0]
        pristine = replica.read_bytes()
        replica.write_bytes(pristine[:-11])
        result = repair_set(path)
        assert result.repaired == {replica.name: primary.name}
        assert replica.read_bytes() == pristine

    def test_repair_reports_unrepairable_shards(self, replicated_set):
        path, _ = replicated_set
        _, primary, replicas, _ = _shard_with_frames(path)
        for target in (primary, *replicas):
            target.write_bytes(target.read_bytes()[:-13])
        result = repair_set(path)
        assert not result.ok
        assert sorted(result.unrepairable) == sorted(
            [primary.name] + [r.name for r in replicas]
        )
        assert result.shard_status[primary.name] == "damaged"

    def test_stale_replica_detected_and_healed(self, replicated_set):
        """A replica left behind by a torn fan-out (valid, but missing the
        newest frames) is divergence, not health: verify flags it and repair
        resyncs it from the fuller primary."""
        path, frames = replicated_set
        shard, primary, replicas, _ = _shard_with_frames(path)
        replica = replicas[0]
        with ShardedArchiveReader(path) as probe:
            spec = probe.spec
            # A name the router sends to the shard we are going to tear.
            torn_name = next(
                name
                for name in (f"torn_{i}" for i in range(64))
                if probe.router.route(name) == shard
            )
        # Simulate the torn fan-out: append one frame to the primary only.
        extra = ct_slice_series(count=1, size=32, seed=77)[0]
        with ArchiveWriter.append(primary, spec=spec) as writer:
            writer.add_frames([extra], names=[torn_name])
        with ShardedArchiveReader(path) as reader:
            report = reader.verify(strict=False)
            assert list(report["failures"]) == [replica.name]
            assert "diverged" in report["failures"][replica.name]
        result = repair_set(path)
        assert result.repaired == {replica.name: primary.name}
        assert replica.read_bytes() == primary.read_bytes()
        with ShardedArchiveReader(path) as reader:
            assert not reader.verify(strict=True)["failures"]
            assert np.array_equal(reader.decode(torn_name), extra)


class TestEndToEndSelfHealing:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_acceptance_proof(self, tmp_path, seed):
        """The issue's acceptance scenario, per chaos seed: a replicated
        4-shard set survives header / payload-CRC / truncation damage via
        failover with bounded retries, repair restores the damaged copies
        byte for byte, and strict verify passes afterwards."""
        rngless = ct_slice_series(count=12, size=32, seed=seed)
        path = tmp_path / f"acceptance_{seed}.dwts"
        with ReplicatedShardSet.create(path, shards=4, replicas=1, scales=2) as writer:
            writer.append_batch(rngless, names=names_for(12))
        assert_copies_identical(path)
        copies = copy_files(path)
        pristine = {c: c.read_bytes() for shard in copies for c in shard}

        # Three damage variants across three distinct primaries, offsets
        # derived from the seed so every chaos run is reproducible.
        plan = seeded_fault_plan(seed, min(len(pristine[s[0]]) for s in copies), faults=3)
        variants = ["header", "payload-crc", "truncation"]
        damaged = []
        for variant, shard_copies, fault in zip(variants, copies[:3], plan):
            primary = shard_copies[0]
            blob = bytearray(pristine[primary])
            if variant == "header":
                blob[2] ^= max(fault.mask, 1)
                primary.write_bytes(bytes(blob))
            elif variant == "payload-crc":
                offset = HEADER_SIZE + (fault.offset % 16)
                blob[offset] ^= max(fault.mask, 1)
                primary.write_bytes(bytes(blob))
            else:
                cut = max(1, fault.offset % (len(blob) // 2))
                primary.write_bytes(bytes(blob[:-cut]))
            damaged.append(primary)

        # Reads still succeed via failover, with bounded retries absorbing
        # a transient fault on top of the persistent damage.
        policy = RetryPolicy(attempts=3, base_delay=0.001, sleep=lambda s: None)
        with ShardedArchiveReader(path, retry=policy) as reader:
            for position, name in enumerate(names_for(12)):
                assert np.array_equal(reader.decode(name), rngless[position]), name
            assert reader.failovers >= 1

        report_before = None
        with ShardedArchiveReader(path) as reader:
            report_before = reader.verify(strict=False)
        assert {name for name in report_before["failures"]} == {
            p.name for p in damaged
        }

        result = repair_set(path)
        assert result.ok
        for primary in damaged:
            assert result.shard_status[primary.name] == "repaired"
            assert primary.read_bytes() == pristine[primary]  # byte-identical
        with ShardedArchiveReader(path) as reader:
            final = reader.verify(deep=True, strict=True)
            assert final["frames"] == 12 and not final["failures"]
            assert final["shard_status"] == {
                shard[0].name: "ok" for shard in copies
            }
