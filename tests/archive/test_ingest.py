"""Streaming ingest: bounded memory, backpressure, byte identity."""

import asyncio

import numpy as np
import pytest

from repro.archive import (
    ArchiveReader,
    ArchiveWriter,
    ShardedArchiveReader,
    ShardedArchiveWriter,
    StreamingIngestor,
    ingest_async,
    ingest_frames,
    iter_compress,
)
from repro.coding.spec import CodecSpec
from repro.imaging import ct_slice_series

pytestmark = pytest.mark.archive


def names_for(count):
    return [f"slice_{i:03d}" for i in range(count)]


def named_feed(frames):
    return ((name, frame) for name, frame in zip(names_for(len(frames)), frames))


class TestBoundedIngest:
    def test_64_frame_feed_holds_at_most_queue_depth(self, tmp_path):
        """Acceptance: a 64-frame feed never has more than ``queue_depth``
        undecoded frames in memory at once — measured from the feed side,
        not trusted from the implementation."""
        frames = ct_slice_series(count=64, size=32, seed=2)
        gauge = {"outstanding": 0, "peak": 0}

        def feed():
            for name, frame in zip(names_for(64), frames):
                gauge["outstanding"] += 1
                gauge["peak"] = max(gauge["peak"], gauge["outstanding"])
                yield name, frame

        class CountingWriter:
            def __init__(self, inner):
                self.inner = inner
                self.spec = inner.spec

            def add_stream(self, stream, name):
                entry = self.inner.add_stream(stream, name)
                gauge["outstanding"] -= 1
                return entry

        queue_depth = 4
        with ArchiveWriter.create(tmp_path / "stream.dwta") as writer:
            report = ingest_frames(
                CountingWriter(writer), feed(), queue_depth=queue_depth
            )
        assert report.frames == 64
        assert gauge["peak"] <= queue_depth
        assert report.max_in_flight <= queue_depth
        # The producer actually read ahead (the bound was exercised, the
        # feed was not consumed one-at-a-time by accident).
        assert report.max_in_flight == queue_depth

    def test_streamed_archive_byte_identical_to_batch(self, tmp_path):
        frames = ct_slice_series(count=8, size=32, seed=4)
        batch_path = tmp_path / "batch.dwta"
        stream_path = tmp_path / "stream.dwta"
        with ArchiveWriter.create(batch_path) as writer:
            writer.append_batch(frames, names=names_for(8))
        with ArchiveWriter.create(stream_path) as writer:
            ingest_frames(writer, named_feed(frames), queue_depth=3)
        assert batch_path.read_bytes() == stream_path.read_bytes()

    def test_streamed_sharded_set_matches_batch_set(self, tmp_path):
        frames = ct_slice_series(count=8, size=32, seed=4)
        with ShardedArchiveWriter.create(tmp_path / "batch.dwts", shards=3) as writer:
            writer.append_batch(frames, names=names_for(8))
        with ShardedArchiveWriter.create(tmp_path / "stream.dwts", shards=3) as writer:
            report = ingest_frames(writer, named_feed(frames), queue_depth=2)
        assert report.frames == 8
        for a, b in zip(
            sorted(tmp_path.glob("batch.shard*.dwta")),
            sorted(tmp_path.glob("stream.shard*.dwta")),
        ):
            assert a.read_bytes() == b.read_bytes()
        with ShardedArchiveReader(tmp_path / "stream.dwts") as reader:
            decoded, _ = reader.decode_all()
            for image, original in zip(decoded, frames):
                assert np.array_equal(image, original)

    def test_bare_frames_are_auto_named(self, tmp_path):
        frames = ct_slice_series(count=3, size=32, seed=6)
        with ArchiveWriter.create(tmp_path / "auto.dwta") as writer:
            ingest_frames(writer, iter(frames), queue_depth=2)
        with ArchiveReader(tmp_path / "auto.dwta") as reader:
            assert len(reader) == 3
            assert len(set(reader.names())) == 3

    def test_feed_error_propagates_and_keeps_archived_frames(self, tmp_path):
        frames = ct_slice_series(count=4, size=32, seed=7)

        def feed():
            yield "ok_0", frames[0]
            yield "ok_1", frames[1]
            raise RuntimeError("scanner unplugged")

        path = tmp_path / "partial.dwta"
        with ArchiveWriter.create(path) as writer:
            with pytest.raises(RuntimeError, match="scanner unplugged"):
                ingest_frames(writer, feed(), queue_depth=2)
        with ArchiveReader(path) as reader:
            assert reader.names() == ["ok_0", "ok_1"]
            assert reader.verify(deep=True)["frames"] == 2

    def test_rejects_bad_queue_depth(self, tmp_path):
        with ArchiveWriter.create(tmp_path / "x.dwta") as writer:
            with pytest.raises(ValueError, match="queue_depth"):
                StreamingIngestor(writer, queue_depth=0)


class TestIterCompress:
    def test_generator_is_lazy_and_wire_identical(self):
        frames = ct_slice_series(count=5, size=32, seed=9)
        pulled = []

        def feed():
            for name, frame in zip(names_for(5), frames):
                pulled.append(name)
                yield name, frame

        spec = CodecSpec(scales=2)
        compressor = iter_compress(feed(), spec)
        assert pulled == []  # nothing consumed before iteration
        name, stream = next(compressor)
        assert name == "slice_000" and pulled == ["slice_000"]
        from repro.coding.pipeline import compress_frames

        reference = compress_frames([frames[0]], spec=spec)
        assert stream.chunks == reference.streams[0].chunks
        assert len(list(compressor)) == 4


class TestAsyncIngest:
    def test_async_feed_bounded_and_identical(self, tmp_path):
        frames = ct_slice_series(count=8, size=32, seed=4)

        async def feed():
            for name, frame in zip(names_for(8), frames):
                await asyncio.sleep(0)
                yield name, frame

        async def run():
            with ArchiveWriter.create(tmp_path / "async.dwta") as writer:
                return await ingest_async(writer, feed(), queue_depth=3)

        report = asyncio.run(run())
        assert report.frames == 8
        assert report.max_in_flight <= 3
        batch_path = tmp_path / "batch.dwta"
        with ArchiveWriter.create(batch_path) as writer:
            writer.append_batch(frames, names=names_for(8))
        assert batch_path.read_bytes() == (tmp_path / "async.dwta").read_bytes()

    def test_sync_iterable_accepted(self, tmp_path):
        frames = ct_slice_series(count=3, size=32, seed=5)

        async def run():
            with ArchiveWriter.create(tmp_path / "sync.dwta") as writer:
                return await ingest_async(writer, named_feed(frames), queue_depth=2)

        report = asyncio.run(run())
        assert report.frames == 3
