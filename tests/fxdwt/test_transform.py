"""Tests for repro.fxdwt.transform (bit-accurate fixed-point DWT)."""

import numpy as np
import pytest

from repro.dwt.transform2d import fdwt_2d
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.wordlength import plan_word_lengths
from repro.fxdwt.transform import FixedPointDWT, quantize_filter


class TestQuantizeFilter:
    def test_round_trip_error_bounded(self, bank_f2):
        fmt = QFormat(32, 3)
        quantized = quantize_filter(bank_f2.h, fmt)
        real = quantized.to_real()
        original = [bank_f2.h[n] for n, _ in quantized.items()]
        assert np.max(np.abs(np.array(real) - np.array(original))) <= fmt.resolution

    def test_indices_preserved(self, bank_f2):
        fmt = QFormat(32, 3)
        quantized = quantize_filter(bank_f2.g, fmt)
        assert list(quantized.indices) == list(bank_f2.g.indices())
        assert len(quantized) == len(bank_f2.g)


class TestEngineConfiguration:
    def test_invalid_scales_rejected(self, bank_f2):
        with pytest.raises(ValueError):
            FixedPointDWT(bank_f2, 0)

    def test_invalid_rounding_rejected(self, bank_f2):
        with pytest.raises(ValueError):
            FixedPointDWT(bank_f2, 2, rounding="nearest_even")

    def test_plan_with_too_few_scales_rejected(self, bank_f2):
        plan = plan_word_lengths(bank_f2, 2)
        with pytest.raises(ValueError):
            FixedPointDWT(bank_f2, 4, plan=plan)


class TestForward:
    def test_pyramid_shapes(self, bank_f2, ct_image_64):
        engine = FixedPointDWT(bank_f2, 3)
        pyramid = engine.forward(ct_image_64)
        assert pyramid.scales == 3
        assert pyramid.approximation.shape == (8, 8)
        assert pyramid.details[0].hg.shape == (32, 32)

    def test_rejects_non_integer_image(self, bank_f2):
        engine = FixedPointDWT(bank_f2, 2)
        with pytest.raises(ValueError):
            engine.forward(np.random.default_rng(0).uniform(0, 1, (16, 16)))

    def test_rejects_out_of_range_image(self, bank_f2):
        engine = FixedPointDWT(bank_f2, 2)
        image = np.full((16, 16), 5000, dtype=np.int64)  # exceeds 13-bit signed
        with pytest.raises(Exception):
            engine.forward(image)

    def test_rejects_insufficient_scales(self, bank_f2):
        engine = FixedPointDWT(bank_f2, 5)
        with pytest.raises(ValueError):
            engine.forward(np.zeros((24, 24), dtype=np.int64))

    def test_matches_float_transform_closely(self, bank_f2, ct_image_64):
        engine = FixedPointDWT(bank_f2, 3)
        fx_pyramid = engine.forward(ct_image_64).to_float_pyramid()
        float_pyramid = fdwt_2d(ct_image_64.astype(float), bank_f2, 3)
        # The fixed-point result tracks the float transform to within the
        # accumulated quantisation of the 29-fractional-bit coefficients.
        diff = np.abs(fx_pyramid.approximation - float_pyramid.approximation)
        assert diff.max() < 0.1

    def test_max_abs_stored_within_word(self, any_bank, random_image_64):
        engine = FixedPointDWT(any_bank, 4)
        pyramid = engine.forward(random_image_64)
        for scale, magnitude in pyramid.max_abs_stored_per_scale().items():
            fmt = pyramid.format_for_scale(scale)
            assert magnitude <= fmt.max_int


class TestRoundTrip:
    def test_lossless_for_all_banks(self, any_bank, random_image_64):
        engine = FixedPointDWT(any_bank, 4)
        reconstructed, _ = engine.roundtrip(random_image_64)
        assert np.array_equal(reconstructed, random_image_64)

    def test_lossless_six_scales(self, bank_f2, random_image_64):
        engine = FixedPointDWT(bank_f2, 6)
        reconstructed, _ = engine.roundtrip(random_image_64)
        assert np.array_equal(reconstructed, random_image_64)

    def test_truncation_rounding_breaks_losslessness(self, bank_f2, ct_image_64):
        # The section 4.3 round-half-up rule is load-bearing: replacing it with
        # plain truncation biases every narrowing step downward and the round
        # trip is off by one LSB on this workload, while half-up is exact.
        exact = FixedPointDWT(bank_f2, 3, rounding="half_up")
        truncated = FixedPointDWT(bank_f2, 3, rounding="truncate")
        exact_rec, _ = exact.roundtrip(ct_image_64)
        truncated_rec, _ = truncated.roundtrip(ct_image_64)
        assert np.array_equal(exact_rec, ct_image_64)
        assert not np.array_equal(truncated_rec, ct_image_64)
        assert np.abs(truncated_rec - ct_image_64).max() <= 2

    def test_inverse_scale_mismatch_rejected(self, bank_f2, ct_image_64):
        pyramid = FixedPointDWT(bank_f2, 3).forward(ct_image_64)
        other = FixedPointDWT(bank_f2, 4)
        with pytest.raises(ValueError):
            other.inverse(pyramid)

    def test_word_too_short_for_dynamic_range_is_rejected(self, bank_f2):
        # A 20-bit word cannot even hold the 21 integer bits scale 4 requires,
        # which is exactly the failure mode Table II guards against.
        from repro.fixedpoint.errors import DynamicRangeError

        with pytest.raises(DynamicRangeError):
            plan_word_lengths(bank_f2, 4, word_length=20)


class TestPyramidAccessors:
    def test_detail_real_returns_floats(self, bank_f2, ct_image_64):
        pyramid = FixedPointDWT(bank_f2, 2).forward(ct_image_64)
        real = pyramid.detail_real(1)
        assert set(real) == {"HG", "GH", "GG"}
        assert real["HG"].dtype == float

    def test_to_float_pyramid_shapes(self, bank_f2, ct_image_64):
        pyramid = FixedPointDWT(bank_f2, 2).forward(ct_image_64)
        float_pyramid = pyramid.to_float_pyramid()
        assert float_pyramid.image_shape == (64, 64)
