"""Tests for repro.fxdwt.lossless (the §3 verification helpers)."""

import numpy as np
import pytest

from repro.filters.catalog import get_bank
from repro.fxdwt.lossless import lossless_word_length_search, verify_lossless
from repro.imaging.phantoms import shepp_logan


class TestVerifyLossless:
    def test_lossless_report_for_paper_plan(self, bank_f2, ct_image_64):
        report = verify_lossless(ct_image_64, bank_f2, 4)
        assert report.lossless
        assert report.max_abs_error == 0
        assert report.mismatched_pixels == 0
        assert report.word_length == 32
        assert report.image_shape == (64, 64)

    def test_report_for_all_banks(self, any_bank, random_image_64):
        report = verify_lossless(random_image_64, any_bank, 3)
        assert report.lossless
        assert report.bank_name == any_bank.name

    def test_mean_error_zero_when_lossless(self, bank_f2, ct_image_64):
        report = verify_lossless(ct_image_64, bank_f2, 2)
        assert report.mean_abs_error == 0.0

    def test_string_rendering_mentions_status(self, bank_f2, ct_image_64):
        report = verify_lossless(ct_image_64, bank_f2, 2)
        assert "LOSSLESS" in str(report)


class TestWordLengthSearch:
    def test_sweep_contains_requested_word_lengths(self):
        image = shepp_logan(32)
        sweep = lossless_word_length_search(image, "F2", 3, word_lengths=range(24, 34, 4))
        assert set(sweep) == {24, 28, 32}

    def test_32_bits_is_lossless_and_transition_exists(self):
        image = shepp_logan(32)
        sweep = lossless_word_length_search(image, "F2", 4, word_lengths=range(18, 34, 2))
        assert sweep[32].lossless
        # Some word length in the sweep fails (otherwise the ablation is vacuous).
        assert any(not report.lossless for report in sweep.values())

    def test_word_too_short_for_integer_part_is_flagged(self):
        image = shepp_logan(32)
        # F6 needs 24 integer bits at scale 4; an 18-bit word cannot even hold it.
        sweep = lossless_word_length_search(image, "F6", 4, word_lengths=range(18, 20, 2))
        report = sweep[18]
        assert not report.lossless
        assert report.mismatched_pixels == -1  # sentinel for "plan infeasible"

    def test_losslessness_is_monotone_in_word_length(self):
        image = shepp_logan(32)
        sweep = lossless_word_length_search(image, "F2", 3, word_lengths=range(20, 34, 2))
        statuses = [sweep[w].lossless for w in sorted(sweep)]
        # Once lossless, longer words stay lossless.
        first_true = statuses.index(True) if True in statuses else len(statuses)
        assert all(statuses[first_true:])


class TestVerifyLosslessBatch:
    def test_batch_roundtrips_through_full_codec(self):
        from repro.fxdwt.lossless import verify_lossless_batch
        from repro.imaging.phantoms import random_image

        images = [shepp_logan(64), random_image(32, seed=2), shepp_logan(32)]
        reports, stats = verify_lossless_batch(images, bank_name="F2", scales=3)
        assert len(reports) == 3
        assert all(r.lossless for r in reports)
        assert all(r.mismatched_pixels == 0 for r in reports)
        # 32x32 frames only support 3 scales; 64x64 keeps the requested depth.
        assert reports[0].scales == 3
        assert stats.frames == 3
        assert set(stats.stage_seconds) == {"entropy_decode", "inverse"}
