"""Tests for repro.dwt.opcount (Eq. (1)/(2) MAC counting)."""

import numpy as np
import pytest

from repro.dwt.opcount import (
    MacCounter,
    count_macs_instrumented,
    mac_count_formula,
    mac_count_paper_example,
    mac_count_per_scale,
)
from repro.filters.catalog import get_bank


class TestClosedForm:
    def test_scale_one_count(self):
        # 4 * (N/2)^2 * (LH + LG)
        assert mac_count_per_scale(512, 13, 13, 1) == 4 * 256 * 256 * 26

    def test_counts_decrease_by_factor_four(self):
        counts = mac_count_formula(512, 13, 13, 6)
        for scale in range(2, 7):
            assert counts[scale] * 4 == counts[scale - 1]

    def test_paper_example_close_to_quoted_value(self):
        assert mac_count_paper_example() == pytest.approx(8.99e6, rel=0.02)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            mac_count_per_scale(512, 13, 13, 0)

    def test_too_many_scales_rejected(self):
        with pytest.raises(ValueError):
            mac_count_formula(48, 13, 13, 5)


class TestMacCounter:
    def test_accumulates(self):
        counter = MacCounter()
        counter.add(5)
        counter.add(7)
        assert counter.macs == 12

    def test_reset(self):
        counter = MacCounter(macs=9)
        counter.reset()
        assert counter.macs == 0

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            MacCounter().add(-1)


class TestInstrumentedCount:
    def test_matches_closed_form_for_f2(self):
        bank = get_bank("F2")
        instrumented = count_macs_instrumented(np.zeros((64, 64)), bank, 3)
        closed = mac_count_formula(64, len(bank.h), len(bank.g), 3)
        assert instrumented == closed

    def test_matches_closed_form_for_haar(self):
        bank = get_bank("F5")
        instrumented = count_macs_instrumented(np.zeros((32, 32)), bank, 2)
        closed = mac_count_formula(32, len(bank.h), len(bank.g), 2)
        assert instrumented == closed

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            count_macs_instrumented(np.zeros(16), get_bank("F2"), 1)
