"""Tests for repro.dwt.transform1d (1-D multi-scale transforms)."""

import numpy as np
import pytest

from repro.dwt.transform1d import (
    analyze_1d,
    fdwt_1d,
    idwt_1d,
    max_scales_for_length,
    synthesize_1d,
)


class TestMaxScales:
    @pytest.mark.parametrize(
        "length,expected",
        [(1, 0), (2, 1), (6, 1), (8, 3), (12, 2), (512, 9), (0, 0)],
    )
    def test_counts_powers_of_two(self, length, expected):
        assert max_scales_for_length(length) == expected


class TestSingleStage:
    def test_analyze_halves_length(self, bank_f2, rng):
        signal = rng.uniform(0, 4095, size=64)
        lo, hi = analyze_1d(signal, bank_f2)
        assert lo.shape == hi.shape == (32,)

    def test_stage_round_trip_close(self, any_bank, rng):
        signal = rng.uniform(0, 4095, size=64)
        lo, hi = analyze_1d(signal, any_bank)
        back = synthesize_1d(lo, hi, any_bank)
        assert np.max(np.abs(back - signal)) < 0.5

    def test_synthesize_shape_mismatch_rejected(self, bank_f2):
        with pytest.raises(ValueError):
            synthesize_1d(np.ones(4), np.ones(8), bank_f2)


class TestMultiScale:
    def test_detail_lengths_follow_dyadic_ladder(self, bank_f2, rng):
        signal = rng.uniform(0, 100, size=64)
        average, details = fdwt_1d(signal, bank_f2, 3)
        assert [d.size for d in details] == [32, 16, 8]
        assert average.size == 8

    def test_round_trip_multi_scale(self, bank_f2, rng):
        signal = rng.uniform(0, 4095, size=128)
        average, details = fdwt_1d(signal, bank_f2, 4)
        back = idwt_1d(average, details, bank_f2)
        assert np.max(np.abs(back - signal)) < 0.5

    def test_too_many_scales_rejected(self, bank_f2):
        with pytest.raises(ValueError):
            fdwt_1d(np.ones(12), bank_f2, 3)

    def test_zero_scales_rejected(self, bank_f2):
        with pytest.raises(ValueError):
            fdwt_1d(np.ones(16), bank_f2, 0)

    def test_2d_input_rejected(self, bank_f2):
        with pytest.raises(ValueError):
            fdwt_1d(np.ones((4, 4)), bank_f2, 1)

    def test_single_scale_matches_analyze(self, bank_f2, rng):
        signal = rng.uniform(-1, 1, size=32)
        average, details = fdwt_1d(signal, bank_f2, 1)
        lo, hi = analyze_1d(signal, bank_f2)
        assert np.allclose(average, lo)
        assert np.allclose(details[0], hi)
