"""Tests for repro.dwt.subbands (pyramid containers and mosaic packing)."""

import numpy as np
import pytest

from repro.dwt.subbands import ScaleDetails, WaveletPyramid
from repro.dwt.transform2d import fdwt_2d


class TestScaleDetails:
    def test_shapes_must_agree(self):
        with pytest.raises(ValueError):
            ScaleDetails(scale=1, hg=np.zeros((4, 4)), gh=np.zeros((4, 4)), gg=np.zeros((2, 2)))

    def test_subbands_must_be_2d(self):
        with pytest.raises(ValueError):
            ScaleDetails(scale=1, hg=np.zeros(4), gh=np.zeros(4), gg=np.zeros(4))

    def test_as_dict_keys(self):
        details = ScaleDetails(scale=1, hg=np.zeros((2, 2)), gh=np.zeros((2, 2)), gg=np.zeros((2, 2)))
        assert set(details.as_dict()) == {"HG", "GH", "GG"}

    def test_max_abs(self):
        details = ScaleDetails(
            scale=1,
            hg=np.array([[1.0, -7.0], [0.0, 0.0]]),
            gh=np.zeros((2, 2)),
            gg=np.full((2, 2), 3.0),
        )
        assert details.max_abs() == 7.0


class TestWaveletPyramid:
    @pytest.fixture
    def pyramid(self, bank_f2, ct_image_64):
        return fdwt_2d(ct_image_64.astype(float), bank_f2, 3)

    def test_image_shape_recovered(self, pyramid):
        assert pyramid.image_shape == (64, 64)

    def test_coefficient_count_conserved(self, pyramid):
        assert pyramid.coefficient_count() == 64 * 64

    def test_detail_accessor_bounds(self, pyramid):
        with pytest.raises(IndexError):
            pyramid.detail(0)
        with pytest.raises(IndexError):
            pyramid.detail(4)

    def test_iter_subbands_count_and_order(self, pyramid):
        subbands = list(pyramid.iter_subbands())
        assert len(subbands) == 1 + 3 * 3
        assert subbands[0][0] == "HH"
        # Coarse scales come first.
        scales = [scale for _, scale, _ in subbands]
        assert scales == sorted(scales, reverse=True)

    def test_inconsistent_shapes_rejected(self):
        # Approximation of a 2-scale pyramid of an 8x8 image must be 2x2, not 4x4.
        with pytest.raises(ValueError):
            WaveletPyramid(
                approximation=np.zeros((4, 4)),
                details=[
                    ScaleDetails(scale=1, hg=np.zeros((4, 4)), gh=np.zeros((4, 4)), gg=np.zeros((4, 4))),
                    ScaleDetails(scale=2, hg=np.zeros((4, 4)), gh=np.zeros((4, 4)), gg=np.zeros((4, 4))),
                ],
            )

    def test_max_abs_per_scale_keys(self, pyramid):
        per_scale = pyramid.max_abs_per_scale()
        assert set(per_scale) == {1, 2, 3}

    def test_energy_per_scale_nonnegative(self, pyramid):
        assert all(v >= 0 for v in pyramid.energy_per_scale().values())


class TestMosaic:
    @pytest.fixture
    def pyramid(self, bank_f2, ct_image_64):
        return fdwt_2d(ct_image_64.astype(float), bank_f2, 3)

    def test_mosaic_shape(self, pyramid):
        assert pyramid.to_mosaic().shape == (64, 64)

    def test_mosaic_round_trip(self, pyramid):
        mosaic = pyramid.to_mosaic()
        back = WaveletPyramid.from_mosaic(mosaic, pyramid.scales)
        assert np.array_equal(back.approximation, pyramid.approximation)
        for original, restored in zip(pyramid.details, back.details):
            assert np.array_equal(original.hg, restored.hg)
            assert np.array_equal(original.gh, restored.gh)
            assert np.array_equal(original.gg, restored.gg)

    def test_mosaic_top_left_is_approximation(self, pyramid):
        mosaic = pyramid.to_mosaic()
        assert np.array_equal(mosaic[:8, :8], pyramid.approximation)

    def test_from_mosaic_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            WaveletPyramid.from_mosaic(np.zeros((12, 12)), 3)

    def test_from_mosaic_rejects_non_2d(self):
        with pytest.raises(ValueError):
            WaveletPyramid.from_mosaic(np.zeros(16), 1)
