"""Tests for repro.dwt.convolution (periodic analysis/synthesis primitives)."""

import numpy as np
import pytest

from repro.dwt.convolution import (
    analysis_convolve,
    analysis_convolve_scalar,
    analysis_pair,
    periodic_gather,
    synthesis_accumulate,
    synthesis_accumulate_scalar,
)
from repro.filters.qmf import SymmetricFilter


@pytest.fixture
def simple_filter():
    return SymmetricFilter(np.array([0.25, 0.5, 0.25]), origin=1, name="test")


class TestPeriodicGather:
    def test_wraps_negative_and_large_indices(self):
        signal = np.array([10.0, 20.0, 30.0, 40.0])
        gathered = periodic_gather(signal, np.array([-1, 0, 4, 5]))
        assert list(gathered) == [40.0, 10.0, 10.0, 20.0]

    def test_gathers_along_last_axis_of_2d(self):
        signal = np.arange(8.0).reshape(2, 4)
        gathered = periodic_gather(signal, np.array([0, -1]))
        assert gathered.shape == (2, 2)
        assert list(gathered[0]) == [0.0, 3.0]
        assert list(gathered[1]) == [4.0, 7.0]

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError):
            periodic_gather(np.array([]), np.array([0]))


class TestAnalysisConvolve:
    def test_output_is_half_length(self, simple_filter):
        out = analysis_convolve(np.ones(8), simple_filter)
        assert out.shape == (4,)

    def test_constant_signal_yields_dc_gain(self, simple_filter):
        out = analysis_convolve(np.ones(8) * 3.0, simple_filter)
        assert np.allclose(out, 3.0 * simple_filter.dc_gain)

    def test_odd_length_rejected(self, simple_filter):
        with pytest.raises(ValueError):
            analysis_convolve(np.ones(7), simple_filter)

    def test_matches_scalar_reference(self, simple_filter, rng):
        signal = rng.uniform(-10, 10, size=16)
        fast = analysis_convolve(signal, simple_filter)
        slow = analysis_convolve_scalar(signal, simple_filter)
        assert np.allclose(fast, slow)

    def test_matches_scalar_reference_real_bank(self, bank_f2, rng):
        signal = rng.uniform(0, 4095, size=32)
        assert np.allclose(
            analysis_convolve(signal, bank_f2.h),
            analysis_convolve_scalar(signal, bank_f2.h),
        )

    def test_2d_rows_processed_independently(self, simple_filter, rng):
        image = rng.uniform(-1, 1, size=(3, 8))
        out = analysis_convolve(image, simple_filter)
        for row in range(3):
            assert np.allclose(out[row], analysis_convolve(image[row], simple_filter))

    def test_scalar_requires_1d(self, simple_filter):
        with pytest.raises(ValueError):
            analysis_convolve_scalar(np.ones((2, 8)), simple_filter)


class TestSynthesisAccumulate:
    def test_output_is_double_length(self, simple_filter):
        out = synthesis_accumulate(np.ones(4), simple_filter, 8)
        assert out.shape == (8,)

    def test_wrong_output_length_rejected(self, simple_filter):
        with pytest.raises(ValueError):
            synthesis_accumulate(np.ones(4), simple_filter, 10)

    def test_matches_scalar_reference(self, simple_filter, rng):
        coeffs = rng.uniform(-5, 5, size=8)
        fast = synthesis_accumulate(coeffs, simple_filter, 16)
        slow = synthesis_accumulate_scalar(coeffs, simple_filter, 16)
        assert np.allclose(fast, slow)

    def test_single_impulse_places_filter(self):
        filt = SymmetricFilter(np.array([1.0, 2.0, 3.0]), origin=1)
        coeffs = np.zeros(4)
        coeffs[1] = 1.0  # contributes to outputs 2 + idx for idx in [-1, 0, 1]
        out = synthesis_accumulate(coeffs, filt, 8)
        assert list(out[1:4]) == [1.0, 2.0, 3.0]
        assert out[0] == 0.0 and np.all(out[4:] == 0.0)

    def test_scalar_requires_1d(self, simple_filter):
        with pytest.raises(ValueError):
            synthesis_accumulate_scalar(np.ones((2, 4)), simple_filter, 8)


class TestAnalysisPair:
    def test_returns_low_and_high(self, bank_f2, rng):
        signal = rng.uniform(0, 100, size=16)
        lo, hi = analysis_pair(signal, bank_f2.h, bank_f2.g)
        assert np.allclose(lo, analysis_convolve(signal, bank_f2.h))
        assert np.allclose(hi, analysis_convolve(signal, bank_f2.g))
