"""Tests for repro.dwt.transform2d (2-D Mallat pyramid, Fig. 1)."""

import numpy as np
import pytest

from repro.dwt.transform2d import (
    analyze_2d_stage,
    fdwt_2d,
    idwt_2d,
    synthesize_2d_stage,
    validate_image_for_transform,
)


class TestValidation:
    def test_accepts_square_power_of_two(self):
        validate_image_for_transform(np.zeros((64, 64)), 4)

    def test_accepts_rectangular_dyadic(self):
        validate_image_for_transform(np.zeros((32, 64)), 3)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            validate_image_for_transform(np.zeros(64), 1)

    def test_rejects_insufficient_scales(self):
        with pytest.raises(ValueError):
            validate_image_for_transform(np.zeros((24, 24)), 4)

    def test_rejects_zero_scales(self):
        with pytest.raises(ValueError):
            validate_image_for_transform(np.zeros((16, 16)), 0)


class TestSingleStage:
    def test_subband_shapes(self, bank_f2, ct_image_64):
        hh, details = analyze_2d_stage(ct_image_64.astype(float), bank_f2)
        assert hh.shape == (32, 32)
        assert details.shape == (32, 32)

    def test_stage_round_trip(self, any_bank, ct_image_64):
        image = ct_image_64.astype(float)
        hh, details = analyze_2d_stage(image, any_bank)
        back = synthesize_2d_stage(hh, details, any_bank)
        assert np.max(np.abs(back - image)) < 0.5

    def test_synthesize_shape_mismatch_rejected(self, bank_f2, ct_image_64):
        hh, details = analyze_2d_stage(ct_image_64.astype(float), bank_f2)
        with pytest.raises(ValueError):
            synthesize_2d_stage(hh[:16, :16], details, bank_f2)

    def test_constant_image_concentrates_in_hh(self, bank_f2):
        # The printed 6-decimal coefficients give the high-pass a residual DC
        # gain of ~3e-6, so the details are only near-zero, not exactly zero.
        image = np.full((32, 32), 100.0)
        hh, details = analyze_2d_stage(image, bank_f2)
        assert np.allclose(details.hg, 0.0, atol=1e-2)
        assert np.allclose(details.gh, 0.0, atol=1e-2)
        assert np.allclose(details.gg, 0.0, atol=1e-2)
        assert np.allclose(hh, 100.0 * bank_f2.h.dc_gain ** 2)


class TestMultiScale:
    def test_pyramid_structure(self, bank_f2, ct_image_64):
        pyramid = fdwt_2d(ct_image_64.astype(float), bank_f2, 3)
        assert pyramid.scales == 3
        assert pyramid.approximation.shape == (8, 8)
        assert pyramid.detail(1).shape == (32, 32)
        assert pyramid.detail(3).shape == (8, 8)

    def test_round_trip_all_banks(self, any_bank, ct_image_64):
        image = ct_image_64.astype(float)
        pyramid = fdwt_2d(image, any_bank, 3)
        back = idwt_2d(pyramid, any_bank)
        assert np.max(np.abs(back - image)) < 0.5

    def test_round_trip_random_image(self, bank_f2, random_image_64):
        image = random_image_64.astype(float)
        pyramid = fdwt_2d(image, bank_f2, 6)
        back = idwt_2d(pyramid, bank_f2)
        assert np.max(np.abs(back - image)) < 0.5

    def test_rectangular_image_supported(self, bank_f2, rng):
        image = rng.uniform(0, 4095, size=(32, 64))
        pyramid = fdwt_2d(image, bank_f2, 3)
        assert pyramid.approximation.shape == (4, 8)
        back = idwt_2d(pyramid, bank_f2)
        assert np.max(np.abs(back - image)) < 0.5

    def test_scale_numbering_starts_at_one(self, bank_f2, ct_image_64):
        pyramid = fdwt_2d(ct_image_64.astype(float), bank_f2, 2)
        assert [d.scale for d in pyramid.details] == [1, 2]
