"""Tests for repro.baselines.comparison (the full Table III comparison)."""

import pytest

from repro.baselines.comparison import (
    ALL_ARCHITECTURES,
    PRIOR_ARCHITECTURES,
    area_ratios,
    table_iii_comparison,
)


class TestComparisonTable:
    def test_five_rows_with_proposed(self):
        rows = table_iii_comparison()
        assert len(rows) == 5
        assert rows[-1].name.startswith("Proposed")

    def test_four_rows_without_proposed(self):
        rows = table_iii_comparison(include_proposed=False)
        assert len(rows) == 4

    def test_order_matches_paper(self):
        names = [row.name for row in table_iii_comparison()]
        assert names[0].startswith("A.")
        assert names[1].startswith("B.")
        assert names[2].startswith("C.")
        assert names[3].startswith("D.")

    def test_registry_lists(self):
        assert len(PRIOR_ARCHITECTURES) == 4
        assert len(ALL_ARCHITECTURES) == 5

    def test_proposed_is_smallest(self):
        rows = table_iii_comparison()
        proposed = rows[-1]
        assert all(row.total_area_mm2 > proposed.total_area_mm2 for row in rows[:-1])

    def test_every_prior_at_least_order_of_magnitude_larger(self):
        ratios = area_ratios()
        assert all(ratio > 10.0 for ratio in ratios.values())

    def test_ratios_computed_from_given_rows(self):
        rows = table_iii_comparison(image_size=256)
        ratios = area_ratios(rows)
        assert set(ratios) == {row.name for row in rows[:-1]}

    def test_ratios_require_proposed_row(self):
        rows = table_iii_comparison(include_proposed=False)
        with pytest.raises(ValueError):
            area_ratios(rows)

    def test_custom_operating_point(self):
        rows = table_iii_comparison(filter_length=9, image_size=256, scales=4)
        serial = rows[0]
        assert serial.multipliers == 36
        assert serial.memory_words == 2 * 9 * 256 + 256
