"""Tests for the prior-architecture models (Table III rows)."""

import pytest

from repro.baselines import (
    BlockFilteringArchitecture,
    ParallelArchitecture,
    ProposedArchitecture,
    Recursive1DArchitecture,
    SerialParallelArchitecture,
)


class TestStructuralCounts:
    def test_serial_parallel_counts(self):
        model = SerialParallelArchitecture(filter_length=13, image_size=512)
        assert model.multiplier_count() == 52
        assert model.memory_words() == 2 * 13 * 512 + 512

    def test_parallel_counts_match_serial_parallel(self):
        a = SerialParallelArchitecture()
        b = ParallelArchitecture()
        assert a.multiplier_count() == b.multiplier_count()
        assert a.memory_words() == b.memory_words()

    def test_block_filtering_saves_line_memory(self):
        block = BlockFilteringArchitecture()
        parallel = ParallelArchitecture()
        assert block.memory_words() < parallel.memory_words()

    def test_recursive_1d_uses_fewest_multipliers_of_priors(self):
        priors = [
            SerialParallelArchitecture(),
            ParallelArchitecture(),
            BlockFilteringArchitecture(),
            Recursive1DArchitecture(),
        ]
        counts = [p.multiplier_count() for p in priors]
        assert min(counts) == Recursive1DArchitecture().multiplier_count()

    def test_proposed_uses_single_multiplier(self):
        model = ProposedArchitecture()
        assert model.multiplier_count() == 1
        assert model.memory_words() == 288

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SerialParallelArchitecture(filter_length=0)
        with pytest.raises(ValueError):
            ParallelArchitecture(word_length=4)


class TestAreaEstimates:
    @pytest.mark.parametrize(
        "cls",
        [
            SerialParallelArchitecture,
            ParallelArchitecture,
            BlockFilteringArchitecture,
            Recursive1DArchitecture,
        ],
    )
    def test_modelled_area_near_paper_value(self, cls):
        estimate = cls().estimate()
        assert estimate.paper_area_mm2 is not None
        assert estimate.total_area_mm2 == pytest.approx(estimate.paper_area_mm2, rel=0.10)

    def test_proposed_area_near_paper_value(self):
        estimate = ProposedArchitecture().estimate()
        assert estimate.total_area_mm2 == pytest.approx(11.2, rel=0.10)

    def test_estimate_decomposes_into_multiplier_and_memory(self):
        estimate = SerialParallelArchitecture().estimate()
        assert estimate.total_area_mm2 == pytest.approx(
            estimate.multiplier_area_mm2 + estimate.memory_area_mm2
        )

    def test_memory_bits_property(self):
        estimate = Recursive1DArchitecture().estimate()
        assert estimate.memory_bits == estimate.memory_words * 32

    def test_areas_shrink_with_narrower_words(self):
        wide = SerialParallelArchitecture(word_length=32).estimate()
        narrow = SerialParallelArchitecture(word_length=16).estimate()
        assert narrow.memory_area_mm2 < wide.memory_area_mm2

    def test_smaller_image_needs_less_memory(self):
        small = ParallelArchitecture(image_size=256).estimate()
        big = ParallelArchitecture(image_size=512).estimate()
        assert small.memory_words < big.memory_words
