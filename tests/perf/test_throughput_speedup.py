"""Tests for repro.perf.throughput and repro.perf.speedup."""

import pytest

from repro.arch.config import paper_configuration
from repro.perf.speedup import PAPER_SPEEDUP, speedup_report
from repro.perf.throughput import (
    PAPER_CLOCK_MHZ,
    PAPER_IMAGES_PER_SECOND,
    ThroughputModel,
    clock_sweep,
    image_size_sweep,
)


class TestThroughputModel:
    def test_paper_operating_point(self):
        model = ThroughputModel.paper()
        assert model.images_per_second == pytest.approx(PAPER_IMAGES_PER_SECOND, rel=0.05)
        assert model.config.clock_frequency_mhz == pytest.approx(PAPER_CLOCK_MHZ)

    def test_utilisation_property(self):
        assert 100.0 * ThroughputModel.paper().utilisation == pytest.approx(99.04, abs=0.02)

    def test_at_clock_scales_throughput(self):
        base = ThroughputModel.paper()
        doubled = base.at_clock(66.0)
        assert doubled.images_per_second == pytest.approx(2 * base.images_per_second, rel=0.01)

    def test_at_clock_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ThroughputModel.paper().at_clock(0.0)

    def test_for_image_size(self):
        model = ThroughputModel.paper().for_image_size(256)
        assert model.config.image_size == 256
        assert model.images_per_second > ThroughputModel.paper().images_per_second

    def test_clock_sweep_keys(self):
        sweep = clock_sweep([20.0, 33.0, 40.0])
        assert set(sweep) == {20.0, 33.0, 40.0}
        assert sweep[40.0].images_per_second > sweep[20.0].images_per_second

    def test_image_size_sweep_monotone(self):
        sweep = image_size_sweep([128, 256, 512])
        times = [sweep[size].transform_seconds for size in (128, 256, 512)]
        assert times == sorted(times)


class TestSpeedup:
    def test_paper_speedup_within_five_percent(self):
        report = speedup_report()
        assert report.speedup == pytest.approx(PAPER_SPEEDUP, rel=0.05)

    def test_speedup_is_ratio_of_times(self):
        report = speedup_report()
        assert report.speedup == pytest.approx(
            report.baseline_seconds / report.accelerator_seconds
        )

    def test_true_filter_lengths_give_slightly_lower_speedup(self):
        paper_style = speedup_report(use_paper_filter_length=True)
        true_lengths = speedup_report(use_paper_filter_length=False)
        assert true_lengths.speedup < paper_style.speedup

    def test_custom_configuration(self):
        report = speedup_report(paper_configuration(image_size=256))
        assert report.image_size == 256
        # The speedup is roughly size-independent (both sides scale with MACs).
        assert report.speedup == pytest.approx(PAPER_SPEEDUP, rel=0.15)

    def test_string_rendering(self):
        assert "x" in str(speedup_report())
