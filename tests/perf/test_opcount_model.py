"""Tests for repro.perf.opcount_model (MAC workload model)."""

import pytest

from repro.filters.catalog import get_bank
from repro.perf.opcount_model import PAPER_MAC_COUNT, WorkloadModel


class TestWorkloadModel:
    def test_paper_example_within_two_percent(self):
        workload = WorkloadModel()  # N=512, both lengths 13, S=6
        assert workload.total_macs() == pytest.approx(PAPER_MAC_COUNT, rel=0.02)

    def test_relative_to_paper(self):
        workload = WorkloadModel()
        assert workload.relative_to_paper() == pytest.approx(
            workload.total_macs() / PAPER_MAC_COUNT
        )

    def test_roundtrip_doubles_macs(self):
        workload = WorkloadModel(image_size=128, scales=3)
        assert workload.roundtrip_macs() == 2 * workload.total_macs()

    def test_per_scale_counts_sum_to_total(self):
        workload = WorkloadModel(image_size=256, scales=4)
        assert sum(workload.macs_per_scale().values()) == workload.total_macs()

    def test_for_bank_uses_true_lengths(self):
        workload = WorkloadModel.for_bank(get_bank("F2"))
        assert workload.length_h == 13
        assert workload.length_g == 11
        assert workload.total_macs() < WorkloadModel().total_macs()

    def test_haar_bank_is_much_cheaper(self):
        haar = WorkloadModel.for_bank(get_bank("F5"), image_size=512, scales=6)
        f2 = WorkloadModel.for_bank(get_bank("F2"), image_size=512, scales=6)
        assert haar.total_macs() < f2.total_macs() / 2
