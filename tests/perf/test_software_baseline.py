"""Tests for repro.perf.software_baseline (the calibrated Pentium model)."""

import pytest

from repro.perf.opcount_model import WorkloadModel
from repro.perf.software_baseline import (
    PAPER_PENTIUM_SECONDS,
    PentiumBaseline,
    measure_reference_dwt,
)


class TestPentiumBaseline:
    def test_calibration_point_is_exactly_reproduced(self):
        baseline = PentiumBaseline()
        assert baseline.seconds_for_macs(8.99e6) == pytest.approx(PAPER_PENTIUM_SECONDS)

    def test_mac_rate(self):
        baseline = PentiumBaseline()
        assert baseline.macs_per_second == pytest.approx(8.99e6 / 42.0)

    def test_cycles_per_mac_is_plausible_for_a_pentium(self):
        baseline = PentiumBaseline()
        # A software MAC with memory traffic on a 1996 Pentium took hundreds
        # of cycles the way the paper's reference code was written.
        assert 100 < baseline.cycles_per_mac < 2000

    def test_time_scales_linearly_with_macs(self):
        baseline = PentiumBaseline()
        assert baseline.seconds_for_macs(2e6) == pytest.approx(
            2 * baseline.seconds_for_macs(1e6)
        )

    def test_workload_helper(self):
        baseline = PentiumBaseline()
        workload = WorkloadModel(image_size=256, scales=4)
        assert baseline.seconds_for_workload(workload) == pytest.approx(
            baseline.seconds_for_macs(workload.total_macs())
        )

    def test_images_per_second_default_workload(self):
        baseline = PentiumBaseline()
        assert baseline.images_per_second() == pytest.approx(1.0 / 42.4, rel=0.02)

    def test_negative_macs_rejected(self):
        with pytest.raises(ValueError):
            PentiumBaseline().seconds_for_macs(-1)


class TestMeasuredRun:
    def test_measurement_returns_positive_time(self):
        run = measure_reference_dwt(image_size=64, scales=3, repeats=1)
        assert run.seconds > 0
        assert run.image_size == 64
        assert run.macs > 0
        assert run.macs_per_second > 0

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError):
            measure_reference_dwt(repeats=0)
