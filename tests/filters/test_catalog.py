"""Tests for repro.filters.catalog (bank registry)."""

import pytest

from repro.filters.catalog import (
    DEFAULT_BANK_NAME,
    all_banks,
    available_banks,
    default_bank,
    get_bank,
)


class TestCatalog:
    def test_available_banks_order(self):
        assert available_banks() == ["F1", "F2", "F3", "F4", "F5", "F6"]

    def test_default_bank_is_f2(self):
        assert DEFAULT_BANK_NAME == "F2"
        assert default_bank().name == "F2"

    def test_get_bank_is_case_insensitive(self):
        assert get_bank("f3").name == "F3"

    def test_get_bank_caches_instances(self):
        assert get_bank("F1") is get_bank("F1")

    def test_get_bank_unknown_name(self):
        with pytest.raises(KeyError):
            get_bank("F7")

    def test_all_banks_returns_all_six(self):
        banks = all_banks()
        assert list(banks) == available_banks()
        assert all(banks[name].name == name for name in banks)
