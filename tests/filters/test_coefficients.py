"""Tests for repro.filters.coefficients (Table I as printed)."""

import pytest

from repro.filters.coefficients import (
    FILTER_NAMES,
    TABLE_I,
    FilterBankSpec,
    HalfFilterSpec,
    table_i_rows,
)


class TestTableStructure:
    def test_six_banks_present(self):
        assert len(TABLE_I) == 6
        assert set(TABLE_I) == set(FILTER_NAMES)

    def test_names_in_print_order(self):
        assert FILTER_NAMES == ("F1", "F2", "F3", "F4", "F5", "F6")

    def test_every_entry_is_a_bank_spec(self):
        for name, bank in TABLE_I.items():
            assert isinstance(bank, FilterBankSpec)
            assert bank.name == name
            assert isinstance(bank.analysis_lowpass, HalfFilterSpec)
            assert isinstance(bank.synthesis_lowpass, HalfFilterSpec)

    def test_lengths_property(self):
        assert TABLE_I["F1"].lengths == (9, 7)
        assert TABLE_I["F2"].lengths == (13, 11)
        assert TABLE_I["F3"].lengths == (6, 10)
        assert TABLE_I["F4"].lengths == (5, 3)
        assert TABLE_I["F5"].lengths == (2, 6)
        assert TABLE_I["F6"].lengths == (9, 3)


class TestPrintedCoefficients:
    def test_f2_analysis_leading_coefficient(self):
        assert TABLE_I["F2"].analysis_lowpass.half_coefficients[0] == pytest.approx(0.767245)

    def test_f5_haar_filter_printed_in_full(self):
        spec = TABLE_I["F5"].analysis_lowpass
        assert spec.length == 2
        assert spec.half_coefficients == (0.707107, 0.707107)

    def test_half_coefficient_counts_match_lengths(self):
        for _, _, spec in table_i_rows():
            if spec.length % 2 == 1:
                assert len(spec.half_coefficients) == (spec.length + 1) // 2
            else:
                # Even filters print length/2 coefficients, except the 2-tap
                # Haar of F5 which is printed in full.
                assert len(spec.half_coefficients) in (spec.length // 2, spec.length)

    def test_printed_abs_sums_are_positive(self):
        for _, _, spec in table_i_rows():
            assert spec.printed_abs_sum > 1.0


class TestTableIterator:
    def test_row_count(self):
        rows = list(table_i_rows())
        assert len(rows) == 12  # six banks x (H, Ht)

    def test_roles_alternate(self):
        roles = [role for _, role, _ in table_i_rows()]
        assert roles == ["H", "Ht"] * 6

    def test_rows_follow_print_order(self):
        names = [name for name, _, _ in table_i_rows()]
        assert names == [n for n in FILTER_NAMES for _ in range(2)]
