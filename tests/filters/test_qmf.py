"""Tests for repro.filters.qmf (filter expansion, high-pass derivation, banks)."""

import numpy as np
import pytest

from repro.filters.coefficients import FILTER_NAMES, TABLE_I
from repro.filters.qmf import (
    BiorthogonalBank,
    SymmetricFilter,
    build_bank,
    build_bank_by_name,
    derive_highpass,
    expand_half_filter,
)


class TestSymmetricFilter:
    def test_indexing_inside_and_outside_support(self):
        filt = SymmetricFilter(np.array([1.0, 2.0, 3.0]), origin=1)
        assert filt[-1] == 1.0
        assert filt[0] == 2.0
        assert filt[1] == 3.0
        assert filt[2] == 0.0
        assert filt[-5] == 0.0

    def test_indices_reflect_origin(self):
        filt = SymmetricFilter(np.array([1.0, 2.0, 3.0]), origin=1)
        assert list(filt.indices()) == [-1, 0, 1]

    def test_items_yields_index_value_pairs(self):
        filt = SymmetricFilter(np.array([5.0, 7.0]), origin=0)
        assert list(filt.items()) == [(0, 5.0), (1, 7.0)]

    def test_abs_sum_and_dc_gain(self):
        filt = SymmetricFilter(np.array([-1.0, 2.0, -3.0]), origin=1)
        assert filt.abs_sum == pytest.approx(6.0)
        assert filt.dc_gain == pytest.approx(-2.0)

    def test_nyquist_gain_alternates_signs(self):
        filt = SymmetricFilter(np.array([1.0, 1.0]), origin=0)
        assert filt.nyquist_gain == pytest.approx(0.0)

    def test_reversed_swaps_origin(self):
        filt = SymmetricFilter(np.array([1.0, 2.0, 3.0]), origin=0)
        rev = filt.reversed()
        assert list(rev.taps) == [3.0, 2.0, 1.0]
        assert rev.origin == 2
        # h[-n] evaluated at n = -2 equals h[2].
        assert rev[-2] == filt[2]

    def test_scaled_multiplies_taps(self):
        filt = SymmetricFilter(np.array([1.0, -2.0]), origin=0)
        assert list(filt.scaled(0.5).taps) == [0.5, -1.0]

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            SymmetricFilter(np.array([]), origin=0)

    def test_two_dimensional_taps_rejected(self):
        with pytest.raises(ValueError):
            SymmetricFilter(np.zeros((2, 2)), origin=0)

    def test_as_map_round_trip(self):
        filt = SymmetricFilter(np.array([1.0, 2.0, 3.0]), origin=1)
        mapping = filt.as_map()
        assert mapping == {-1: 1.0, 0: 2.0, 1: 3.0}


class TestExpandHalfFilter:
    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_expanded_length_matches_spec(self, name):
        for spec in (TABLE_I[name].analysis_lowpass, TABLE_I[name].synthesis_lowpass):
            full = expand_half_filter(spec)
            assert len(full) == spec.length

    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_expanded_filters_are_symmetric(self, name):
        for spec in (TABLE_I[name].analysis_lowpass, TABLE_I[name].synthesis_lowpass):
            full = expand_half_filter(spec)
            assert full.is_symmetric(tol=1e-12)

    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_abs_sum_matches_printed_column(self, name):
        for spec in (TABLE_I[name].analysis_lowpass, TABLE_I[name].synthesis_lowpass):
            full = expand_half_filter(spec)
            # The printed sum|cn| column itself is rounded to 6 decimals, so the
            # recomputed sum can differ in the last digit (F2/H: 1.857517 vs 1.857495).
            assert full.abs_sum == pytest.approx(spec.printed_abs_sum, abs=5e-5)

    def test_odd_filter_centre_is_first_printed_coefficient(self):
        spec = TABLE_I["F1"].analysis_lowpass
        full = expand_half_filter(spec)
        assert full[0] == pytest.approx(spec.half_coefficients[0])
        assert full[1] == full[-1]

    def test_even_filter_half_sample_symmetry(self):
        spec = TABLE_I["F3"].analysis_lowpass  # 6 taps
        full = expand_half_filter(spec)
        # h[n] == h[-1 - n]
        for n in range(3):
            assert full[n] == pytest.approx(full[-1 - n])

    def test_wrong_coefficient_count_rejected(self):
        from repro.filters.coefficients import HalfFilterSpec

        bad = HalfFilterSpec(length=9, half_coefficients=(1.0, 2.0), printed_abs_sum=3.0)
        with pytest.raises(ValueError):
            expand_half_filter(bad)


class TestDeriveHighpass:
    def test_haar_highpass_from_lowpass(self):
        # Half-sample symmetric 2-tap Haar low-pass: taps at n = -1 and n = 0.
        low = SymmetricFilter(np.array([0.707107, 0.707107]), origin=1)
        high = derive_highpass(low)
        values = {n: high[n] for n in high.indices()}
        # g[n] = (-1)^n h[1 - n]: support n in {1, 2}, alternating signs.
        assert values[1] == pytest.approx(-0.707107)
        assert values[2] == pytest.approx(0.707107)
        assert sum(values.values()) == pytest.approx(0.0)

    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_highpass_has_zero_dc_gain(self, name):
        bank = build_bank_by_name(name)
        assert bank.g.dc_gain == pytest.approx(0.0, abs=5e-3)
        assert bank.gt.dc_gain == pytest.approx(0.0, abs=5e-3)

    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_highpass_length_matches_source_lowpass(self, name):
        bank = build_bank_by_name(name)
        assert len(bank.g) == len(bank.ht)
        assert len(bank.gt) == len(bank.h)


class TestBiorthogonalBank:
    def test_build_bank_returns_four_filters(self, bank_f2):
        assert isinstance(bank_f2, BiorthogonalBank)
        assert set(bank_f2.all_filters()) == {"h", "g", "ht", "gt"}

    def test_analysis_lengths_of_f2(self, bank_f2):
        assert bank_f2.analysis_lengths == (13, 11)
        assert bank_f2.max_analysis_length == 13
        assert bank_f2.mac_per_output_pair == 24

    def test_build_bank_by_name_unknown(self):
        with pytest.raises(KeyError):
            build_bank_by_name("F9")

    def test_build_bank_matches_by_name(self):
        direct = build_bank(TABLE_I["F4"])
        by_name = build_bank_by_name("F4")
        assert np.allclose(direct.h.taps, by_name.h.taps)
        assert np.allclose(direct.gt.taps, by_name.gt.taps)
