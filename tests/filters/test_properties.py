"""Tests for repro.filters.properties (biorthogonality, PR, dynamic range)."""

import pytest

from repro.filters.catalog import get_bank
from repro.filters.coefficients import FILTER_NAMES
from repro.filters.properties import (
    biorthogonality_error,
    cross_orthogonality_error,
    dynamic_range_growth,
    perfect_reconstruction_error,
    subband_gains,
)


class TestBiorthogonality:
    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_biorthogonality_error_is_small(self, name):
        # The printed 6-decimal coefficients are biorthogonal to ~1e-3.
        assert biorthogonality_error(get_bank(name)) < 5e-3

    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_cross_terms_vanish(self, name):
        # The alternating-flip construction makes the cross inner products
        # exactly zero up to floating-point rounding.
        assert cross_orthogonality_error(get_bank(name)) < 1e-9


class TestPerfectReconstruction:
    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_pr_error_below_half_lsb(self, name):
        error = perfect_reconstruction_error(get_bank(name), length=128, seed=3)
        assert error < 0.5

    def test_pr_error_scales_with_amplitude(self, bank_f2):
        small = perfect_reconstruction_error(bank_f2, amplitude=1.0, seed=0)
        large = perfect_reconstruction_error(bank_f2, amplitude=4095.0, seed=0)
        assert large > small

    def test_pr_error_deterministic_for_seed(self, bank_f2):
        a = perfect_reconstruction_error(bank_f2, seed=11)
        b = perfect_reconstruction_error(bank_f2, seed=11)
        assert a == b


class TestSubbandGains:
    def test_gains_are_products_of_abs_sums(self, bank_f2):
        gains = subband_gains(bank_f2)
        sh, sg = bank_f2.h.abs_sum, bank_f2.g.abs_sum
        assert gains.hh == pytest.approx(sh * sh)
        assert gains.hg == pytest.approx(sh * sg)
        assert gains.gg == pytest.approx(sg * sg)

    def test_maximum_gain_selects_largest(self, bank_f2):
        gains = subband_gains(bank_f2)
        assert gains.maximum == max(gains.hh, gains.hg, gains.gh, gains.gg)

    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_gains_exceed_unity(self, name):
        # Table I notes sum|cn| > 1 for every filter, so every 2-D gain > 1.
        gains = subband_gains(get_bank(name))
        assert gains.maximum > 1.0


class TestDynamicRangeGrowth:
    def test_growth_is_monotone_in_scale(self, bank_f2):
        growth = dynamic_range_growth(bank_f2, 6)
        values = [growth[s] for s in range(1, 7)]
        assert values == sorted(values)

    def test_growth_first_scale_equals_max_gain(self, bank_f2):
        growth = dynamic_range_growth(bank_f2, 1)
        assert growth[1] == pytest.approx(subband_gains(bank_f2).maximum)

    def test_growth_recurrence(self, bank_f2):
        growth = dynamic_range_growth(bank_f2, 4)
        gains = subband_gains(bank_f2)
        assert growth[3] == pytest.approx(growth[2] * gains.hh)

    @pytest.mark.parametrize("scales", [1, 2, 4, 6])
    def test_growth_has_requested_number_of_scales(self, bank_f2, scales):
        assert set(dynamic_range_growth(bank_f2, scales)) == set(range(1, scales + 1))
