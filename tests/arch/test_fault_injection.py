"""Fault-injection tests: the lossless property must *fail visibly* when the
datapath is perturbed.

These tests corrupt one element of the architecture at a time — a stored
filter coefficient, an alignment shift, a subband coefficient in the external
memory, the accumulator width — and assert that the bit-exactness checks
catch the fault.  This protects the test suite itself: a verification
harness that stays green under injected faults would prove nothing.
"""

import numpy as np
import pytest

from repro.arch.config import ArchitectureConfig
from repro.arch.datapath import Datapath
from repro.filters.catalog import get_bank
from repro.fxdwt.transform import FixedPointDWT
from repro.imaging.phantoms import random_image


@pytest.fixture()
def image_32():
    return random_image(32, seed=21)


class TestCoefficientFaults:
    def test_single_coefficient_bit_flip_breaks_bit_exactness(self, image_32):
        reference = FixedPointDWT(get_bank("F2"), 2)
        faulty = FixedPointDWT(get_bank("F2"), 2)
        # Flip one low-order bit of the centre tap of the analysis low-pass.
        taps = list(faulty._qh.stored_taps)
        taps[len(taps) // 2] ^= 1
        object.__setattr__(faulty._qh, "stored_taps", tuple(taps))

        clean = reference.forward(image_32)
        corrupted = faulty.forward(image_32)
        assert not np.array_equal(clean.approximation, corrupted.approximation)

    def test_coefficient_fault_in_datapath_detected_against_software(self, image_32):
        config = ArchitectureConfig(image_size=32, scales=2)
        datapath = Datapath(config)
        software = FixedPointDWT(get_bank("F2"), 2)
        quantized = datapath.coeff_ram.quantized("h")
        taps = list(quantized.stored_taps)
        taps[0] += 1
        object.__setattr__(quantized, "stored_taps", tuple(taps))

        hardware_low, _ = datapath.analyze_line(image_32[0], 1, "rows")
        target = software.plan.format_for_scale(1)
        software_low = software._analysis_1d(
            image_32[0].astype(np.int64), software._qh, 0, target
        )
        assert not np.array_equal(hardware_low, software_low)


class TestAlignmentFaults:
    def test_wrong_alignment_shift_breaks_losslessness(self, image_32):
        engine = FixedPointDWT(get_bank("F2"), 2)
        pyramid = engine.forward(image_32)
        # Corrupt the stored approximation as if the alignment dropped one
        # extra bit at the deepest scale.
        pyramid.approximation >>= 1
        reconstructed = engine.inverse(pyramid)
        assert not np.array_equal(reconstructed, image_32)

    def test_mismatched_plans_between_forward_and_inverse_detected(self, image_32):
        from repro.fixedpoint.wordlength import plan_word_lengths

        bank = get_bank("F2")
        forward_engine = FixedPointDWT(bank, 2)
        # An inverse engine whose alignment configuration memory was written
        # for a different fractional split mis-aligns every synthesis output
        # (saturation keeps the run alive so the corruption reaches the
        # output, where the bit-exactness check must catch it).
        other_plan = plan_word_lengths(bank, 2, word_length=28)
        inverse_engine = FixedPointDWT(bank, 2, plan=other_plan, overflow_policy="saturate")
        pyramid = forward_engine.forward(image_32)
        reconstructed = inverse_engine.inverse(pyramid)
        assert not np.array_equal(reconstructed, image_32)


class TestMemoryFaults:
    def test_single_subband_bit_upset_is_visible_and_local(self, image_32):
        engine = FixedPointDWT(get_bank("F2"), 2)
        pyramid = engine.forward(image_32)
        # Flip a significant bit of one stored GG coefficient, as a memory
        # upset in the external DRAM would.  (Sub-LSB perturbations are
        # absorbed by the final rounding — that robustness is by design —
        # so the injected fault targets a bit above the pixel weight.)
        fmt = pyramid.format_for_scale(1)
        pyramid.details[0].gg[3, 3] += np.int64(1) << (fmt.fractional_bits + 4)
        reconstructed = engine.inverse(pyramid)
        assert not np.array_equal(reconstructed, image_32)
        # The damage stays local to the synthesis footprint of one coefficient.
        assert np.count_nonzero(reconstructed - image_32) < 500

    def test_truncated_accumulator_breaks_losslessness(self, image_32):
        # A 32-bit accumulator overflows the 45-bit products the 32x32
        # multiplier feeds it, wrapping intermediate sums.
        from repro.arch.mac import MacUnit

        narrow = MacUnit(operand_bits=32, accumulator_bits=40)
        wide = MacUnit(operand_bits=32, accumulator_bits=64)
        window = [2 ** 20] * 13
        coefficients = [2 ** 27] * 13
        assert narrow.convolve(window, coefficients) != wide.convolve(window, coefficients)
