"""Tests for repro.arch.config (architecture parameters)."""

import pytest

from repro.arch.config import ArchitectureConfig, paper_configuration


class TestValidation:
    def test_default_is_paper_configuration(self):
        config = ArchitectureConfig()
        assert config.image_size == 512
        assert config.scales == 6
        assert config.word_length == 32
        assert config.bank_name == "F2"

    def test_image_size_must_be_dyadic_for_scales(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(image_size=96, scales=6)

    def test_small_dyadic_image_allowed(self):
        config = ArchitectureConfig(image_size=64, scales=6)
        assert config.image_size == 64

    def test_unknown_bank_rejected(self):
        with pytest.raises(KeyError):
            ArchitectureConfig(bank_name="F9")

    def test_nonpositive_clock_rejected(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(clock_period_ns=0.0)

    def test_scales_must_be_positive(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(scales=0)


class TestDerivedQuantities:
    def test_filter_length_from_bank(self):
        config = ArchitectureConfig()
        assert config.filter_length == 13
        assert config.half_filter_length == 6

    def test_macrocycle_structure(self):
        config = ArchitectureConfig()
        assert config.macrocycle_cycles == 13
        assert config.extended_macrocycle_cycles == 19
        assert config.refresh_interval_macrocycles == 48

    def test_input_buffer_sizes(self):
        config = ArchitectureConfig()
        assert config.input_buffer_min_size == 25
        assert config.input_buffer_size == 32

    def test_onchip_memory_words_is_half_n_plus_32(self):
        config = ArchitectureConfig()
        assert config.onchip_memory_words == 512 // 2 + 32
        assert ArchitectureConfig(image_size=256, scales=6).onchip_memory_words == 160

    def test_clock_frequency(self):
        config = ArchitectureConfig(clock_period_ns=25.0)
        assert config.clock_frequency_mhz == pytest.approx(40.0)

    def test_haar_bank_macrocycle(self):
        config = ArchitectureConfig(bank_name="F5", image_size=64, scales=3)
        # F5's longest analysis filter is the 6-tap synthesis-derived high-pass.
        assert config.macrocycle_cycles == config.filter_length


class TestCopies:
    def test_with_image_size(self):
        config = paper_configuration().with_image_size(256)
        assert config.image_size == 256
        assert config.scales == 6
        assert config.bank_name == "F2"

    def test_with_scales(self):
        config = paper_configuration().with_scales(3)
        assert config.scales == 3
        assert config.image_size == 512

    def test_paper_configuration_defaults(self):
        config = paper_configuration()
        assert config.clock_frequency_mhz == pytest.approx(33.0)
        assert config.dram_refresh_interval_cycles == 624
