"""Tests for repro.arch.coeff_ram (the filter-coefficient memory)."""

import pytest

from repro.arch.coeff_ram import FILTER_ROLES, CoefficientRam
from repro.filters.catalog import get_bank
from repro.fixedpoint.wordlength import plan_word_lengths


@pytest.fixture(scope="module")
def ram():
    bank = get_bank("F2")
    plan = plan_word_lengths(bank, 6)
    return CoefficientRam(bank, plan.coefficient_format)


class TestStructure:
    def test_four_filters_packed(self, ram):
        assert FILTER_ROLES == ("h", "g", "ht", "gt")
        # F2: 13 + 11 + 11 + 13 = 48 words.
        assert ram.words == 48
        assert ram.rounded_words == 64

    def test_base_addresses_are_contiguous(self, ram):
        assert ram.base_address("h") == 0
        assert ram.base_address("g") == 13
        assert ram.base_address("ht") == 24
        assert ram.base_address("gt") == 35

    def test_filter_lengths(self, ram):
        assert ram.filter_length("h") == 13
        assert ram.filter_length("g") == 11

    def test_unknown_role_rejected(self, ram):
        with pytest.raises(KeyError):
            ram.read("hh", 0)


class TestAccesses:
    def test_read_returns_stored_integer(self, ram):
        bank = get_bank("F2")
        stored = ram.read("h", 6)  # centre tap of the 13-tap low-pass
        expected = ram.quantized("h").fmt.to_stored(bank.h[0])
        assert stored == expected

    def test_read_out_of_range_tap(self, ram):
        with pytest.raises(IndexError):
            ram.read("g", 11)

    def test_window_counts_one_read_per_tap(self):
        bank = get_bank("F2")
        plan = plan_word_lengths(bank, 6)
        ram = CoefficientRam(bank, plan.coefficient_format)
        ram.window("h")
        assert ram.reads == 13
        ram.window("g")
        assert ram.reads == 24

    def test_reset_counters(self):
        bank = get_bank("F5")
        plan = plan_word_lengths(bank, 3)
        ram = CoefficientRam(bank, plan.coefficient_format)
        ram.window("h")
        ram.reset_counters()
        assert ram.reads == 0

    def test_window_matches_quantized_taps(self, ram):
        assert ram.window("gt") == list(ram.quantized("gt").stored_taps)
