"""Tests for repro.arch.dram (external memory, refresh timer, frame buffer)."""

import numpy as np
import pytest

from repro.arch.dram import ExternalDram, FrameBuffer, RefreshTimer


class TestExternalDram:
    def test_read_write_round_trip(self):
        dram = ExternalDram(16)
        dram.write(3, -12345)
        assert dram.read(3) == -12345
        assert dram.reads == 1
        assert dram.writes == 1

    def test_out_of_range_address_rejected(self):
        dram = ExternalDram(8)
        with pytest.raises(IndexError):
            dram.read(8)
        with pytest.raises(IndexError):
            dram.write(-1, 0)

    def test_refresh_counter(self):
        dram = ExternalDram(8)
        dram.refresh()
        dram.refresh()
        assert dram.refreshes == 2

    def test_bulk_load_and_dump_not_counted(self):
        dram = ExternalDram(16)
        dram.load(np.arange(10), base_address=2)
        assert dram.reads == 0 and dram.writes == 0
        assert list(dram.dump(2, 10)) == list(range(10))

    def test_bulk_load_overflow_rejected(self):
        dram = ExternalDram(8)
        with pytest.raises(ValueError):
            dram.load(np.arange(10))

    def test_reset_counters_keeps_contents(self):
        dram = ExternalDram(4)
        dram.write(0, 7)
        dram.reset_counters()
        assert dram.writes == 0
        assert dram.read(0) == 7

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            ExternalDram(0)


class TestRefreshTimer:
    def test_requests_every_interval(self):
        timer = RefreshTimer(interval_cycles=100)
        assert timer.advance(99) == 0
        assert timer.advance(1) == 1
        assert timer.advance(250) == 2
        assert timer.requests == 3

    def test_reset(self):
        timer = RefreshTimer(interval_cycles=10)
        timer.advance(25)
        timer.reset()
        assert timer.requests == 0
        assert timer.advance(9) == 0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            RefreshTimer(interval_cycles=0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            RefreshTimer(10).advance(-1)


class TestFrameBuffer:
    def test_raster_addressing(self):
        dram = ExternalDram(64)
        frame = FrameBuffer(dram, 8, 8)
        assert frame.address(0, 0) == 0
        assert frame.address(1, 0) == 8
        assert frame.address(7, 7) == 63

    def test_pixel_round_trip(self):
        dram = ExternalDram(64)
        frame = FrameBuffer(dram, 8, 8)
        frame.write_pixel(2, 3, 999)
        assert frame.read_pixel(2, 3) == 999

    def test_row_and_column_access(self):
        dram = ExternalDram(16)
        frame = FrameBuffer(dram, 4, 4)
        frame.write_row(1, np.array([1, 2, 3, 4]))
        assert list(frame.read_row(1)) == [1, 2, 3, 4]
        frame.write_column(2, np.array([5, 6, 7, 8]))
        assert list(frame.read_column(2)) == [5, 6, 7, 8]

    def test_load_and_dump_image(self):
        dram = ExternalDram(16)
        frame = FrameBuffer(dram, 4, 4)
        image = np.arange(16).reshape(4, 4)
        frame.load_image(image)
        assert np.array_equal(frame.dump_image(), image)

    def test_frame_must_fit_dram(self):
        dram = ExternalDram(15)
        with pytest.raises(ValueError):
            FrameBuffer(dram, 4, 4)

    def test_out_of_frame_pixel_rejected(self):
        dram = ExternalDram(16)
        frame = FrameBuffer(dram, 4, 4)
        with pytest.raises(IndexError):
            frame.read_pixel(4, 0)

    def test_load_image_shape_checked(self):
        dram = ExternalDram(16)
        frame = FrameBuffer(dram, 4, 4)
        with pytest.raises(ValueError):
            frame.load_image(np.zeros((2, 2)))
