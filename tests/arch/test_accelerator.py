"""Tests for repro.arch.accelerator (full runs + analytic performance model)."""

import numpy as np
import pytest

from repro.arch.accelerator import (
    DwtAccelerator,
    estimate_performance,
    forward_macrocycles,
    inverse_macrocycles,
)
from repro.arch.config import ArchitectureConfig, paper_configuration
from repro.filters.catalog import get_bank
from repro.fxdwt.transform import FixedPointDWT
from repro.imaging.phantoms import random_image, shepp_logan


class TestMacrocycleCounts:
    def test_single_scale_count(self):
        # One scale of an NxN image: N^2 row outputs + N^2 column outputs.
        assert forward_macrocycles(64, 1) == 2 * 64 * 64

    def test_multi_scale_geometric_sum(self):
        assert forward_macrocycles(64, 2) == 2 * 64 * 64 + 2 * 32 * 32

    def test_inverse_equals_forward(self):
        assert inverse_macrocycles(512, 6) == forward_macrocycles(512, 6)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            forward_macrocycles(1, 1)
        with pytest.raises(ValueError):
            forward_macrocycles(64, 0)


class TestPerformanceEstimate:
    def test_paper_headline_throughput(self):
        estimate = estimate_performance(paper_configuration())
        assert estimate.images_per_second == pytest.approx(3.5, rel=0.05)

    def test_paper_headline_utilisation(self):
        estimate = estimate_performance(paper_configuration())
        assert 100.0 * estimate.utilisation == pytest.approx(99.04, abs=0.02)

    def test_faster_clock_means_more_images(self):
        base = estimate_performance(paper_configuration())
        fast_config = ArchitectureConfig(clock_period_ns=25.0)
        fast = estimate_performance(fast_config)
        assert fast.images_per_second > base.images_per_second

    def test_smaller_image_is_proportionally_faster(self):
        small = estimate_performance(paper_configuration(image_size=256))
        big = estimate_performance(paper_configuration(image_size=512))
        assert small.transform_seconds < big.transform_seconds / 3.5

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            estimate_performance(direction="sideways")


class TestSimulatedRuns:
    @pytest.fixture(scope="class")
    def accelerator(self):
        return DwtAccelerator(ArchitectureConfig(image_size=32, scales=3))

    @pytest.fixture(scope="class")
    def image(self):
        return random_image(32, seed=5)

    @pytest.fixture(scope="class")
    def run(self, accelerator, image):
        pyramid, forward_report = accelerator.forward(image)
        reconstructed, inverse_report = accelerator.inverse(pyramid)
        return pyramid, forward_report, reconstructed, inverse_report

    def test_forward_matches_software_transform(self, run, image):
        pyramid, _, _, _ = run
        software = FixedPointDWT(get_bank("F2"), 3).forward(image)
        assert np.array_equal(pyramid.approximation, software.approximation)
        for ours, reference in zip(pyramid.details, software.details):
            assert np.array_equal(ours.hg, reference.hg)
            assert np.array_equal(ours.gh, reference.gh)
            assert np.array_equal(ours.gg, reference.gg)

    def test_round_trip_is_lossless(self, run, image):
        _, _, reconstructed, _ = run
        assert np.array_equal(reconstructed, image)

    def test_macrocycle_count_matches_closed_form(self, run):
        _, forward_report, _, inverse_report = run
        assert forward_report.macrocycles == forward_macrocycles(32, 3)
        assert inverse_report.macrocycles == inverse_macrocycles(32, 3)

    def test_simulated_utilisation_matches_analytic(self, run):
        _, forward_report, _, _ = run
        estimate = estimate_performance(ArchitectureConfig(image_size=32, scales=3))
        assert forward_report.utilisation == pytest.approx(estimate.utilisation, abs=1e-4)

    def test_dram_traffic_reads_equals_writes(self, run):
        _, forward_report, _, _ = run
        assert forward_report.dram_reads == forward_report.dram_writes

    def test_report_summary_mentions_direction(self, run):
        _, forward_report, _, inverse_report = run
        assert "FORWARD" in forward_report.summary()
        assert "INVERSE" in inverse_report.summary()

    def test_multiplies_equal_mac_workload(self, run):
        _, forward_report, _, _ = run
        # One MAC per tap per output sample: 24 taps per low/high output pair.
        bank = get_bank("F2")
        expected = forward_macrocycles(32, 3) // 2 * bank.mac_per_output_pair
        assert forward_report.multiplies == expected


class TestInputValidation:
    def test_wrong_image_size_rejected(self):
        accelerator = DwtAccelerator(ArchitectureConfig(image_size=32, scales=3))
        with pytest.raises(ValueError):
            accelerator.forward(np.zeros((64, 64), dtype=np.int64))

    def test_non_square_rejected(self):
        accelerator = DwtAccelerator(ArchitectureConfig(image_size=32, scales=3))
        with pytest.raises(ValueError):
            accelerator.forward(np.zeros((32, 64), dtype=np.int64))

    def test_inverse_scale_mismatch_rejected(self):
        accelerator = DwtAccelerator(ArchitectureConfig(image_size=32, scales=3))
        pyramid, _ = accelerator.forward(shepp_logan(32))
        other = DwtAccelerator(ArchitectureConfig(image_size=32, scales=2))
        with pytest.raises(ValueError):
            other.inverse(pyramid)

    def test_roundtrip_convenience(self):
        accelerator = DwtAccelerator(ArchitectureConfig(image_size=16, scales=2, bank_name="F5"))
        image = shepp_logan(16)
        reconstructed, pyramid, fwd, inv = accelerator.roundtrip(image)
        assert np.array_equal(reconstructed, image)
        assert pyramid.scales == 2
        assert fwd.macrocycles > 0 and inv.macrocycles > 0
