"""Tests for repro.arch.alignment (the §4.3 alignment/rounding unit)."""

import pytest

from repro.filters.catalog import get_bank
from repro.fixedpoint.wordlength import plan_word_lengths
from repro.arch.alignment import AlignmentUnit


@pytest.fixture(scope="module")
def plan():
    return plan_word_lengths(get_bank("F2"), 3)


@pytest.fixture(scope="module")
def unit(plan):
    return AlignmentUnit(plan)


class TestConfiguration:
    def test_entries_exist_for_every_scale_direction_pass(self, unit, plan):
        for scale in range(1, plan.scales + 1):
            for direction in ("forward", "inverse"):
                for pass_name in ("rows", "columns"):
                    assert unit.entry(direction, scale, pass_name).shift >= 0

    def test_unknown_entry_rejected(self, unit):
        with pytest.raises(KeyError):
            unit.entry("forward", 99, "rows")
        with pytest.raises(KeyError):
            unit.entry("sideways", 1, "rows")

    def test_configuration_rows_sorted_and_complete(self, unit, plan):
        rows = unit.configuration_rows()
        assert len(rows) == 4 * plan.scales

    def test_unknown_rounding_rejected(self, plan):
        with pytest.raises(ValueError):
            AlignmentUnit(plan, rounding="ceil")


class TestShiftValues:
    def test_forward_row_shift_scale_one(self, unit, plan):
        # Rows of scale 1 consume integer pixels (0 fractional bits); the
        # product has the coefficient fraction; the target is the scale-1 format.
        expected = plan.coefficient_format.fractional_bits - plan.format_for_scale(1).fractional_bits
        assert unit.shift_for("forward", 1, "rows") == expected

    def test_forward_column_shift_larger_than_row_shift(self, unit):
        # Columns consume data already in the scale's format (more fractional
        # bits than the raw pixels), so more bits must be dropped.
        assert unit.shift_for("forward", 1, "columns") > unit.shift_for("forward", 1, "rows")

    def test_inverse_rows_land_in_coarser_format(self, unit, plan):
        entry = unit.entry("inverse", 1, "rows")
        assert entry.target_format == plan.format_for_scale(0)

    def test_shift_grows_with_scale_for_forward_rows(self, unit, plan):
        shifts = [unit.shift_for("forward", s, "columns") for s in range(1, plan.scales + 1)]
        # Deeper scales have fewer fractional bits, so the drop grows.
        assert shifts == sorted(shifts)


class TestAlignOperation:
    def test_align_applies_round_half_up(self, unit):
        shift = unit.shift_for("forward", 1, "rows")
        value = (3 << shift) + (1 << (shift - 1))  # exactly x.5 in dropped bits
        assert unit.align(value, "forward", 1, "rows") == 4

    def test_align_truncate_mode(self, plan):
        unit = AlignmentUnit(plan, rounding="truncate")
        shift = unit.shift_for("forward", 1, "rows")
        value = (3 << shift) + (1 << (shift - 1))
        assert unit.align(value, "forward", 1, "rows") == 3

    def test_align_negative_value(self, unit):
        shift = unit.shift_for("forward", 1, "rows")
        value = -(5 << shift)
        assert unit.align(value, "forward", 1, "rows") == -5
