"""Tests for repro.arch.host_interface (the PCI-board follow-on model)."""

import pytest

from repro.arch.config import paper_configuration
from repro.arch.host_interface import (
    HostTransferModel,
    PciBoardModel,
    PciBusParameters,
)


class TestBusParameters:
    def test_defaults_are_classic_pci(self):
        bus = PciBusParameters()
        assert "PCI" in bus.name
        assert bus.write_bandwidth_mb_s <= 132.0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            PciBusParameters(write_bandwidth_mb_s=0.0)
        with pytest.raises(ValueError):
            PciBusParameters(read_bandwidth_mb_s=-1.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            PciBusParameters(transaction_overhead_us=-1.0)


class TestTransferModel:
    def test_upload_is_two_bytes_per_12bit_pixel(self):
        transfers = HostTransferModel(image_size=512, input_bits=13, word_length=32)
        assert transfers.upload_bytes == 512 * 512 * 2

    def test_download_is_four_bytes_per_coefficient(self):
        transfers = HostTransferModel(image_size=512, input_bits=13, word_length=32)
        assert transfers.download_bytes == 512 * 512 * 4

    def test_download_exceeds_upload_for_32bit_words(self):
        transfers = HostTransferModel(image_size=256, input_bits=13, word_length=32)
        assert transfers.download_bytes > transfers.upload_bytes


class TestBoardThroughput:
    def test_paper_operating_point_is_compute_bound_when_overlapped(self):
        report = PciBoardModel(paper_configuration()).report()
        # Upload (0.5 MB) and download (1 MB) take a few ms each on sustained
        # PCI; the 278 ms transform dominates, so the board keeps ~3.5 images/s.
        assert not report.transfer_bound
        assert report.images_per_second == pytest.approx(
            report.transform.images_per_second, rel=0.01
        )

    def test_non_overlapped_transfers_cost_a_little(self):
        overlapped = PciBoardModel(paper_configuration(), overlap_transfers=True).report()
        sequential = PciBoardModel(paper_configuration(), overlap_transfers=False).report()
        assert sequential.images_per_second < overlapped.images_per_second
        # ... but the transform still dominates end to end.
        assert sequential.images_per_second > 0.9 * overlapped.images_per_second

    def test_slow_bus_becomes_the_bottleneck(self):
        slow_bus = PciBusParameters(
            name="severely contended bus", write_bandwidth_mb_s=2.0, read_bandwidth_mb_s=2.0
        )
        report = PciBoardModel(paper_configuration(), bus=slow_bus).report()
        assert report.transfer_bound
        assert report.images_per_second < report.transform.images_per_second

    def test_effective_speedup_still_two_orders_of_magnitude(self):
        speedup = PciBoardModel(paper_configuration()).effective_speedup_vs_pentium()
        assert 100.0 < speedup < 160.0

    def test_total_seconds_per_image_is_reciprocal(self):
        report = PciBoardModel(paper_configuration()).report()
        assert report.total_seconds_per_image == pytest.approx(1.0 / report.images_per_second)

    def test_string_rendering_mentions_regime(self):
        report = PciBoardModel(paper_configuration()).report()
        assert "compute-bound" in str(report) or "transfer-bound" in str(report)
