"""Tests for repro.arch.output_fifo (§4.4, Table VI)."""

import pytest

from repro.arch.output_fifo import (
    VariableDepthFifo,
    choose_fifo_depth,
    dependence_distances,
    fifo_bounds_table,
    fifo_depth_bounds,
    max_fifo_depth,
    min_fifo_depth,
    next_pass_read_cycle,
    read_cycle,
    write_available_cycle,
)

PAPER_TABLE_VI = {
    1: (250, 504),
    2: (122, 248),
    3: (58, 120),
    4: (26, 56),
    5: (10, 24),
    6: (2, 8),
}


class TestCycleSchedules:
    def test_read_cycle_is_position_plus_prologue(self):
        assert read_cycle(0, 6) == 7
        assert read_cycle(10, 6) == 17

    def test_write_cycle_low_pass_half(self):
        # Low-pass output k is available once its window has been read.
        assert write_available_cycle(0, 64, 6) == 13
        assert write_available_cycle(1, 64, 6) == 15

    def test_write_cycle_high_pass_half_one_later(self):
        assert write_available_cycle(32, 64, 6) == write_available_cycle(0, 64, 6) + 1

    def test_next_pass_read_follows_current_pass(self):
        assert next_pass_read_cycle(0, 64, 6) == 64 + 6

    def test_position_bounds_checked(self):
        with pytest.raises(ValueError):
            write_available_cycle(64, 64, 6)
        with pytest.raises(ValueError):
            next_pass_read_cycle(-1, 64, 6)
        with pytest.raises(ValueError):
            read_cycle(-1, 6)


class TestDepthBounds:
    def test_paper_table_vi(self):
        table = fifo_bounds_table(512, 6, 6)
        ours = {scale: (b.min_depth, b.max_depth) for scale, b in table.items()}
        assert ours == PAPER_TABLE_VI

    def test_min_depth_closed_form(self):
        # MIN(D) = M/2 - l for every Table VI configuration.
        for line in (512, 256, 128, 64, 32, 16):
            assert min_fifo_depth(line, 6) == line // 2 - 6

    def test_max_depth_closed_form(self):
        # MAX(D) = M - l - 2 for every Table VI configuration.
        for line in (512, 256, 128, 64, 32, 16):
            assert max_fifo_depth(line, 6) == line - 6 - 2

    def test_bounds_feasible_at_every_scale(self):
        for bounds in fifo_bounds_table(512, 6, 6).values():
            assert bounds.feasible

    def test_negative_distances_exist_without_delay(self):
        # The write-after-read hazard is real: some positions would be
        # overwritten before being read if no delay were inserted.
        assert min(dependence_distances(64, 6)) < 0

    def test_choose_depth_picks_minimum(self):
        assert choose_fifo_depth(512, 6) == 250

    def test_fifo_depth_bounds_carries_scale_label(self):
        bounds = fifo_depth_bounds(128, 6, scale=3)
        assert bounds.scale == 3
        assert bounds.line_length == 128


class TestVariableDepthFifo:
    def test_delays_by_exactly_depth_items(self):
        fifo = VariableDepthFifo(depth=3)
        outputs = [fifo.push(i) for i in range(6)]
        assert outputs == [None, None, None, 0, 1, 2]

    def test_zero_depth_passes_through(self):
        fifo = VariableDepthFifo(depth=0)
        assert fifo.push("x") == "x"

    def test_drain_returns_remaining_in_order(self):
        fifo = VariableDepthFifo(depth=4)
        for i in range(3):
            fifo.push(i)
        assert fifo.drain() == [0, 1, 2]
        assert len(fifo) == 0

    def test_resize_requires_empty(self):
        fifo = VariableDepthFifo(depth=2)
        fifo.push(1)
        with pytest.raises(RuntimeError):
            fifo.resize(4)
        fifo.drain()
        fifo.resize(4)
        assert fifo.depth == 4

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            VariableDepthFifo(depth=10, capacity=4)
        fifo = VariableDepthFifo(depth=2, capacity=4)
        with pytest.raises(ValueError):
            fifo.resize(8)

    def test_counters(self):
        fifo = VariableDepthFifo(depth=1)
        fifo.push("a")
        fifo.push("b")
        fifo.drain()
        assert fifo.pushes == 2
        assert fifo.pops == 2

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            VariableDepthFifo(depth=-1)
