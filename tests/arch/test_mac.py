"""Tests for repro.arch.mac (the MAC unit and its statistics)."""

import pytest

from repro.arch.mac import MacUnit


class TestAccumulatorControl:
    def test_load_then_accumulate(self):
        mac = MacUnit()
        mac.load(3, 4)
        mac.accumulate(5, 6)
        assert mac.value() == 3 * 4 + 5 * 6

    def test_load_restarts_accumulation(self):
        mac = MacUnit()
        mac.load(10, 10)
        mac.load(2, 3)
        assert mac.value() == 6

    def test_hold_preserves_value(self):
        mac = MacUnit()
        mac.load(7, 8)
        mac.hold()
        mac.hold()
        assert mac.value() == 56

    def test_negative_operands(self):
        mac = MacUnit()
        mac.load(-3, 5)
        mac.accumulate(-2, -4)
        assert mac.value() == -15 + 8

    def test_operands_wrap_to_word_length(self):
        mac = MacUnit(operand_bits=8)
        mac.load(200, 1)  # 200 -> -56 in 8-bit two's complement
        assert mac.value() == -56

    def test_accumulator_wraps_at_64_bits(self):
        mac = MacUnit()
        huge = (1 << 31) - 1
        mac.load(huge, huge)
        for _ in range(3):
            mac.accumulate(huge, huge)
        assert -(1 << 63) <= mac.value() < (1 << 63)

    def test_accumulator_narrower_than_operands_rejected(self):
        with pytest.raises(ValueError):
            MacUnit(operand_bits=32, accumulator_bits=16)


class TestConvolve:
    def test_dot_product(self):
        mac = MacUnit()
        value = mac.convolve([1, 2, 3], [4, 5, 6])
        assert value == 1 * 4 + 2 * 5 + 3 * 6

    def test_single_tap(self):
        assert MacUnit().convolve([7], [9]) == 63

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MacUnit().convolve([1, 2], [1])

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            MacUnit().convolve([], [])

    def test_convolve_counts_one_load_rest_accumulate(self):
        mac = MacUnit()
        mac.convolve(list(range(13)), list(range(13)))
        assert mac.stats.load_cycles == 1
        assert mac.stats.accumulate_cycles == 12
        assert mac.stats.multiplies == 13


class TestStats:
    def test_utilisation_counts_holds(self):
        mac = MacUnit()
        mac.convolve([1] * 13, [1] * 13)
        for _ in range(6):
            mac.hold()
        assert mac.stats.busy_cycles == 13
        assert mac.stats.total_cycles == 19
        assert mac.stats.utilisation() == pytest.approx(13 / 19)

    def test_utilisation_zero_when_idle(self):
        assert MacUnit().stats.utilisation() == 0.0

    def test_reset_clears_everything(self):
        mac = MacUnit()
        mac.convolve([1, 2], [3, 4])
        mac.reset()
        assert mac.value() == 0
        assert mac.stats.multiplies == 0
