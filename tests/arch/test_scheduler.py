"""Tests for repro.arch.scheduler (Fig. 2 schedule and utilisation)."""

import pytest

from repro.arch.config import ArchitectureConfig, paper_configuration
from repro.arch.scheduler import (
    MacrocycleCounter,
    operation_schedule,
    refresh_schedule_cycles,
    simulate_utilisation,
    utilisation_formula,
)


class TestOperationSchedule:
    def test_normal_macrocycle_has_filter_length_cycles(self):
        assert len(operation_schedule(13)) == 13
        assert len(operation_schedule(9)) == 9

    def test_extended_macrocycle_adds_stall_cycles(self):
        assert len(operation_schedule(13, refresh=True)) == 19
        assert len(operation_schedule(13, refresh=True, refresh_stall_cycles=4)) == 17

    def test_exactly_one_dram_read_and_write(self):
        slots = operation_schedule(13)
        assert sum(1 for s in slots if s.dram_op == "rd") == 1
        assert sum(1 for s in slots if s.dram_op == "wr") == 1

    def test_one_coefficient_read_per_cycle(self):
        slots = operation_schedule(13)
        assert all(s.input_buffer_op.startswith("rd_cf") for s in slots)
        read_ids = {s.input_buffer_op for s in slots}
        assert len(read_ids) == 13  # all thirteen coefficients are read

    def test_accumulator_load_then_accumulate(self):
        slots = operation_schedule(13)
        assert slots[0].acc_ctl == "load"
        assert all(s.acc_ctl == "acc" for s in slots[1:])

    def test_refresh_extension_holds_accumulator(self):
        slots = operation_schedule(13, refresh=True)
        assert all(s.acc_ctl == "hold" for s in slots[13:])

    def test_fifo_written_and_read_once(self):
        slots = operation_schedule(13)
        assert sum(1 for s in slots if s.output_fifo_op == "wr") == 1
        assert sum(1 for s in slots if s.output_fifo_op == "rd") == 1

    def test_too_short_filter_rejected(self):
        with pytest.raises(ValueError):
            operation_schedule(1)


class TestRefreshSchedule:
    def test_paper_configuration_cadence(self):
        summary = refresh_schedule_cycles(paper_configuration())
        assert summary["macrocycle_cycles"] == 13
        assert summary["extended_macrocycle_cycles"] == 19
        assert summary["macrocycles_between_refreshes"] == 48


class TestMacrocycleCounter:
    def test_counts_refresh_every_interval(self):
        counter = MacrocycleCounter(
            filter_length=13, refresh_stall_cycles=6, refresh_interval_macrocycles=48
        )
        extended = counter.step(48)
        assert extended == 1
        assert counter.refreshes == 1
        assert counter.busy_cycles == 48 * 13
        assert counter.stall_cycles == 6

    def test_utilisation_matches_formula(self):
        counter = MacrocycleCounter(13, 6, 48)
        counter.step(480)
        assert counter.utilisation() == pytest.approx(utilisation_formula(13, 48, 6))

    def test_zero_macrocycles_means_zero_utilisation(self):
        counter = MacrocycleCounter(13, 6, 48)
        assert counter.utilisation() == 0.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MacrocycleCounter(0, 6, 48)
        with pytest.raises(ValueError):
            MacrocycleCounter(13, -1, 48)
        with pytest.raises(ValueError):
            MacrocycleCounter(13, 6, 0)


class TestUtilisation:
    def test_paper_value(self):
        assert 100.0 * utilisation_formula(13, 48, 6) == pytest.approx(99.04, abs=0.02)

    def test_no_refresh_means_full_utilisation(self):
        assert utilisation_formula(13, 48, 0) == 1.0

    def test_simulate_matches_closed_form_for_large_counts(self):
        config = paper_configuration()
        small = simulate_utilisation(48 * 100, config)
        assert small.utilisation == pytest.approx(utilisation_formula(13, 48, 6))

    def test_simulate_closed_form_branch(self):
        # Counts above one million take the closed-form branch.
        config = paper_configuration()
        report = simulate_utilisation(2_000_000, config)
        assert report.macrocycles == 2_000_000
        assert report.refreshes == 2_000_000 // 48
        assert report.utilisation == pytest.approx(utilisation_formula(13, 48, 6), rel=1e-6)

    def test_scalar_overrides(self):
        report = simulate_utilisation(
            100, filter_length=9, refresh_interval_macrocycles=10, refresh_stall_cycles=3
        )
        assert report.busy_cycles == 900
        assert report.refreshes == 10

    def test_negative_macrocycles_rejected(self):
        with pytest.raises(ValueError):
            simulate_utilisation(-1)


class TestStepClosedForm:
    """The closed-form large-count path must agree with the exact loop."""

    def _pair(self, interval):
        loop = MacrocycleCounter(
            filter_length=13, refresh_stall_cycles=6, refresh_interval_macrocycles=interval
        )
        closed = MacrocycleCounter(
            filter_length=13, refresh_stall_cycles=6, refresh_interval_macrocycles=interval
        )
        return loop, closed

    @pytest.mark.parametrize("interval", [1, 2, 7, 48])
    def test_closed_form_matches_loop(self, interval):
        loop, closed = self._pair(interval)
        count = MacrocycleCounter.LOOP_THRESHOLD + 123
        # Drive both counters to the same mid-interval phase first.
        assert loop.step(interval // 2 + 1) == closed.step(interval // 2 + 1)
        extended_loop = sum(loop.step(1) for _ in range(count))
        extended_closed = closed.step(count)
        assert extended_loop == extended_closed
        assert loop.macrocycles == closed.macrocycles
        assert loop.refreshes == closed.refreshes
        assert loop.busy_cycles == closed.busy_cycles
        assert loop.stall_cycles == closed.stall_cycles
        assert loop.utilisation() == pytest.approx(closed.utilisation())

    def test_closed_form_preserves_phase(self):
        loop, closed = self._pair(48)
        closed.step(MacrocycleCounter.LOOP_THRESHOLD + 10)
        for _ in range(MacrocycleCounter.LOOP_THRESHOLD + 10):
            loop.step(1)
        # Subsequent single steps must refresh on the same macro-cycles.
        follow_loop = [loop.step(1) for _ in range(100)]
        follow_closed = [closed.step(1) for _ in range(100)]
        assert follow_loop == follow_closed

    def test_simulate_utilisation_large_count_exact(self):
        report = simulate_utilisation(
            5_000_000, filter_length=13, refresh_interval_macrocycles=48,
            refresh_stall_cycles=6,
        )
        assert report.refreshes == 5_000_000 // 48
        assert report.busy_cycles == 5_000_000 * 13
        assert report.utilisation == pytest.approx(utilisation_formula(13, 48, 6), rel=1e-6)
