"""Tests for repro.arch.multiplier (behavioural and structural models)."""

import pytest

from repro.arch.multiplier import (
    PipelinedMultiplier,
    array_multiplier_estimate,
    wallace_multiplier_estimate,
    wallace_tree_depth,
)


class TestStructuralEstimates:
    def test_array_matches_table_v_access_time(self):
        estimate = array_multiplier_estimate(32)
        assert estimate.critical_path_ns == pytest.approx(50.88, rel=0.01)

    def test_array_matches_table_v_area(self):
        estimate = array_multiplier_estimate(32)
        assert estimate.area_mm2 == pytest.approx(2.92, rel=0.01)

    def test_wallace_matches_table_v_access_time(self):
        estimate = wallace_multiplier_estimate(32, 2)
        assert estimate.critical_path_ns == pytest.approx(23.45, rel=0.01)

    def test_wallace_matches_table_v_area(self):
        estimate = wallace_multiplier_estimate(32, 2)
        assert estimate.area_mm2 == pytest.approx(8.03, rel=0.01)

    def test_only_pipelined_design_meets_25ns_clock(self):
        assert array_multiplier_estimate(32).critical_path_ns > 25.0
        assert wallace_multiplier_estimate(32, 2).critical_path_ns < 25.0

    def test_wallace_is_larger_but_faster_than_array(self):
        array = array_multiplier_estimate(32)
        wallace = wallace_multiplier_estimate(32, 2)
        assert wallace.area_mm2 > array.area_mm2
        assert wallace.critical_path_ns < array.critical_path_ns

    def test_single_stage_wallace_is_slower_than_two_stage(self):
        one = wallace_multiplier_estimate(32, 1)
        two = wallace_multiplier_estimate(32, 2)
        assert one.critical_path_ns > two.critical_path_ns

    def test_smaller_operands_are_faster(self):
        assert (
            array_multiplier_estimate(16).critical_path_ns
            < array_multiplier_estimate(32).critical_path_ns
        )

    def test_max_clock_property(self):
        estimate = wallace_multiplier_estimate(32, 2)
        assert estimate.max_clock_mhz == pytest.approx(1000.0 / estimate.critical_path_ns)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            array_multiplier_estimate(1)
        with pytest.raises(ValueError):
            wallace_multiplier_estimate(1)


class TestWallaceTreeDepth:
    @pytest.mark.parametrize(
        "operands,expected",
        [(1, 0), (2, 0), (3, 1), (4, 2), (6, 3), (9, 4), (13, 5), (32, 8)],
    )
    def test_classical_recurrence(self, operands, expected):
        assert wallace_tree_depth(operands) == expected

    def test_invalid_operands_rejected(self):
        with pytest.raises(ValueError):
            wallace_tree_depth(0)


class TestPipelinedMultiplier:
    def test_product_emerges_after_latency(self):
        mult = PipelinedMultiplier(operand_bits=32, stages=2)
        mult.issue(3, 7)
        assert mult.tick() is None  # still in stage 1
        mult.issue_bubble()
        assert mult.tick() is None  # product reaches the output register
        mult.issue_bubble()
        assert mult.tick() == 21

    def test_back_to_back_issues(self):
        mult = PipelinedMultiplier(stages=2)
        results = []
        pairs = [(2, 3), (4, 5), (-6, 7)]
        for a, b in pairs:
            mult.issue(a, b)
            results.append(mult.tick())
        for _ in range(2):
            mult.issue_bubble()
            results.append(mult.tick())
        assert [r for r in results if r is not None] == [6, 20, -42]

    def test_operands_wrap_to_word_length(self):
        # 200 wraps to -56 in 8-bit two's complement before multiplying.
        mult = PipelinedMultiplier(operand_bits=8, stages=1)
        mult.issue(200, 1)
        assert mult.tick() is None  # entering the single pipeline stage
        mult.issue_bubble()
        assert mult.tick() == -56

    def test_wrapped_product_value_two_stage(self):
        mult = PipelinedMultiplier(operand_bits=8, stages=2)
        mult.issue(200, 2)
        results = [mult.tick()]
        for _ in range(2):
            mult.issue_bubble()
            results.append(mult.tick())
        assert [r for r in results if r is not None] == [-112]

    def test_counters(self):
        mult = PipelinedMultiplier(stages=2)
        mult.issue(1, 1)
        mult.tick()
        mult.issue(2, 2)
        mult.tick()
        mult.issue_bubble()
        mult.tick()
        mult.issue_bubble()
        mult.tick()
        assert mult.issued == 2
        assert mult.completed == 2

    def test_reset_flushes_pipeline(self):
        mult = PipelinedMultiplier(stages=3)
        mult.issue(5, 5)
        mult.tick()
        mult.reset()
        assert mult.issued == 0
        assert all(item is None for item in mult.drain())

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            PipelinedMultiplier(operand_bits=1)
        with pytest.raises(ValueError):
            PipelinedMultiplier(stages=0)
