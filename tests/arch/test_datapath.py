"""Tests for repro.arch.datapath (line-level MAC/alignment/buffer model)."""

import numpy as np
import pytest

from repro.arch.config import ArchitectureConfig
from repro.arch.datapath import Datapath
from repro.filters.catalog import get_bank
from repro.fxdwt.transform import FixedPointDWT


@pytest.fixture(scope="module")
def config():
    return ArchitectureConfig(image_size=64, scales=3)


@pytest.fixture()
def datapath(config):
    return Datapath(config)


@pytest.fixture(scope="module")
def software(config):
    return FixedPointDWT(get_bank(config.bank_name), config.scales)


class TestAnalyzeLine:
    def test_output_halves_have_half_length(self, datapath, rng):
        line = rng.integers(0, 4096, size=64)
        low, high = datapath.analyze_line(line, scale=1, pass_name="rows")
        assert low.shape == (32,)
        assert high.shape == (32,)

    def test_matches_software_row_pass_bit_exactly(self, datapath, software, rng):
        line = rng.integers(0, 4096, size=64).astype(np.int64)
        low, high = datapath.analyze_line(line, scale=1, pass_name="rows")
        target = software.plan.format_for_scale(1)
        expected_low = software._analysis_1d(line, software._qh, 0, target)
        expected_high = software._analysis_1d(line, software._qg, 0, target)
        assert np.array_equal(low, expected_low)
        assert np.array_equal(high, expected_high)

    def test_one_macrocycle_per_output_sample(self, datapath, rng):
        line = rng.integers(0, 4096, size=64)
        datapath.analyze_line(line, 1, "rows")
        assert datapath.counter.macrocycles == 64

    def test_dram_traffic_one_read_one_write_per_sample(self, datapath, rng):
        line = rng.integers(0, 4096, size=64)
        datapath.analyze_line(line, 1, "rows")
        assert datapath.stats.dram_reads == 64
        assert datapath.stats.dram_writes == 64

    def test_coefficient_reads_counted(self, datapath, rng):
        line = rng.integers(0, 4096, size=32)
        datapath.analyze_line(line, 1, "rows")
        # 16 low-pass outputs x 13 taps + 16 high-pass outputs x 11 taps.
        assert datapath.stats.coefficient_reads == 16 * 13 + 16 * 11

    def test_odd_line_rejected(self, datapath):
        with pytest.raises(ValueError):
            datapath.analyze_line(np.zeros(63, dtype=np.int64), 1, "rows")

    def test_2d_line_rejected(self, datapath):
        with pytest.raises(ValueError):
            datapath.analyze_line(np.zeros((2, 32), dtype=np.int64), 1, "rows")


class TestSynthesizeLine:
    def test_reconstruction_length_doubles(self, datapath, rng):
        low = rng.integers(-1000, 1000, size=16)
        high = rng.integers(-1000, 1000, size=16)
        out = datapath.synthesize_line(low, high, scale=1, pass_name="columns")
        assert out.shape == (32,)

    def test_matches_software_synthesis_bit_exactly(self, config, rng):
        software = FixedPointDWT(get_bank(config.bank_name), config.scales)
        datapath = Datapath(config)
        # Use genuine scale-1 column data produced by the software transform so
        # that the fixed-point formats are the real ones.
        image = rng.integers(0, 4096, size=(64, 64)).astype(np.int64)
        pyramid = software.forward(image)
        lo = pyramid.approximation  # scale-3 approximation, 8x8
        hi = pyramid.details[-1].hg
        column = 3
        expected = software._synthesis_1d(
            lo[:, column], hi[:, column],
            software.plan.format_for_scale(3).fractional_bits,
            software.plan.format_for_scale(3),
        )
        ours = datapath.synthesize_line(lo[:, column], hi[:, column], scale=3, pass_name="columns")
        assert np.array_equal(ours, expected)

    def test_mismatched_halves_rejected(self, datapath):
        with pytest.raises(ValueError):
            datapath.synthesize_line(np.zeros(8, dtype=np.int64), np.zeros(4, dtype=np.int64), 1, "rows")


class TestStatsAndUtilisation:
    def test_reset_counters(self, datapath, rng):
        line = rng.integers(0, 4096, size=32)
        datapath.analyze_line(line, 1, "rows")
        datapath.reset_counters()
        assert datapath.counter.macrocycles == 0
        assert datapath.stats.dram_reads == 0
        assert datapath.mac.stats.multiplies == 0

    def test_utilisation_reflects_refresh_stalls(self, config, rng):
        datapath = Datapath(config)
        for _ in range(8):
            datapath.analyze_line(rng.integers(0, 4096, size=64), 1, "rows")
        utilisation = datapath.utilisation()
        assert 0.98 < utilisation < 1.0

    def test_stats_merge(self):
        from repro.arch.datapath import DatapathStats

        a = DatapathStats(line_passes=1, dram_reads=10)
        b = DatapathStats(line_passes=2, dram_reads=5, fifo_pushes=3)
        a.merge(b)
        assert a.line_passes == 3
        assert a.dram_reads == 15
        assert a.fifo_pushes == 3


class TestOverflowPolicies:
    def test_invalid_policy_rejected(self, config):
        with pytest.raises(ValueError):
            Datapath(config, overflow_policy="ignore")

    def test_saturate_policy_accepts_borderline_input(self, config):
        datapath = Datapath(config, overflow_policy="saturate")
        line = np.full(64, 4095, dtype=np.int64)
        low, high = datapath.analyze_line(line, 1, "rows")
        fmt = datapath.format_for_scale(1)
        assert low.max() <= fmt.max_int
