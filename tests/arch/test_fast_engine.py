"""Scalar/fast accelerator-engine equivalence (outputs, stats, counters, DRAM).

The fast engine must be indistinguishable from the scalar reference in every
observable: subband words, reconstructions, ``DatapathStats``, MAC operation
counters, coefficient-RAM reads, FIFO push/pop accounting, the macro-cycle /
refresh counter and the derived run reports.  The quick checks here run in
tier-1; the big size/scale matrix runs under ``-m slow``.
"""

import dataclasses

import numpy as np
import pytest

from repro.arch.accelerator import DwtAccelerator
from repro.arch.config import ArchitectureConfig
from repro.arch.datapath import Datapath
from repro.arch.fast_datapath import FastDatapath
from repro.imaging.phantoms import random_image, shepp_logan


def make_pair(size, scales, **kwargs):
    config = ArchitectureConfig(image_size=size, scales=scales)
    return (
        DwtAccelerator(config, engine="scalar", **kwargs),
        DwtAccelerator(config, engine="fast", **kwargs),
    )


def assert_datapath_state_equal(scalar: Datapath, fast: Datapath) -> None:
    """Every counter the two engines expose must agree exactly."""
    assert scalar.stats == fast.stats
    assert scalar.mac.stats == fast.mac.stats
    assert scalar.mac.accumulator == fast.mac.accumulator
    assert scalar.coeff_ram.reads == fast.coeff_ram.reads
    assert (scalar.counter.macrocycles, scalar.counter.refreshes) == (
        fast.counter.macrocycles,
        fast.counter.refreshes,
    )
    assert scalar.counter._since_refresh == fast.counter._since_refresh
    assert (scalar.fifo.depth, scalar.fifo.pushes, scalar.fifo.pops) == (
        fast.fifo.depth,
        fast.fifo.pushes,
        fast.fifo.pops,
    )


def assert_pyramids_equal(a, b):
    assert np.array_equal(a.approximation, b.approximation)
    assert len(a.details) == len(b.details)
    for ours, theirs in zip(a.details, b.details):
        assert np.array_equal(ours.hg, theirs.hg)
        assert np.array_equal(ours.gh, theirs.gh)
        assert np.array_equal(ours.gg, theirs.gg)


def assert_roundtrip_equivalent(size, scales, image):
    scalar, fast = make_pair(size, scales)
    pyramid_s, forward_s = scalar.forward(image)
    pyramid_f, forward_f = fast.forward(image)
    assert_pyramids_equal(pyramid_s, pyramid_f)
    assert dataclasses.asdict(forward_s) == dataclasses.asdict(forward_f)
    assert_datapath_state_equal(scalar.datapath, fast.datapath)

    out_s, inverse_s = scalar.inverse(pyramid_s)
    out_f, inverse_f = fast.inverse(pyramid_f)
    assert np.array_equal(out_s, out_f)
    assert np.array_equal(out_f, image)
    assert dataclasses.asdict(inverse_s) == dataclasses.asdict(inverse_f)
    assert_datapath_state_equal(scalar.datapath, fast.datapath)


# ---------------------------------------------------------------------------
# Tier-1: line-level and small whole-image equivalence
# ---------------------------------------------------------------------------

class TestLinePasses:
    @pytest.fixture()
    def pair(self):
        config = ArchitectureConfig(image_size=64, scales=3)
        scalar = Datapath(config)
        reference = Datapath(config)
        return scalar, reference, FastDatapath(reference)

    def test_analyze_lines_matches_per_line_scalar(self, pair, rng):
        scalar, reference, fast = pair
        lines = rng.integers(0, 4096, size=(7, 64)).astype(np.int64)
        low_f, high_f = fast.analyze_lines(lines, 1, "rows")
        for row in range(lines.shape[0]):
            low_s, high_s = scalar.analyze_line(lines[row], 1, "rows")
            assert np.array_equal(low_f[row], low_s)
            assert np.array_equal(high_f[row], high_s)
        assert_datapath_state_equal(scalar, reference)

    def test_synthesize_lines_matches_per_line_scalar(self, pair, rng):
        scalar, reference, fast = pair
        low = rng.integers(-4096, 4096, size=(5, 32)).astype(np.int64)
        high = rng.integers(-4096, 4096, size=(5, 32)).astype(np.int64)
        out_f = fast.synthesize_lines(low, high, 1, "columns")
        for row in range(low.shape[0]):
            out_s = scalar.synthesize_line(low[row], high[row], 1, "columns")
            assert np.array_equal(out_f[row], out_s)
        assert_datapath_state_equal(scalar, reference)

    def test_interleaved_scalar_and_fast_passes_share_state(self, pair, rng):
        scalar, reference, fast = pair
        lines = rng.integers(0, 4096, size=(4, 64)).astype(np.int64)
        # Mixed usage: fast pass, then scalar line on the same datapath.
        fast.analyze_lines(lines[:2], 1, "rows")
        reference.analyze_line(lines[2], 1, "rows")
        for row in range(3):
            scalar.analyze_line(lines[row], 1, "rows")
        assert_datapath_state_equal(scalar, reference)

    def test_bad_shapes_rejected(self, pair):
        _, _, fast = pair
        with pytest.raises(ValueError):
            fast.analyze_lines(np.zeros(64, dtype=np.int64), 1, "rows")
        with pytest.raises(ValueError):
            fast.analyze_lines(np.zeros((2, 63), dtype=np.int64), 1, "rows")
        with pytest.raises(ValueError):
            fast.synthesize_lines(
                np.zeros((2, 8), dtype=np.int64), np.zeros((2, 4), dtype=np.int64), 1, "rows"
            )

    def test_empty_batch_returns_empty_and_counts_nothing(self, pair):
        scalar, reference, fast = pair
        low, high = fast.analyze_lines(np.zeros((0, 64), dtype=np.int64), 1, "rows")
        assert low.shape == (0, 32) and high.shape == (0, 32)
        out = fast.synthesize_lines(
            np.zeros((0, 32), dtype=np.int64), np.zeros((0, 32), dtype=np.int64), 1, "rows"
        )
        assert out.shape == (0, 64)
        assert_datapath_state_equal(scalar, reference)


class TestOverflowPolicies:
    """The vectorised overflow handling must track the scalar word check."""

    @pytest.mark.parametrize("policy", ["saturate", "wrap"])
    def test_policy_equivalence_on_hot_line(self, policy, rng):
        config = ArchitectureConfig(image_size=32, scales=1)
        scalar = Datapath(config, overflow_policy=policy)
        reference = Datapath(config, overflow_policy=policy)
        fast = FastDatapath(reference)
        # Full-scale alternating line: large accumulators, exercises the policy.
        fmt = scalar.format_for_scale(0)
        line = np.where(np.arange(32) % 2 == 0, fmt.max_int, fmt.min_int).astype(np.int64)
        lines = np.tile(line, (3, 1))
        low_f, high_f = fast.analyze_lines(lines, 1, "rows")
        for row in range(3):
            low_s, high_s = scalar.analyze_line(lines[row], 1, "rows")
            assert np.array_equal(low_f[row], low_s)
            assert np.array_equal(high_f[row], high_s)
        assert_datapath_state_equal(scalar, reference)

    def test_narrow_accumulator_equivalence(self, rng):
        # Narrow-accumulator ablation: the scalar MAC wraps after every MAC;
        # the fast engine's single final wrap must land on the same words.
        config = ArchitectureConfig(image_size=32, scales=1, accumulator_bits=48)
        scalar = Datapath(config, overflow_policy="wrap")
        reference = Datapath(config, overflow_policy="wrap")
        fast = FastDatapath(reference)
        lines = rng.integers(0, 4096, size=(4, 32)).astype(np.int64)
        low_f, high_f = fast.analyze_lines(lines, 1, "rows")
        for row in range(4):
            low_s, high_s = scalar.analyze_line(lines[row], 1, "rows")
            assert np.array_equal(low_f[row], low_s)
            assert np.array_equal(high_f[row], high_s)
        assert_datapath_state_equal(scalar, reference)

    def test_wide_word_length_equivalence(self, rng):
        # 64-bit datapath-word ablation: the operand wrap is an identity on
        # int64 storage and must not crash the (default) fast engine.
        config = ArchitectureConfig(image_size=32, scales=1, word_length=64)
        scalar = Datapath(config)
        reference = Datapath(config)
        fast = FastDatapath(reference)
        lines = rng.integers(0, 4096, size=(3, 32)).astype(np.int64)
        low_f, high_f = fast.analyze_lines(lines, 1, "rows")
        for row in range(3):
            low_s, high_s = scalar.analyze_line(lines[row], 1, "rows")
            assert np.array_equal(low_f[row], low_s)
            assert np.array_equal(high_f[row], high_s)
        assert_datapath_state_equal(scalar, reference)

    def test_wide_accumulator_rejected_on_fast_engine(self):
        config = ArchitectureConfig(image_size=32, scales=1, accumulator_bits=96)
        fast = FastDatapath(Datapath(config))
        with pytest.raises(ValueError, match="scalar"):
            fast.analyze_lines(np.zeros((1, 32), dtype=np.int64), 1, "rows")

    def test_raise_policy_raises_like_scalar(self):
        from repro.fixedpoint.errors import OverflowPolicyError

        config = ArchitectureConfig(image_size=32, scales=1)
        scalar = Datapath(config)
        fast = FastDatapath(Datapath(config))
        # The word-length plan makes overflow unreachable from in-range
        # input images (that is the paper's §3 guarantee), so feed the
        # column pass a full-word alternating line: the high-pass gain on
        # it pushes the aligned result past the 32-bit word.
        fmt = scalar.format_for_scale(1)
        line = np.where(np.arange(32) % 2 == 0, fmt.max_int, fmt.min_int).astype(np.int64)
        with pytest.raises(OverflowPolicyError):
            scalar.analyze_line(line, 1, "columns")
        with pytest.raises(OverflowPolicyError):
            fast.analyze_lines(line[np.newaxis, :], 1, "columns")


class TestEngineApi:
    def test_unknown_engine_rejected(self):
        config = ArchitectureConfig(image_size=32, scales=1)
        with pytest.raises(ValueError):
            DwtAccelerator(config, engine="vhdl")
        accelerator = DwtAccelerator(config)
        with pytest.raises(ValueError):
            accelerator.forward(np.zeros((32, 32), dtype=np.int64), engine="vhdl")

    def test_default_engine_is_fast_and_overridable(self, random_image_32):
        config = ArchitectureConfig(image_size=32, scales=2)
        accelerator = DwtAccelerator(config)
        assert accelerator.engine == "fast"
        pyramid_fast, report_fast = accelerator.forward(random_image_32)
        pyramid_scalar, report_scalar = accelerator.forward(random_image_32, engine="scalar")
        assert_pyramids_equal(pyramid_fast, pyramid_scalar)
        assert dataclasses.asdict(report_fast) == dataclasses.asdict(report_scalar)

    def test_roundtrip_engine_override(self, random_image_32):
        config = ArchitectureConfig(image_size=32, scales=2)
        accelerator = DwtAccelerator(config, engine="scalar")
        reconstructed, _, _, _ = accelerator.roundtrip(random_image_32, engine="fast")
        assert np.array_equal(reconstructed, random_image_32)


class TestSmallImageEquivalence:
    @pytest.mark.parametrize("size,scales", [(32, 1), (32, 3), (64, 2)])
    def test_random_roundtrip(self, size, scales):
        assert_roundtrip_equivalent(size, scales, random_image(size, seed=size + scales))

    def test_phantom_roundtrip(self):
        assert_roundtrip_equivalent(64, 3, shepp_logan(64))


# ---------------------------------------------------------------------------
# Slow matrix: 64-512 pixels, 1-4 scales, random and phantom content
# ---------------------------------------------------------------------------

SLOW_MATRIX = [
    (64, 1),
    (64, 4),
    (128, 1),
    (128, 2),
    (128, 3),
    (128, 4),
    (256, 2),
    (512, 1),
]


@pytest.mark.slow
@pytest.mark.parametrize("size,scales", SLOW_MATRIX)
def test_equivalence_matrix_random(size, scales):
    assert_roundtrip_equivalent(size, scales, random_image(size, seed=size * 10 + scales))


@pytest.mark.slow
@pytest.mark.parametrize("size,scales", [(64, 2), (128, 4), (256, 3)])
def test_equivalence_matrix_phantom(size, scales):
    assert_roundtrip_equivalent(size, scales, shepp_logan(size))
