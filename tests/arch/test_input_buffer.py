"""Tests for repro.arch.input_buffer (§4.1, Fig. 4, Table IV)."""

import pytest

from repro.arch.input_buffer import (
    bank2_rounds,
    bank2_rounds_table,
    bank_layout,
    bank_size,
    minimum_buffer_size,
    rounded_buffer_size,
    simulate_line_occupancy,
)

PAPER_TABLE_IV = {1: 31, 2: 15, 3: 7, 4: 3, 5: 1, 6: 0}


class TestSizing:
    def test_minimum_size_for_13_taps(self):
        assert minimum_buffer_size(6) == 25

    def test_rounded_size_is_next_power_of_two(self):
        assert rounded_buffer_size(6) == 32
        assert rounded_buffer_size(4) == 32  # 17 -> 32
        assert rounded_buffer_size(3) == 16  # 13 -> 16

    def test_bank_is_half_of_buffer(self):
        assert bank_size(6) == 16

    def test_invalid_half_length_rejected(self):
        with pytest.raises(ValueError):
            minimum_buffer_size(0)


class TestBank2Rounds:
    def test_paper_table_iv(self):
        table = bank2_rounds_table(512, 6, 6)
        assert {scale: entry["rounds"] for scale, entry in table.items()} == PAPER_TABLE_IV

    def test_line_lengths_halve_per_scale(self):
        table = bank2_rounds_table(512, 6, 6)
        assert [entry["line_length"] for entry in table.values()] == [512, 256, 128, 64, 32, 16]

    def test_short_line_needs_no_rounds(self):
        assert bank2_rounds(16, 6) == 0

    def test_rounds_grow_with_line_length(self):
        assert bank2_rounds(1024, 6) > bank2_rounds(512, 6)

    def test_invalid_line_rejected(self):
        with pytest.raises(ValueError):
            bank2_rounds(1, 6)


class TestBankLayout:
    def test_even_layout_border_at_bank1_top(self):
        layout = bank_layout(6, "even")
        assert layout.border_range == range(0, 12)
        assert layout.streaming_range == range(16, 32)
        assert layout.remainder_range == range(12, 16)

    def test_odd_layout_swaps_banks(self):
        layout = bank_layout(6, "odd")
        assert layout.border_range == range(16, 28)
        assert layout.streaming_range == range(0, 16)

    def test_layouts_cover_whole_buffer(self):
        for parity in ("even", "odd"):
            layout = bank_layout(6, parity)
            covered = set(layout.border_range) | set(layout.streaming_range) | set(layout.remainder_range)
            assert covered == set(range(32))
            assert layout.total_words == 32

    def test_unknown_parity_rejected(self):
        with pytest.raises(ValueError):
            bank_layout(6, "both")


class TestLineOccupancy:
    @pytest.mark.parametrize("line", [32, 64, 128, 256, 512])
    def test_peak_occupancy_fits_minimum_buffer(self, line):
        report = simulate_line_occupancy(line, 6)
        assert report.fits_minimum_buffer
        assert report.max_live_words <= 25

    def test_every_sample_read_once(self):
        report = simulate_line_occupancy(64, 6)
        assert report.dram_reads == 64

    def test_output_count_equals_line_length(self):
        report = simulate_line_occupancy(64, 6)
        assert report.outputs == 64  # 32 low-pass + 32 high-pass

    def test_shorter_filters_need_less_buffer(self):
        wide = simulate_line_occupancy(64, 6).max_live_words
        narrow = simulate_line_occupancy(64, 2).max_live_words
        assert narrow < wide

    def test_line_shorter_than_filter_rejected(self):
        with pytest.raises(ValueError):
            simulate_line_occupancy(12, 6)

    def test_odd_line_rejected(self):
        with pytest.raises(ValueError):
            simulate_line_occupancy(63, 6)
