"""Tests for repro.arch.report (area composition and hardware requirements)."""

import pytest

from repro.arch.config import paper_configuration
from repro.arch.report import (
    PAPER_PROPOSED_AREA_MM2,
    hardware_requirements,
    proposed_area_breakdown,
)


class TestHardwareRequirements:
    def test_single_multiplier_and_adder(self):
        requirements = hardware_requirements()
        assert requirements.multipliers == 1
        assert requirements.adders == 1

    def test_memory_words_follow_n(self):
        assert hardware_requirements(paper_configuration()).memory_words == 288
        assert hardware_requirements(paper_configuration(image_size=256)).memory_words == 160

    def test_memory_bits(self):
        requirements = hardware_requirements()
        assert requirements.memory_bits == 288 * 32


class TestAreaBreakdown:
    def test_total_close_to_paper_value(self):
        breakdown = proposed_area_breakdown()
        assert breakdown.total_mm2 == pytest.approx(PAPER_PROPOSED_AREA_MM2, rel=0.10)

    def test_multiplier_dominates(self):
        breakdown = proposed_area_breakdown()
        multiplier = breakdown.blocks["32x32 pipelined Wallace multiplier"]
        assert multiplier > 0.5 * breakdown.total_mm2

    def test_all_blocks_positive(self):
        breakdown = proposed_area_breakdown()
        assert all(area > 0 for area in breakdown.blocks.values())

    def test_smaller_image_needs_less_ram(self):
        small = proposed_area_breakdown(paper_configuration(image_size=128))
        big = proposed_area_breakdown(paper_configuration(image_size=512))
        assert small.total_mm2 < big.total_mm2

    def test_rows_include_total(self):
        breakdown = proposed_area_breakdown()
        rows = breakdown.as_rows()
        assert rows[-1][0] == "TOTAL"
        assert rows[-1][1] == pytest.approx(breakdown.total_mm2)

    def test_area_far_below_prior_architectures(self):
        # The headline comparison: an order of magnitude below the ~170-260 mm2
        # of Table III's prior architectures.
        assert proposed_area_breakdown().total_mm2 < 20.0
