"""Property-based tests (hypothesis) for the buffer/FIFO sizing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.input_buffer import (
    bank2_rounds,
    minimum_buffer_size,
    rounded_buffer_size,
    simulate_line_occupancy,
)
from repro.arch.output_fifo import (
    VariableDepthFifo,
    fifo_depth_bounds,
    max_fifo_depth,
    min_fifo_depth,
)
from repro.arch.scheduler import MacrocycleCounter, utilisation_formula

#: Line lengths are powers of two (dyadic image sizes), filters have l in 1..8.
line_lengths = st.sampled_from([16, 32, 64, 128, 256, 512])
half_lengths = st.integers(1, 7)


class TestInputBufferProperties:
    @given(l=half_lengths)
    def test_rounded_size_is_power_of_two_and_covers_minimum(self, l):
        rounded = rounded_buffer_size(l)
        assert rounded >= minimum_buffer_size(l)
        assert rounded & (rounded - 1) == 0

    @given(line=line_lengths, l=half_lengths)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_minimum_buffer(self, line, l):
        """The §4.1 sizing claim: 4l+1 words always suffice for one line."""
        if line <= 2 * l:
            return
        report = simulate_line_occupancy(line, l)
        assert report.max_live_words <= minimum_buffer_size(l)
        assert report.dram_reads == line
        assert report.outputs == line

    @given(line=line_lengths, l=half_lengths)
    def test_bank2_rounds_consistent_with_bank_size(self, line, l):
        rounds = bank2_rounds(line, l)
        bank = rounded_buffer_size(l) // 2
        # The streaming bank plus its refills must cover at least the line.
        assert (rounds + 1) * bank + bank >= line


class TestFifoProperties:
    @given(line=line_lengths, l=half_lengths)
    def test_depth_bounds_are_feasible(self, line, l):
        if line <= 2 * l + 2:
            return
        bounds = fifo_depth_bounds(line, l)
        assert 0 <= bounds.min_depth <= bounds.max_depth

    @given(line=line_lengths, l=half_lengths)
    def test_min_depth_removes_every_hazard(self, line, l):
        if line <= 2 * l + 2:
            return
        from repro.arch.output_fifo import dependence_distances

        depth = min_fifo_depth(line, l)
        assert all(distance + depth > 0 for distance in dependence_distances(line, l))

    @given(line=line_lengths, l=half_lengths)
    def test_larger_lines_need_deeper_fifos(self, line, l):
        if line <= 2 * l + 2 or 2 * line > 512:
            return
        assert min_fifo_depth(2 * line, l) > min_fifo_depth(line, l)
        assert max_fifo_depth(2 * line, l) > max_fifo_depth(line, l)

    @given(depth=st.integers(0, 64), items=st.lists(st.integers(), max_size=200))
    def test_fifo_preserves_order_and_delays_by_depth(self, depth, items):
        fifo = VariableDepthFifo(depth=depth)
        out = [fifo.push(item) for item in items]
        out = [item for item in out if item is not None] + fifo.drain()
        assert out == items


class TestSchedulerProperties:
    @given(
        filter_length=st.integers(2, 16),
        interval=st.integers(1, 256),
        stall=st.integers(0, 8),
        macrocycles=st.integers(0, 3000),
    )
    @settings(max_examples=80, deadline=None)
    def test_counter_cycle_accounting_is_consistent(
        self, filter_length, interval, stall, macrocycles
    ):
        counter = MacrocycleCounter(filter_length, stall, interval)
        counter.step(macrocycles)
        assert counter.total_cycles == counter.busy_cycles + counter.stall_cycles
        assert counter.busy_cycles == macrocycles * filter_length
        assert counter.refreshes == macrocycles // interval

    @given(filter_length=st.integers(2, 16), interval=st.integers(1, 256), stall=st.integers(0, 8))
    def test_utilisation_formula_bounds(self, filter_length, interval, stall):
        utilisation = utilisation_formula(filter_length, interval, stall)
        assert 0.0 < utilisation <= 1.0
        if stall == 0:
            assert utilisation == 1.0
