"""Property-based tests (hypothesis) for the transforms and the lossless claim."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dwt.transform1d import analyze_1d, fdwt_1d, idwt_1d, synthesize_1d
from repro.dwt.transform2d import fdwt_2d, idwt_2d
from repro.filters.catalog import get_bank
from repro.fxdwt.transform import FixedPointDWT

BANK_NAMES = st.sampled_from(["F1", "F2", "F3", "F4", "F5", "F6"])

signals_1d = hnp.arrays(
    dtype=np.float64,
    shape=st.sampled_from([16, 32, 64]),
    elements=st.floats(0.0, 4095.0, allow_nan=False, width=32),
)

images_12bit = hnp.arrays(
    dtype=np.int64,
    shape=st.sampled_from([(16, 16), (32, 32)]),
    elements=st.integers(0, 4095),
)


class TestFloatTransformProperties:
    @given(bank_name=BANK_NAMES, signal=signals_1d)
    @settings(max_examples=60, deadline=None)
    def test_one_stage_reconstruction_below_half_lsb(self, bank_name, signal):
        bank = get_bank(bank_name)
        lo, hi = analyze_1d(signal, bank)
        back = synthesize_1d(lo, hi, bank)
        assert np.max(np.abs(back - signal)) < 0.5

    @given(bank_name=BANK_NAMES, signal=signals_1d, scales=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_multiscale_round_trip(self, bank_name, signal, scales):
        bank = get_bank(bank_name)
        average, details = fdwt_1d(signal, bank, scales)
        back = idwt_1d(average, details, bank)
        assert np.max(np.abs(back - signal)) < 0.5

    @given(bank_name=BANK_NAMES, signal=signals_1d)
    @settings(max_examples=40, deadline=None)
    def test_coefficient_count_preserved(self, bank_name, signal):
        bank = get_bank(bank_name)
        average, details = fdwt_1d(signal, bank, 2)
        assert average.size + sum(d.size for d in details) == signal.size

    @given(
        bank_name=BANK_NAMES,
        signal=signals_1d,
        scale_factor=st.floats(0.25, 4.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_linearity_of_analysis(self, bank_name, signal, scale_factor):
        bank = get_bank(bank_name)
        lo_a, _ = analyze_1d(signal, bank)
        lo_b, _ = analyze_1d(signal * scale_factor, bank)
        assert np.allclose(lo_b, lo_a * scale_factor, rtol=1e-9, atol=1e-6)

    @given(image=images_12bit)
    @settings(max_examples=20, deadline=None)
    def test_2d_round_trip_property(self, image):
        bank = get_bank("F2")
        pyramid = fdwt_2d(image.astype(float), bank, 2)
        back = idwt_2d(pyramid, bank)
        assert np.max(np.abs(back - image)) < 0.5


class TestLosslessProperty:
    @given(bank_name=BANK_NAMES, image=images_12bit, scales=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_fixed_point_round_trip_is_bit_exact(self, bank_name, image, scales):
        """The paper's central claim as a property over random 12-bit images."""
        engine = FixedPointDWT(get_bank(bank_name), scales)
        reconstructed, _ = engine.roundtrip(image)
        assert np.array_equal(reconstructed, image)

    @given(image=images_12bit)
    @settings(max_examples=15, deadline=None)
    def test_forward_is_deterministic(self, image):
        engine = FixedPointDWT(get_bank("F2"), 2)
        first = engine.forward(image)
        second = engine.forward(image)
        assert np.array_equal(first.approximation, second.approximation)
