"""Property-based tests (hypothesis) for the entropy coders and codecs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.coding.bitstream import BitReader, BitWriter
from repro.coding.huffman import HuffmanCode, huffman_decode, huffman_encode
from repro.coding.mapper import zigzag_decode, zigzag_encode
from repro.coding.rice import rice_decode, rice_encode
from repro.coding.rle import rle_decode, rle_encode
from repro.coding.s_transform import (
    s_transform_forward_1d,
    s_transform_forward_2d,
    s_transform_inverse_1d,
    s_transform_inverse_2d,
)


class TestBitstreamProperties:
    @given(bits=st.lists(st.integers(0, 1), max_size=300))
    def test_bit_round_trip(self, bits):
        writer = BitWriter()
        writer.write_bits(bits)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(len(bits)) == bits

    @given(values=st.lists(st.tuples(st.integers(0, 2 ** 16 - 1), st.integers(1, 16)), max_size=50))
    def test_uint_round_trip(self, values):
        writer = BitWriter()
        for value, width in values:
            writer.write_uint(value & ((1 << width) - 1), width)
        reader = BitReader(writer.getvalue())
        for value, width in values:
            assert reader.read_uint(width) == value & ((1 << width) - 1)


class TestMapperProperties:
    @given(values=hnp.arrays(np.int64, st.integers(0, 200), elements=st.integers(-(2 ** 30), 2 ** 30)))
    def test_zigzag_round_trip(self, values):
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    @given(values=hnp.arrays(np.int64, st.integers(1, 200), elements=st.integers(-(2 ** 30), 2 ** 30)))
    def test_zigzag_symbols_non_negative(self, values):
        assert zigzag_encode(values).min() >= 0


class TestRleProperties:
    @given(values=st.lists(st.integers(-5, 5), max_size=400))
    def test_rle_round_trip(self, values):
        assert list(rle_decode(rle_encode(values))) == values

    @given(values=st.lists(st.integers(-5, 5), max_size=400), max_run=st.integers(1, 16))
    def test_rle_round_trip_with_run_splitting(self, values, max_run):
        assert list(rle_decode(rle_encode(values, max_run=max_run))) == values


class TestRiceProperties:
    @given(symbols=st.lists(st.integers(0, 2 ** 20), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_rice_round_trip(self, symbols):
        assert rice_decode(rice_encode(symbols)) == symbols

    @given(symbols=st.lists(st.integers(0, 255), min_size=1, max_size=200), k=st.integers(0, 12))
    @settings(max_examples=50, deadline=None)
    def test_rice_round_trip_any_parameter(self, symbols, k):
        assert rice_decode(rice_encode(symbols, k=k)) == symbols


class TestHuffmanProperties:
    @given(symbols=st.lists(st.integers(0, 40), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_huffman_round_trip(self, symbols):
        assert huffman_decode(huffman_encode(symbols)) == symbols

    @given(symbols=st.lists(st.integers(0, 40), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_kraft_inequality(self, symbols):
        code = HuffmanCode.from_symbols(symbols)
        assert code.kraft_sum() <= 1.0 + 1e-12


class TestSTransformProperties:
    @given(
        signal=hnp.arrays(np.int64, st.sampled_from([8, 16, 32]), elements=st.integers(0, 4095))
    )
    def test_1d_round_trip(self, signal):
        approx, detail = s_transform_forward_1d(signal)
        assert np.array_equal(s_transform_inverse_1d(approx, detail), signal)

    @given(
        image=hnp.arrays(np.int64, st.sampled_from([(8, 8), (16, 16)]), elements=st.integers(0, 4095)),
        scales=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_2d_round_trip(self, image, scales):
        pyramid = s_transform_forward_2d(image, scales)
        assert np.array_equal(s_transform_inverse_2d(pyramid), image)
