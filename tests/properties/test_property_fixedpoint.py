"""Property-based tests (hypothesis) for the fixed-point number system."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.rounding import (
    round_half_up_shift,
    round_half_up_to_int,
    truncate_shift,
    wrap_twos_complement,
)

@st.composite
def formats(draw):
    """Valid QFormats: integer_bits is always within the word length."""
    word_length = draw(st.integers(min_value=2, max_value=64))
    integer_bits = draw(st.integers(min_value=1, max_value=word_length))
    return QFormat(word_length=word_length, integer_bits=integer_bits)


class TestRoundingProperties:
    @given(value=st.integers(-(2 ** 62), 2 ** 62), shift=st.integers(0, 40))
    def test_round_half_up_matches_floor_definition(self, value, shift):
        expected = (value + (1 << (shift - 1)) >> shift) if shift else value
        assert round_half_up_shift(value, shift) == expected

    @given(value=st.integers(-(2 ** 62), 2 ** 62), shift=st.integers(0, 40))
    def test_rounding_error_bounded_by_half_lsb(self, value, shift):
        rounded = round_half_up_shift(value, shift)
        assert abs(rounded * (1 << shift) - value) <= (1 << shift) // 2

    @given(value=st.integers(-(2 ** 62), 2 ** 62), shift=st.integers(0, 40))
    def test_truncation_never_exceeds_rounding(self, value, shift):
        assert truncate_shift(value, shift) <= round_half_up_shift(value, shift)

    @given(value=st.integers(-(2 ** 62), 2 ** 62), shift=st.integers(1, 40))
    def test_rounding_is_monotone(self, value, shift):
        assert round_half_up_shift(value, shift) <= round_half_up_shift(value + 1, shift)

    @given(value=st.floats(-1e12, 1e12, allow_nan=False))
    def test_round_half_up_to_int_within_half(self, value):
        rounded = round_half_up_to_int(value)
        assert abs(rounded - value) <= 0.5 + 1e-9


class TestWrapProperties:
    @given(value=st.integers(-(2 ** 70), 2 ** 70), bits=st.integers(1, 64))
    def test_wrap_lands_in_range(self, value, bits):
        wrapped = wrap_twos_complement(value, bits)
        assert -(1 << (bits - 1)) <= wrapped < (1 << (bits - 1))

    @given(value=st.integers(-(2 ** 70), 2 ** 70), bits=st.integers(1, 64))
    def test_wrap_preserves_value_modulo_2_to_bits(self, value, bits):
        wrapped = wrap_twos_complement(value, bits)
        assert (wrapped - value) % (1 << bits) == 0

    @given(value=st.integers(-(2 ** 30), 2 ** 30), bits=st.integers(32, 64))
    def test_wrap_is_identity_inside_range(self, value, bits):
        assert wrap_twos_complement(value, bits) == value

    @given(value=st.integers(-(2 ** 70), 2 ** 70), bits=st.integers(1, 64))
    def test_wrap_is_idempotent(self, value, bits):
        once = wrap_twos_complement(value, bits)
        assert wrap_twos_complement(once, bits) == once


class TestQFormatProperties:
    @given(fmt=formats(), value=st.floats(-1e6, 1e6, allow_nan=False))
    @settings(max_examples=200)
    def test_quantisation_error_bounded(self, fmt, value):
        stored = fmt.to_stored(value)
        if fmt.min_int <= stored <= fmt.max_int:
            # When value * scale approaches float64's exact-integer limit
            # (large fractional_bits), the rounding inside to_stored can be
            # off by a ULP of the product — allow that representation error
            # on top of the half-step quantisation bound.
            float_slack = abs(value) * 2.0 ** -50
            assert (
                abs(fmt.to_real(stored) - value)
                <= fmt.resolution / 2 + 1e-12 + float_slack
            )

    @given(fmt=formats())
    def test_range_is_consistent(self, fmt):
        assert fmt.min_int < 0 < fmt.max_int or fmt.word_length == 1
        assert fmt.min_value < fmt.max_value
        assert fmt.fractional_bits + fmt.integer_bits == fmt.word_length

    @given(fmt=formats(), stored=st.integers(-(2 ** 40), 2 ** 40))
    def test_to_real_to_stored_round_trip(self, fmt, stored):
        # Converting a representable value back and forth is exact.
        assert fmt.to_stored(fmt.to_real(stored)) == stored
