"""MR-like synthetic phantoms.

Magnetic-resonance images differ from CT in two ways that matter for
wavelet compression: a smooth multiplicative *bias field* (coil
inhomogeneity) and noise that is approximately Rician (magnitude of complex
Gaussian noise).  These generators produce 12-bit images with both effects
so that the example applications and benchmarks exercise a second, texturally
different medical modality.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .phantoms import DEFAULT_BIT_DEPTH, shepp_logan

__all__ = ["bias_field", "rician_noise", "mr_slice"]


def bias_field(size: int, strength: float = 0.3, seed: Optional[int] = 0) -> np.ndarray:
    """Smooth multiplicative bias field in ``[1 - strength, 1 + strength]``.

    Built from a few low-frequency cosine components with random phases.
    """
    if not 0.0 <= strength < 1.0:
        raise ValueError("strength must be in [0, 1)")
    rng = np.random.default_rng(seed)
    coords = np.linspace(0.0, 1.0, size)
    xx, yy = np.meshgrid(coords, coords)
    field = np.zeros((size, size), dtype=float)
    for kx, ky in ((1, 0), (0, 1), (1, 1), (2, 1)):
        phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
        amplitude = rng.uniform(0.2, 1.0)
        field += amplitude * np.cos(2 * np.pi * kx * xx + phase_x) * np.cos(
            2 * np.pi * ky * yy + phase_y
        )
    field /= np.max(np.abs(field)) if np.max(np.abs(field)) > 0 else 1.0
    return 1.0 + strength * field


def rician_noise(
    image: np.ndarray, sigma: float, seed: Optional[int] = 0
) -> np.ndarray:
    """Apply Rician noise of standard deviation ``sigma`` to a real image."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    rng = np.random.default_rng(seed)
    image = np.asarray(image, dtype=float)
    real = image + rng.normal(0.0, sigma, image.shape)
    imag = rng.normal(0.0, sigma, image.shape)
    return np.sqrt(real ** 2 + imag ** 2)


def mr_slice(
    size: int = 64,
    bit_depth: int = DEFAULT_BIT_DEPTH,
    noise_sigma: float = 4.0,
    bias_strength: float = 0.25,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """An MR-like 12-bit slice: phantom x bias field + Rician noise."""
    base = shepp_logan(size=size, bit_depth=bit_depth).astype(float)
    field = bias_field(size, strength=bias_strength, seed=seed)
    noisy = rician_noise(base * field, sigma=noise_sigma, seed=seed)
    max_value = (1 << bit_depth) - 1
    return np.clip(np.round(noisy), 0, max_value).astype(np.int64)
