"""Synthetic 12-bit medical-image phantoms.

The paper targets the compression of medical images (X-ray CT and similar
12-bit modalities) and validates its hardware on *random images*.  No real
patient data ships with this reproduction; instead this module generates
synthetic workloads that exercise the same code paths:

* :func:`random_image` — uniformly random pixels, the paper's own validation
  input (worst case for compression, ideal for bit-exactness checks),
* :func:`shepp_logan` — the classical Shepp–Logan head phantom, scaled to a
  12-bit CT-like dynamic range (smooth regions + sharp bone-like edges),
* :func:`gradient_image`, :func:`checkerboard` — analytic patterns with known
  spectra used by edge-case tests,
* :mod:`repro.imaging.mr` adds MR-like phantoms (bias field + Rician-ish noise).

All generators return ``numpy.int64`` arrays with values in
``[0, 2**bit_depth - 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_BIT_DEPTH",
    "Ellipse",
    "SHEPP_LOGAN_ELLIPSES",
    "random_image",
    "gradient_image",
    "checkerboard",
    "shepp_logan",
    "ct_slice_series",
]

#: Medical images in the paper are 12-bit resolution.
DEFAULT_BIT_DEPTH = 12


def _max_value(bit_depth: int) -> int:
    if bit_depth < 1:
        raise ValueError("bit_depth must be >= 1")
    return (1 << bit_depth) - 1


def random_image(
    size: int = 64,
    bit_depth: int = DEFAULT_BIT_DEPTH,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Uniformly random image, the validation input used by the paper (§4)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, _max_value(bit_depth) + 1, size=(size, size), dtype=np.int64)


def gradient_image(size: int = 64, bit_depth: int = DEFAULT_BIT_DEPTH) -> np.ndarray:
    """Smooth diagonal ramp covering the full dynamic range."""
    ramp = np.add.outer(np.arange(size), np.arange(size)).astype(float)
    ramp /= ramp.max() if ramp.max() > 0 else 1.0
    return np.round(ramp * _max_value(bit_depth)).astype(np.int64)


def checkerboard(
    size: int = 64, tile: int = 8, bit_depth: int = DEFAULT_BIT_DEPTH
) -> np.ndarray:
    """High-frequency checkerboard (worst case for the detail subbands)."""
    if tile < 1:
        raise ValueError("tile must be >= 1")
    r = (np.arange(size) // tile) % 2
    board = np.bitwise_xor.outer(r, r)
    return (board * _max_value(bit_depth)).astype(np.int64)


@dataclass(frozen=True)
class Ellipse:
    """One ellipse of an analytic phantom (intensities are additive)."""

    intensity: float
    semi_axis_a: float
    semi_axis_b: float
    center_x: float
    center_y: float
    rotation_deg: float

    def render_into(self, image: np.ndarray, xx: np.ndarray, yy: np.ndarray) -> None:
        theta = np.deg2rad(self.rotation_deg)
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        x = xx - self.center_x
        y = yy - self.center_y
        xr = cos_t * x + sin_t * y
        yr = -sin_t * x + cos_t * y
        mask = (xr / self.semi_axis_a) ** 2 + (yr / self.semi_axis_b) ** 2 <= 1.0
        image[mask] += self.intensity


#: The standard (Shepp & Logan 1974) head-phantom ellipses, in the usual
#: normalised coordinates (intensity, a, b, x0, y0, phi).
SHEPP_LOGAN_ELLIPSES: Tuple[Ellipse, ...] = (
    Ellipse(2.00, 0.69, 0.92, 0.0, 0.0, 0.0),
    Ellipse(-0.98, 0.6624, 0.8740, 0.0, -0.0184, 0.0),
    Ellipse(-0.02, 0.1100, 0.3100, 0.22, 0.0, -18.0),
    Ellipse(-0.02, 0.1600, 0.4100, -0.22, 0.0, 18.0),
    Ellipse(0.01, 0.2100, 0.2500, 0.0, 0.35, 0.0),
    Ellipse(0.01, 0.0460, 0.0460, 0.0, 0.1, 0.0),
    Ellipse(0.01, 0.0460, 0.0460, 0.0, -0.1, 0.0),
    Ellipse(0.01, 0.0460, 0.0230, -0.08, -0.605, 0.0),
    Ellipse(0.01, 0.0230, 0.0230, 0.0, -0.606, 0.0),
    Ellipse(0.01, 0.0230, 0.0460, 0.06, -0.605, 0.0),
)


def shepp_logan(
    size: int = 64,
    bit_depth: int = DEFAULT_BIT_DEPTH,
    ellipses: Sequence[Ellipse] = SHEPP_LOGAN_ELLIPSES,
) -> np.ndarray:
    """Shepp–Logan head phantom scaled to the requested bit depth.

    The analytic phantom is rendered on a ``size x size`` grid covering
    ``[-1, 1]²`` and linearly mapped to ``[0, 2**bit_depth - 1]``.
    """
    if size < 2:
        raise ValueError("size must be >= 2")
    coords = np.linspace(-1.0, 1.0, size)
    xx, yy = np.meshgrid(coords, coords)
    image = np.zeros((size, size), dtype=float)
    for ellipse in ellipses:
        ellipse.render_into(image, xx, yy)
    lo, hi = image.min(), image.max()
    if hi > lo:
        image = (image - lo) / (hi - lo)
    else:
        image = np.zeros_like(image)
    return np.round(image * _max_value(bit_depth)).astype(np.int64)


def ct_slice_series(
    count: int = 4,
    size: int = 64,
    bit_depth: int = DEFAULT_BIT_DEPTH,
    seed: int = 0,
) -> List[np.ndarray]:
    """A short series of CT-like slices with slice-to-slice variation.

    Each slice is the Shepp–Logan phantom with the inner ellipses slightly
    displaced and scaled (simulating progression through the volume) plus a
    small amount of quantum noise, mimicking the archive workload the paper
    motivates (storage and retrieval of medical image series).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = np.random.default_rng(seed)
    slices: List[np.ndarray] = []
    for index in range(count):
        wobble = 0.02 * index
        shrink = 1.0 - 0.03 * index
        ellipses = [SHEPP_LOGAN_ELLIPSES[0], SHEPP_LOGAN_ELLIPSES[1]]
        for ellipse in SHEPP_LOGAN_ELLIPSES[2:]:
            ellipses.append(
                Ellipse(
                    intensity=ellipse.intensity,
                    semi_axis_a=max(ellipse.semi_axis_a * shrink, 1e-3),
                    semi_axis_b=max(ellipse.semi_axis_b * shrink, 1e-3),
                    center_x=ellipse.center_x + wobble,
                    center_y=ellipse.center_y - wobble,
                    rotation_deg=ellipse.rotation_deg,
                )
            )
        base = shepp_logan(size=size, bit_depth=bit_depth, ellipses=ellipses)
        noise = rng.normal(0.0, 2.0, size=base.shape)
        noisy = np.clip(base + np.round(noise), 0, _max_value(bit_depth))
        slices.append(noisy.astype(np.int64))
    return slices
