"""Minimal 16-bit PGM (portable graymap) reader/writer.

PGM is the simplest container able to hold 12-bit grayscale images without
external dependencies, which makes it a convenient interchange format for
the example applications (write a phantom to disk, compress it, read it
back).  Both the binary (``P5``) and ASCII (``P2``) variants are supported
for reading; writing always uses ``P5``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

import numpy as np

__all__ = ["write_pgm", "read_pgm"]

PathLike = Union[str, Path]


def write_pgm(path: PathLike, image: np.ndarray, max_value: int = 4095) -> None:
    """Write an integer grayscale image as binary PGM (``P5``).

    ``max_value`` must cover the image's actual maximum; values above 255
    are written big-endian 16-bit as the PGM specification requires.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError("PGM images must be 2-D")
    if not np.issubdtype(image.dtype, np.integer):
        raise ValueError("PGM images must have an integer dtype")
    if image.min() < 0:
        raise ValueError("PGM images cannot contain negative values")
    if image.max() > max_value:
        raise ValueError(
            f"image maximum {int(image.max())} exceeds declared max_value {max_value}"
        )
    if not 1 <= max_value <= 65535:
        raise ValueError("max_value must be in [1, 65535]")
    header = f"P5\n{image.shape[1]} {image.shape[0]}\n{max_value}\n".encode("ascii")
    if max_value < 256:
        payload = image.astype(">u1").tobytes()
    else:
        payload = image.astype(">u2").tobytes()
    Path(path).write_bytes(header + payload)


def read_pgm(path: PathLike, return_max_value: bool = False):
    """Read a ``P5`` (binary) or ``P2`` (ASCII) PGM file as ``int64``.

    With ``return_max_value`` the declared maxval is returned alongside the
    image as ``(image, max_value)`` — the archive CLI uses it to infer the
    bit depth of ingested files (``max_value.bit_length()``).
    """
    raw = Path(path).read_bytes()
    if raw[:2] not in (b"P5", b"P2"):
        raise ValueError(f"not a PGM file: magic {raw[:2]!r}")
    ascii_variant = raw[:2] == b"P2"

    # Parse the header: magic, width, height, maxval, with '#' comments allowed.
    tokens = []
    pos = 2
    while len(tokens) < 3:
        match = re.match(rb"\s*(#[^\n]*\n|\S+)", raw[pos:])
        if match is None:
            raise ValueError("truncated PGM header")
        token = match.group(1)
        pos += match.end()
        if not token.startswith(b"#"):
            tokens.append(token)
    width, height, max_value = (int(t) for t in tokens)
    if ascii_variant:
        values = np.array(raw[pos:].split(), dtype=np.int64)
    else:
        pos += 1  # single whitespace byte after maxval
        dtype = ">u1" if max_value < 256 else ">u2"
        values = np.frombuffer(raw[pos:], dtype=dtype).astype(np.int64)
    if values.size < width * height:
        raise ValueError(
            f"PGM payload has {values.size} samples, expected {width * height}"
        )
    image = values[: width * height].reshape(height, width)
    return (image, max_value) if return_max_value else image
