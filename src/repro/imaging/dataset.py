"""Named phantom datasets used by examples, tests and benchmarks.

A *dataset* here is just a reproducible collection of named 12-bit images.
Keeping the construction in one place guarantees that examples, tests and
benchmarks all exercise the same workloads and that those workloads can be
regenerated deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

from .mr import mr_slice
from .phantoms import (
    DEFAULT_BIT_DEPTH,
    checkerboard,
    ct_slice_series,
    gradient_image,
    random_image,
    shepp_logan,
)

__all__ = ["ImageDataset", "standard_dataset", "archive_dataset", "paper_validation_dataset"]


@dataclass
class ImageDataset:
    """A named, ordered collection of integer images."""

    name: str
    bit_depth: int
    images: Dict[str, np.ndarray]

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self) -> Iterator[Tuple[str, np.ndarray]]:
        return iter(self.images.items())

    def names(self) -> List[str]:
        return list(self.images)

    def get(self, name: str) -> np.ndarray:
        try:
            return self.images[name]
        except KeyError as exc:
            raise KeyError(f"dataset {self.name!r} has no image {name!r}") from exc

    def total_pixels(self) -> int:
        return int(sum(img.size for img in self.images.values()))

    def validate(self) -> None:
        """Check every image is 2-D, integer and within the bit depth."""
        limit = (1 << self.bit_depth) - 1
        for name, image in self.images.items():
            if image.ndim != 2:
                raise ValueError(f"image {name!r} is not 2-D")
            if not np.issubdtype(image.dtype, np.integer):
                raise ValueError(f"image {name!r} is not integer typed")
            if image.min() < 0 or image.max() > limit:
                raise ValueError(
                    f"image {name!r} exceeds the {self.bit_depth}-bit range"
                )

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "ImageDataset":
        """Apply ``fn`` to every image, returning a new dataset."""
        return ImageDataset(
            name=f"{self.name}+mapped",
            bit_depth=self.bit_depth,
            images={k: fn(v) for k, v in self.images.items()},
        )


def standard_dataset(size: int = 64, seed: int = 0) -> ImageDataset:
    """The default mixed workload: CT phantom, MR slice, ramp, texture, noise."""
    dataset = ImageDataset(
        name=f"standard-{size}",
        bit_depth=DEFAULT_BIT_DEPTH,
        images={
            "ct_phantom": shepp_logan(size),
            "mr_slice": mr_slice(size, seed=seed),
            "gradient": gradient_image(size),
            "checkerboard": checkerboard(size, tile=max(2, size // 16)),
            "random": random_image(size, seed=seed),
        },
    )
    dataset.validate()
    return dataset


def archive_dataset(slices: int = 6, size: int = 64, seed: int = 0) -> ImageDataset:
    """A CT archive workload: a series of consecutive slices (storage use case)."""
    series = ct_slice_series(count=slices, size=size, seed=seed)
    dataset = ImageDataset(
        name=f"ct-archive-{slices}x{size}",
        bit_depth=DEFAULT_BIT_DEPTH,
        images={f"slice_{i:03d}": image for i, image in enumerate(series)},
    )
    dataset.validate()
    return dataset


def paper_validation_dataset(size: int = 64, count: int = 3, seed: int = 7) -> ImageDataset:
    """Random images, matching the paper's own validation of the VHDL model."""
    dataset = ImageDataset(
        name=f"random-validation-{count}x{size}",
        bit_depth=DEFAULT_BIT_DEPTH,
        images={
            f"random_{i}": random_image(size, seed=seed + i) for i in range(count)
        },
    )
    dataset.validate()
    return dataset
