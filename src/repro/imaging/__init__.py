"""Synthetic 12-bit medical imaging substrate (phantoms, I/O, metrics, datasets)."""

from .dataset import (
    ImageDataset,
    archive_dataset,
    paper_validation_dataset,
    standard_dataset,
)
from .io_pgm import read_pgm, write_pgm
from .metrics import (
    FidelityReport,
    are_identical,
    fidelity_report,
    mae,
    max_abs_error,
    mse,
    psnr,
    snr,
)
from .mr import bias_field, mr_slice, rician_noise
from .phantoms import (
    DEFAULT_BIT_DEPTH,
    SHEPP_LOGAN_ELLIPSES,
    Ellipse,
    checkerboard,
    ct_slice_series,
    gradient_image,
    random_image,
    shepp_logan,
)

__all__ = [
    "ImageDataset",
    "archive_dataset",
    "paper_validation_dataset",
    "standard_dataset",
    "read_pgm",
    "write_pgm",
    "FidelityReport",
    "are_identical",
    "fidelity_report",
    "mae",
    "max_abs_error",
    "mse",
    "psnr",
    "snr",
    "bias_field",
    "mr_slice",
    "rician_noise",
    "DEFAULT_BIT_DEPTH",
    "SHEPP_LOGAN_ELLIPSES",
    "Ellipse",
    "checkerboard",
    "ct_slice_series",
    "gradient_image",
    "random_image",
    "shepp_logan",
]
