"""Image fidelity metrics.

The paper's quality criterion is bit-exactness (lossless reconstruction),
but the surrounding literature it compares against quotes SNR/PSNR figures
(50–60 dB for the 8-bit architectures of Table III).  This module provides
both kinds of metrics so experiments can report them side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "mse",
    "mae",
    "max_abs_error",
    "psnr",
    "snr",
    "are_identical",
    "FidelityReport",
    "fidelity_report",
]


def _as_float_pair(reference: np.ndarray, candidate: np.ndarray):
    reference = np.asarray(reference, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    if reference.shape != candidate.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs candidate {candidate.shape}"
        )
    return reference, candidate


def mse(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean squared error."""
    reference, candidate = _as_float_pair(reference, candidate)
    return float(np.mean((reference - candidate) ** 2))


def mae(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean absolute error."""
    reference, candidate = _as_float_pair(reference, candidate)
    return float(np.mean(np.abs(reference - candidate)))


def max_abs_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Largest absolute pixel difference."""
    reference, candidate = _as_float_pair(reference, candidate)
    return float(np.max(np.abs(reference - candidate)))


def psnr(
    reference: np.ndarray, candidate: np.ndarray, peak: Optional[float] = None
) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images).

    ``peak`` defaults to the maximum value of the reference image; for
    12-bit medical images pass ``4095`` explicitly for comparable numbers.
    """
    error = mse(reference, candidate)
    if error == 0.0:
        return float("inf")
    if peak is None:
        peak = float(np.max(np.asarray(reference, dtype=float)))
    if peak <= 0:
        raise ValueError("peak must be positive")
    return float(10.0 * np.log10(peak * peak / error))


def snr(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Signal-to-noise ratio in dB (signal power over error power)."""
    reference, candidate = _as_float_pair(reference, candidate)
    error_power = float(np.mean((reference - candidate) ** 2))
    if error_power == 0.0:
        return float("inf")
    signal_power = float(np.mean(reference ** 2))
    if signal_power == 0.0:
        return float("-inf")
    return float(10.0 * np.log10(signal_power / error_power))


def are_identical(reference: np.ndarray, candidate: np.ndarray) -> bool:
    """Bit-exact equality — the paper's lossless criterion."""
    reference = np.asarray(reference)
    candidate = np.asarray(candidate)
    return reference.shape == candidate.shape and bool(np.array_equal(reference, candidate))


@dataclass(frozen=True)
class FidelityReport:
    """Bundle of fidelity metrics for one reference/candidate pair."""

    identical: bool
    max_abs_error: float
    mean_abs_error: float
    mse: float
    psnr_db: float
    snr_db: float


def fidelity_report(
    reference: np.ndarray, candidate: np.ndarray, peak: Optional[float] = None
) -> FidelityReport:
    """Compute all metrics at once."""
    return FidelityReport(
        identical=are_identical(reference, candidate),
        max_abs_error=max_abs_error(reference, candidate),
        mean_abs_error=mae(reference, candidate),
        mse=mse(reference, candidate),
        psnr_db=psnr(reference, candidate, peak=peak),
        snr_db=snr(reference, candidate),
    )
