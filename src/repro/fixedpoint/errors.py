"""Exceptions raised by the fixed-point subsystem."""

from __future__ import annotations

__all__ = ["FixedPointError", "OverflowPolicyError", "DynamicRangeError"]


class FixedPointError(Exception):
    """Base class for fixed-point arithmetic errors."""


class OverflowPolicyError(FixedPointError):
    """A value exceeded the representable range under the 'raise' policy.

    The paper's word-length analysis (§3, Table II) is designed precisely so
    that this never happens during a transform; the error therefore signals
    either a mis-sized format or a genuine dynamic-range violation worth
    surfacing rather than silently wrapping.
    """


class DynamicRangeError(FixedPointError):
    """The word-length analysis determined that no valid format exists."""
