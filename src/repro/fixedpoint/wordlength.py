"""Word-length / dynamic-range analysis (§3 and Table II of the paper).

For each decomposition scale the magnitude of the subimages grows with
respect to the previous scale; the growth rate is upper-bounded by products
of the filters' absolute-coefficient sums.  To avoid overflow while keeping
the 32-bit word, the paper increases the *integer part* of the fixed-point
format with the scale.  Table II gives the minimum integer part ``b_int(s)``
per filter and scale for 12-bit input images.

This module derives those minimum integer parts from the filter definitions
(it does not hard-code Table II) and builds the per-scale
:class:`~repro.fixedpoint.qformat.QFormat` schedules used by the fixed-point
transform and by the alignment unit of the architecture model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..filters.properties import dynamic_range_growth, subband_gains
from ..filters.qmf import BiorthogonalBank
from .errors import DynamicRangeError
from .qformat import QFormat

__all__ = [
    "PAPER_INPUT_BITS",
    "PAPER_WORD_LENGTH",
    "PAPER_COEFFICIENT_FORMAT",
    "minimum_integer_bits",
    "integer_bits_schedule",
    "WordLengthPlan",
    "plan_word_lengths",
    "coefficient_format_for",
]

#: Input pixels: 12-bit resolution plus sign = 13 bits (§3, last paragraph).
PAPER_INPUT_BITS = 13

#: Datapath word length used by the paper for intermediate results and filters.
PAPER_WORD_LENGTH = 32

#: Filter coefficients are stored in 32-bit words; all Table I coefficients
#: have magnitude below 2 (the largest is 1.060660 in bank F4), so 2 integer
#: bits (sign included) suffice, leaving 30 fractional bits.
PAPER_COEFFICIENT_FORMAT = QFormat(word_length=32, integer_bits=2)


def _ceil_log2(value: float) -> int:
    """``ceil(log2(value))`` with a guard against floating-point jitter."""
    if value <= 0:
        raise ValueError("value must be positive")
    return int(math.ceil(math.log2(value) - 1e-9))


def minimum_integer_bits(
    bank: BiorthogonalBank, scale: int, input_bits: int = PAPER_INPUT_BITS
) -> int:
    """Minimum integer part ``b_int(scale)`` (sign included) for one scale.

    The input of scale ``s`` is the HH subimage of scale ``s - 1``, whose
    magnitude is bounded by the original range times ``(Σ|h|²)^(s-1)``;
    within the scale the worst subband grows by
    ``max((Σ|h|)², Σ|h|Σ|g|, (Σ|g|)²)``.  The integer part therefore needs
    ``input_bits + ceil(log2(growth))`` bits.  For 13 input bits this
    reproduces Table II of the paper for all six filter banks.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    growth = dynamic_range_growth(bank, scale)[scale]
    return input_bits + _ceil_log2(growth)


def integer_bits_schedule(
    bank: BiorthogonalBank, scales: int, input_bits: int = PAPER_INPUT_BITS
) -> Dict[int, int]:
    """``{scale: b_int(scale)}`` for scales ``1..scales`` (one row of Table II)."""
    return {
        s: minimum_integer_bits(bank, s, input_bits) for s in range(1, scales + 1)
    }


def coefficient_format_for(bank: BiorthogonalBank, word_length: int = PAPER_WORD_LENGTH) -> QFormat:
    """Fixed-point format used to store the coefficients of ``bank``.

    The integer part is the smallest that covers the largest coefficient
    magnitude of the four filters (2 bits for every Table I bank, matching
    :data:`PAPER_COEFFICIENT_FORMAT`).
    """
    max_coeff = max(
        abs(float(c)) for f in bank.all_filters().values() for c in f.taps
    )
    # Smallest b (sign included, at least 2) such that 2**(b-1) > max_coeff.
    integer_bits = 2
    while (1 << (integer_bits - 1)) <= max_coeff:
        integer_bits += 1
    if integer_bits >= word_length:
        raise DynamicRangeError(
            f"coefficients of bank {bank.name} need {integer_bits} integer bits, "
            f"which does not fit a {word_length}-bit word"
        )
    return QFormat(word_length=word_length, integer_bits=integer_bits)


@dataclass(frozen=True)
class WordLengthPlan:
    """Complete fixed-point plan for a transform run.

    Attributes
    ----------
    bank_name:
        Filter bank the plan was derived for.
    scales:
        Number of decomposition scales ``S``.
    input_format:
        Format of the input pixels (13-bit integers in the paper).
    data_formats:
        Per-scale formats of the subband data produced at scale ``s``
        (``s = 1..S``): 32-bit words whose integer part is ``b_int(s)``.
    coefficient_format:
        Format of the stored filter coefficients.
    accumulator_bits:
        Width of the MAC accumulator (64 in the paper).
    """

    bank_name: str
    scales: int
    input_format: QFormat
    data_formats: Dict[int, QFormat]
    coefficient_format: QFormat
    accumulator_bits: int = 64

    def format_for_scale(self, scale: int) -> QFormat:
        """Format of data produced at ``scale`` (scale 0 = original image)."""
        if scale == 0:
            return self.input_format
        try:
            return self.data_formats[scale]
        except KeyError as exc:
            raise KeyError(f"scale {scale} outside plan (1..{self.scales})") from exc

    def integer_bits(self) -> List[int]:
        """The ``b_int`` sequence for scales ``1..S`` (a row of Table II)."""
        return [self.data_formats[s].integer_bits for s in range(1, self.scales + 1)]


def plan_word_lengths(
    bank: BiorthogonalBank,
    scales: int,
    word_length: int = PAPER_WORD_LENGTH,
    input_bits: int = PAPER_INPUT_BITS,
    accumulator_bits: int = 64,
) -> WordLengthPlan:
    """Build the fixed-point plan the paper's datapath would be configured with.

    Raises :class:`DynamicRangeError` if some scale needs more integer bits
    than the word length allows (i.e. fewer than one fractional bit), which
    is the condition under which the paper's 32-bit choice would fail.
    """
    schedule = integer_bits_schedule(bank, scales, input_bits)
    data_formats: Dict[int, QFormat] = {}
    for scale, bits in schedule.items():
        if bits >= word_length:
            raise DynamicRangeError(
                f"scale {scale} of bank {bank.name} needs {bits} integer bits; "
                f"a {word_length}-bit word leaves no fractional bits"
            )
        data_formats[scale] = QFormat(word_length=word_length, integer_bits=bits)
    return WordLengthPlan(
        bank_name=bank.name,
        scales=scales,
        input_format=QFormat(word_length=input_bits, integer_bits=input_bits),
        data_formats=data_formats,
        coefficient_format=coefficient_format_for(bank, word_length),
        accumulator_bits=accumulator_bits,
    )
