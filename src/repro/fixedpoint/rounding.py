"""Rounding and truncation rules of the datapath (§4.3 of the paper).

After the 64-bit accumulation and the scale-dependent alignment, the result
is narrowed back to the 32-bit datapath word.  The paper's rule is:

    "If the MSB of the truncated bits is 0, truncation is performed; if the
    MSB is 1, then round-up by one is performed."

For a two's-complement value this is *round-half-up* (towards +infinity on
ties), applied to the bits that fall off the right of the word.  The
functions here implement that rule for Python integers and NumPy integer
arrays, together with plain truncation (round toward minus infinity, i.e.
an arithmetic shift) for comparison experiments.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "round_half_up_shift",
    "truncate_shift",
    "round_half_up_to_int",
    "wrap_twos_complement",
]

IntOrArray = Union[int, np.ndarray]


def round_half_up_shift(value: IntOrArray, shift: int) -> IntOrArray:
    """Drop ``shift`` low-order bits with the paper's §4.3 rounding rule.

    Equivalent to ``floor(value / 2**shift + 0.5)`` computed exactly on
    integers: add half of the dropped weight, then arithmetic-shift right.
    Works on Python ints (arbitrary precision) and NumPy integer arrays.
    """
    if shift < 0:
        raise ValueError("shift must be non-negative")
    if shift == 0:
        return value
    if isinstance(value, np.ndarray):
        if shift > 62:
            # Mask arithmetic below needs 2**shift to fit in int64; this
            # range is exact (and rare enough to take the slow path).
            flat = [round_half_up_shift(int(v), shift) for v in value.ravel().tolist()]
            return np.array(flat, dtype=np.int64).reshape(value.shape)
        # Decomposed so the addition cannot wrap at the int64 boundary
        # (v + half can; (v mod 2**shift) + half is < 2**shift + 2**(shift-1)):
        # floor((v + h) / 2**s) == (v >> s) + (((v mod 2**s) + h) >> s).
        s = np.int64(shift)
        half = np.int64(1) << np.int64(shift - 1)
        mask = (np.int64(1) << s) - np.int64(1)
        return (value >> s) + (((value & mask) + half) >> s)
    return (int(value) + (1 << (shift - 1))) >> shift


def truncate_shift(value: IntOrArray, shift: int) -> IntOrArray:
    """Drop ``shift`` low-order bits by truncation (arithmetic shift right)."""
    if shift < 0:
        raise ValueError("shift must be non-negative")
    if shift == 0:
        return value
    if isinstance(value, np.ndarray):
        return value >> np.int64(shift)
    return int(value) >> shift


def round_half_up_to_int(value: Union[float, np.ndarray]) -> IntOrArray:
    """Round a real value to the nearest integer, ties towards +infinity.

    This is the rounding applied to the final reconstructed pixels before
    they are compared with the original image for the lossless check.
    """
    if isinstance(value, np.ndarray):
        return np.floor(value + 0.5).astype(np.int64)
    import math

    return int(math.floor(value + 0.5))


def wrap_twos_complement(value: IntOrArray, word_length: int) -> IntOrArray:
    """Wrap a value into ``word_length``-bit two's-complement range.

    Models the modular behaviour of a hardware register: bits above the word
    length are discarded and the result is re-interpreted as a signed value.
    """
    if word_length < 1:
        raise ValueError("word_length must be at least 1")
    if isinstance(value, np.ndarray):
        if word_length >= 64:
            # int64 storage already is 64-bit two's complement, and any
            # int64 value fits a wider word unchanged.
            return value
        # Bitwise form: the Python-int modulus 2**word_length does not fit
        # int64 at word_length 63, but the mask and half-range do.
        mask = np.int64((1 << word_length) - 1)
        half_np = np.int64(1 << (word_length - 1))
        wrapped = value & mask
        return np.where(wrapped >= half_np, wrapped - half_np - half_np, wrapped)
    modulus = 1 << word_length
    half = 1 << (word_length - 1)
    wrapped = int(value) % modulus
    return wrapped - modulus if wrapped >= half else wrapped
