"""Two's-complement fixed-point formats (Q-formats).

The datapath of the paper uses a 32-bit two's-complement word whose split
between integer and fractional bits *changes with the decomposition scale*
(§3 and §4.3): the integer part must be wide enough for the dynamic range of
the current scale (Table II) and the remaining bits hold the fraction.

:class:`QFormat` captures such a split: ``word_length`` total bits (sign
included), of which ``integer_bits`` are the integer part *including the
sign bit*, and ``fractional_bits = word_length - integer_bits``.  Stored
values are plain integers equal to ``round(real_value * 2**fractional_bits)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QFormat"]


@dataclass(frozen=True)
class QFormat:
    """A two's-complement fixed-point format.

    Attributes
    ----------
    word_length:
        Total number of bits, sign included (32 for the paper's datapath,
        13 for the input pixels, 64 for the accumulator).
    integer_bits:
        Number of bits of the integer part, *including* the sign bit
        (the ``b_int`` of Table II).
    """

    word_length: int
    integer_bits: int

    def __post_init__(self) -> None:
        if self.word_length < 1:
            raise ValueError("word_length must be at least 1 bit")
        if not 1 <= self.integer_bits <= self.word_length:
            raise ValueError(
                f"integer_bits must be within [1, word_length={self.word_length}], "
                f"got {self.integer_bits}"
            )

    # -- structure -----------------------------------------------------------
    @property
    def fractional_bits(self) -> int:
        """Number of bits to the right of the binary point."""
        return self.word_length - self.integer_bits

    @property
    def scale(self) -> int:
        """The weight of one integer step: ``2**fractional_bits``."""
        return 1 << self.fractional_bits

    @property
    def resolution(self) -> float:
        """Smallest representable increment (one LSB) as a real number."""
        return 1.0 / self.scale

    # -- representable range ---------------------------------------------------
    @property
    def min_int(self) -> int:
        """Smallest representable stored integer."""
        return -(1 << (self.word_length - 1))

    @property
    def max_int(self) -> int:
        """Largest representable stored integer."""
        return (1 << (self.word_length - 1)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_int / self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int / self.scale

    def covers_magnitude(self, magnitude: float) -> bool:
        """True if values with ``|x| <= magnitude`` fit in this format."""
        return magnitude <= self.max_value and -magnitude >= self.min_value

    # -- conversions -------------------------------------------------------------
    def to_stored(self, value: float) -> int:
        """Quantise a real ``value`` to the nearest stored integer (ties up)."""
        from math import floor

        return int(floor(value * self.scale + 0.5))

    def to_real(self, stored: int) -> float:
        """Real value represented by a stored integer."""
        return stored / self.scale

    # -- derived formats -----------------------------------------------------------
    def with_integer_bits(self, integer_bits: int) -> "QFormat":
        """Same word length, different integer/fraction split."""
        return QFormat(self.word_length, integer_bits)

    def widened(self, extra_bits: int) -> "QFormat":
        """Format with ``extra_bits`` more word length, same fractional bits.

        This models accumulating in a wider register (the 64-bit accumulator
        keeps the binary point of the product and adds head-room bits).
        """
        if extra_bits < 0:
            raise ValueError("extra_bits must be non-negative")
        return QFormat(self.word_length + extra_bits, self.integer_bits + extra_bits)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.integer_bits}.{self.fractional_bits} ({self.word_length}b)"
