"""Fixed-point arrays: stored-integer arrays tagged with a :class:`QFormat`.

:class:`FxArray` couples a NumPy ``int64`` array of *stored* integers with
the :class:`~repro.fixedpoint.qformat.QFormat` describing where the binary
point sits.  It provides exactly the operations the datapath of the paper
needs:

* quantisation of real images / filter coefficients into a format,
* exact multiply into a wider product format (the 32x32 -> 64-bit multiplier),
* accumulation (modulo 2**64, like a hardware accumulator),
* re-alignment into a different format with the §4.3 rounding rule,
* overflow checking against a format's representable range.

It intentionally supports only the small operation set used by the paper's
architecture rather than being a general fixed-point algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .errors import OverflowPolicyError
from .qformat import QFormat
from .rounding import round_half_up_shift, truncate_shift, wrap_twos_complement

__all__ = ["FxArray", "quantize_real", "product_format", "align_stored"]


def quantize_real(values: np.ndarray, fmt: QFormat, policy: str = "raise") -> "FxArray":
    """Quantise real ``values`` into ``fmt`` (round to nearest, ties up).

    ``policy`` selects the overflow behaviour: ``"raise"`` (default) raises
    :class:`OverflowPolicyError` if any value does not fit, ``"saturate"``
    clips to the representable range, ``"wrap"`` wraps modulo the word
    length (hardware register behaviour).
    """
    values = np.asarray(values, dtype=float)
    stored = np.floor(values * fmt.scale + 0.5).astype(np.int64)
    return FxArray(stored, fmt).check_range(policy)


def product_format(a: QFormat, b: QFormat, word_length: int = 64) -> QFormat:
    """Format of the exact product of values in formats ``a`` and ``b``.

    The product of a ``Qa.i/f`` and ``Qb.i/f`` value has
    ``a.fractional_bits + b.fractional_bits`` fractional bits; the paper's
    accumulator holds it in 64 bits.
    """
    frac = a.fractional_bits + b.fractional_bits
    if frac >= word_length:
        raise ValueError(
            f"product needs {frac} fractional bits, exceeding the {word_length}-bit word"
        )
    return QFormat(word_length, word_length - frac)


def align_stored(stored: Union[int, np.ndarray], source: QFormat, target: QFormat,
                 rounding: str = "half_up") -> Union[int, np.ndarray]:
    """Re-align stored integers from ``source`` format to ``target`` format.

    Only narrowing of the fractional part (the §4.3 alignment direction) is
    supported: ``source.fractional_bits >= target.fractional_bits``.
    ``rounding`` is ``"half_up"`` (the paper's rule) or ``"truncate"``.
    """
    shift = source.fractional_bits - target.fractional_bits
    if shift < 0:
        raise ValueError(
            "alignment only narrows the fraction; "
            f"source has {source.fractional_bits} fractional bits, "
            f"target {target.fractional_bits}"
        )
    if rounding == "half_up":
        return round_half_up_shift(stored, shift)
    if rounding == "truncate":
        return truncate_shift(stored, shift)
    raise ValueError(f"unknown rounding mode {rounding!r}")


@dataclass
class FxArray:
    """A NumPy array of stored integers with an attached :class:`QFormat`."""

    stored: np.ndarray
    fmt: QFormat

    def __post_init__(self) -> None:
        self.stored = np.asarray(self.stored, dtype=np.int64)

    # -- basic protocol ---------------------------------------------------------
    @property
    def shape(self):
        return self.stored.shape

    @property
    def size(self) -> int:
        return int(self.stored.size)

    def __len__(self) -> int:
        return len(self.stored)

    def copy(self) -> "FxArray":
        return FxArray(self.stored.copy(), self.fmt)

    # -- conversions -------------------------------------------------------------
    def to_real(self) -> np.ndarray:
        """The represented real values as ``float64``."""
        return self.stored.astype(float) / float(self.fmt.scale)

    @classmethod
    def from_real(cls, values: np.ndarray, fmt: QFormat, policy: str = "raise") -> "FxArray":
        """Alias of :func:`quantize_real` as a constructor."""
        return quantize_real(values, fmt, policy)

    # -- range handling -----------------------------------------------------------
    def fits(self) -> bool:
        """True if every stored value is inside the format's range."""
        return bool(
            (self.stored >= self.fmt.min_int).all()
            and (self.stored <= self.fmt.max_int).all()
        )

    def check_range(self, policy: str = "raise") -> "FxArray":
        """Apply an overflow policy; returns ``self`` (possibly modified)."""
        if policy == "raise":
            if not self.fits():
                worst = int(np.abs(self.stored).max())
                raise OverflowPolicyError(
                    f"stored value magnitude {worst} exceeds {self.fmt} range "
                    f"[{self.fmt.min_int}, {self.fmt.max_int}]"
                )
            return self
        if policy == "saturate":
            np.clip(self.stored, self.fmt.min_int, self.fmt.max_int, out=self.stored)
            return self
        if policy == "wrap":
            self.stored = np.asarray(
                wrap_twos_complement(self.stored, self.fmt.word_length), dtype=np.int64
            )
            return self
        raise ValueError(f"unknown overflow policy {policy!r}")

    # -- arithmetic ---------------------------------------------------------------
    def realign(self, target: QFormat, rounding: str = "half_up",
                policy: str = "raise") -> "FxArray":
        """Move this array into ``target`` format (§4.3 alignment + rounding)."""
        stored = align_stored(self.stored, self.fmt, target, rounding)
        return FxArray(np.asarray(stored, dtype=np.int64), target).check_range(policy)

    def quantization_error(self, reference: np.ndarray) -> float:
        """Largest absolute difference between represented and reference values."""
        return float(np.max(np.abs(self.to_real() - np.asarray(reference, dtype=float))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FxArray(shape={self.stored.shape}, fmt={self.fmt})"
