"""Fixed-point two's-complement arithmetic and word-length analysis (§3, §4.3).

Public API
----------
``QFormat``
    A word-length / integer-part split.
``FxArray`` and ``quantize_real``
    Stored-integer arrays tagged with a format.
``round_half_up_shift`` / ``truncate_shift``
    The §4.3 rounding rule and plain truncation.
``minimum_integer_bits`` / ``integer_bits_schedule`` / ``plan_word_lengths``
    The dynamic-range analysis that reproduces Table II and produces the
    per-scale format plan used by the transform and the hardware model.
"""

from .errors import DynamicRangeError, FixedPointError, OverflowPolicyError
from .fxarray import FxArray, align_stored, product_format, quantize_real
from .qformat import QFormat
from .rounding import (
    round_half_up_shift,
    round_half_up_to_int,
    truncate_shift,
    wrap_twos_complement,
)
from .wordlength import (
    PAPER_COEFFICIENT_FORMAT,
    PAPER_INPUT_BITS,
    PAPER_WORD_LENGTH,
    WordLengthPlan,
    coefficient_format_for,
    integer_bits_schedule,
    minimum_integer_bits,
    plan_word_lengths,
)

__all__ = [
    "DynamicRangeError",
    "FixedPointError",
    "OverflowPolicyError",
    "FxArray",
    "align_stored",
    "product_format",
    "quantize_real",
    "QFormat",
    "round_half_up_shift",
    "round_half_up_to_int",
    "truncate_shift",
    "wrap_twos_complement",
    "PAPER_COEFFICIENT_FORMAT",
    "PAPER_INPUT_BITS",
    "PAPER_WORD_LENGTH",
    "WordLengthPlan",
    "coefficient_format_for",
    "integer_bits_schedule",
    "minimum_integer_bits",
    "plan_word_lengths",
]
