"""Speedup of the accelerator over the software baseline (the 154x claim).

§5 of the paper: "our architecture is 154 times faster than a desktop
Pentium 133 MHz PC".  The speedup is the ratio of the baseline transform
time (42 s calibration, scaled by MAC count for other workloads) to the
accelerator transform time (analytic cycle model at the operating clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.config import ArchitectureConfig
from .opcount_model import WorkloadModel
from .software_baseline import PentiumBaseline
from .throughput import ThroughputModel

__all__ = ["PAPER_SPEEDUP", "SpeedupReport", "speedup_report"]

#: Speedup over the Pentium-133 quoted in §5.
PAPER_SPEEDUP = 154.0


@dataclass(frozen=True)
class SpeedupReport:
    """Baseline vs accelerator comparison for one workload."""

    image_size: int
    scales: int
    baseline_seconds: float
    accelerator_seconds: float
    speedup: float
    baseline_images_per_second: float
    accelerator_images_per_second: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.image_size}x{self.image_size}/{self.scales} scales: "
            f"Pentium {self.baseline_seconds:.1f} s vs accelerator "
            f"{self.accelerator_seconds * 1e3:.1f} ms -> {self.speedup:.0f}x"
        )


def speedup_report(
    config: Optional[ArchitectureConfig] = None,
    baseline: Optional[PentiumBaseline] = None,
    use_paper_filter_length: bool = True,
) -> SpeedupReport:
    """Compute the accelerator-vs-Pentium speedup for one operating point.

    ``use_paper_filter_length`` selects whether the baseline workload counts
    MACs with both filter lengths at 13 (the paper's own worked example) or
    with the true 13/11 lengths of the F2 bank; the paper's 154x figure is
    obtained with the former.
    """
    throughput = ThroughputModel(config=config) if config else ThroughputModel.paper()
    baseline = baseline or PentiumBaseline()
    cfg = throughput.config
    if use_paper_filter_length:
        workload = WorkloadModel(image_size=cfg.image_size, scales=cfg.scales)
    else:
        workload = WorkloadModel.for_bank(
            cfg.bank, image_size=cfg.image_size, scales=cfg.scales
        )
    baseline_seconds = baseline.seconds_for_workload(workload)
    estimate = throughput.estimate()
    accelerator_seconds = estimate.transform_seconds
    return SpeedupReport(
        image_size=cfg.image_size,
        scales=cfg.scales,
        baseline_seconds=baseline_seconds,
        accelerator_seconds=accelerator_seconds,
        speedup=baseline_seconds / accelerator_seconds,
        baseline_images_per_second=1.0 / baseline_seconds,
        accelerator_images_per_second=estimate.images_per_second,
    )
