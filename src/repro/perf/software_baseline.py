"""Software baseline: the 133 MHz Pentium the paper compares against.

The paper states that the FDWT of a 512x512 image (13-tap filters, 6 scales,
8.99·10⁶ MACs) takes **42 seconds** on a 133 MHz Pentium PC.  That machine is
not available, so the baseline is modelled as an *effective MAC rate*
calibrated from exactly those two numbers:

    rate = 8.99e6 MACs / 42 s ≈ 2.14e5 MAC/s

The model then predicts the Pentium time of any other workload by dividing
its MAC count by that rate.  This is the same normalisation the paper's own
speedup figure implies (a MAC-bound software loop), and it is kept strictly
separate from measurements of *this* machine: :func:`measure_reference_dwt`
times our NumPy implementation for context and is never mixed into the
paper-replication numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..dwt.transform2d import fdwt_2d
from ..filters.catalog import get_bank
from ..filters.qmf import BiorthogonalBank
from .opcount_model import PAPER_MAC_COUNT, WorkloadModel

__all__ = [
    "PAPER_PENTIUM_SECONDS",
    "PAPER_PENTIUM_CLOCK_MHZ",
    "PentiumBaseline",
    "MeasuredSoftwareRun",
    "measure_reference_dwt",
]

#: Time the paper quotes for the FDWT of a 512x512 image on the Pentium (§2).
PAPER_PENTIUM_SECONDS = 42.0

#: Clock of the baseline PC.
PAPER_PENTIUM_CLOCK_MHZ = 133.0


@dataclass(frozen=True)
class PentiumBaseline:
    """Calibrated model of the paper's software baseline.

    Attributes
    ----------
    calibration_macs:
        MAC count of the calibration workload (the paper's 8.99e6).
    calibration_seconds:
        Measured time of the calibration workload (the paper's 42 s).
    """

    calibration_macs: float = PAPER_MAC_COUNT
    calibration_seconds: float = PAPER_PENTIUM_SECONDS

    @property
    def macs_per_second(self) -> float:
        """Effective MAC throughput of the baseline machine."""
        return self.calibration_macs / self.calibration_seconds

    @property
    def cycles_per_mac(self) -> float:
        """Implied clock cycles per MAC at the 133 MHz Pentium clock."""
        return PAPER_PENTIUM_CLOCK_MHZ * 1e6 / self.macs_per_second

    def seconds_for_macs(self, macs: float) -> float:
        """Predicted baseline time for a workload of ``macs`` operations."""
        if macs < 0:
            raise ValueError("macs must be non-negative")
        return macs / self.macs_per_second

    def seconds_for_workload(self, workload: WorkloadModel) -> float:
        """Predicted baseline time for one forward transform of ``workload``."""
        return self.seconds_for_macs(workload.total_macs())

    def images_per_second(self, workload: Optional[WorkloadModel] = None) -> float:
        """Baseline throughput in images/s for ``workload`` (paper default)."""
        workload = workload or WorkloadModel()
        seconds = self.seconds_for_workload(workload)
        return 1.0 / seconds if seconds > 0 else float("inf")


@dataclass(frozen=True)
class MeasuredSoftwareRun:
    """Wall-clock measurement of our own NumPy reference transform."""

    image_size: int
    scales: int
    bank_name: str
    seconds: float
    macs: int

    @property
    def macs_per_second(self) -> float:
        return self.macs / self.seconds if self.seconds > 0 else float("inf")


def measure_reference_dwt(
    image_size: int = 256,
    scales: int = 6,
    bank: Optional[BiorthogonalBank] = None,
    repeats: int = 1,
    seed: int = 0,
) -> MeasuredSoftwareRun:
    """Time the floating-point NumPy FDWT on this machine (context only).

    This number characterises *today's* software substrate; it is reported
    alongside, but never substituted for, the calibrated Pentium baseline
    when reproducing the paper's 154x speedup.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    bank = bank or get_bank("F2")
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 4096, size=(image_size, image_size)).astype(float)
    # Warm-up run (array allocation, cache effects).
    fdwt_2d(image, bank, scales)
    start = time.perf_counter()
    for _ in range(repeats):
        fdwt_2d(image, bank, scales)
    elapsed = (time.perf_counter() - start) / repeats
    workload = WorkloadModel.for_bank(bank, image_size=image_size, scales=scales)
    return MeasuredSoftwareRun(
        image_size=image_size,
        scales=scales,
        bank_name=bank.name,
        seconds=elapsed,
        macs=workload.total_macs(),
    )
