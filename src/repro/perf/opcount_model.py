"""Workload model: MAC counts of the FDWT/IDWT (Eq. (1)/(2) of the paper).

Thin wrapper around :mod:`repro.dwt.opcount` that bundles the paper's worked
example (N = 512, 13-tap filters, S = 6 → 8.99·10⁶ MACs) together with the
counts our closed form and instrumented counter produce, so the performance
and speedup models always state explicitly which number they are using.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..dwt.opcount import mac_count_formula
from ..filters.catalog import get_bank
from ..filters.qmf import BiorthogonalBank

__all__ = [
    "PAPER_MAC_COUNT",
    "PAPER_IMAGE_SIZE",
    "PAPER_FILTER_LENGTH",
    "PAPER_SCALES",
    "WorkloadModel",
]

#: MAC count the paper quotes for its worked example (§2).
PAPER_MAC_COUNT = 8.99e6

#: Parameters of the worked example.
PAPER_IMAGE_SIZE = 512
PAPER_FILTER_LENGTH = 13
PAPER_SCALES = 6


@dataclass(frozen=True)
class WorkloadModel:
    """MAC workload of one forward (or inverse) transform.

    Attributes
    ----------
    image_size:
        Number of rows/columns ``N``.
    scales:
        Number of decomposition scales ``S``.
    length_h / length_g:
        Analysis filter lengths (both 13 in the paper's worked example,
        13/11 for the true F2 bank).
    """

    image_size: int = PAPER_IMAGE_SIZE
    scales: int = PAPER_SCALES
    length_h: int = PAPER_FILTER_LENGTH
    length_g: int = PAPER_FILTER_LENGTH

    @classmethod
    def for_bank(
        cls, bank: Optional[BiorthogonalBank] = None,
        image_size: int = PAPER_IMAGE_SIZE, scales: int = PAPER_SCALES,
    ) -> "WorkloadModel":
        """Workload using the true analysis lengths of a filter bank."""
        bank = bank or get_bank("F2")
        length_h, length_g = bank.analysis_lengths
        return cls(
            image_size=image_size,
            scales=scales,
            length_h=length_h,
            length_g=length_g,
        )

    # -- counts -----------------------------------------------------------------------
    def macs_per_scale(self) -> Dict[int, int]:
        """Per-scale MAC counts (Eq. (1))."""
        return mac_count_formula(
            self.image_size, self.length_h, self.length_g, self.scales
        )

    def total_macs(self) -> int:
        """Total MACs of the forward transform (Eq. (2)); same for the inverse."""
        return sum(self.macs_per_scale().values())

    def roundtrip_macs(self) -> int:
        """MACs of a forward + inverse round trip."""
        return 2 * self.total_macs()

    def relative_to_paper(self) -> float:
        """Ratio of this workload's total MACs to the paper's 8.99e6 figure."""
        return self.total_macs() / PAPER_MAC_COUNT
