"""Accelerator throughput model (the 3.5 images/s headline of §5).

Wraps the analytic cycle model of :mod:`repro.arch.accelerator` into the
terms the paper's conclusion uses — transform time, images per second at a
given clock — and provides the clock/image-size sweeps used by the
what-if benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..arch.accelerator import PerformanceEstimate, estimate_performance
from ..arch.config import ArchitectureConfig, paper_configuration

__all__ = [
    "PAPER_IMAGES_PER_SECOND",
    "PAPER_CLOCK_MHZ",
    "ThroughputModel",
    "clock_sweep",
    "image_size_sweep",
]

#: Throughput the paper quotes at 33 MHz for 512x512x12-bit images (§5).
PAPER_IMAGES_PER_SECOND = 3.5

#: Operating clock of the headline figure.
PAPER_CLOCK_MHZ = 33.0


@dataclass(frozen=True)
class ThroughputModel:
    """Throughput of the accelerator for one configuration."""

    config: ArchitectureConfig

    @classmethod
    def paper(cls) -> "ThroughputModel":
        """The paper's operating point (512x512, 13-tap, 6 scales, 33 MHz)."""
        return cls(config=paper_configuration())

    def estimate(self) -> PerformanceEstimate:
        """Full analytic performance estimate for this configuration."""
        return estimate_performance(self.config)

    @property
    def transform_seconds(self) -> float:
        return self.estimate().transform_seconds

    @property
    def images_per_second(self) -> float:
        return self.estimate().images_per_second

    @property
    def utilisation(self) -> float:
        return self.estimate().utilisation

    def at_clock(self, clock_mhz: float) -> "ThroughputModel":
        """Same architecture retimed to another clock frequency."""
        if clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        period = 1000.0 / clock_mhz
        config = ArchitectureConfig(
            image_size=self.config.image_size,
            scales=self.config.scales,
            bank_name=self.config.bank_name,
            word_length=self.config.word_length,
            accumulator_bits=self.config.accumulator_bits,
            input_bits=self.config.input_bits,
            clock_period_ns=period,
            dram_refresh_interval_cycles=self.config.dram_refresh_interval_cycles,
            refresh_stall_cycles=self.config.refresh_stall_cycles,
        )
        return ThroughputModel(config=config)

    def for_image_size(self, image_size: int) -> "ThroughputModel":
        """Same architecture processing a different (square) image size."""
        return ThroughputModel(config=self.config.with_image_size(image_size))


def clock_sweep(
    clocks_mhz: Iterable[float], base: Optional[ThroughputModel] = None
) -> Dict[float, PerformanceEstimate]:
    """Performance at several clock frequencies (design-space exploration)."""
    base = base or ThroughputModel.paper()
    return {clock: base.at_clock(clock).estimate() for clock in clocks_mhz}


def image_size_sweep(
    sizes: Iterable[int], base: Optional[ThroughputModel] = None
) -> Dict[int, PerformanceEstimate]:
    """Performance over image sizes (64 .. 1024), at the paper's clock."""
    base = base or ThroughputModel.paper()
    return {size: base.for_image_size(size).estimate() for size in sizes}
