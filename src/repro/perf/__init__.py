"""Performance models: MAC workloads, software baseline, throughput, speedup.

Public API
----------
``WorkloadModel``
    MAC counts of a transform (Eq. (1)/(2); the paper's 8.99e6 example).
``PentiumBaseline`` / ``measure_reference_dwt``
    The calibrated 133 MHz Pentium baseline (42 s) and a wall-clock
    measurement of our own NumPy transform for context.
``ThroughputModel`` / ``clock_sweep`` / ``image_size_sweep``
    Accelerator throughput (3.5 images/s at 33 MHz) and design sweeps.
``speedup_report``
    The 154x accelerator-vs-Pentium comparison.
"""

from .opcount_model import (
    PAPER_FILTER_LENGTH,
    PAPER_IMAGE_SIZE,
    PAPER_MAC_COUNT,
    PAPER_SCALES,
    WorkloadModel,
)
from .software_baseline import (
    PAPER_PENTIUM_CLOCK_MHZ,
    PAPER_PENTIUM_SECONDS,
    MeasuredSoftwareRun,
    PentiumBaseline,
    measure_reference_dwt,
)
from .speedup import PAPER_SPEEDUP, SpeedupReport, speedup_report
from .throughput import (
    PAPER_CLOCK_MHZ,
    PAPER_IMAGES_PER_SECOND,
    ThroughputModel,
    clock_sweep,
    image_size_sweep,
)

__all__ = [
    "PAPER_FILTER_LENGTH",
    "PAPER_IMAGE_SIZE",
    "PAPER_MAC_COUNT",
    "PAPER_SCALES",
    "WorkloadModel",
    "PAPER_PENTIUM_CLOCK_MHZ",
    "PAPER_PENTIUM_SECONDS",
    "MeasuredSoftwareRun",
    "PentiumBaseline",
    "measure_reference_dwt",
    "PAPER_SPEEDUP",
    "SpeedupReport",
    "speedup_report",
    "PAPER_CLOCK_MHZ",
    "PAPER_IMAGES_PER_SECOND",
    "ThroughputModel",
    "clock_sweep",
    "image_size_sweep",
]
