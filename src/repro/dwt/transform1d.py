"""One-dimensional forward/inverse DWT stages and multi-scale transforms.

These are the floating-point reference transforms.  A single stage splits a
signal into a low-pass ("average") and a high-pass ("detail") half; the
multi-scale transform applies the stage recursively to the average, exactly
as Mallat's pyramid algorithm prescribes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..filters.qmf import BiorthogonalBank
from .convolution import analysis_convolve, synthesis_accumulate

__all__ = [
    "analyze_1d",
    "synthesize_1d",
    "fdwt_1d",
    "idwt_1d",
    "max_scales_for_length",
]


def max_scales_for_length(length: int) -> int:
    """Largest number of dyadic scales applicable to a signal of ``length``.

    Each stage halves the length; the paper requires every intermediate
    length to remain even so that the periodic decimation stays well defined
    (a 512-sample row supports at most 8 scales; the paper uses 6).
    """
    if length < 2:
        return 0
    scales = 0
    while length % 2 == 0 and length >= 2:
        scales += 1
        length //= 2
    return scales


def analyze_1d(
    signal: np.ndarray, bank: BiorthogonalBank
) -> Tuple[np.ndarray, np.ndarray]:
    """One analysis stage: return ``(average, detail)`` halves of ``signal``."""
    lo = analysis_convolve(signal, bank.h)
    hi = analysis_convolve(signal, bank.g)
    return lo, hi


def synthesize_1d(
    average: np.ndarray, detail: np.ndarray, bank: BiorthogonalBank
) -> np.ndarray:
    """One synthesis stage: reconstruct the signal from its two halves."""
    average = np.asarray(average, dtype=float)
    detail = np.asarray(detail, dtype=float)
    if average.shape != detail.shape:
        raise ValueError(
            f"average and detail shapes differ: {average.shape} vs {detail.shape}"
        )
    out_len = 2 * average.shape[-1]
    return synthesis_accumulate(average, bank.ht, out_len) + synthesis_accumulate(
        detail, bank.gt, out_len
    )


def fdwt_1d(
    signal: np.ndarray, bank: BiorthogonalBank, scales: int
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Multi-scale forward 1-D DWT.

    Returns ``(average_S, [detail_1, ..., detail_S])`` where ``detail_j`` has
    length ``len(signal) / 2**j``.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ValueError("fdwt_1d expects a 1-D signal")
    if scales < 1:
        raise ValueError("scales must be >= 1")
    if max_scales_for_length(signal.size) < scales:
        raise ValueError(
            f"signal of length {signal.size} does not support {scales} dyadic scales"
        )
    details: List[np.ndarray] = []
    average = signal
    for _ in range(scales):
        average, detail = analyze_1d(average, bank)
        details.append(detail)
    return average, details


def idwt_1d(
    average: np.ndarray, details: Sequence[np.ndarray], bank: BiorthogonalBank
) -> np.ndarray:
    """Multi-scale inverse 1-D DWT (inverse of :func:`fdwt_1d`)."""
    signal = np.asarray(average, dtype=float)
    for detail in reversed(list(details)):
        signal = synthesize_1d(signal, detail, bank)
    return signal
