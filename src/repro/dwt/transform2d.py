"""Two-dimensional forward/inverse DWT (Mallat pyramid algorithm, Fig. 1).

One 2-D stage filters the rows with the H/G pair (and decimates columns by
two), then filters the columns of the two results (and decimates rows by
two), producing the four subimages of Fig. 1.  The multi-scale transform
recurses on the HH ("average") subimage.

These are the floating-point reference transforms used to validate the
fixed-point model and the cycle-accurate architecture model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..filters.qmf import BiorthogonalBank
from .convolution import analysis_convolve, synthesis_accumulate
from .subbands import ScaleDetails, WaveletPyramid
from .transform1d import max_scales_for_length

__all__ = [
    "analyze_2d_stage",
    "synthesize_2d_stage",
    "fdwt_2d",
    "idwt_2d",
    "reconstruct_preview",
    "validate_image_for_transform",
]


def validate_image_for_transform(image: np.ndarray, scales: int) -> np.ndarray:
    """Check that ``image`` is 2-D and supports ``scales`` dyadic scales."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if scales < 1:
        raise ValueError("scales must be >= 1")
    for size in image.shape:
        if max_scales_for_length(size) < scales:
            raise ValueError(
                f"image dimension {size} does not support {scales} dyadic scales"
            )
    return image


def _filter_rows(image: np.ndarray, bank: BiorthogonalBank) -> Tuple[np.ndarray, np.ndarray]:
    """Filter along rows (axis 1) and decimate columns by two."""
    lo = analysis_convolve(image, bank.h)
    hi = analysis_convolve(image, bank.g)
    return lo, hi


def _filter_cols(image: np.ndarray, bank: BiorthogonalBank) -> Tuple[np.ndarray, np.ndarray]:
    """Filter along columns (axis 0) and decimate rows by two."""
    lo = analysis_convolve(image.T, bank.h).T
    hi = analysis_convolve(image.T, bank.g).T
    return lo, hi


def analyze_2d_stage(
    image: np.ndarray, bank: BiorthogonalBank
) -> Tuple[np.ndarray, ScaleDetails]:
    """One 2-D analysis stage: return ``(dHH, ScaleDetails(HG, GH, GG))``.

    The ``scale`` attribute of the returned details is set to 1; the caller
    (the multi-scale driver) renumbers it.
    """
    image = np.asarray(image, dtype=float)
    row_lo, row_hi = _filter_rows(image, bank)
    hh, hg = _filter_cols(row_lo, bank)
    gh, gg = _filter_cols(row_hi, bank)
    return hh, ScaleDetails(scale=1, hg=hg, gh=gh, gg=gg)


def synthesize_2d_stage(
    hh: np.ndarray, details: ScaleDetails, bank: BiorthogonalBank
) -> np.ndarray:
    """One 2-D synthesis stage (inverse of :func:`analyze_2d_stage`)."""
    hh = np.asarray(hh, dtype=float)
    if hh.shape != details.shape:
        raise ValueError(
            f"approximation shape {hh.shape} does not match detail shape {details.shape}"
        )
    rows2 = 2 * hh.shape[0]

    def up_cols(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return (
            synthesis_accumulate(lo.T, bank.ht, rows2)
            + synthesis_accumulate(hi.T, bank.gt, rows2)
        ).T

    row_lo = up_cols(hh, details.hg)
    row_hi = up_cols(details.gh, details.gg)
    cols2 = 2 * hh.shape[1]
    return synthesis_accumulate(row_lo, bank.ht, cols2) + synthesis_accumulate(
        row_hi, bank.gt, cols2
    )


def fdwt_2d(image: np.ndarray, bank: BiorthogonalBank, scales: int) -> WaveletPyramid:
    """Multi-scale forward 2-D DWT of ``image`` (Fig. 1 applied S times)."""
    image = validate_image_for_transform(image, scales)
    details = []
    average = image
    for scale in range(1, scales + 1):
        average, stage_details = analyze_2d_stage(average, bank)
        stage_details.scale = scale
        details.append(stage_details)
    return WaveletPyramid(approximation=average, details=details)


def idwt_2d(pyramid: WaveletPyramid, bank: BiorthogonalBank) -> np.ndarray:
    """Multi-scale inverse 2-D DWT (inverse of :func:`fdwt_2d`)."""
    image = np.asarray(pyramid.approximation, dtype=float)
    for details in reversed(pyramid.details):
        image = synthesize_2d_stage(image, details, bank)
    return image


def reconstruct_preview(
    pyramid: WaveletPyramid, bank: BiorthogonalBank, at_scale: int
) -> np.ndarray:
    """Early-stopped inverse: the scale-``at_scale`` approximation image.

    Runs only the synthesis stages above ``at_scale``, so detail entries
    for finer scales are never touched (they may be ``None`` placeholders
    in a prefix-decoded pyramid).  ``at_scale=0`` equals :func:`idwt_2d`.
    This is the floating-point reference for the fixed-point
    :func:`repro.fxdwt.transform.reconstruct_preview`.
    """
    scales = len(pyramid.details)
    if not 0 <= at_scale <= scales:
        raise ValueError(f"at_scale must be within [0, {scales}], got {at_scale}")
    image = np.asarray(pyramid.approximation, dtype=float)
    for details in reversed(pyramid.details[at_scale:]):
        image = synthesize_2d_stage(image, details, bank)
    return image
