"""MAC operation counting (Eq. (1) and (2) of the paper).

The paper motivates the accelerator with the number of multiply-accumulate
(MAC) operations of the forward 2-D DWT: for ``N = 512``, 13-tap QMF filters
and ``S = 6`` scales it quotes ``8.99e6`` MACs and 42 s of computation on a
133 MHz Pentium.

Two counters are provided:

* :func:`mac_count_formula` — closed-form count per scale and in total,
  derived from the structure of Fig. 1 (each of the four subimages of scale
  ``j`` has ``(N/2^j)^2`` samples; producing a low/high pair costs
  ``L(H) + L(G)`` MACs per pair of output samples for the rows and again for
  the columns), i.e. ``MACs_j = 4 (N/2^j)^2 (L(H) + L(G))``.
* :class:`MacCounter` + :func:`count_macs_instrumented` — an instrumented
  scalar transform that counts every individual MAC actually executed, used
  to validate the closed form.

The paper's own printed formula is partially garbled in the available text;
the closed form above reproduces its worked example within ~7 % (8.39e6 for
the true F2 lengths 13/11, 9.08e6 if both filter lengths are taken as 13,
versus the quoted 8.99e6) — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..filters.qmf import BiorthogonalBank
from .transform1d import max_scales_for_length

__all__ = [
    "mac_count_per_scale",
    "mac_count_formula",
    "mac_count_paper_example",
    "MacCounter",
    "count_macs_instrumented",
]


def mac_count_per_scale(image_size: int, length_h: int, length_g: int, scale: int) -> int:
    """MACs needed to compute scale ``scale`` from scale ``scale - 1``.

    ``image_size`` is the number of rows (= columns) N of the original
    image.  Row filtering of the ``(N/2^(j-1))^2`` input consumes
    ``(L(H) + L(G))`` MACs per output column pair; column filtering of the
    two intermediate subimages consumes the same again, for a total of
    ``4 (N/2^j)^2 (L(H) + L(G))``.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    half_size = image_size // (2 ** scale)
    return 4 * half_size * half_size * (length_h + length_g)


def mac_count_formula(
    image_size: int, length_h: int, length_g: int, scales: int
) -> Dict[int, int]:
    """Per-scale MAC counts for a full ``scales``-scale FDWT.

    Returns a dict mapping scale ``j`` to its MAC count; the total is the sum
    of the values.  The same count applies to the IDWT.
    """
    if max_scales_for_length(image_size) < scales:
        raise ValueError(
            f"image size {image_size} does not support {scales} dyadic scales"
        )
    return {
        j: mac_count_per_scale(image_size, length_h, length_g, j)
        for j in range(1, scales + 1)
    }


def mac_count_paper_example() -> int:
    """The paper's worked example: N=512, both filter lengths 13, S=6.

    Returns the closed-form count (about 9.08e6); the paper quotes 8.99e6.
    """
    return sum(mac_count_formula(512, 13, 13, 6).values())


@dataclass
class MacCounter:
    """Mutable counter of multiply-accumulate operations."""

    macs: int = 0

    def add(self, count: int) -> None:
        if count < 0:
            raise ValueError("cannot add a negative number of MACs")
        self.macs += count

    def reset(self) -> None:
        self.macs = 0


def _count_stage_1d(length: int, filt_len: int, counter: MacCounter) -> None:
    """Account for one decimated 1-D convolution over ``length`` input samples."""
    counter.add((length // 2) * filt_len)


def count_macs_instrumented(
    image: np.ndarray, bank: BiorthogonalBank, scales: int
) -> Dict[int, int]:
    """Count the MACs the reference 2-D FDWT would actually execute.

    The transform itself is not run; the counting walks the exact same loop
    structure (rows then columns, per scale, per filter) and therefore counts
    exactly one MAC per filter tap per produced output sample, which is what
    the single-MAC hardware of the paper executes.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError("expected a 2-D image")
    rows, cols = image.shape
    per_scale: Dict[int, int] = {}
    for scale in range(1, scales + 1):
        counter = MacCounter()
        # Row filtering: each of the `rows` rows of length `cols` goes through
        # both the H and the G filter.
        for _ in range(rows):
            _count_stage_1d(cols, len(bank.h), counter)
            _count_stage_1d(cols, len(bank.g), counter)
        # Column filtering: the two intermediate subimages have `cols // 2`
        # columns of length `rows`, each filtered by H and G.
        for _ in range(2 * (cols // 2)):
            _count_stage_1d(rows, len(bank.h), counter)
            _count_stage_1d(rows, len(bank.g), counter)
        per_scale[scale] = counter.macs
        rows //= 2
        cols //= 2
    return per_scale
