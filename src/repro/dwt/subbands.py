"""Subband containers for the 2-D wavelet pyramid.

The forward 2-D DWT of an ``N x N`` image over ``S`` scales produces, for
each scale ``j = 1..S``, three directional detail subimages ``dHG_j``,
``dGH_j`` and ``dGG_j`` of size ``N/2^j``, plus a final average subimage
``dHH_S`` (Fig. 1 of the paper).  :class:`WaveletPyramid` holds exactly that
set, provides shape/consistency validation, and offers the "mosaic" layout
(all subbands packed into one ``N x N`` array, averages in the top-left
corner) that is convenient for storage, entropy coding and visual checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

__all__ = ["ScaleDetails", "WaveletPyramid"]

#: The three detail orientations in the naming of the paper.
DETAIL_KEYS: Tuple[str, str, str] = ("HG", "GH", "GG")


@dataclass
class ScaleDetails:
    """The three detail subimages produced at one scale.

    Following Fig. 1: rows are filtered first, then columns.  ``hg`` is the
    subband obtained with the low-pass on rows and high-pass on columns,
    ``gh`` the opposite, ``gg`` high-pass on both.
    """

    scale: int
    hg: np.ndarray
    gh: np.ndarray
    gg: np.ndarray

    def __post_init__(self) -> None:
        self.hg = np.asarray(self.hg)
        self.gh = np.asarray(self.gh)
        self.gg = np.asarray(self.gg)
        shapes = {self.hg.shape, self.gh.shape, self.gg.shape}
        if len(shapes) != 1:
            raise ValueError(f"detail subbands at scale {self.scale} have mixed shapes: {shapes}")
        if self.hg.ndim != 2:
            raise ValueError("detail subbands must be 2-D arrays")

    @property
    def shape(self) -> Tuple[int, int]:
        return self.hg.shape

    def as_dict(self) -> Dict[str, np.ndarray]:
        return {"HG": self.hg, "GH": self.gh, "GG": self.gg}

    def max_abs(self) -> float:
        """Largest absolute coefficient across the three orientations."""
        return float(
            max(np.abs(self.hg).max(), np.abs(self.gh).max(), np.abs(self.gg).max())
        )


@dataclass
class WaveletPyramid:
    """Complete output of a 2-D forward DWT over ``scales`` scales."""

    approximation: np.ndarray
    details: List[ScaleDetails] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.approximation = np.asarray(self.approximation)
        if self.approximation.ndim != 2:
            raise ValueError("approximation must be a 2-D array")
        self.validate()

    # -- structure -----------------------------------------------------------
    @property
    def scales(self) -> int:
        """Number of decomposition scales ``S``."""
        return len(self.details)

    @property
    def image_shape(self) -> Tuple[int, int]:
        """Shape of the original image this pyramid decomposes."""
        rows, cols = self.approximation.shape
        factor = 2 ** self.scales
        return rows * factor, cols * factor

    def detail(self, scale: int) -> ScaleDetails:
        """Details of ``scale`` (1-based, as in the paper)."""
        if not 1 <= scale <= self.scales:
            raise IndexError(f"scale {scale} outside 1..{self.scales}")
        return self.details[scale - 1]

    def validate(self) -> None:
        """Check the dyadic consistency of all subband shapes."""
        if not self.details:
            return
        rows, cols = self.image_shape
        for entry in self.details:
            expected = (rows // (2 ** entry.scale), cols // (2 ** entry.scale))
            if entry.shape != expected:
                raise ValueError(
                    f"scale {entry.scale} details have shape {entry.shape}, "
                    f"expected {expected} for a {rows}x{cols} image"
                )
        expected = (rows // (2 ** self.scales), cols // (2 ** self.scales))
        if self.approximation.shape != expected:
            raise ValueError(
                f"approximation has shape {self.approximation.shape}, expected {expected}"
            )

    # -- iteration / statistics ----------------------------------------------
    def iter_subbands(self) -> Iterator[Tuple[str, int, np.ndarray]]:
        """Yield ``(kind, scale, array)`` for every subband, coarse first.

        ``kind`` is ``"HH"`` for the approximation (scale ``S``) and
        ``"HG"``/``"GH"``/``"GG"`` for the details.
        """
        yield "HH", self.scales, self.approximation
        for entry in reversed(self.details):
            for kind, band in entry.as_dict().items():
                yield kind, entry.scale, band

    def coefficient_count(self) -> int:
        """Total number of coefficients (equals the original pixel count)."""
        total = self.approximation.size
        for entry in self.details:
            total += entry.hg.size + entry.gh.size + entry.gg.size
        return int(total)

    def max_abs_per_scale(self) -> Dict[int, float]:
        """Largest absolute coefficient per scale (scale ``S`` includes the
        approximation).  Used by the dynamic-range experiments."""
        out: Dict[int, float] = {}
        for entry in self.details:
            out[entry.scale] = entry.max_abs()
        out[self.scales] = max(
            out.get(self.scales, 0.0), float(np.abs(self.approximation).max())
        )
        return out

    def energy_per_scale(self) -> Dict[int, float]:
        """Sum of squared detail coefficients per scale (compression diagnostics)."""
        out: Dict[int, float] = {}
        for entry in self.details:
            out[entry.scale] = float(
                (entry.hg ** 2).sum() + (entry.gh ** 2).sum() + (entry.gg ** 2).sum()
            )
        return out

    # -- mosaic layout ---------------------------------------------------------
    def to_mosaic(self) -> np.ndarray:
        """Pack all subbands into a single array of the original image size.

        The approximation occupies the top-left ``N/2^S`` corner; the details
        of scale ``j`` occupy the three quadrants of the ``N/2^(j-1)`` block,
        in the conventional wavelet mosaic arrangement.
        """
        rows, cols = self.image_shape
        mosaic = np.zeros((rows, cols), dtype=self.approximation.dtype)
        r, c = self.approximation.shape
        mosaic[:r, :c] = self.approximation
        for entry in reversed(self.details):
            r, c = entry.shape
            mosaic[:r, c : 2 * c] = entry.hg
            mosaic[r : 2 * r, :c] = entry.gh
            mosaic[r : 2 * r, c : 2 * c] = entry.gg
        return mosaic

    @classmethod
    def from_mosaic(cls, mosaic: np.ndarray, scales: int) -> "WaveletPyramid":
        """Inverse of :meth:`to_mosaic`."""
        mosaic = np.asarray(mosaic)
        if mosaic.ndim != 2:
            raise ValueError("mosaic must be 2-D")
        rows, cols = mosaic.shape
        if rows % (2 ** scales) or cols % (2 ** scales):
            raise ValueError(
                f"mosaic of shape {mosaic.shape} cannot hold {scales} dyadic scales"
            )
        details: List[ScaleDetails] = []
        for scale in range(1, scales + 1):
            r = rows // (2 ** scale)
            c = cols // (2 ** scale)
            details.append(
                ScaleDetails(
                    scale=scale,
                    hg=mosaic[:r, c : 2 * c].copy(),
                    gh=mosaic[r : 2 * r, :c].copy(),
                    gg=mosaic[r : 2 * r, c : 2 * c].copy(),
                )
            )
        r = rows // (2 ** scales)
        c = cols // (2 ** scales)
        approximation = mosaic[:r, :c].copy()
        return cls(approximation=approximation, details=details)
