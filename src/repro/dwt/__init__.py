"""Floating-point reference DWT (Mallat pyramid algorithm with periodic extension).

Public API
----------
``fdwt_2d(image, bank, scales)`` / ``idwt_2d(pyramid, bank)``
    Multi-scale 2-D forward/inverse transform (Fig. 1 of the paper).
``fdwt_1d`` / ``idwt_1d`` and the single-stage ``analyze_*`` / ``synthesize_*``
    building blocks.
``WaveletPyramid`` / ``ScaleDetails``
    Subband containers with mosaic packing.
``mac_count_formula`` / ``count_macs_instrumented``
    MAC operation counting (Eq. 1/2).
"""

from .convolution import (
    analysis_convolve,
    analysis_convolve_scalar,
    analysis_pair,
    periodic_gather,
    synthesis_accumulate,
    synthesis_accumulate_scalar,
)
from .opcount import (
    MacCounter,
    count_macs_instrumented,
    mac_count_formula,
    mac_count_paper_example,
    mac_count_per_scale,
)
from .subbands import ScaleDetails, WaveletPyramid
from .transform1d import (
    analyze_1d,
    fdwt_1d,
    idwt_1d,
    max_scales_for_length,
    synthesize_1d,
)
from .transform2d import (
    analyze_2d_stage,
    fdwt_2d,
    idwt_2d,
    reconstruct_preview,
    synthesize_2d_stage,
    validate_image_for_transform,
)

__all__ = [
    "analysis_convolve",
    "analysis_convolve_scalar",
    "analysis_pair",
    "periodic_gather",
    "synthesis_accumulate",
    "synthesis_accumulate_scalar",
    "MacCounter",
    "count_macs_instrumented",
    "mac_count_formula",
    "mac_count_paper_example",
    "mac_count_per_scale",
    "ScaleDetails",
    "WaveletPyramid",
    "analyze_1d",
    "fdwt_1d",
    "idwt_1d",
    "max_scales_for_length",
    "synthesize_1d",
    "analyze_2d_stage",
    "fdwt_2d",
    "idwt_2d",
    "reconstruct_preview",
    "synthesize_2d_stage",
    "validate_image_for_transform",
]
