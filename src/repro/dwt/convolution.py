"""Periodic ("circular") convolution primitives.

The paper extends the image periodically on both rows and columns (§4.1,
"so called circular convolution") so that border samples stay alive in the
input buffer only while the current row/column is being processed.  All
transforms in this library therefore use periodic extension; these helpers
implement decimated analysis convolution and interpolated synthesis
convolution against that extension.

Two implementations are provided for each operation:

* a vectorised NumPy one (used by the reference transform), and
* a scalar "MAC-by-MAC" one that mirrors the order of operations of the
  hardware (used by the op-count instrumentation and by tests that check the
  vectorised path against an obviously-correct loop).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..filters.qmf import SymmetricFilter

__all__ = [
    "periodic_gather",
    "analysis_convolve",
    "analysis_convolve_scalar",
    "synthesis_accumulate",
    "synthesis_accumulate_scalar",
    "analysis_pair",
]


def periodic_gather(signal: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Gather ``signal[indices mod len(signal)]`` along the last axis.

    ``signal`` may be 1-D (a single row) or 2-D (a stack of rows transformed
    independently); ``indices`` may be any integer array, including negative
    values.
    """
    signal = np.asarray(signal)
    n = signal.shape[-1]
    if n == 0:
        raise ValueError("cannot gather from an empty signal")
    return signal[..., np.mod(indices, n)]


def analysis_convolve(signal: np.ndarray, filt: SymmetricFilter) -> np.ndarray:
    """Decimated analysis convolution ``y[k] = sum_n f[n] x[2k + n]``.

    Works on the last axis of ``signal`` (1-D or 2-D) with periodic
    extension.  The signal length along the last axis must be even.
    """
    signal = np.asarray(signal, dtype=float)
    n = signal.shape[-1]
    if n % 2 != 0:
        raise ValueError(f"signal length {n} must be even for a decimated stage")
    half = n // 2
    out_shape = signal.shape[:-1] + (half,)
    out = np.zeros(out_shape, dtype=float)
    base = 2 * np.arange(half)
    for idx, coeff in filt.items():
        out += coeff * periodic_gather(signal, base + idx)
    return out


def analysis_convolve_scalar(signal: np.ndarray, filt: SymmetricFilter) -> np.ndarray:
    """Scalar (per-MAC) version of :func:`analysis_convolve` for 1-D input.

    Mirrors the hardware schedule: each output sample is produced by ``L``
    consecutive multiply-accumulate operations.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ValueError("scalar convolution operates on 1-D signals")
    n = signal.size
    if n % 2 != 0:
        raise ValueError(f"signal length {n} must be even for a decimated stage")
    out = np.zeros(n // 2, dtype=float)
    for k in range(n // 2):
        acc = 0.0
        for idx, coeff in filt.items():
            acc += coeff * signal[(2 * k + idx) % n]
        out[k] = acc
    return out


def synthesis_accumulate(
    coefficients: np.ndarray, filt: SymmetricFilter, output_length: int
) -> np.ndarray:
    """Upsample-and-filter one synthesis branch.

    Computes ``x[m] = sum_k f[m - 2k] c[k]`` over the last axis with periodic
    wrap-around into an output of length ``output_length`` (which must be
    twice the coefficient length).
    """
    coefficients = np.asarray(coefficients, dtype=float)
    half = coefficients.shape[-1]
    if output_length != 2 * half:
        raise ValueError(
            f"output length {output_length} must be twice the coefficient "
            f"length {half}"
        )
    out_shape = coefficients.shape[:-1] + (output_length,)
    out = np.zeros(out_shape, dtype=float)
    positions = 2 * np.arange(half)
    for idx, coeff in filt.items():
        np.add.at(
            out,
            (..., np.mod(positions + idx, output_length)),
            coeff * coefficients,
        )
    return out


def synthesis_accumulate_scalar(
    coefficients: np.ndarray, filt: SymmetricFilter, output_length: int
) -> np.ndarray:
    """Scalar (per-MAC) version of :func:`synthesis_accumulate` for 1-D input."""
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.ndim != 1:
        raise ValueError("scalar synthesis operates on 1-D signals")
    half = coefficients.size
    if output_length != 2 * half:
        raise ValueError(
            f"output length {output_length} must be twice the coefficient "
            f"length {half}"
        )
    out = np.zeros(output_length, dtype=float)
    for k in range(half):
        for idx, coeff in filt.items():
            out[(2 * k + idx) % output_length] += coeff * coefficients[k]
    return out


def analysis_pair(
    signal: np.ndarray, lowpass: SymmetricFilter, highpass: SymmetricFilter
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a low-pass/high-pass analysis pair to the last axis of ``signal``."""
    return analysis_convolve(signal, lowpass), analysis_convolve(signal, highpass)
