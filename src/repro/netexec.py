"""``python -m repro.netexec`` — socket pool worker entry point.

Thin launcher for :mod:`repro.coding.netexec`: ``worker`` serves
compress/decompress/verify jobs on a listen address, ``ping`` heartbeats a
worker, ``shutdown`` drains one.  See ``docs/operations.md`` for the
runbook.
"""

from .coding.netexec import main

if __name__ == "__main__":
    raise SystemExit(main())
