"""Technology parameters (cell-level areas and delays).

The paper reports silicon figures obtained with the ES2 ECPD07 (0.7 µm CMOS)
library and the ES2 megacell compiler under worst-case industrial
conditions.  Neither the library data-book nor the compiler is available, so
this module provides a small parametric cell model — delay per full-adder
level, register overhead, area per adder cell / register bit / RAM bit —
whose constants are **calibrated to the numbers printed in the paper**
(Table V for the multipliers, §5 for the 11.2 mm² datapath, Table III for
the memory-dominated prior architectures).

Every figure derived from these constants is therefore a *model output
anchored to the paper's published cell figures*, not an independent silicon
measurement; EXPERIMENTS.md spells out which numbers are calibration inputs
and which are genuine predictions of the model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TechnologyParameters", "es2_07um", "scaled_technology"]


@dataclass(frozen=True)
class TechnologyParameters:
    """Cell-level constants of a CMOS technology.

    Attributes
    ----------
    name:
        Human-readable technology name.
    feature_size_um:
        Drawn feature size in micrometres (0.7 for ES2 ECPD07).
    full_adder_delay_ns:
        Propagation delay of one full-adder (carry) level, worst case.
    register_overhead_ns:
        Clock-to-Q plus setup overhead added to every pipeline stage.
    skip_adder_delay_per_bit_ns:
        Effective per-bit delay of the final wide carry-propagate adder used
        in the pipelined multiplier (a carry-skip style adder: much faster
        per bit than a ripple chain, slower than a full lookahead).
    and_gate_delay_ns:
        Delay of the partial-product AND gate level.
    array_cell_area_mm2:
        Area of one cell (gated full adder) of a compiled array multiplier.
    wallace_cell_area_mm2:
        Area of one cell of the Wallace-tree multiplier (less regular layout,
        higher routing overhead).
    register_bit_area_mm2:
        Area of one flip-flop.
    ram_bit_area_mm2:
        Area of one bit of compiled on-chip RAM.
    dram_bit_area_mm2:
        Area of one bit of (off-chip style) DRAM, used only when a prior
        architecture is modelled with its image memory on chip.
    """

    name: str = "ES2 ECPD07 (0.7um CMOS)"
    feature_size_um: float = 0.7
    full_adder_delay_ns: float = 0.8
    register_overhead_ns: float = 1.28
    skip_adder_delay_per_bit_ns: float = 0.3465
    and_gate_delay_ns: float = 0.4
    array_cell_area_mm2: float = 0.002827
    wallace_cell_area_mm2: float = 0.007691
    register_bit_area_mm2: float = 0.0008
    ram_bit_area_mm2: float = 0.00026
    dram_bit_area_mm2: float = 0.00005

    def __post_init__(self) -> None:
        for field_name in (
            "feature_size_um",
            "full_adder_delay_ns",
            "register_overhead_ns",
            "skip_adder_delay_per_bit_ns",
            "and_gate_delay_ns",
            "array_cell_area_mm2",
            "wallace_cell_area_mm2",
            "register_bit_area_mm2",
            "ram_bit_area_mm2",
            "dram_bit_area_mm2",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


def es2_07um() -> TechnologyParameters:
    """The calibrated ES2 0.7 µm parameter set used throughout the reproduction."""
    return TechnologyParameters()


def scaled_technology(
    base: TechnologyParameters, feature_size_um: float, name: str = ""
) -> TechnologyParameters:
    """Naively scale a technology to another feature size.

    Classical (Dennard-style) scaling: areas scale with the square of the
    feature-size ratio, delays scale linearly.  This is only used by the
    what-if benchmarks (e.g. "what would the datapath area be in 0.35 µm?")
    and is clearly an extrapolation, not a paper result.
    """
    if feature_size_um <= 0:
        raise ValueError("feature_size_um must be positive")
    ratio = feature_size_um / base.feature_size_um
    return replace(
        base,
        name=name or f"{base.name} scaled to {feature_size_um}um",
        feature_size_um=feature_size_um,
        full_adder_delay_ns=base.full_adder_delay_ns * ratio,
        register_overhead_ns=base.register_overhead_ns * ratio,
        skip_adder_delay_per_bit_ns=base.skip_adder_delay_per_bit_ns * ratio,
        and_gate_delay_ns=base.and_gate_delay_ns * ratio,
        array_cell_area_mm2=base.array_cell_area_mm2 * ratio * ratio,
        wallace_cell_area_mm2=base.wallace_cell_area_mm2 * ratio * ratio,
        register_bit_area_mm2=base.register_bit_area_mm2 * ratio * ratio,
        ram_bit_area_mm2=base.ram_bit_area_mm2 * ratio * ratio,
        dram_bit_area_mm2=base.dram_bit_area_mm2 * ratio * ratio,
    )
