"""Timing checks and the Table V multiplier comparison.

The paper's timing argument is simple: the megacell-compiled 32x32
multiplier has a 50.88 ns access time, too slow for the intended 25 ns
clock, so a 2-stage pipelined Wallace multiplier (23.45 ns per stage) is
designed instead.  This module exposes that comparison and a generic
"does this block meet the clock?" check used by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .cells import TechnologyParameters, es2_07um

__all__ = [
    "PAPER_TABLE_V",
    "MultiplierTimingRow",
    "multiplier_comparison",
    "meets_clock",
    "max_frequency_mhz",
]


@dataclass(frozen=True)
class MultiplierTimingRow:
    """One row of the multiplier comparison (Table V)."""

    design: str
    access_time_ns: float
    area_mm2: float

    @property
    def max_frequency_mhz(self) -> float:
        return 1000.0 / self.access_time_ns


#: The two rows printed in Table V of the paper (model calibration targets).
PAPER_TABLE_V: List[MultiplierTimingRow] = [
    MultiplierTimingRow(design="ES2 (megacell compiled)", access_time_ns=50.88, area_mm2=2.92),
    MultiplierTimingRow(design="Pipelined (2-stage Wallace)", access_time_ns=23.45, area_mm2=8.03),
]


def multiplier_comparison(
    bits: int = 32,
    pipeline_stages: int = 2,
    tech: Optional[TechnologyParameters] = None,
) -> List[MultiplierTimingRow]:
    """Model-derived counterpart of Table V (compiled array vs pipelined Wallace)."""
    from ..arch.multiplier import array_multiplier_estimate, wallace_multiplier_estimate

    tech = tech or es2_07um()
    array = array_multiplier_estimate(bits, tech)
    wallace = wallace_multiplier_estimate(bits, pipeline_stages, tech)
    return [
        MultiplierTimingRow(
            design="ES2 (megacell compiled)",
            access_time_ns=array.critical_path_ns,
            area_mm2=array.area_mm2,
        ),
        MultiplierTimingRow(
            design=f"Pipelined ({pipeline_stages}-stage Wallace)",
            access_time_ns=wallace.critical_path_ns,
            area_mm2=wallace.area_mm2,
        ),
    ]


def meets_clock(access_time_ns: float, clock_period_ns: float) -> bool:
    """True if a block with ``access_time_ns`` critical path meets the clock."""
    if access_time_ns <= 0 or clock_period_ns <= 0:
        raise ValueError("times must be positive")
    return access_time_ns <= clock_period_ns


def max_frequency_mhz(access_time_ns: float) -> float:
    """Highest clock frequency a block with this critical path supports."""
    if access_time_ns <= 0:
        raise ValueError("access_time_ns must be positive")
    return 1000.0 / access_time_ns
