"""ES2 0.7 µm CMOS technology model (cell areas/delays, block estimators, timing).

The constants are calibrated to the silicon figures the paper prints
(Table V, Table III, the 11.2 mm² datapath); see the module docstrings and
EXPERIMENTS.md for which numbers are calibration inputs versus model outputs.
"""

from .area import (
    AreaBreakdown,
    adder_area_mm2,
    barrel_shifter_area_mm2,
    multiplier_area_mm2,
    ram_area_mm2,
    register_area_mm2,
)
from .cells import TechnologyParameters, es2_07um, scaled_technology
from .timing import (
    PAPER_TABLE_V,
    MultiplierTimingRow,
    max_frequency_mhz,
    meets_clock,
    multiplier_comparison,
)

__all__ = [
    "AreaBreakdown",
    "adder_area_mm2",
    "barrel_shifter_area_mm2",
    "multiplier_area_mm2",
    "ram_area_mm2",
    "register_area_mm2",
    "TechnologyParameters",
    "es2_07um",
    "scaled_technology",
    "PAPER_TABLE_V",
    "MultiplierTimingRow",
    "max_frequency_mhz",
    "meets_clock",
    "multiplier_comparison",
]
