"""Block-level area estimation on top of the cell model.

These estimators turn structural quantities (numbers of multipliers, adder
bits, register bits, RAM bits) into square millimetres using the calibrated
:class:`~repro.technology.cells.TechnologyParameters`.  They are used by

* the proposed-datapath area composition (the paper's 11.2 mm² figure),
* the prior-architecture models of :mod:`repro.baselines` (Table III),
* the multiplier comparison of Table V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from .cells import TechnologyParameters, es2_07um

__all__ = [
    "adder_area_mm2",
    "register_area_mm2",
    "ram_area_mm2",
    "barrel_shifter_area_mm2",
    "multiplier_area_mm2",
    "AreaBreakdown",
]


def adder_area_mm2(bits: int, tech: Optional[TechnologyParameters] = None) -> float:
    """Area of a ``bits``-wide carry-propagate adder (one cell per bit)."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    tech = tech or es2_07um()
    return bits * tech.array_cell_area_mm2


def register_area_mm2(bits: int, tech: Optional[TechnologyParameters] = None) -> float:
    """Area of ``bits`` flip-flops."""
    if bits < 0:
        raise ValueError("bits must be >= 0")
    tech = tech or es2_07um()
    return bits * tech.register_bit_area_mm2


def ram_area_mm2(
    words: int, word_bits: int, tech: Optional[TechnologyParameters] = None
) -> float:
    """Area of a compiled on-chip RAM of ``words`` x ``word_bits``."""
    if words < 0 or word_bits < 1:
        raise ValueError("words must be >= 0 and word_bits >= 1")
    tech = tech or es2_07um()
    return words * word_bits * tech.ram_bit_area_mm2


def barrel_shifter_area_mm2(
    bits: int, tech: Optional[TechnologyParameters] = None
) -> float:
    """Area of a logarithmic barrel shifter over ``bits`` (mux cell ≈ half an adder)."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    tech = tech or es2_07um()
    levels = max(1, int(math.ceil(math.log2(bits))))
    return bits * levels * 0.5 * tech.array_cell_area_mm2


def multiplier_area_mm2(
    bits: int = 32,
    kind: str = "array",
    pipeline_stages: int = 2,
    tech: Optional[TechnologyParameters] = None,
) -> float:
    """Area of one ``bits x bits`` multiplier (``kind`` = 'array' or 'wallace')."""
    # Imported here to avoid a circular import (arch.multiplier uses this module's
    # sibling `cells`, not `area`).
    from ..arch.multiplier import array_multiplier_estimate, wallace_multiplier_estimate

    tech = tech or es2_07um()
    if kind == "array":
        return array_multiplier_estimate(bits, tech).area_mm2
    if kind == "wallace":
        return wallace_multiplier_estimate(bits, pipeline_stages, tech).area_mm2
    raise ValueError(f"unknown multiplier kind {kind!r}")


@dataclass
class AreaBreakdown:
    """Per-block area report with a grand total."""

    name: str
    blocks: Dict[str, float] = field(default_factory=dict)

    def add(self, block: str, area_mm2: float) -> None:
        if area_mm2 < 0:
            raise ValueError("block areas must be non-negative")
        self.blocks[block] = self.blocks.get(block, 0.0) + area_mm2

    @property
    def total_mm2(self) -> float:
        return float(sum(self.blocks.values()))

    def as_rows(self):
        """``(block, area)`` rows plus a total row, for table rendering."""
        rows = [(k, v) for k, v in self.blocks.items()]
        rows.append(("TOTAL", self.total_mm2))
        return rows

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"Area breakdown: {self.name}"]
        for block, area in self.blocks.items():
            lines.append(f"  {block:<32s} {area:8.3f} mm2")
        lines.append(f"  {'TOTAL':<32s} {self.total_mm2:8.3f} mm2")
        return "\n".join(lines)
