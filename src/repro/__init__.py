"""repro — reproduction of the DATE'98 lossless medical-image DWT architecture.

The package is organised as one subpackage per subsystem (see DESIGN.md):

* :mod:`repro.filters` — the Table I biorthogonal filter banks.
* :mod:`repro.dwt` — floating-point reference 2-D DWT (Mallat pyramid).
* :mod:`repro.fixedpoint` — two's-complement formats, rounding, Table II analysis.
* :mod:`repro.fxdwt` — bit-accurate fixed-point transform and lossless checks.
* :mod:`repro.arch` — cycle-accurate model of the proposed architecture.
* :mod:`repro.baselines` — prior-architecture hardware-requirement models (Table III).
* :mod:`repro.technology` — ES2 0.7 µm area/timing model (Table V, 11.2 mm²).
* :mod:`repro.perf` — MAC counts, software baseline, throughput and speedup.
* :mod:`repro.imaging` — synthetic 12-bit medical-image phantoms and metrics.
* :mod:`repro.coding` — lossless wavelet codecs (extension).
* :mod:`repro.analysis` — per-table/figure experiment drivers.

The most common entry points are re-exported here.
"""

from .arch import DwtAccelerator, estimate_performance, paper_configuration
from .filters import available_banks, default_bank, get_bank
from .fxdwt import FixedPointDWT, verify_lossless

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "available_banks",
    "default_bank",
    "get_bank",
    "FixedPointDWT",
    "verify_lossless",
    "DwtAccelerator",
    "estimate_performance",
    "paper_configuration",
]
