"""Cycle-accurate model of the proposed VLSI architecture (§4 of the paper).

Public API
----------
``ArchitectureConfig`` / ``paper_configuration``
    Static parameters (N, S, filter bank, word length, clock, refresh).
``DwtAccelerator``
    Top-level behavioural + cycle-counting model (forward/inverse runs,
    ``engine="fast"`` whole-pass arrays or ``"scalar"`` reference).
``FastDatapath``
    Batched (vectorised) line-pass engine over a scalar ``Datapath``.
``estimate_performance``
    Closed-form cycle/throughput estimate (3.5 images/s headline).
``Datapath`` / ``MacUnit`` / ``AlignmentUnit`` / ``PipelinedMultiplier``
    The Fig. 3 datapath blocks.
``CoefficientRam`` / ``ExternalDram`` / ``FrameBuffer`` / ``RefreshTimer``
    Memory subsystem models.
``operation_schedule`` / ``simulate_utilisation`` / ``utilisation_formula``
    The Fig. 2 macro-cycle schedule and the 99.04 % utilisation accounting.
``minimum_buffer_size`` / ``bank2_rounds_table`` / ``fifo_bounds_table``
    The §4.1/§4.4 buffer and FIFO sizing (Tables IV and VI).
``proposed_area_breakdown`` / ``hardware_requirements``
    The 11.2 mm² area composition and component counts.
"""

from .accelerator import (
    ENGINES,
    AcceleratorRunReport,
    DwtAccelerator,
    PerformanceEstimate,
    estimate_performance,
    forward_macrocycles,
    inverse_macrocycles,
)
from .alignment import AlignmentEntry, AlignmentUnit
from .coeff_ram import FILTER_ROLES, CoefficientRam
from .config import ArchitectureConfig, paper_configuration
from .datapath import Datapath, DatapathStats
from .dram import ExternalDram, FrameBuffer, RefreshTimer
from .fast_datapath import FastDatapath
from .host_interface import (
    BoardThroughputReport,
    HostTransferModel,
    PciBoardModel,
    PciBusParameters,
)
from .input_buffer import (
    BankLayout,
    LineOccupancyReport,
    bank2_rounds,
    bank2_rounds_table,
    bank_layout,
    bank_size,
    minimum_buffer_size,
    rounded_buffer_size,
    simulate_line_occupancy,
)
from .mac import MacStats, MacUnit
from .multiplier import (
    MultiplierEstimate,
    PipelinedMultiplier,
    array_multiplier_estimate,
    wallace_multiplier_estimate,
    wallace_tree_depth,
)
from .output_fifo import (
    FifoDepthBounds,
    VariableDepthFifo,
    choose_fifo_depth,
    dependence_distances,
    fifo_bounds_table,
    fifo_depth_bounds,
    max_fifo_depth,
    min_fifo_depth,
)
from .report import (
    PAPER_PROPOSED_AREA_MM2,
    HardwareRequirements,
    hardware_requirements,
    proposed_area_breakdown,
)
from .scheduler import (
    CycleSlot,
    MacrocycleCounter,
    UtilisationReport,
    operation_schedule,
    refresh_schedule_cycles,
    simulate_utilisation,
    utilisation_formula,
)

__all__ = [
    "AcceleratorRunReport",
    "DwtAccelerator",
    "PerformanceEstimate",
    "estimate_performance",
    "forward_macrocycles",
    "inverse_macrocycles",
    "AlignmentEntry",
    "AlignmentUnit",
    "FILTER_ROLES",
    "CoefficientRam",
    "ArchitectureConfig",
    "paper_configuration",
    "Datapath",
    "DatapathStats",
    "ENGINES",
    "FastDatapath",
    "ExternalDram",
    "FrameBuffer",
    "RefreshTimer",
    "BoardThroughputReport",
    "HostTransferModel",
    "PciBoardModel",
    "PciBusParameters",
    "BankLayout",
    "LineOccupancyReport",
    "bank2_rounds",
    "bank2_rounds_table",
    "bank_layout",
    "bank_size",
    "minimum_buffer_size",
    "rounded_buffer_size",
    "simulate_line_occupancy",
    "MacStats",
    "MacUnit",
    "MultiplierEstimate",
    "PipelinedMultiplier",
    "array_multiplier_estimate",
    "wallace_multiplier_estimate",
    "wallace_tree_depth",
    "FifoDepthBounds",
    "VariableDepthFifo",
    "choose_fifo_depth",
    "dependence_distances",
    "fifo_bounds_table",
    "fifo_depth_bounds",
    "max_fifo_depth",
    "min_fifo_depth",
    "PAPER_PROPOSED_AREA_MM2",
    "HardwareRequirements",
    "hardware_requirements",
    "proposed_area_breakdown",
    "CycleSlot",
    "MacrocycleCounter",
    "UtilisationReport",
    "operation_schedule",
    "refresh_schedule_cycles",
    "simulate_utilisation",
    "utilisation_formula",
]
