"""Input buffer organisation (§4.1, Fig. 4 and Table IV).

The input buffer holds the samples of the row/column currently being
convolved so that every datum is read from the external DRAM exactly once.
With the periodic ("circular") extension, the first ``2l`` samples of a line
are the *border data*: they are needed again by the last outputs of the line
(whose windows wrap around), so they stay resident for the whole line.  The
minimum buffer size is therefore

    Bsize = 2*l (border) + 2*l + 1 (current window) = 4*l + 1

which the paper rounds up to the next power of two (32 words for L = 13) to
simplify the addressing.  The buffer is folded into two banks of
``Bsize/2`` words (Fig. 4); Bank2 is refilled ``#rounds`` times per line
(Table IV) while Bank1 keeps the border data and the line remainder, and the
roles of the banks swap between even and odd rows/columns.

Besides the static sizing helpers, :func:`simulate_line_occupancy` replays
the per-macro-cycle read/produce/retire schedule of one line and verifies
that the live working set never exceeds ``4*l + 1`` — the claim behind the
paper's buffer sizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = [
    "minimum_buffer_size",
    "rounded_buffer_size",
    "bank_size",
    "bank2_rounds",
    "bank2_rounds_table",
    "BankLayout",
    "bank_layout",
    "LineOccupancyReport",
    "simulate_line_occupancy",
]


def minimum_buffer_size(half_filter_length: int) -> int:
    """``Bsize = 4*l + 1`` (§4.1)."""
    if half_filter_length < 1:
        raise ValueError("half_filter_length must be >= 1")
    return 4 * half_filter_length + 1


def rounded_buffer_size(half_filter_length: int) -> int:
    """Minimum buffer size rounded up to the next power of two (32 for l=6)."""
    size = 1
    minimum = minimum_buffer_size(half_filter_length)
    while size < minimum:
        size *= 2
    return size


def bank_size(half_filter_length: int) -> int:
    """Size of each of the two banks the buffer is folded into."""
    return rounded_buffer_size(half_filter_length) // 2


def bank2_rounds(line_length: int, half_filter_length: int) -> int:
    """Number of times Bank2 is refilled while processing one line.

    Bank2 holds ``Bsize/2`` consecutive samples; a line of ``line_length``
    samples therefore streams through it ``line_length / (Bsize/2) - 1``
    additional times after the initial fill (Table IV: 31 rounds for a
    512-sample line with a 13-tap filter, down to 0 rounds for the 16-sample
    lines of scale 6).
    """
    if line_length < 2:
        raise ValueError("line_length must be >= 2")
    bank = bank_size(half_filter_length)
    if line_length <= bank:
        return 0
    return line_length // bank - 1


def bank2_rounds_table(
    image_size: int, scales: int, half_filter_length: int
) -> Dict[int, Dict[str, int]]:
    """Reproduce Table IV: per-scale line length and Bank2 rounds."""
    table: Dict[int, Dict[str, int]] = {}
    for scale in range(1, scales + 1):
        line = image_size // (2 ** (scale - 1))
        table[scale] = {
            "line_length": line,
            "rounds": bank2_rounds(line, half_filter_length),
        }
    return table


@dataclass(frozen=True)
class BankLayout:
    """Address ranges of the folded buffer for one line parity (Fig. 4)."""

    parity: str  # "even" or "odd"
    border_range: range  # addresses holding the 2l border samples
    streaming_range: range  # addresses refilled #rounds times
    remainder_range: range  # addresses holding the tail of the line

    @property
    def total_words(self) -> int:
        return len(self.border_range) + len(self.streaming_range) + len(self.remainder_range)


def bank_layout(half_filter_length: int, parity: str = "even") -> BankLayout:
    """Address map of the two banks for even or odd rows/columns (Fig. 4).

    For even lines the border data sits at the top of Bank1 and Bank2 is the
    streaming half; for odd lines the roles of the two banks swap.
    """
    if parity not in ("even", "odd"):
        raise ValueError("parity must be 'even' or 'odd'")
    l = half_filter_length
    size = rounded_buffer_size(l)
    bank = size // 2
    if parity == "even":
        border = range(0, 2 * l)
        streaming = range(bank, size)
        remainder = range(2 * l, bank)
    else:
        border = range(bank, bank + 2 * l)
        streaming = range(0, bank)
        remainder = range(bank + 2 * l, size)
    return BankLayout(
        parity=parity,
        border_range=border,
        streaming_range=streaming,
        remainder_range=remainder,
    )


@dataclass(frozen=True)
class LineOccupancyReport:
    """Result of replaying the buffer schedule of one line."""

    line_length: int
    half_filter_length: int
    macrocycles: int
    dram_reads: int
    outputs: int
    max_live_words: int
    minimum_buffer_size: int
    fits_minimum_buffer: bool


def simulate_line_occupancy(line_length: int, half_filter_length: int) -> LineOccupancyReport:
    """Replay one line's schedule and measure the peak buffer occupancy.

    The schedule reads the line's samples from DRAM strictly in order, one
    per macro-cycle; an output (alternating low-pass / high-pass) is emitted
    as soon as its causal window ``x[2k] .. x[2k + 2l]`` (indices mod the
    line length) is fully resident; a sample is retired once the last output
    needing it has been emitted — except the ``2l`` border samples, which
    stay resident until the end of the line because the final windows wrap
    around onto them.
    """
    M = line_length
    l = half_filter_length
    if M < 2 or M % 2:
        raise ValueError("line_length must be even and >= 2")
    if M <= 2 * l:
        raise ValueError(
            f"line of {M} samples is shorter than the filter support {2 * l + 1}"
        )
    taps = 2 * l + 1

    # Last output index (k) that uses each sample.
    last_use: Dict[int, int] = {}
    for k in range(M // 2):
        for n in range(taps):
            sample = (2 * k + n) % M
            last_use[sample] = max(last_use.get(sample, -1), k)

    live: set = set()
    next_read = 0
    next_output = 0
    macrocycles = 0
    outputs = 0
    max_live = 0

    def window_resident(k: int) -> bool:
        return all(((2 * k + n) % M) in live for n in range(taps))

    while next_output < M // 2 or next_read < M:
        macrocycles += 1
        if next_read < M:
            live.add(next_read)
            next_read += 1
        max_live = max(max_live, len(live))
        # Emit every output whose window is now complete (the hardware emits
        # one per macro-cycle; emitting eagerly here only lowers occupancy
        # between reads, the peak is reached right after a read either way).
        while next_output < M // 2 and window_resident(next_output):
            k = next_output
            outputs += 2  # low-pass and high-pass share the window
            next_output += 1
            # Retire samples whose last user was this output.
            for n in range(taps):
                sample = (2 * k + n) % M
                if last_use[sample] == k:
                    live.discard(sample)

    minimum = minimum_buffer_size(l)
    return LineOccupancyReport(
        line_length=M,
        half_filter_length=l,
        macrocycles=macrocycles,
        dram_reads=M,
        outputs=outputs,
        max_live_words=max_live,
        minimum_buffer_size=minimum,
        fits_minimum_buffer=max_live <= minimum,
    )
