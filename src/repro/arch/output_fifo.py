"""Output FIFO organisation and dependence-distance analysis (§4.4, Table VI).

When the FDWT proceeds from one scale to the next, the outputs of a
convolution pass are written back to the same external-memory locations that
still hold the inputs of that pass (the transform is computed in place, one
image-sized DRAM).  Two hazards bound the number of cycles ``D`` by which
the output FIFO delays the write-back:

* **Write-after-read (lower bound).**  Position ``j`` of the column being
  processed must not be overwritten before its old value has been read as a
  convolution input.  The reads proceed one position per macro-cycle
  (``read_cycle(j) = l + 1 + j``); the new value destined for position ``j``
  is produced earlier than that for the second (high-pass) half of the
  column, so the write must be delayed by at least ``MIN(D)`` cycles.
* **Read-after-write (upper bound).**  The following convolution pass starts
  reading the freshly written values shortly after the current pass ends;
  a write delayed too much would not have landed yet, which caps the delay
  at ``MAX(D)``.

With the schedule conventions documented in the functions below the bounds
come out as ``MIN(D) = M/2 - l`` and ``MAX(D) = M - l - 2`` for a line of
``M`` samples, which reproduces Table VI of the paper exactly
(250/504, 122/248, 58/120, 26/56, 10/24, 2/8 for N = 512, L = 13).
Because ``D`` changes with the scale, the FIFO is implemented as a
variable-depth FIFO in the intermediate RAM, exactly as §4.4 describes;
:class:`VariableDepthFifo` is the behavioural model of that structure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

__all__ = [
    "read_cycle",
    "write_available_cycle",
    "next_pass_read_cycle",
    "dependence_distances",
    "min_fifo_depth",
    "max_fifo_depth",
    "fifo_depth_bounds",
    "fifo_bounds_table",
    "choose_fifo_depth",
    "VariableDepthFifo",
]


def read_cycle(position: int, half_filter_length: int) -> int:
    """Macro-cycle at which the *old* value at ``position`` is read.

    Reads proceed in position order, one per macro-cycle, after a prologue of
    ``l + 1`` cycles (the pipeline fill of Fig. 2): ``read_cycle(j) = l+1+j``.
    """
    if position < 0:
        raise ValueError("position must be non-negative")
    return half_filter_length + 1 + position


def write_available_cycle(position: int, line_length: int, half_filter_length: int) -> int:
    """Macro-cycle at which the *new* value for ``position`` becomes available.

    Outputs are stored in decimated order: low-pass results occupy positions
    ``0 .. M/2 - 1`` and high-pass results positions ``M/2 .. M - 1``.  The
    low/high pair of output index ``k`` is produced once its causal window
    ``x[2k] .. x[2k + 2l]`` has been read, i.e. at macro-cycles
    ``2k + 2l + 1`` and ``2k + 2l + 2`` respectively.
    """
    M = line_length
    l = half_filter_length
    if not 0 <= position < M:
        raise ValueError(f"position {position} outside line of {M} samples")
    if position < M // 2:  # low-pass output k = position
        k = position
        return 2 * k + 2 * l + 1
    k = position - M // 2  # high-pass output
    return 2 * k + 2 * l + 2


def next_pass_read_cycle(position: int, line_length: int, half_filter_length: int) -> int:
    """Macro-cycle at which the *following* pass reads the new value at ``position``.

    The next convolution pass starts right after the current line's ``M``
    macro-cycles and again reads one position per macro-cycle after an
    ``l``-cycle prologue (one cycle shorter than the producing pass's
    ``l + 1`` prologue: its first read needs no preceding branch cycle).
    """
    if not 0 <= position < line_length:
        raise ValueError(f"position {position} outside line of {line_length} samples")
    return line_length + half_filter_length + position


def dependence_distances(line_length: int, half_filter_length: int) -> List[int]:
    """``write_available_cycle(j) - read_cycle(j)`` for the delayed positions.

    Only the high-pass half of the column (positions ``M/2 .. M-1``) goes
    through the write-back FIFO: the low-pass ("average") results are the
    input stream of the next convolution and are consumed through the
    datapath rather than written early.  Negative distances are the
    write-after-read hazards the FIFO delay must cover.
    """
    M = line_length
    return [
        write_available_cycle(j, M, half_filter_length)
        - read_cycle(j, half_filter_length)
        for j in range(M // 2, M)
    ]


def min_fifo_depth(line_length: int, half_filter_length: int) -> int:
    """Smallest delay ``D`` such that ``min_j(distance(j) + D) > 0``.

    Derived from the dependence distances (not hard-coded); equals
    ``M/2 - l`` for every Table VI configuration.
    """
    worst = min(dependence_distances(line_length, half_filter_length))
    return max(0, 1 - worst)


def max_fifo_depth(line_length: int, half_filter_length: int) -> int:
    """Largest delay ``D`` that still lands every write before the following
    pass reads it: ``max D`` with
    ``write_available_cycle(j) + D < next_pass_read_cycle(j)`` for the
    delayed (high-pass) positions.

    Equals ``M - l - 2`` for every Table VI configuration.
    """
    M = line_length
    slack = [
        next_pass_read_cycle(j, M, half_filter_length)
        - write_available_cycle(j, M, half_filter_length)
        for j in range(M // 2, M)
    ]
    return min(slack) - 1


@dataclass(frozen=True)
class FifoDepthBounds:
    """Bounds on the FIFO depth for one scale (one column of Table VI)."""

    scale: int
    line_length: int
    min_depth: int
    max_depth: int

    @property
    def feasible(self) -> bool:
        return self.min_depth <= self.max_depth


def fifo_depth_bounds(line_length: int, half_filter_length: int, scale: int = 0) -> FifoDepthBounds:
    """MIN(D)/MAX(D) for one line length."""
    return FifoDepthBounds(
        scale=scale,
        line_length=line_length,
        min_depth=min_fifo_depth(line_length, half_filter_length),
        max_depth=max_fifo_depth(line_length, half_filter_length),
    )


def fifo_bounds_table(
    image_size: int, scales: int, half_filter_length: int
) -> Dict[int, FifoDepthBounds]:
    """Reproduce Table VI: per-scale MIN(D)/MAX(D) for an ``image_size`` image."""
    table: Dict[int, FifoDepthBounds] = {}
    for scale in range(1, scales + 1):
        line = image_size // (2 ** (scale - 1))
        table[scale] = fifo_depth_bounds(line, half_filter_length, scale)
    return table


def choose_fifo_depth(line_length: int, half_filter_length: int) -> int:
    """Depth actually programmed for a scale: the minimum legal depth.

    Any value in ``[MIN(D), MAX(D)]`` is functionally correct; the minimum
    keeps the intermediate-RAM footprint smallest, which is what the
    ``N/2 + 32`` on-chip word count of the paper assumes (``MIN(D)`` at
    scale 1 is ``N/2 - l < N/2``).
    """
    bounds = fifo_depth_bounds(line_length, half_filter_length)
    if not bounds.feasible:
        raise ValueError(
            f"no feasible FIFO depth for line length {line_length}: "
            f"min {bounds.min_depth} > max {bounds.max_depth}"
        )
    return bounds.min_depth


class VariableDepthFifo:
    """Behavioural model of the variable-depth FIFO in the intermediate RAM.

    The FIFO delays each pushed item by exactly ``depth`` push/pop steps:
    ``push`` returns the item that was pushed ``depth`` steps earlier (or
    ``None`` while the FIFO is still filling).  ``resize`` changes the depth
    between scales, as the paper's configuration memory does.
    """

    def __init__(self, depth: int, capacity: Optional[int] = None) -> None:
        if depth < 0:
            raise ValueError("depth must be non-negative")
        if capacity is not None and depth > capacity:
            raise ValueError(f"depth {depth} exceeds the RAM capacity {capacity}")
        self.capacity = capacity
        self.depth = depth
        self._storage: Deque = deque()
        self.pushes = 0
        self.pops = 0

    def push(self, item):
        """Insert ``item``; return the item leaving the delay line, if any."""
        self.pushes += 1
        self._storage.append(item)
        if len(self._storage) > self.depth:
            self.pops += 1
            return self._storage.popleft()
        return None

    def drain(self) -> List:
        """Pop everything still inside (end of a pass)."""
        items = list(self._storage)
        self.pops += len(items)
        self._storage.clear()
        return items

    def resize(self, depth: int) -> None:
        """Change the depth between scales; the FIFO must be empty."""
        if self._storage:
            raise RuntimeError("cannot resize a non-empty FIFO")
        if depth < 0:
            raise ValueError("depth must be non-negative")
        if self.capacity is not None and depth > self.capacity:
            raise ValueError(f"depth {depth} exceeds the RAM capacity {self.capacity}")
        self.depth = depth

    def __len__(self) -> int:
        return len(self._storage)
