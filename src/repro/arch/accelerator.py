"""Top-level accelerator model: full FDWT/IDWT runs over the DRAM frame.

:class:`DwtAccelerator` drives the :class:`~repro.arch.datapath.Datapath`
over a whole image exactly as the paper's architecture does: for each scale
the rows of the current average image are filtered first, then the columns
of the two intermediate subimages, the HH result becoming the input of the
next scale; the inverse transform walks the scales in the opposite order.
The image lives in the external DRAM model and every sample is read once and
written once per convolution pass.

Two interchangeable engines drive the datapath (``engine="fast"`` /
``"scalar"``, mirroring the entropy-coding stack's API):

* ``"scalar"`` steps the datapath one macro-cycle at a time — the reference
  model, bit-exact against the software fixed-point transform but O(N²)
  Python iterations per image;
* ``"fast"`` (default) computes each line pass as one whole-array operation
  through :class:`~repro.arch.fast_datapath.FastDatapath`, reproducing the
  scalar engine's outputs *and* statistics exactly (the per-sample counters
  are closed-form functions of the pass geometry), which makes full 512x512
  cycle-accounted runs interactive.

For the paper's 512x512 headline numbers the *analytic* performance model
(:func:`estimate_performance`) remains available: it counts macro-cycles
with the same closed forms the simulator obeys and converts them to
seconds, images/s and utilisation.  The analytic model is validated against
the simulator by the test suite.

Downstream, the accelerator is the ``transform="accelerator"`` back end of
the batched compression pipeline (:mod:`repro.coding.pipeline`), whose
output in turn feeds the persistent archive container
(:mod:`repro.archive`) — so a cycle-accounted transform can sit at the head
of the same encode path that writes random-access archives to disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dwt.subbands import ScaleDetails
from ..fixedpoint.wordlength import WordLengthPlan
from ..fxdwt.transform import FixedPointPyramid
from .config import ArchitectureConfig, paper_configuration
from .datapath import Datapath, DatapathStats
from .dram import ExternalDram, FrameBuffer, RefreshTimer
from .fast_datapath import FastDatapath
from .scheduler import UtilisationReport, simulate_utilisation

#: Engines the accelerator can run a transform with: the vectorised
#: whole-pass engine (default) or the per-macro-cycle scalar reference.
ENGINES = ("fast", "scalar")

__all__ = [
    "AcceleratorRunReport",
    "PerformanceEstimate",
    "DwtAccelerator",
    "ENGINES",
    "forward_macrocycles",
    "inverse_macrocycles",
    "estimate_performance",
]


# ---------------------------------------------------------------------------
# Analytic macro-cycle counts
# ---------------------------------------------------------------------------

def forward_macrocycles(image_size: int, scales: int) -> int:
    """Macro-cycles of a full forward transform (one per output sample).

    At scale ``j`` the input is the ``M x M`` average of scale ``j - 1``
    (``M = N / 2^(j-1)``).  The row pass produces ``M`` outputs per row over
    ``M`` rows; the column pass produces ``M`` outputs per column over the
    ``M`` columns of the two intermediate subimages — ``2 M^2`` macro-cycles
    per scale in total.
    """
    if image_size < 2 or scales < 1:
        raise ValueError("image_size must be >= 2 and scales >= 1")
    total = 0
    for scale in range(1, scales + 1):
        m = image_size // (2 ** (scale - 1))
        total += 2 * m * m
    return total


def inverse_macrocycles(image_size: int, scales: int) -> int:
    """Macro-cycles of a full inverse transform (same count as the forward)."""
    return forward_macrocycles(image_size, scales)


@dataclass(frozen=True)
class PerformanceEstimate:
    """Analytic performance of one transform run on the accelerator."""

    image_size: int
    scales: int
    macrocycles: int
    refreshes: int
    total_cycles: int
    utilisation: float
    clock_frequency_mhz: float
    transform_seconds: float
    images_per_second: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.image_size}x{self.image_size}, {self.scales} scales: "
            f"{self.total_cycles} cycles @ {self.clock_frequency_mhz:.1f} MHz = "
            f"{self.transform_seconds * 1e3:.1f} ms "
            f"({self.images_per_second:.2f} images/s, "
            f"utilisation {100 * self.utilisation:.2f}%)"
        )


def estimate_performance(
    config: Optional[ArchitectureConfig] = None, direction: str = "forward"
) -> PerformanceEstimate:
    """Closed-form cycle/throughput estimate for one transform run.

    With the paper's configuration (512x512, 13-tap filters, 6 scales,
    33 MHz, refresh every 48 macro-cycles) this reproduces the headline
    figures: ≈ 3.5 images/s and 99.04 % multiplier utilisation.
    """
    config = config or paper_configuration()
    if direction not in ("forward", "inverse"):
        raise ValueError("direction must be 'forward' or 'inverse'")
    macrocycles = forward_macrocycles(config.image_size, config.scales)
    report: UtilisationReport = simulate_utilisation(macrocycles, config)
    seconds = report.total_cycles * config.clock_period_ns * 1e-9
    return PerformanceEstimate(
        image_size=config.image_size,
        scales=config.scales,
        macrocycles=report.macrocycles,
        refreshes=report.refreshes,
        total_cycles=report.total_cycles,
        utilisation=report.utilisation,
        clock_frequency_mhz=config.clock_frequency_mhz,
        transform_seconds=seconds,
        images_per_second=1.0 / seconds if seconds > 0 else float("inf"),
    )


# ---------------------------------------------------------------------------
# Cycle-level simulation
# ---------------------------------------------------------------------------

@dataclass
class AcceleratorRunReport:
    """Everything measured during one simulated accelerator run."""

    direction: str
    image_size: int
    scales: int
    macrocycles: int
    refreshes: int
    busy_cycles: int
    stall_cycles: int
    total_cycles: int
    utilisation: float
    dram_reads: int
    dram_writes: int
    coefficient_reads: int
    multiplies: int
    onchip_memory_words: int
    elapsed_seconds: float
    images_per_second: float

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        return (
            f"{self.direction.upper()} {self.image_size}x{self.image_size} "
            f"({self.scales} scales): {self.macrocycles} macrocycles, "
            f"{self.total_cycles} cycles, utilisation {100 * self.utilisation:.2f}%, "
            f"{self.dram_reads} DRAM reads / {self.dram_writes} writes, "
            f"{self.multiplies} multiplies, {self.onchip_memory_words} on-chip words, "
            f"{self.elapsed_seconds * 1e3:.2f} ms "
            f"({self.images_per_second:.2f} images/s)"
        )


class DwtAccelerator:
    """Behavioural + cycle-counting model of the complete accelerator.

    Parameters
    ----------
    config:
        Architecture configuration; defaults to the paper configuration
        scaled down to the given image when images smaller than 512 are
        transformed.
    plan:
        Optional word-length plan override (forwarded to the datapath).
    rounding / overflow_policy:
        Forwarded to the datapath (ablation hooks).
    engine:
        Default transform engine: ``"fast"`` (vectorised whole-pass, the
        default) or ``"scalar"`` (per-macro-cycle reference).  Both are
        bit-identical in outputs and statistics; ``forward``/``inverse``
        accept a per-call override.
    """

    def __init__(
        self,
        config: Optional[ArchitectureConfig] = None,
        plan: Optional[WordLengthPlan] = None,
        rounding: str = "half_up",
        overflow_policy: str = "raise",
        engine: str = "fast",
    ) -> None:
        self.config = config or paper_configuration()
        self.engine = self._check_engine(engine)
        self.datapath = Datapath(
            self.config, plan=plan, rounding=rounding, overflow_policy=overflow_policy
        )
        self.fast_datapath = FastDatapath(self.datapath)
        self.dram = ExternalDram(self.config.image_size * self.config.image_size)
        self.refresh_timer = RefreshTimer(self.config.dram_refresh_interval_cycles)

    @classmethod
    def from_spec(
        cls,
        spec,
        image_size: int,
        scales: Optional[int] = None,
        plan: Optional[WordLengthPlan] = None,
    ) -> "DwtAccelerator":
        """Build an accelerator from a :class:`~repro.coding.spec.CodecSpec`.

        The spec supplies the filter bank (by catalog name) and the
        accelerator engine (``transform_engine``); ``image_size`` and
        ``scales`` pin the per-frame geometry (the spec's requested depth
        is used when ``scales`` is omitted).  Passing the codec's ``plan``
        shares its word-length analysis, which is what keeps accelerator
        pyramids bit-identical to the codec's own software transform.
        The ``spec`` parameter is duck-typed (``bank_name``,
        ``transform_engine``, ``scales``) so this module stays importable
        without the coding layer.
        """
        config = ArchitectureConfig(
            image_size=image_size,
            scales=spec.scales if scales is None else scales,
            bank_name=spec.bank_name or "F2",
        )
        return cls(config, plan=plan, engine=spec.transform_engine)

    # -- public API -----------------------------------------------------------------
    @property
    def plan(self) -> WordLengthPlan:
        return self.datapath.plan

    @staticmethod
    def _check_engine(engine: str) -> str:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r} (expected one of {ENGINES})")
        return engine

    def _resolve_engine(self, engine: Optional[str]) -> str:
        return self.engine if engine is None else self._check_engine(engine)

    def forward(
        self, image: np.ndarray, engine: Optional[str] = None
    ) -> Tuple[FixedPointPyramid, AcceleratorRunReport]:
        """Run the forward transform; return the pyramid and the run report."""
        engine = self._resolve_engine(engine)
        image = self._validate_image(image)
        self.datapath.reset_counters()
        self.dram.reset_counters()

        frame = FrameBuffer(self.dram, image.shape[0], image.shape[1])
        frame.load_image(image)

        data = image
        details: List[ScaleDetails] = []
        for scale in range(1, self.config.scales + 1):
            if engine == "fast":
                data, entry = self._forward_scale_fast(data, scale)
            else:
                data, entry = self._forward_scale_scalar(data, scale)
            details.append(entry)
        pyramid = FixedPointPyramid(plan=self.plan, approximation=data, details=details)
        # The final contents of the frame buffer are the mosaic of all subbands
        # (what the host reads back over the PCI interface).
        frame.load_image(self._mosaic_stored(pyramid))
        report = self._build_report("forward", image.shape[0])
        return pyramid, report

    def inverse(
        self, pyramid: FixedPointPyramid, engine: Optional[str] = None
    ) -> Tuple[np.ndarray, AcceleratorRunReport]:
        """Run the inverse transform; return the image and the run report."""
        engine = self._resolve_engine(engine)
        if pyramid.scales != self.config.scales:
            raise ValueError(
                f"pyramid has {pyramid.scales} scales, accelerator configured "
                f"for {self.config.scales}"
            )
        approx = np.asarray(pyramid.approximation)
        expected = self.config.image_size >> self.config.scales
        if approx.ndim != 2 or approx.shape != (expected, expected):
            raise ValueError(
                f"pyramid approximation of shape {approx.shape} does not match "
                f"the configured {self.config.image_size}x{self.config.image_size} "
                f"frame at {self.config.scales} scales "
                f"(expected {expected}x{expected}); the accelerator processes "
                "square 2-D images"
            )
        self.datapath.reset_counters()
        self.dram.reset_counters()

        data = np.asarray(pyramid.approximation, dtype=np.int64)
        for scale in range(self.config.scales, 0, -1):
            entry = pyramid.details[scale - 1]
            if engine == "fast":
                data = self._inverse_scale_fast(data, entry, scale)
            else:
                data = self._inverse_scale_scalar(data, entry, scale)
        report = self._build_report("inverse", data.shape[0])
        return data, report

    def roundtrip(
        self, image: np.ndarray, engine: Optional[str] = None
    ) -> Tuple[np.ndarray, FixedPointPyramid, AcceleratorRunReport, AcceleratorRunReport]:
        """Forward + inverse; returns (reconstruction, pyramid, fwd report, inv report)."""
        pyramid, forward_report = self.forward(image, engine=engine)
        reconstructed, inverse_report = self.inverse(pyramid, engine=engine)
        return reconstructed, pyramid, forward_report, inverse_report

    # -- per-scale passes ---------------------------------------------------------------
    def _forward_scale_scalar(
        self, data: np.ndarray, scale: int
    ) -> Tuple[np.ndarray, ScaleDetails]:
        """One forward 2-D stage, one macro-cycle at a time (reference)."""
        size = data.shape[0]
        # Row pass: every row is read once, filtered, written back once.
        row_lo = np.zeros((size, size // 2), dtype=np.int64)
        row_hi = np.zeros((size, size // 2), dtype=np.int64)
        for row in range(size):
            lo, hi = self.datapath.analyze_line(data[row], scale, "rows")
            row_lo[row], row_hi[row] = lo, hi
        # Column pass over the two intermediate subimages.
        half = size // 2
        hh = np.zeros((half, half), dtype=np.int64)
        hg = np.zeros((half, half), dtype=np.int64)
        gh = np.zeros((half, half), dtype=np.int64)
        gg = np.zeros((half, half), dtype=np.int64)
        for col in range(half):
            lo, hi = self.datapath.analyze_line(row_lo[:, col], scale, "columns")
            hh[:, col], hg[:, col] = lo, hi
            lo, hi = self.datapath.analyze_line(row_hi[:, col], scale, "columns")
            gh[:, col], gg[:, col] = lo, hi
        return hh, ScaleDetails(scale=scale, hg=hg, gh=gh, gg=gg)

    def _forward_scale_fast(
        self, data: np.ndarray, scale: int
    ) -> Tuple[np.ndarray, ScaleDetails]:
        """One forward 2-D stage as three whole-pass array calls."""
        fast = self.fast_datapath
        row_lo, row_hi = fast.analyze_lines(data, scale, "rows")
        lo, hi = fast.analyze_lines(row_lo.T, scale, "columns")
        hh, hg = lo.T, hi.T
        lo, hi = fast.analyze_lines(row_hi.T, scale, "columns")
        gh, gg = lo.T, hi.T
        return hh, ScaleDetails(scale=scale, hg=hg, gh=gh, gg=gg)

    def _inverse_scale_scalar(
        self, data: np.ndarray, entry: ScaleDetails, scale: int
    ) -> np.ndarray:
        """One inverse 2-D stage, one macro-cycle at a time (reference)."""
        half = data.shape[0]
        size = 2 * half
        # Undo the column transform (columns were filtered last going forward).
        row_lo = np.zeros((size, half), dtype=np.int64)
        row_hi = np.zeros((size, half), dtype=np.int64)
        for col in range(half):
            row_lo[:, col] = self.datapath.synthesize_line(
                data[:, col], entry.hg[:, col], scale, "columns"
            )
            row_hi[:, col] = self.datapath.synthesize_line(
                entry.gh[:, col], entry.gg[:, col], scale, "columns"
            )
        # Undo the row transform, landing in the coarser format.
        out = np.zeros((size, size), dtype=np.int64)
        for row in range(size):
            out[row] = self.datapath.synthesize_line(
                row_lo[row], row_hi[row], scale, "rows"
            )
        return out

    def _inverse_scale_fast(
        self, data: np.ndarray, entry: ScaleDetails, scale: int
    ) -> np.ndarray:
        """One inverse 2-D stage as three whole-pass array calls."""
        fast = self.fast_datapath
        row_lo = fast.synthesize_lines(data.T, entry.hg.T, scale, "columns").T
        row_hi = fast.synthesize_lines(entry.gh.T, entry.gg.T, scale, "columns").T
        return fast.synthesize_lines(row_lo, row_hi, scale, "rows")

    # -- internals ---------------------------------------------------------------------
    def _validate_image(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image)
        if image.ndim != 2 or image.shape[0] != image.shape[1]:
            raise ValueError("the accelerator processes square 2-D images")
        if image.shape[0] != self.config.image_size:
            raise ValueError(
                f"image of size {image.shape[0]} does not match the configured "
                f"frame of {self.config.image_size}; build the accelerator with "
                "config.with_image_size(...)"
            )
        if image.shape[0] % (1 << self.config.scales):
            raise ValueError(
                f"image size {image.shape[0]} is not divisible by 2^{self.config.scales}"
            )
        # No copy when the caller already holds int64 pixels; the transform
        # never mutates its input in place.
        return np.asarray(image, dtype=np.int64)

    def _mosaic_stored(self, pyramid: FixedPointPyramid) -> np.ndarray:
        """Mosaic of the stored-integer subbands (the frame's final contents)."""
        rows = cols = self.config.image_size
        mosaic = np.zeros((rows, cols), dtype=np.int64)
        r, c = pyramid.approximation.shape
        mosaic[:r, :c] = pyramid.approximation
        for entry in reversed(pyramid.details):
            r, c = entry.shape
            mosaic[:r, c: 2 * c] = entry.hg
            mosaic[r: 2 * r, :c] = entry.gh
            mosaic[r: 2 * r, c: 2 * c] = entry.gg
        return mosaic

    def _build_report(self, direction: str, image_size: int) -> AcceleratorRunReport:
        counter = self.datapath.counter
        seconds = counter.total_cycles * self.config.clock_period_ns * 1e-9
        return AcceleratorRunReport(
            direction=direction,
            image_size=image_size,
            scales=self.config.scales,
            macrocycles=counter.macrocycles,
            refreshes=counter.refreshes,
            busy_cycles=counter.busy_cycles,
            stall_cycles=counter.stall_cycles,
            total_cycles=counter.total_cycles,
            utilisation=counter.utilisation(),
            dram_reads=self.datapath.stats.dram_reads,
            dram_writes=self.datapath.stats.dram_writes,
            coefficient_reads=self.datapath.stats.coefficient_reads,
            multiplies=self.datapath.mac.stats.multiplies,
            onchip_memory_words=self.config.onchip_memory_words,
            elapsed_seconds=seconds,
            images_per_second=1.0 / seconds if seconds > 0 else float("inf"),
        )
