"""Filter-coefficient RAM (the small memory read 13 times per macro-cycle).

Fig. 2 shows 13 coefficient reads per macro-cycle (``rd_cf1`` .. ``rd_cf13``)
feeding the multiplier; Fig. 3 shows the "Filter Coefficients" block next to
the MAC.  The RAM holds the quantised taps of the four filters of the bank
(analysis H/G for the FDWT, synthesis Ht/Gt for the IDWT) in the 32-bit
coefficient format.  Because the memory is tiny (a few tens of words) it is
implemented on chip and contributes to the ``N/2 + 32`` on-chip word budget
through the rounded 32-word block the paper accounts for.

:class:`CoefficientRam` is the behavioural model: it is loaded from a
:class:`~repro.filters.qmf.BiorthogonalBank` and a coefficient
:class:`~repro.fixedpoint.qformat.QFormat`, serves one stored coefficient per
read, and counts accesses so the schedule statistics can check the "13 reads
per macro-cycle" figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..filters.qmf import BiorthogonalBank
from ..fixedpoint.qformat import QFormat
from ..fxdwt.transform import QuantizedFilter, quantize_filter

__all__ = ["CoefficientRam", "FilterRole", "FILTER_ROLES"]

#: The four filter roles stored in the RAM, in address order.
FILTER_ROLES: Tuple[str, str, str, str] = ("h", "g", "ht", "gt")

FilterRole = str


@dataclass
class _StoredFilter:
    """Base address and quantised taps of one filter in the RAM."""

    role: FilterRole
    base_address: int
    quantized: QuantizedFilter


class CoefficientRam:
    """Behavioural model of the on-chip filter-coefficient memory.

    Parameters
    ----------
    bank:
        The biorthogonal filter bank whose taps are stored.
    coefficient_format:
        32-bit fixed-point format of the stored taps (3 integer bits for
        every Table I bank).

    The four filters are packed back to back; ``read(role, tap)`` returns the
    stored integer of one tap and counts the access.  ``window(role)`` returns
    the whole tap list (what the datapath consumes over one macro-cycle).
    """

    def __init__(self, bank: BiorthogonalBank, coefficient_format: QFormat) -> None:
        self.bank = bank
        self.coefficient_format = coefficient_format
        self._filters: Dict[FilterRole, _StoredFilter] = {}
        address = 0
        for role in FILTER_ROLES:
            quantized = quantize_filter(bank.all_filters()[role], coefficient_format)
            self._filters[role] = _StoredFilter(
                role=role, base_address=address, quantized=quantized
            )
            address += len(quantized)
        self._total_words = address
        self.reads = 0

    # -- static structure -------------------------------------------------------
    @property
    def words(self) -> int:
        """Number of coefficient words actually stored."""
        return self._total_words

    @property
    def rounded_words(self) -> int:
        """Word count rounded up to the next power of two (RAM block size)."""
        size = 1
        while size < self._total_words:
            size *= 2
        return size

    def base_address(self, role: FilterRole) -> int:
        """First RAM address of the taps of ``role``."""
        return self._stored(role).base_address

    def filter_length(self, role: FilterRole) -> int:
        """Number of taps stored for ``role``."""
        return len(self._stored(role).quantized)

    # -- accesses ------------------------------------------------------------------
    def read(self, role: FilterRole, tap_index: int) -> int:
        """Read one stored coefficient (tap ``tap_index`` of filter ``role``)."""
        stored = self._stored(role)
        taps = stored.quantized.stored_taps
        if not 0 <= tap_index < len(taps):
            raise IndexError(
                f"tap index {tap_index} outside filter {role!r} of {len(taps)} taps"
            )
        self.reads += 1
        return taps[tap_index]

    def window(self, role: FilterRole) -> List[int]:
        """All stored taps of ``role``, in macro-cycle read order.

        Counts one read per tap, exactly as the ``rd_cf1 .. rd_cfL`` slots of
        Fig. 2 do.
        """
        stored = self._stored(role)
        self.reads += len(stored.quantized)
        return list(stored.quantized.stored_taps)

    def quantized(self, role: FilterRole) -> QuantizedFilter:
        """The :class:`QuantizedFilter` stored for ``role`` (no read counted)."""
        return self._stored(role).quantized

    def reset_counters(self) -> None:
        """Clear the access counter."""
        self.reads = 0

    # -- helpers ----------------------------------------------------------------------
    def _stored(self, role: FilterRole) -> _StoredFilter:
        try:
            return self._filters[role]
        except KeyError as exc:
            raise KeyError(
                f"unknown filter role {role!r}; expected one of {FILTER_ROLES}"
            ) from exc
