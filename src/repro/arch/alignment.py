"""Alignment and rounding unit (§4.3, the block after the MAC in Fig. 3).

The integer part of the intermediate wavelet data changes with the scale
(Table II).  After the 64-bit accumulation the result must therefore be
shifted by a scale-dependent amount — the *alignment* — and narrowed to the
32-bit datapath word with the §4.3 rounding rule.  The per-scale shift
amounts depend only on the filter bank and are written into a small
configuration memory at set-up time, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..fixedpoint.qformat import QFormat
from ..fixedpoint.rounding import round_half_up_shift, truncate_shift
from ..fixedpoint.wordlength import WordLengthPlan

__all__ = ["AlignmentEntry", "AlignmentUnit"]


@dataclass(frozen=True)
class AlignmentEntry:
    """One row of the alignment configuration memory."""

    scale: int
    direction: str  # "forward" or "inverse"
    pass_name: str  # "rows" or "columns" within the 2-D stage
    shift: int
    target_format: QFormat


class AlignmentUnit:
    """Scale-indexed shift-and-round stage.

    The unit is configured from a :class:`WordLengthPlan` and the coefficient
    format; it then answers "by how much must the 64-bit accumulator value be
    shifted when producing data of scale ``s``" for both transform directions
    and both 1-D passes of a 2-D stage, and applies the shift with the §4.3
    round-half-up rule (or plain truncation for the ablation experiments).
    """

    def __init__(self, plan: WordLengthPlan, rounding: str = "half_up") -> None:
        if rounding not in ("half_up", "truncate"):
            raise ValueError(f"unknown rounding mode {rounding!r}")
        self.plan = plan
        self.rounding = rounding
        self._table: Dict[tuple, AlignmentEntry] = {}
        self._build_configuration()

    # -- configuration ---------------------------------------------------------------
    def _register(self, scale: int, direction: str, pass_name: str,
                  source_frac: int, target: QFormat) -> None:
        shift = source_frac + self.plan.coefficient_format.fractional_bits - target.fractional_bits
        if shift < 0:
            raise ValueError(
                f"negative alignment shift for scale {scale} ({direction}/{pass_name}); "
                "the word-length plan is inconsistent"
            )
        self._table[(direction, scale, pass_name)] = AlignmentEntry(
            scale=scale,
            direction=direction,
            pass_name=pass_name,
            shift=shift,
            target_format=target,
        )

    def _build_configuration(self) -> None:
        plan = self.plan
        for scale in range(1, plan.scales + 1):
            previous = plan.format_for_scale(scale - 1)
            current = plan.format_for_scale(scale)
            # Forward: rows consume scale-(s-1) data, columns consume the
            # row results already in the scale-s format.
            self._register(scale, "forward", "rows", previous.fractional_bits, current)
            self._register(scale, "forward", "columns", current.fractional_bits, current)
            # Inverse: columns are undone first (still in the scale-s format),
            # rows land in the coarser scale-(s-1) format.
            self._register(scale, "inverse", "columns", current.fractional_bits, current)
            self._register(scale, "inverse", "rows", current.fractional_bits, previous)

    # -- queries ------------------------------------------------------------------------
    def entry(self, direction: str, scale: int, pass_name: str) -> AlignmentEntry:
        """Configuration row for one (direction, scale, pass) combination."""
        try:
            return self._table[(direction, scale, pass_name)]
        except KeyError as exc:
            raise KeyError(
                f"no alignment entry for direction={direction!r} scale={scale} "
                f"pass={pass_name!r}"
            ) from exc

    def shift_for(self, direction: str, scale: int, pass_name: str) -> int:
        """Shift amount (in bits) for one combination."""
        return self.entry(direction, scale, pass_name).shift

    def configuration_rows(self):
        """All configuration entries, sorted — the contents of the config memory."""
        return [self._table[key] for key in sorted(self._table)]

    # -- datapath operation --------------------------------------------------------------
    def align(self, accumulator_value: int, direction: str, scale: int, pass_name: str) -> int:
        """Shift-and-round a 64-bit accumulator value into the datapath word."""
        entry = self.entry(direction, scale, pass_name)
        if self.rounding == "half_up":
            value = round_half_up_shift(int(accumulator_value), entry.shift)
        else:
            value = truncate_shift(int(accumulator_value), entry.shift)
        return int(value)
