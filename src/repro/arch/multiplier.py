"""Multiplier models (behavioural and structural) — Table V of the paper.

Two views of the 32x32-bit multiplier are provided:

* **Behavioural**: :class:`PipelinedMultiplier` computes exact two's-
  complement products with a configurable pipeline latency (2 stages in the
  paper), which is what the cycle-accurate datapath uses.
* **Structural**: :func:`array_multiplier_estimate` and
  :func:`wallace_multiplier_estimate` derive critical-path delay and cell
  area from gate-level first principles (carry-save adder tree depth,
  final carry-propagate adder, pipeline registers) using the technology
  constants of :mod:`repro.technology`.  With the ES2 0.7 µm calibration
  these reproduce the two rows of Table V: the compiled (array) multiplier
  at ~50.9 ns / 2.92 mm² and the 2-stage pipelined Wallace multiplier at
  ~23.5 ns / 8.03 mm².
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from ..fixedpoint.rounding import wrap_twos_complement
from ..technology.cells import TechnologyParameters, es2_07um

__all__ = [
    "MultiplierEstimate",
    "array_multiplier_estimate",
    "wallace_tree_depth",
    "wallace_multiplier_estimate",
    "PipelinedMultiplier",
]


@dataclass(frozen=True)
class MultiplierEstimate:
    """Structural estimate of one multiplier implementation."""

    name: str
    operand_bits: int
    pipeline_stages: int
    critical_path_ns: float
    area_mm2: float

    @property
    def max_clock_mhz(self) -> float:
        """Highest clock frequency the critical path allows."""
        return 1000.0 / self.critical_path_ns


def array_multiplier_estimate(
    bits: int = 32, tech: Optional[TechnologyParameters] = None
) -> MultiplierEstimate:
    """Ripple array (megacell-compiler style) multiplier estimate.

    An n x n array multiplier's critical path crosses roughly ``2n - 2`` full
    adders (one carry chain down the array and one along the final row); its
    area is dominated by ``n^2`` adder/AND cells.  Calibrated against the ES2
    megacell compiler figure quoted in Table V (50.88 ns, 2.92 mm² for 32x32
    under worst-case industrial conditions).
    """
    if bits < 2:
        raise ValueError("bits must be >= 2")
    tech = tech or es2_07um()
    stages = 2 * bits - 2
    delay = tech.register_overhead_ns + stages * tech.full_adder_delay_ns
    area = (bits * bits) * tech.array_cell_area_mm2 + bits * tech.register_bit_area_mm2
    return MultiplierEstimate(
        name="array (megacell compiled)",
        operand_bits=bits,
        pipeline_stages=1,
        critical_path_ns=delay,
        area_mm2=area,
    )


def wallace_tree_depth(operands: int) -> int:
    """Number of 3:2 carry-save levels needed to reduce ``operands`` partial
    products to two rows (the classical Wallace recurrence)."""
    if operands < 1:
        raise ValueError("operands must be >= 1")
    depth = 0
    rows = operands
    while rows > 2:
        rows = 2 * (rows // 3) + rows % 3
        depth += 1
    return depth


def wallace_multiplier_estimate(
    bits: int = 32,
    pipeline_stages: int = 2,
    tech: Optional[TechnologyParameters] = None,
) -> MultiplierEstimate:
    """Wallace-tree multiplier with ``pipeline_stages`` pipeline stages.

    The design follows the paper's description: a first pipeline stage holds
    the partial-product generation and the carry-save (Wallace) reduction
    tree, the second stage holds the final ``2n``-bit carry-propagate adder,
    modelled as a carry-skip adder (``skip_adder_delay_per_bit_ns`` per bit).
    The critical path is the slower of the two stages — the wide final adder
    for 32-bit operands, which is what limits the paper's design to a
    23.45 ns stage delay.  The tree's area is larger than an array
    multiplier's (less regular layout, extra routing) and the pipeline adds
    register banks, which is why the pipelined multiplier is larger
    (8.03 mm²) but supports a faster clock than the compiled one.
    """
    if bits < 2:
        raise ValueError("bits must be >= 2")
    if pipeline_stages < 1:
        raise ValueError("pipeline_stages must be >= 1")
    tech = tech or es2_07um()
    tree_levels = wallace_tree_depth(bits)
    tree_stage_ns = (
        tech.register_overhead_ns
        + tech.and_gate_delay_ns
        + tree_levels * tech.full_adder_delay_ns
    )
    adder_stage_ns = tech.register_overhead_ns + 2 * bits * tech.skip_adder_delay_per_bit_ns
    if pipeline_stages == 1:
        delay = tree_stage_ns + adder_stage_ns - tech.register_overhead_ns
    else:
        # Any extra stages beyond two are assumed to split the reduction tree,
        # which never dominates, so the wide adder stage sets the clock.
        delay = max(tree_stage_ns, adder_stage_ns)

    partial_product_cells = bits * bits * tech.wallace_cell_area_mm2
    # One 2n-bit register bank per internal pipeline cut plus the output register.
    register_bits = 2 * bits * (pipeline_stages + 1)
    area = partial_product_cells + register_bits * tech.register_bit_area_mm2
    return MultiplierEstimate(
        name=f"Wallace tree, {pipeline_stages}-stage pipeline",
        operand_bits=bits,
        pipeline_stages=pipeline_stages,
        critical_path_ns=delay,
        area_mm2=area,
    )


class PipelinedMultiplier:
    """Behavioural two's-complement multiplier with a fixed pipeline latency.

    ``issue()`` accepts one operand pair per clock; ``tick()`` advances the
    pipeline one clock and returns the product that completes in that cycle
    (or ``None`` while the pipeline is still filling).  Operands are wrapped
    to ``operand_bits`` two's complement before multiplying — exactly what a
    hardware multiplier does with its input buses.
    """

    def __init__(self, operand_bits: int = 32, stages: int = 2) -> None:
        if operand_bits < 2:
            raise ValueError("operand_bits must be >= 2")
        if stages < 1:
            raise ValueError("stages must be >= 1")
        self.operand_bits = operand_bits
        self.stages = stages
        self._pipeline: Deque[Optional[int]] = deque([None] * stages, maxlen=stages)
        self.issued = 0
        self.completed = 0

    def reset(self) -> None:
        """Flush the pipeline."""
        self._pipeline = deque([None] * self.stages, maxlen=self.stages)
        self.issued = 0
        self.completed = 0

    def issue(self, a: int, b: int) -> None:
        """Present operands for the product that will complete ``stages`` ticks later."""
        a = int(wrap_twos_complement(int(a), self.operand_bits))
        b = int(wrap_twos_complement(int(b), self.operand_bits))
        self._pending: Optional[int] = a * b
        self.issued += 1

    def issue_bubble(self) -> None:
        """Present no operands this clock (an idle slot in the schedule)."""
        self._pending = None

    def tick(self) -> Optional[int]:
        """Advance one clock; return the product leaving the pipeline, if any."""
        pending = getattr(self, "_pending", None)
        self._pending = None
        completed = self._pipeline[0]
        self._pipeline.popleft()
        self._pipeline.append(pending)
        if completed is not None:
            self.completed += 1
        return completed

    def drain(self) -> Tuple[Optional[int], ...]:
        """Return the products still in flight (oldest first) and flush."""
        remaining = tuple(self._pipeline)
        self.reset()
        return remaining
