"""Architecture-level reports: area composition and hardware requirements.

Two kinds of report are produced:

* :func:`proposed_area_breakdown` composes the silicon area of the proposed
  datapath (Fig. 3) from the calibrated ES2 technology model — pipelined
  Wallace multiplier, 64-bit accumulator, alignment barrel shifter,
  ``N/2 + 32`` on-chip memory words, coefficient RAM and pipeline
  registers — and reproduces the ≈ 11.2 mm² figure of §5.
* :func:`hardware_requirements` summarises the component counts the paper
  quotes for the proposed architecture (one multiplier, one adder,
  ``N/2 + 32`` memory words), in the same terms as the Table III columns of
  the prior architectures, so that :mod:`repro.baselines` can build the full
  comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..technology.area import AreaBreakdown, ram_area_mm2, register_area_mm2, barrel_shifter_area_mm2
from ..technology.cells import TechnologyParameters, es2_07um
from .config import ArchitectureConfig, paper_configuration
from .multiplier import wallace_multiplier_estimate

__all__ = [
    "PAPER_PROPOSED_AREA_MM2",
    "HardwareRequirements",
    "hardware_requirements",
    "proposed_area_breakdown",
]

#: Datapath area quoted in §5 of the paper (0.7 µm CMOS, 32-bit words).
PAPER_PROPOSED_AREA_MM2 = 11.2


@dataclass(frozen=True)
class HardwareRequirements:
    """Arithmetic-block and memory-word counts of one architecture instance."""

    name: str
    multipliers: int
    adders: int
    memory_words: int
    word_length: int

    @property
    def memory_bits(self) -> int:
        return self.memory_words * self.word_length


def hardware_requirements(config: Optional[ArchitectureConfig] = None) -> HardwareRequirements:
    """Component counts of the proposed architecture (§4/§5).

    One 32x32 multiplier, one 64-bit accumulator adder, and
    ``N/2 + 32`` on-chip memory words (input buffer + intermediate FIFO RAM +
    coefficient storage rounded to the 32-word block).
    """
    config = config or paper_configuration()
    return HardwareRequirements(
        name="Proposed (this paper)",
        multipliers=1,
        adders=1,
        memory_words=config.onchip_memory_words,
        word_length=config.word_length,
    )


def proposed_area_breakdown(
    config: Optional[ArchitectureConfig] = None,
    tech: Optional[TechnologyParameters] = None,
) -> AreaBreakdown:
    """Compose the proposed datapath's silicon area from the cell model.

    The blocks follow Fig. 3: the 2-stage pipelined Wallace multiplier, the
    64-bit accumulator register + adder, the alignment (barrel shifter over
    the 64-bit accumulator word) and rounding stage, the on-chip RAM
    (``N/2`` intermediate-FIFO words plus the 32-word input buffer), the
    filter-coefficient RAM and the datapath pipeline registers visible in
    Fig. 3.  With the calibrated ES2 0.7 µm constants the total comes out
    within a few percent of the 11.2 mm² the paper quotes.
    """
    config = config or paper_configuration()
    tech = tech or es2_07um()
    breakdown = AreaBreakdown(name=f"Proposed datapath, N={config.image_size}")

    multiplier = wallace_multiplier_estimate(config.word_length, 2, tech)
    breakdown.add("32x32 pipelined Wallace multiplier", multiplier.area_mm2)

    # 64-bit accumulator: register + carry-propagate adder.
    breakdown.add(
        "64-bit accumulator (adder + register)",
        register_area_mm2(config.accumulator_bits, tech)
        + config.accumulator_bits * tech.array_cell_area_mm2,
    )

    # Alignment barrel shifter over the accumulator word + rounding increment.
    breakdown.add(
        "alignment shifter + rounding",
        barrel_shifter_area_mm2(config.accumulator_bits, tech)
        + config.word_length * tech.array_cell_area_mm2,
    )

    # On-chip RAM: N/2 intermediate (FIFO) words + the 32-word input buffer.
    breakdown.add(
        f"intermediate RAM ({config.image_size // 2} words)",
        ram_area_mm2(config.image_size // 2, config.word_length, tech),
    )
    breakdown.add(
        f"input buffer ({config.input_buffer_size} words)",
        ram_area_mm2(config.input_buffer_size, config.word_length, tech),
    )

    # Filter-coefficient RAM: the low/high-pass pair used by the current
    # transform direction (13 + 11 taps for F2) fits in a 32-word block; the
    # pair for the other direction is reloaded by the host when switching
    # between FDWT and IDWT.
    breakdown.add("coefficient RAM (32 words)", ram_area_mm2(32, config.word_length, tech))

    # Datapath pipeline registers of Fig. 3 (input, coefficient, product, output).
    breakdown.add(
        "pipeline registers",
        register_area_mm2(4 * config.word_length, tech),
    )
    return breakdown
