"""PCI host-interface model (the paper's stated follow-on work).

§5 of the paper: "We are currently working on the design of a chip based on
the proposed architecture, with a PCI Bus interface.  This chip is the core
of a PCI board that will speedup the DWT computation on desktop PCs."

That board was never evaluated in the paper, so nothing here feeds any paper
number; the model answers the system-level question the follow-on work
raises: once the transform itself runs at ~3.5 images/s, does moving the
image across a 32-bit/33 MHz PCI bus (and back) erode the speedup?

The model is deliberately simple and conservative:

* the image is written once to the board (``N² · ceil(input_bits/8)`` bytes
  at the board's effective write bandwidth),
* the transform runs at the accelerator's analytic rate,
* the coefficient mosaic is read back (``N²`` words of
  ``ceil(word_length/8)`` bytes) at the effective read bandwidth,
* transfers and computation optionally overlap (double buffering in the
  external DRAM), which is what the single-image-store architecture allows
  for a *stream* of images as long as transfer time stays below compute
  time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .accelerator import PerformanceEstimate, estimate_performance
from .config import ArchitectureConfig, paper_configuration

__all__ = ["PciBusParameters", "HostTransferModel", "PciBoardModel", "BoardThroughputReport"]


@dataclass(frozen=True)
class PciBusParameters:
    """Effective parameters of the host bus.

    The classic PCI 2.1 32-bit/33 MHz bus peaks at 132 MB/s; sustained
    throughput with a commodity 1990s chipset is closer to 60–90 MB/s for
    writes and 40–70 MB/s for reads, which is what the defaults reflect.
    """

    name: str = "PCI 32-bit / 33 MHz"
    write_bandwidth_mb_s: float = 80.0
    read_bandwidth_mb_s: float = 60.0
    transaction_overhead_us: float = 10.0

    def __post_init__(self) -> None:
        if self.write_bandwidth_mb_s <= 0 or self.read_bandwidth_mb_s <= 0:
            raise ValueError("bus bandwidths must be positive")
        if self.transaction_overhead_us < 0:
            raise ValueError("transaction_overhead_us must be non-negative")


@dataclass(frozen=True)
class HostTransferModel:
    """Bytes moved per image between the host and the board."""

    image_size: int
    input_bits: int
    word_length: int

    @property
    def upload_bytes(self) -> int:
        """Raw image sent to the board (one write per pixel)."""
        bytes_per_pixel = (self.input_bits + 7) // 8
        return self.image_size * self.image_size * bytes_per_pixel

    @property
    def download_bytes(self) -> int:
        """Coefficient mosaic read back (one word per pixel)."""
        bytes_per_word = (self.word_length + 7) // 8
        return self.image_size * self.image_size * bytes_per_word


@dataclass(frozen=True)
class BoardThroughputReport:
    """End-to-end throughput of the PCI board for one configuration."""

    transform: PerformanceEstimate
    upload_seconds: float
    download_seconds: float
    overlapped: bool
    images_per_second: float
    transfer_bound: bool

    @property
    def total_seconds_per_image(self) -> float:
        return 1.0 / self.images_per_second

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        regime = "transfer-bound" if self.transfer_bound else "compute-bound"
        return (
            f"{self.transform.image_size}x{self.transform.image_size}: "
            f"{self.images_per_second:.2f} images/s end to end ({regime}; "
            f"upload {self.upload_seconds * 1e3:.1f} ms, "
            f"compute {self.transform.transform_seconds * 1e3:.1f} ms, "
            f"download {self.download_seconds * 1e3:.1f} ms)"
        )


class PciBoardModel:
    """End-to-end model of the PCI accelerator board.

    Parameters
    ----------
    config:
        Architecture configuration of the on-board accelerator.
    bus:
        Host-bus parameters (defaults to sustained 32-bit/33 MHz PCI).
    overlap_transfers:
        Whether image upload/download overlaps with computation of the
        previous/next image (double buffering); the paper's single image
        store supports this for streamed archives because the DRAM is only
        touched once per datum per pass.
    """

    def __init__(
        self,
        config: Optional[ArchitectureConfig] = None,
        bus: Optional[PciBusParameters] = None,
        overlap_transfers: bool = True,
    ) -> None:
        self.config = config or paper_configuration()
        self.bus = bus or PciBusParameters()
        self.overlap_transfers = overlap_transfers

    # -- per-image costs -----------------------------------------------------------
    def transfer_model(self) -> HostTransferModel:
        return HostTransferModel(
            image_size=self.config.image_size,
            input_bits=self.config.input_bits,
            word_length=self.config.word_length,
        )

    def upload_seconds(self) -> float:
        transfers = self.transfer_model()
        return (
            transfers.upload_bytes / (self.bus.write_bandwidth_mb_s * 1e6)
            + self.bus.transaction_overhead_us * 1e-6
        )

    def download_seconds(self) -> float:
        transfers = self.transfer_model()
        return (
            transfers.download_bytes / (self.bus.read_bandwidth_mb_s * 1e6)
            + self.bus.transaction_overhead_us * 1e-6
        )

    # -- throughput -------------------------------------------------------------------
    def report(self, direction: str = "forward") -> BoardThroughputReport:
        """End-to-end images/s including bus transfers."""
        transform = estimate_performance(self.config, direction)
        upload = self.upload_seconds()
        download = self.download_seconds()
        if self.overlap_transfers:
            # Steady state of a pipelined stream: the slowest stage dominates.
            bottleneck = max(transform.transform_seconds, upload, download)
            per_image = bottleneck
            transfer_bound = bottleneck > transform.transform_seconds
        else:
            per_image = transform.transform_seconds + upload + download
            transfer_bound = (upload + download) > transform.transform_seconds
        return BoardThroughputReport(
            transform=transform,
            upload_seconds=upload,
            download_seconds=download,
            overlapped=self.overlap_transfers,
            images_per_second=1.0 / per_image,
            transfer_bound=transfer_bound,
        )

    def effective_speedup_vs_pentium(self) -> float:
        """Speedup over the Pentium-133 baseline including bus transfers.

        The software baseline keeps the image in host memory, so its time is
        compared against the board's full upload + compute + download path
        (non-overlapped, the fair single-image comparison).
        """
        from ..perf.software_baseline import PentiumBaseline
        from ..perf.opcount_model import WorkloadModel

        baseline = PentiumBaseline()
        workload = WorkloadModel(
            image_size=self.config.image_size, scales=self.config.scales
        )
        transform = estimate_performance(self.config)
        total = transform.transform_seconds + self.upload_seconds() + self.download_seconds()
        return baseline.seconds_for_workload(workload) / total
