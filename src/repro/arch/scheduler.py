"""Macro-cycle operation scheduling (Fig. 2) and utilisation accounting.

One output sample of a convolution is produced per *macro-cycle*.  For a
13-tap filter a normal macro-cycle has 13 clock cycles (0..12), each issuing
one coefficient read and one MAC; one DRAM read and one DRAM write also
happen inside the macro-cycle.  When the external DRAM requests a refresh,
the macro-cycle is extended by six stall cycles (13..18 of Fig. 2) during
which the accumulator holds and the multiplier idles.

Two levels of model are provided:

* :func:`operation_schedule` builds the per-cycle slot table of Fig. 2
  (which unit does what on which cycle), for any filter length, so tests and
  the Fig. 2 benchmark can print and check the schedule shape.
* :class:`MacrocycleCounter` and :func:`simulate_utilisation` account for
  macro-cycles, refresh extensions, busy and total cycles, and produce the
  multiplier utilisation the paper quotes as 99.04 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .config import ArchitectureConfig

__all__ = [
    "CycleSlot",
    "operation_schedule",
    "refresh_schedule_cycles",
    "MacrocycleCounter",
    "UtilisationReport",
    "simulate_utilisation",
    "utilisation_formula",
]


@dataclass(frozen=True)
class CycleSlot:
    """What every unit does during one clock cycle of a macro-cycle (Fig. 2)."""

    cycle: int
    dram_op: str          # "rd", "wr", "branch", "refresh" or "idle"
    input_buffer_op: str  # "rd_cfK", "idle" or "dec_ptr"
    acc_ctl: str          # "load", "acc" or "hold"
    output_fifo_op: str   # "wr", "rd" or "idle"


def operation_schedule(
    filter_length: int = 13,
    refresh: bool = False,
    refresh_stall_cycles: int = 6,
) -> List[CycleSlot]:
    """Build the Fig. 2 slot table for one macro-cycle.

    The normal macro-cycle has ``filter_length`` cycles: the accumulator is
    loaded on cycle 0 and accumulates on cycles ``1 .. L-1``; the DRAM read
    happens on cycle 0 and the DRAM write midway through (cycle 7 for L=13);
    the output FIFO is written right after the DRAM read and read just before
    the DRAM write.  When ``refresh`` is set the macro-cycle is extended by
    ``refresh_stall_cycles`` hold cycles during which the DRAM is refreshed
    and the input-buffer pointer is rewound (the ``dec. ptr.`` slot of
    Fig. 2) before the first coefficient reads of the next window are warmed
    up again.
    """
    if filter_length < 2:
        raise ValueError("filter_length must be >= 2")
    if refresh_stall_cycles < 0:
        raise ValueError("refresh_stall_cycles must be >= 0")

    dram_write_cycle = filter_length // 2 + 1
    slots: List[CycleSlot] = []
    for cycle in range(filter_length):
        if cycle == 0:
            dram_op = "rd"
        elif cycle == dram_write_cycle:
            dram_op = "wr"
        else:
            dram_op = "idle"
        # Coefficient reads are issued every cycle; Fig. 2 numbers them
        # rd_cf4.. from cycle 0 because the buffer pointer runs ahead of the
        # accumulator by the pipeline depth — the *count* per macro-cycle is
        # what matters: exactly L reads.
        buffer_op = f"rd_cf{(cycle + 4 - 1) % filter_length + 1}"
        acc_ctl = "load" if cycle == 0 else "acc"
        if cycle == 1:
            fifo_op = "wr"
        elif cycle == dram_write_cycle - 1:
            fifo_op = "rd"
        else:
            fifo_op = "idle"
        slots.append(
            CycleSlot(
                cycle=cycle,
                dram_op=dram_op,
                input_buffer_op=buffer_op,
                acc_ctl=acc_ctl,
                output_fifo_op=fifo_op,
            )
        )

    if refresh:
        for offset in range(refresh_stall_cycles):
            cycle = filter_length + offset
            if offset == 0:
                dram_op, buffer_op = "branch", "idle"
            elif offset == 1:
                dram_op, buffer_op = "refresh", "idle"
            elif offset == 2:
                dram_op, buffer_op = "refresh", "dec_ptr"
            else:
                dram_op = "refresh"
                buffer_op = f"rd_cf{offset - 2}"
            slots.append(
                CycleSlot(
                    cycle=cycle,
                    dram_op=dram_op,
                    input_buffer_op=buffer_op,
                    acc_ctl="hold",
                    output_fifo_op="idle",
                )
            )
    return slots


def refresh_schedule_cycles(config: ArchitectureConfig) -> Dict[str, int]:
    """Summary of the refresh cadence implied by a configuration.

    Returns the macro-cycle length, the extended length, the number of
    macro-cycles between refreshes and the refresh period expressed in clock
    cycles and nanoseconds.
    """
    macrocycle = config.macrocycle_cycles
    interval_macro = config.refresh_interval_macrocycles
    period_cycles = interval_macro * macrocycle + config.refresh_stall_cycles
    return {
        "macrocycle_cycles": macrocycle,
        "extended_macrocycle_cycles": config.extended_macrocycle_cycles,
        "macrocycles_between_refreshes": interval_macro,
        "refresh_period_cycles": period_cycles,
        "refresh_period_ns": int(round(period_cycles * config.clock_period_ns)),
    }


@dataclass
class MacrocycleCounter:
    """Accumulates macro-cycle and refresh counts during a run.

    The counter does not know about the schedule contents; it only tracks
    how many macro-cycles were executed and how many of them were extended
    by a refresh, which is all the cycle/utilisation arithmetic needs.
    """

    filter_length: int
    refresh_stall_cycles: int
    refresh_interval_macrocycles: int
    macrocycles: int = 0
    refreshes: int = 0
    _since_refresh: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.filter_length < 1:
            raise ValueError("filter_length must be >= 1")
        if self.refresh_stall_cycles < 0:
            raise ValueError("refresh_stall_cycles must be >= 0")
        if self.refresh_interval_macrocycles < 1:
            raise ValueError("refresh_interval_macrocycles must be >= 1")

    #: Step counts up to this bound use the exact cycle-by-cycle loop; larger
    #: counts use the (equally exact) closed form.  Kept small enough that
    #: tests can cross-check both paths cheaply.
    LOOP_THRESHOLD = 4096

    def step(self, count: int = 1) -> int:
        """Execute ``count`` macro-cycles; return how many were extended.

        Small counts mirror the hardware stepping one macro-cycle at a time;
        large counts take the closed form (``_since_refresh`` starts below
        the interval, so the number of boundary crossings in ``count`` steps
        is ``(_since_refresh + count) // interval``), which keeps full-image
        runs — hundreds of thousands of macro-cycles — O(1).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count <= self.LOOP_THRESHOLD:
            extended = 0
            for _ in range(count):
                self.macrocycles += 1
                self._since_refresh += 1
                if self._since_refresh >= self.refresh_interval_macrocycles:
                    self._since_refresh = 0
                    self.refreshes += 1
                    extended += 1
            return extended
        interval = self.refresh_interval_macrocycles
        extended = (self._since_refresh + count) // interval
        self._since_refresh = (self._since_refresh + count) % interval
        self.macrocycles += count
        self.refreshes += extended
        return extended

    # -- derived cycle counts -----------------------------------------------------------
    @property
    def busy_cycles(self) -> int:
        """Cycles in which the multiplier does useful work (L per macro-cycle)."""
        return self.macrocycles * self.filter_length

    @property
    def stall_cycles(self) -> int:
        """Cycles spent on refresh extensions."""
        return self.refreshes * self.refresh_stall_cycles

    @property
    def total_cycles(self) -> int:
        return self.busy_cycles + self.stall_cycles

    def utilisation(self) -> float:
        """busy / total — the figure the paper quotes as 99.04 %."""
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles / self.total_cycles


@dataclass(frozen=True)
class UtilisationReport:
    """Cycle accounting of one (real or hypothetical) transform run."""

    macrocycles: int
    refreshes: int
    busy_cycles: int
    stall_cycles: int
    total_cycles: int
    utilisation: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.macrocycles} macrocycles, {self.refreshes} refreshes, "
            f"{self.total_cycles} cycles, utilisation {100.0 * self.utilisation:.2f}%"
        )


def simulate_utilisation(
    macrocycles: int,
    config: Optional[ArchitectureConfig] = None,
    filter_length: Optional[int] = None,
    refresh_interval_macrocycles: Optional[int] = None,
    refresh_stall_cycles: Optional[int] = None,
) -> UtilisationReport:
    """Run the macro-cycle counter over ``macrocycles`` steps and report.

    Either a full :class:`ArchitectureConfig` or the three scalar parameters
    can be supplied; the config's values are used for anything not given
    explicitly (defaults to the paper configuration when nothing is given).
    """
    if macrocycles < 0:
        raise ValueError("macrocycles must be non-negative")
    if config is None:
        config = ArchitectureConfig()
    counter = MacrocycleCounter(
        filter_length=filter_length or config.macrocycle_cycles,
        refresh_stall_cycles=(
            config.refresh_stall_cycles
            if refresh_stall_cycles is None
            else refresh_stall_cycles
        ),
        refresh_interval_macrocycles=(
            refresh_interval_macrocycles or config.refresh_interval_macrocycles
        ),
    )
    # The counter itself switches to an exact closed form above its loop
    # threshold, so even a full 512x512 run (~700k macro-cycles) is O(1) here.
    counter.step(macrocycles)
    return UtilisationReport(
        macrocycles=counter.macrocycles,
        refreshes=counter.refreshes,
        busy_cycles=counter.busy_cycles,
        stall_cycles=counter.stall_cycles,
        total_cycles=counter.total_cycles,
        utilisation=counter.utilisation(),
    )


def utilisation_formula(
    filter_length: int = 13,
    refresh_interval_macrocycles: int = 48,
    refresh_stall_cycles: int = 6,
) -> float:
    """Closed-form steady-state utilisation.

    Over one refresh period of ``refresh_interval_macrocycles`` macro-cycles
    the multiplier is busy ``interval * L`` cycles out of
    ``interval * L + stall`` total cycles.  With the paper's parameters
    (L = 13, one refresh every 48 macro-cycles, 6 stall cycles) this is
    624 / 630 = 99.05 %, matching the 99.04 % printed in the paper.
    """
    if filter_length < 1 or refresh_interval_macrocycles < 1:
        raise ValueError("filter_length and refresh interval must be >= 1")
    if refresh_stall_cycles < 0:
        raise ValueError("refresh_stall_cycles must be >= 0")
    busy = refresh_interval_macrocycles * filter_length
    return busy / (busy + refresh_stall_cycles)
