"""MAC unit: pipelined multiplier + 64-bit accumulator (Fig. 3 centre).

The accumulator control (``acc_ctl`` row of Fig. 2) knows three commands:

* ``load`` — start a new convolution: the accumulator is loaded with the
  incoming product (cycle 0 of a macro-cycle),
* ``acc``  — add the incoming product to the accumulator (cycles 1..L-1),
* ``hold`` — keep the current value (refresh-stall cycles 13..18).

The accumulator is 64 bits wide; like the hardware register it wraps modulo
2**64, which is harmless because the word-length plan guarantees the final
value of every convolution fits (transient overflow in two's complement
cancels out as long as the end result is representable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..fixedpoint.rounding import wrap_twos_complement
from .multiplier import PipelinedMultiplier

__all__ = ["MacUnit", "MacStats"]


@dataclass
class MacStats:
    """Operation counters of the MAC unit (drive the utilisation figures)."""

    multiplies: int = 0
    accumulate_cycles: int = 0
    load_cycles: int = 0
    hold_cycles: int = 0

    @property
    def busy_cycles(self) -> int:
        """Cycles in which the multiplier produced useful work."""
        return self.accumulate_cycles + self.load_cycles

    @property
    def total_cycles(self) -> int:
        return self.busy_cycles + self.hold_cycles

    def utilisation(self) -> float:
        """busy / total, the metric the paper quotes as 99.04 %."""
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles / self.total_cycles


class MacUnit:
    """Behavioural multiply-accumulate unit with an explicit accumulator."""

    def __init__(self, operand_bits: int = 32, accumulator_bits: int = 64,
                 multiplier_stages: int = 2) -> None:
        if accumulator_bits < operand_bits:
            raise ValueError("accumulator must be at least as wide as the operands")
        self.operand_bits = operand_bits
        self.accumulator_bits = accumulator_bits
        self.multiplier = PipelinedMultiplier(operand_bits, multiplier_stages)
        self.accumulator: int = 0
        self.stats = MacStats()

    def reset(self) -> None:
        """Clear the accumulator, pipeline and statistics."""
        self.multiplier.reset()
        self.accumulator = 0
        self.stats = MacStats()

    # -- the three acc_ctl commands ------------------------------------------------
    def load(self, data: int, coefficient: int) -> None:
        """Cycle 0 of a macro-cycle: start a new accumulation with ``data * coefficient``."""
        product = self._multiply(data, coefficient)
        self.accumulator = wrap_twos_complement(product, self.accumulator_bits)
        self.stats.load_cycles += 1

    def accumulate(self, data: int, coefficient: int) -> None:
        """Cycles 1..L-1: add ``data * coefficient`` to the accumulator."""
        product = self._multiply(data, coefficient)
        self.accumulator = wrap_twos_complement(
            self.accumulator + product, self.accumulator_bits
        )
        self.stats.accumulate_cycles += 1

    def hold(self) -> None:
        """Refresh-stall cycle: the accumulator keeps its value, multiplier idles."""
        self.stats.hold_cycles += 1

    # -- helpers --------------------------------------------------------------------
    def _multiply(self, data: int, coefficient: int) -> int:
        a = int(wrap_twos_complement(int(data), self.operand_bits))
        b = int(wrap_twos_complement(int(coefficient), self.operand_bits))
        self.stats.multiplies += 1
        return a * b

    def value(self) -> int:
        """Current accumulator contents (signed, 64-bit wrapped)."""
        return int(self.accumulator)

    def convolve(self, data_window, coefficients) -> int:
        """Run one full macro-cycle worth of MACs and return the accumulator.

        Convenience wrapper used by the datapath: ``load`` on the first pair,
        ``accumulate`` on the rest.  ``data_window`` and ``coefficients`` must
        have equal length (one MAC per filter tap, i.e. per macro-cycle slot).
        """
        data_window = list(data_window)
        coefficients = list(coefficients)
        if len(data_window) != len(coefficients):
            raise ValueError(
                f"window of {len(data_window)} samples does not match "
                f"{len(coefficients)} coefficients"
            )
        if not data_window:
            raise ValueError("cannot convolve an empty window")
        self.load(data_window[0], coefficients[0])
        for data, coeff in zip(data_window[1:], coefficients[1:]):
            self.accumulate(data, coeff)
        return self.value()
