"""Line-level datapath model (Fig. 3): MAC + alignment + buffers, bit-exact.

The datapath processes one row or one column at a time.  For the forward
transform a line pass reads the ``M`` samples of the line once from the
external memory, produces ``M/2`` low-pass and ``M/2`` high-pass outputs (one
output per macro-cycle, each output being ``L`` multiply-accumulates against
the periodically extended window), aligns each 64-bit accumulator result to
the destination scale's fixed-point format with the §4.3 rounding rule, and
writes the ``M`` results back once.  For the inverse transform a line pass
consumes the interleaved low/high halves and reconstructs the ``M`` samples
of the finer scale.

The arithmetic is exactly the arithmetic of
:class:`repro.fxdwt.transform.FixedPointDWT` — same quantised coefficients,
same accumulation, same alignment shifts, same rounding — so the outputs of
the datapath are bit-for-bit identical to the software fixed-point transform.
That equivalence (the paper's "simulated ... and gave the same output as a
software implementation") is asserted by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..filters.qmf import BiorthogonalBank
from ..fixedpoint.errors import OverflowPolicyError
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.wordlength import WordLengthPlan, plan_word_lengths
from .alignment import AlignmentUnit
from .coeff_ram import CoefficientRam
from .config import ArchitectureConfig
from .mac import MacUnit
from .output_fifo import VariableDepthFifo, choose_fifo_depth
from .scheduler import MacrocycleCounter

__all__ = ["DatapathStats", "Datapath"]


@dataclass
class DatapathStats:
    """Traffic and occupancy counters accumulated over datapath passes."""

    line_passes: int = 0
    samples_in: int = 0
    samples_out: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    coefficient_reads: int = 0
    fifo_pushes: int = 0

    def merge(self, other: "DatapathStats") -> None:
        self.line_passes += other.line_passes
        self.samples_in += other.samples_in
        self.samples_out += other.samples_out
        self.dram_reads += other.dram_reads
        self.dram_writes += other.dram_writes
        self.coefficient_reads += other.coefficient_reads
        self.fifo_pushes += other.fifo_pushes


class Datapath:
    """Behavioural model of the Fig. 3 datapath operating on whole lines.

    Parameters
    ----------
    config:
        Architecture configuration (image size, filter bank, scales, word
        length, clock, refresh cadence).
    plan:
        Optional word-length plan; defaults to the paper plan derived from
        the configured bank and scale count.
    rounding:
        ``"half_up"`` (paper rule) or ``"truncate"`` — forwarded to the
        alignment unit so ablations can disable the rounding rule.
    overflow_policy:
        ``"raise"`` (default), ``"saturate"`` or ``"wrap"`` applied to every
        aligned output word.
    """

    def __init__(
        self,
        config: ArchitectureConfig,
        plan: Optional[WordLengthPlan] = None,
        rounding: str = "half_up",
        overflow_policy: str = "raise",
    ) -> None:
        self.config = config
        self.bank: BiorthogonalBank = config.bank
        self.plan = plan if plan is not None else plan_word_lengths(
            self.bank,
            config.scales,
            word_length=config.word_length,
            input_bits=config.input_bits,
            accumulator_bits=config.accumulator_bits,
        )
        if overflow_policy not in ("raise", "saturate", "wrap"):
            raise ValueError(f"unknown overflow policy {overflow_policy!r}")
        self.overflow_policy = overflow_policy
        self.alignment = AlignmentUnit(self.plan, rounding=rounding)
        self.coeff_ram = CoefficientRam(self.bank, self.plan.coefficient_format)
        self.mac = MacUnit(
            operand_bits=config.word_length,
            accumulator_bits=config.accumulator_bits,
        )
        self.counter = MacrocycleCounter(
            filter_length=config.macrocycle_cycles,
            refresh_stall_cycles=config.refresh_stall_cycles,
            refresh_interval_macrocycles=config.refresh_interval_macrocycles,
        )
        self.stats = DatapathStats()
        self.fifo = VariableDepthFifo(depth=0, capacity=config.image_size // 2)
        # Synthesis window tables, built lazily per output length (the taps
        # are fixed for the datapath's lifetime, so the modular index
        # arithmetic is computed once per line length instead of once per
        # output sample).
        self._synthesis_plans: Dict[int, List[Tuple[List[int], List[int], List[int]]]] = {}

    # -- configuration queries ------------------------------------------------------
    def format_for_scale(self, scale: int) -> QFormat:
        """Fixed-point format of data belonging to ``scale`` (0 = input image)."""
        return self.plan.format_for_scale(scale)

    def reset_counters(self) -> None:
        """Clear all statistics (keeps the configuration)."""
        self.mac.reset()
        self.coeff_ram.reset_counters()
        self.counter = MacrocycleCounter(
            filter_length=self.config.macrocycle_cycles,
            refresh_stall_cycles=self.config.refresh_stall_cycles,
            refresh_interval_macrocycles=self.config.refresh_interval_macrocycles,
        )
        self.stats = DatapathStats()

    # -- core per-sample helpers -----------------------------------------------------
    def _check_word(self, value: int, fmt: QFormat) -> int:
        if fmt.min_int <= value <= fmt.max_int:
            return value
        if self.overflow_policy == "raise":
            raise OverflowPolicyError(
                f"aligned value {value} exceeds {fmt} range [{fmt.min_int}, {fmt.max_int}]"
            )
        if self.overflow_policy == "saturate":
            return max(fmt.min_int, min(fmt.max_int, value))
        # wrap
        modulus = 1 << fmt.word_length
        wrapped = value % modulus
        return wrapped - modulus if wrapped >= (modulus >> 1) else wrapped

    def _convolve_window(
        self, line: np.ndarray, start: int, role: str
    ) -> int:
        """One macro-cycle: L MACs over the periodically extended window."""
        quantized = self.coeff_ram.quantized(role)
        coefficients = self.coeff_ram.window(role)
        self.stats.coefficient_reads += len(coefficients)
        n = line.shape[0]
        window = [int(line[(start + idx) % n]) for idx in quantized.indices]
        return self.mac.convolve(window, coefficients)

    # -- analysis (forward) line pass ---------------------------------------------------
    def analyze_line(
        self, line: np.ndarray, scale: int, pass_name: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One forward line pass: return the ``(low, high)`` decimated halves.

        ``scale`` is the destination scale (the data produced belongs to
        ``scale``); ``pass_name`` is ``"rows"`` or ``"columns"`` and selects
        the alignment-configuration entry (rows consume scale ``scale - 1``
        data, columns consume row results already in the ``scale`` format).
        """
        line = np.asarray(line, dtype=np.int64)
        if line.ndim != 1:
            raise ValueError("analyze_line expects a 1-D line")
        n = line.shape[0]
        if n % 2:
            raise ValueError(f"line length {n} must be even")
        target = self.format_for_scale(scale)
        half = n // 2
        low = np.zeros(half, dtype=np.int64)
        high = np.zeros(half, dtype=np.int64)
        fifo_depth = choose_fifo_depth(n, self.config.half_filter_length) if n > 2 * self.config.half_filter_length else 0
        self.fifo.resize(min(fifo_depth, self.fifo.capacity or fifo_depth))
        for k in range(half):
            acc = self._convolve_window(line, 2 * k, "h")
            value = self.alignment.align(acc, "forward", scale, pass_name)
            low[k] = self._check_word(value, target)
            self.counter.step()

            acc = self._convolve_window(line, 2 * k, "g")
            value = self.alignment.align(acc, "forward", scale, pass_name)
            # The high-pass result is delayed through the write-back FIFO; the
            # delay only reorders the DRAM writes, not the values themselves.
            delayed = self.fifo.push((k, self._check_word(value, target)))
            if delayed is not None:
                high[delayed[0]] = delayed[1]
            self.stats.fifo_pushes += 1
            self.counter.step()
        for k, value in self.fifo.drain():
            high[k] = value
        self.stats.line_passes += 1
        self.stats.samples_in += n
        self.stats.samples_out += n
        self.stats.dram_reads += n
        self.stats.dram_writes += n
        return low, high

    # -- synthesis window tables --------------------------------------------------------
    def synthesis_plan(self, out_len: int) -> List[Tuple[List[int], List[int], List[int]]]:
        """Per-output-sample synthesis windows for a length-``out_len`` line.

        Entry ``m`` is ``(low_positions, high_positions, coefficients)``: the
        half-band sample positions whose taps land on output ``m`` and the
        stored coefficients in MAC order (``ht`` contributions first, then
        ``gt``).  The table depends only on ``out_len`` and the quantised
        synthesis taps, so it is computed once per line length and cached —
        the per-sample ``(m - idx) % out_len`` re-derivation is gone from the
        inner loop.  The cache assumes the quantised taps are immutable (they
        are, short of deliberate fault injection).
        """
        plan = self._synthesis_plans.get(out_len)
        if plan is not None:
            return plan
        qht = self.coeff_ram.quantized("ht")
        qgt = self.coeff_ram.quantized("gt")
        plan = []
        for m in range(out_len):
            low_positions: List[int] = []
            high_positions: List[int] = []
            coefficients: List[int] = []
            # Contributions of the low-pass branch: taps ht[m - 2k], i.e.
            # m - 2k = idx (mod out_len)  =>  k = (m - idx) / 2 when even.
            for idx, stored in zip(qht.indices, qht.stored_taps):
                numerator = (m - idx) % out_len
                if numerator % 2 == 0:
                    low_positions.append(numerator // 2)
                    coefficients.append(stored)
            for idx, stored in zip(qgt.indices, qgt.stored_taps):
                numerator = (m - idx) % out_len
                if numerator % 2 == 0:
                    high_positions.append(numerator // 2)
                    coefficients.append(stored)
            plan.append((low_positions, high_positions, coefficients))
        self._synthesis_plans[out_len] = plan
        return plan

    # -- synthesis (inverse) line pass ---------------------------------------------------
    def synthesize_line(
        self, low: np.ndarray, high: np.ndarray, scale: int, pass_name: str
    ) -> np.ndarray:
        """One inverse line pass: reconstruct the length-``2M`` finer line.

        ``scale`` is the scale being undone; for ``pass_name == "columns"``
        the result stays in the ``scale`` format, for ``"rows"`` it lands in
        the coarser ``scale - 1`` format (see the alignment configuration).
        """
        low = np.asarray(low, dtype=np.int64)
        high = np.asarray(high, dtype=np.int64)
        if low.shape != high.shape or low.ndim != 1:
            raise ValueError("synthesize_line expects two equal-length 1-D halves")
        half = low.shape[0]
        out_len = 2 * half
        entry = self.alignment.entry("inverse", scale, pass_name)
        target = entry.target_format
        plan = self.synthesis_plan(out_len)

        out = np.zeros(out_len, dtype=np.int64)
        for m in range(out_len):
            low_positions, high_positions, coefficients = plan[m]
            window = [int(low[k]) for k in low_positions]
            window += [int(high[k]) for k in high_positions]
            self.stats.coefficient_reads += len(coefficients)
            acc = self.mac.convolve(window, coefficients)
            value = self.alignment.align(acc, "inverse", scale, pass_name)
            out[m] = self._check_word(value, target)
            self.counter.step()
        self.stats.line_passes += 1
        self.stats.samples_in += out_len
        self.stats.samples_out += out_len
        self.stats.dram_reads += out_len
        self.stats.dram_writes += out_len
        return out

    # -- utilisation ------------------------------------------------------------------------
    def utilisation(self) -> float:
        """Multiplier utilisation accumulated so far (busy / total cycles)."""
        return self.counter.utilisation()
