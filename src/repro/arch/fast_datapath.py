"""Batched (vectorised) engine over the scalar :class:`~repro.arch.datapath.Datapath`.

The scalar datapath mirrors the hardware one macro-cycle at a time: one MAC
window, one FIFO push and one counter step per Python iteration, which makes
a full image pass O(N²) Python-level work.  This module is the architecture
model's counterpart of the ``fastbits`` entropy-coding engine: it computes a
whole line pass — every row or every column of a scale at once — with the
vectorised periodic-convolution pattern of :mod:`repro.dwt.convolution`,
while reproducing the scalar model's observable state *exactly*:

* **Output words** are bit-identical.  The arithmetic is the same 32-bit
  operand wrap, exact 64-bit-wrapped accumulation (NumPy ``int64`` arithmetic
  is arithmetic modulo 2**64, exactly like the hardware accumulator), §4.3
  alignment rounding and overflow policing.
* **Statistics** (:class:`~repro.arch.datapath.DatapathStats`, MAC operation
  counters, coefficient-RAM reads, FIFO push/pop counters and the
  :class:`~repro.arch.scheduler.MacrocycleCounter`) advance by closed forms.
  Every per-sample count of the scalar model is a deterministic function of
  the line length, the filter lengths and the FIFO depth, so the batched
  pass can account a whole pass at once; the ``MacrocycleCounter`` already
  provides an exact O(1) ``step(count)``.  Even the final MAC accumulator
  value is restored, so a fast pass leaves the datapath in the same state a
  scalar pass would.

The intentional divergences are confined to the ``overflow_policy="raise"``
error path: the batched check may report a different offending sample than
the scalar order would (it scans the low-pass block before the high-pass
block), and an aborted pass leaves the counters untouched, where the scalar
model raises mid-line with partially advanced counters.  Completed passes
are state-identical; the scalar model remains the reference for
fault-injection work.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..fixedpoint.errors import OverflowPolicyError
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.rounding import (
    round_half_up_shift,
    truncate_shift,
    wrap_twos_complement,
)
from .datapath import Datapath
from .output_fifo import choose_fifo_depth

__all__ = ["FastDatapath"]


class FastDatapath:
    """Whole-pass array engine sharing a scalar :class:`Datapath`'s state.

    The engine owns no arithmetic state of its own: coefficients, alignment
    configuration, counters and the FIFO all live in the wrapped datapath,
    so scalar and fast passes can be freely interleaved and their statistics
    accumulate into the same report.
    """

    def __init__(self, datapath: Datapath) -> None:
        self.datapath = datapath
        # Gather/scatter index vectors per line length (analysis) and output
        # length (synthesis); the taps are fixed for the datapath's lifetime.
        self._analysis_taps: Dict[int, Dict[str, List[Tuple[np.ndarray, int]]]] = {}
        self._synthesis_taps: Dict[int, List[Tuple[str, np.ndarray, int]]] = {}

    # -- cached index tables ---------------------------------------------------------
    def _analysis_table(self, n: int) -> Dict[str, List[Tuple[np.ndarray, int]]]:
        """Per-tap periodic gather indices for a length-``n`` analysis pass."""
        table = self._analysis_taps.get(n)
        if table is None:
            base = 2 * np.arange(n // 2)
            table = {}
            for role in ("h", "g"):
                quantized = self.datapath.coeff_ram.quantized(role)
                table[role] = [
                    (np.mod(base + idx, n), int(stored))
                    for idx, stored in zip(quantized.indices, quantized.stored_taps)
                ]
            self._analysis_taps[n] = table
        return table

    def _synthesis_table(self, out_len: int) -> List[Tuple[str, np.ndarray, int]]:
        """Per-tap periodic scatter indices for a length-``out_len`` synthesis pass."""
        table = self._synthesis_taps.get(out_len)
        if table is None:
            positions = 2 * np.arange(out_len // 2)
            table = []
            for role, branch in (("ht", "low"), ("gt", "high")):
                quantized = self.datapath.coeff_ram.quantized(role)
                for idx, stored in zip(quantized.indices, quantized.stored_taps):
                    table.append((branch, np.mod(positions + idx, out_len), int(stored)))
            self._synthesis_taps[out_len] = table
        return table

    # -- shared helpers --------------------------------------------------------------
    def _wrap_operands(self, values: np.ndarray) -> np.ndarray:
        """Mirror the MAC unit's two's-complement operand wrap (a no-op for
        any value the word-length plan admits)."""
        wrapped = wrap_twos_complement(values, self.datapath.mac.operand_bits)
        return np.asarray(wrapped, dtype=np.int64)

    def _wrap_accumulators(self, acc: np.ndarray) -> np.ndarray:
        """Reduce accumulators to the configured width, like the scalar MAC.

        int64 accumulation is already arithmetic modulo 2**64; narrower
        accumulators wrap after every MAC in the scalar unit, which is
        equivalent to one final wrap because reduction mod 2**B is a ring
        homomorphism.  Widths above 64 would need big-integer accumulation
        the array engine cannot provide, so they stay scalar-only.
        """
        bits = self.datapath.mac.accumulator_bits
        if bits > 64:
            raise ValueError(
                f"the fast engine supports accumulators up to 64 bits "
                f"(configured: {bits}); use engine='scalar'"
            )
        if bits == 64:
            return acc
        return np.asarray(wrap_twos_complement(acc, bits), dtype=np.int64)

    def _align(self, acc: np.ndarray, shift: int) -> np.ndarray:
        if self.datapath.alignment.rounding == "half_up":
            return np.asarray(round_half_up_shift(acc, shift), dtype=np.int64)
        return np.asarray(truncate_shift(acc, shift), dtype=np.int64)

    def _check_words(self, values: np.ndarray, fmt: QFormat) -> np.ndarray:
        """Vectorised counterpart of ``Datapath._check_word``."""
        policy = self.datapath.overflow_policy
        if policy == "raise":
            bad = (values < fmt.min_int) | (values > fmt.max_int)
            if bad.any():
                value = int(values[bad].flat[0])
                raise OverflowPolicyError(
                    f"aligned value {value} exceeds {fmt} range "
                    f"[{fmt.min_int}, {fmt.max_int}]"
                )
            return values
        if policy == "saturate":
            return np.clip(values, fmt.min_int, fmt.max_int)
        # wrap
        return np.asarray(
            wrap_twos_complement(values, fmt.word_length), dtype=np.int64
        )

    def _set_accumulator(self, final_acc: int) -> None:
        """Leave the MAC accumulator as the scalar model's last convolution would."""
        mac = self.datapath.mac
        mac.accumulator = int(wrap_twos_complement(int(final_acc), mac.accumulator_bits))

    # -- analysis (forward) pass -----------------------------------------------------
    def analyze_lines(
        self, lines: np.ndarray, scale: int, pass_name: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run ``analyze_line`` over every row of ``lines`` in one array pass.

        ``lines`` is ``(count, n)``; returns ``(low, high)`` of shape
        ``(count, n // 2)``, bit-identical to ``count`` scalar calls, with
        all counters advanced by the equivalent closed forms.
        """
        dp = self.datapath
        lines = np.asarray(lines, dtype=np.int64)
        if lines.ndim != 2:
            raise ValueError("analyze_lines expects a (count, n) array of lines")
        count, n = lines.shape
        if n % 2:
            raise ValueError(f"line length {n} must be even")
        entry = dp.alignment.entry("forward", scale, pass_name)
        target = entry.target_format
        half = n // 2
        if count == 0:
            return (
                np.zeros((0, half), dtype=np.int64),
                np.zeros((0, half), dtype=np.int64),
            )

        data = self._wrap_operands(lines)
        table = self._analysis_table(n)
        acc_low = np.zeros((count, half), dtype=np.int64)
        acc_high = np.zeros((count, half), dtype=np.int64)
        with np.errstate(over="ignore"):
            for indices, stored in table["h"]:
                acc_low += np.int64(stored) * data[:, indices]
            for indices, stored in table["g"]:
                acc_high += np.int64(stored) * data[:, indices]
        acc_low = self._wrap_accumulators(acc_low)
        acc_high = self._wrap_accumulators(acc_high)
        # The scalar model's last convolution is the high-pass output of the
        # final sample of the final line.
        final_acc = int(acc_high[-1, -1])

        low = self._check_words(self._align(acc_low, entry.shift), target)
        high = self._check_words(self._align(acc_high, entry.shift), target)

        # -- closed-form accounting (one scalar line at a time would do the same) --
        length_h = dp.coeff_ram.filter_length("h")
        length_g = dp.coeff_ram.filter_length("g")
        taps_per_pair = length_h + length_g
        outputs = 2 * half * count
        fifo_depth = (
            choose_fifo_depth(n, dp.config.half_filter_length)
            if n > 2 * dp.config.half_filter_length
            else 0
        )
        dp.fifo.resize(min(fifo_depth, dp.fifo.capacity or fifo_depth))
        dp.fifo.pushes += half * count
        dp.fifo.pops += half * count
        dp.coeff_ram.reads += half * count * taps_per_pair
        dp.stats.coefficient_reads += half * count * taps_per_pair
        dp.stats.fifo_pushes += half * count
        dp.stats.line_passes += count
        dp.stats.samples_in += n * count
        dp.stats.samples_out += n * count
        dp.stats.dram_reads += n * count
        dp.stats.dram_writes += n * count
        dp.mac.stats.multiplies += half * count * taps_per_pair
        dp.mac.stats.load_cycles += outputs
        dp.mac.stats.accumulate_cycles += half * count * taps_per_pair - outputs
        dp.counter.step(outputs)
        self._set_accumulator(final_acc)
        return low, high

    # -- synthesis (inverse) pass ----------------------------------------------------
    def synthesize_lines(
        self, low: np.ndarray, high: np.ndarray, scale: int, pass_name: str
    ) -> np.ndarray:
        """Run ``synthesize_line`` over every row of ``low``/``high`` at once.

        ``low`` and ``high`` are ``(count, half)``; returns the ``(count,
        2 * half)`` reconstruction, bit-identical to ``count`` scalar calls.
        """
        dp = self.datapath
        low = np.asarray(low, dtype=np.int64)
        high = np.asarray(high, dtype=np.int64)
        if low.shape != high.shape or low.ndim != 2:
            raise ValueError("synthesize_lines expects two equal-shape (count, half) arrays")
        count, half = low.shape
        out_len = 2 * half
        entry = dp.alignment.entry("inverse", scale, pass_name)
        target = entry.target_format
        if count == 0:
            return np.zeros((0, out_len), dtype=np.int64)

        branches = {"low": self._wrap_operands(low), "high": self._wrap_operands(high)}
        acc = np.zeros((count, out_len), dtype=np.int64)
        with np.errstate(over="ignore"):
            for branch, positions, stored in self._synthesis_table(out_len):
                # The scatter positions of one tap are distinct (stride-2
                # plus a constant offset mod out_len), so fancy-index += is
                # exact; summation order differs from the scalar MAC order
                # but addition modulo 2**64 is commutative.
                acc[:, positions] += np.int64(stored) * branches[branch]
        acc = self._wrap_accumulators(acc)
        final_acc = int(acc[-1, -1])

        out = self._check_words(self._align(acc, entry.shift), target)

        # -- closed-form accounting --------------------------------------------------
        # Each tap of ht/gt contributes to exactly half of the out_len output
        # samples (those of matching parity), so the per-line window sizes
        # sum to half * (len(ht) + len(gt)) — the same total the cached
        # scalar synthesis plan produces.
        taps_total = dp.coeff_ram.filter_length("ht") + dp.coeff_ram.filter_length("gt")
        outputs = out_len * count
        dp.stats.coefficient_reads += half * count * taps_total
        dp.stats.line_passes += count
        dp.stats.samples_in += outputs
        dp.stats.samples_out += outputs
        dp.stats.dram_reads += outputs
        dp.stats.dram_writes += outputs
        dp.mac.stats.multiplies += half * count * taps_total
        dp.mac.stats.load_cycles += outputs
        dp.mac.stats.accumulate_cycles += half * count * taps_total - outputs
        dp.counter.step(outputs)
        self._set_accumulator(final_acc)
        return out
