"""Configuration of the proposed architecture (§4 of the paper).

The architecture is dimensioned by a handful of parameters: the image size
``N``, the filter bank (hence the filter length ``L`` and the macro-cycle
length), the number of scales ``S``, the datapath word length, the clock and
the DRAM refresh interval.  :class:`ArchitectureConfig` gathers them,
derives the secondary quantities used throughout the model (buffer size,
on-chip memory words, macro-cycle structure) and provides the paper's
reference configuration (N=512, L=13, S=6, 32-bit words, 33 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..filters.catalog import DEFAULT_BANK_NAME, get_bank
from ..filters.qmf import BiorthogonalBank

__all__ = ["ArchitectureConfig", "paper_configuration"]


@dataclass(frozen=True)
class ArchitectureConfig:
    """Static parameters of one instance of the proposed architecture.

    Attributes
    ----------
    image_size:
        Number of rows (= columns) ``N`` of the square input image.
    scales:
        Number of decomposition scales ``S``.
    bank_name:
        Name of the Table I filter bank stored in the coefficient RAM.
    word_length:
        Datapath word length in bits (32 in the paper).
    accumulator_bits:
        Accumulator width in bits (64 in the paper).
    input_bits:
        Input pixel word length including sign (13 in the paper).
    clock_period_ns:
        Datapath clock period; the paper designs for 25 ns and reports
        throughput at 33 MHz (30.3 ns), so this defaults to the operating
        point used for the headline images/s figure.
    dram_refresh_interval_cycles:
        Number of clock cycles between two DRAM refresh requests.  A
        standard 15.6 µs distributed-refresh interval at the design clock
        corresponds to 624 cycles, i.e. one refresh every 48 macro-cycles,
        which reproduces the paper's 99.04 % utilisation figure.
    refresh_stall_cycles:
        Extra cycles appended to a macro-cycle when a refresh is pending
        (cycles 13–18 of Fig. 2, i.e. 6 cycles).
    """

    image_size: int = 512
    scales: int = 6
    bank_name: str = DEFAULT_BANK_NAME
    word_length: int = 32
    accumulator_bits: int = 64
    input_bits: int = 13
    clock_period_ns: float = 1000.0 / 33.0
    dram_refresh_interval_cycles: int = 624
    refresh_stall_cycles: int = 6

    def __post_init__(self) -> None:
        if self.image_size < 2 or self.image_size % (1 << self.scales):
            raise ValueError(
                f"image size {self.image_size} must be divisible by 2^scales "
                f"(= {1 << self.scales})"
            )
        if self.scales < 1:
            raise ValueError("scales must be >= 1")
        if self.word_length < 8:
            raise ValueError("word_length must be at least 8 bits")
        if self.clock_period_ns <= 0:
            raise ValueError("clock_period_ns must be positive")
        if self.dram_refresh_interval_cycles < 1:
            raise ValueError("dram_refresh_interval_cycles must be >= 1")
        if self.refresh_stall_cycles < 0:
            raise ValueError("refresh_stall_cycles must be >= 0")
        # Force construction of the bank now so that a bad name fails early.
        get_bank(self.bank_name)

    # -- filter-derived quantities -------------------------------------------------
    @property
    def bank(self) -> BiorthogonalBank:
        """The filter bank stored in the coefficient RAM."""
        return get_bank(self.bank_name)

    @property
    def filter_length(self) -> int:
        """``L``: the longest analysis filter (13 for the F2 bank)."""
        return self.bank.max_analysis_length

    @property
    def half_filter_length(self) -> int:
        """``l`` such that ``L = 2*l + 1``."""
        return (self.filter_length - 1) // 2

    # -- macro-cycle structure -------------------------------------------------------
    @property
    def macrocycle_cycles(self) -> int:
        """Clock cycles of a normal macro-cycle (one MAC per tap: cycles 0..L-1)."""
        return self.filter_length

    @property
    def extended_macrocycle_cycles(self) -> int:
        """Macro-cycle length when a DRAM refresh is inserted (cycles 0..18)."""
        return self.macrocycle_cycles + self.refresh_stall_cycles

    @property
    def refresh_interval_macrocycles(self) -> int:
        """Macro-cycles between two refreshes (48 for the paper's parameters)."""
        return max(1, self.dram_refresh_interval_cycles // self.macrocycle_cycles)

    # -- memory sizing (§4, Fig. 3 and §4.1) ---------------------------------------------
    @property
    def input_buffer_min_size(self) -> int:
        """Minimum input buffer size ``Bsize = 4*l + 1`` (§4.1)."""
        return 4 * self.half_filter_length + 1

    @property
    def input_buffer_size(self) -> int:
        """Buffer size rounded up to the next power of two (32 for L=13)."""
        size = 1
        while size < self.input_buffer_min_size:
            size *= 2
        return size

    @property
    def onchip_memory_words(self) -> int:
        """On-chip storage of the proposed datapath: ``N/2 + 32`` words (§5)."""
        return self.image_size // 2 + self.input_buffer_size

    @property
    def clock_frequency_mhz(self) -> float:
        """Clock frequency implied by :attr:`clock_period_ns`."""
        return 1000.0 / self.clock_period_ns

    def with_image_size(self, image_size: int) -> "ArchitectureConfig":
        """Copy of this configuration for a different image size."""
        return ArchitectureConfig(
            image_size=image_size,
            scales=self.scales,
            bank_name=self.bank_name,
            word_length=self.word_length,
            accumulator_bits=self.accumulator_bits,
            input_bits=self.input_bits,
            clock_period_ns=self.clock_period_ns,
            dram_refresh_interval_cycles=self.dram_refresh_interval_cycles,
            refresh_stall_cycles=self.refresh_stall_cycles,
        )

    def with_scales(self, scales: int) -> "ArchitectureConfig":
        """Copy of this configuration for a different number of scales."""
        return ArchitectureConfig(
            image_size=self.image_size,
            scales=scales,
            bank_name=self.bank_name,
            word_length=self.word_length,
            accumulator_bits=self.accumulator_bits,
            input_bits=self.input_bits,
            clock_period_ns=self.clock_period_ns,
            dram_refresh_interval_cycles=self.dram_refresh_interval_cycles,
            refresh_stall_cycles=self.refresh_stall_cycles,
        )


def paper_configuration(
    image_size: int = 512, scales: int = 6, bank_name: str = DEFAULT_BANK_NAME
) -> ArchitectureConfig:
    """The configuration of the paper's worked example (512x512, 13-tap, S=6).

    The design clock is 25 ns (40 MHz) but the throughput figures are quoted
    at 33 MHz; the refresh interval is expressed in design-clock cycles
    (15.6 µs / 25 ns = 624 cycles = 48 macro-cycles), matching the quoted
    99.04 % multiplier utilisation.
    """
    return ArchitectureConfig(image_size=image_size, scales=scales, bank_name=bank_name)
