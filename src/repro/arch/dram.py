"""External DRAM model (image frame store + refresh requests).

The proposed architecture keeps the image — initial, intermediate and final
convolution results — in a single image-sized external DRAM (§4).  The
design goals the DRAM model has to let us check are:

* every datum is **read once and written once** per convolution pass,
* one DRAM read and one DRAM write per macro-cycle (Fig. 2, cycles 0 and
  7/8–10),
* the DRAM needs a periodic refresh, during which the macro-cycle is
  extended by six stall cycles (cycles 13–18 of Fig. 2); with a standard
  15.6 µs distributed-refresh interval and a 25 ns clock this is one refresh
  every 48 macro-cycles and yields the 99.04 % multiplier utilisation.

:class:`ExternalDram` is a word-addressable store of 32-bit words (stored
integers) with access counters; :class:`RefreshTimer` generates the refresh
requests from a cycle budget; :class:`FrameBuffer` maps (row, column) image
coordinates onto DRAM addresses so the transform passes can address the
frame in either orientation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ExternalDram", "RefreshTimer", "FrameBuffer"]


class ExternalDram:
    """Word-addressable external memory with access counters.

    The memory stores Python/NumPy ``int64`` *stored* integers (the datapath
    word); word-level wrapping is the responsibility of the datapath, the
    memory itself is just storage.
    """

    def __init__(self, words: int) -> None:
        if words < 1:
            raise ValueError("DRAM size must be at least one word")
        self.words = words
        self._data = np.zeros(words, dtype=np.int64)
        self.reads = 0
        self.writes = 0
        self.refreshes = 0

    # -- accesses -----------------------------------------------------------------
    def read(self, address: int) -> int:
        """Read one word."""
        self._check(address)
        self.reads += 1
        return int(self._data[address])

    def write(self, address: int, value: int) -> None:
        """Write one word."""
        self._check(address)
        self.writes += 1
        self._data[address] = np.int64(value)

    def refresh(self) -> None:
        """Account for one refresh operation."""
        self.refreshes += 1

    def reset_counters(self) -> None:
        """Clear the access counters (not the contents)."""
        self.reads = 0
        self.writes = 0
        self.refreshes = 0

    # -- bulk helpers (loading and unloading the frame around a run) ---------------
    def load(self, values: np.ndarray, base_address: int = 0) -> None:
        """Bulk-load ``values`` starting at ``base_address`` (not counted).

        Used to model the host filling the frame buffer over the PCI bus
        before a transform run; it does not count as datapath DRAM traffic.
        """
        values = np.asarray(values, dtype=np.int64).ravel()
        end = base_address + values.size
        self._check(base_address)
        if end > self.words:
            raise ValueError(
                f"load of {values.size} words at {base_address} exceeds DRAM size {self.words}"
            )
        self._data[base_address:end] = values

    def dump(self, base_address: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Bulk-read ``count`` words starting at ``base_address`` (not counted)."""
        if count is None:
            count = self.words - base_address
        self._check(base_address)
        end = base_address + count
        if end > self.words:
            raise ValueError(
                f"dump of {count} words at {base_address} exceeds DRAM size {self.words}"
            )
        return self._data[base_address:end].copy()

    # -- helpers -----------------------------------------------------------------------
    def _check(self, address: int) -> None:
        if not 0 <= address < self.words:
            raise IndexError(f"address {address} outside DRAM of {self.words} words")


@dataclass
class RefreshTimer:
    """Generates DRAM refresh requests every ``interval_cycles`` clock cycles.

    ``advance(cycles)`` consumes a number of elapsed clock cycles and returns
    how many refresh requests became due during them.  The datapath extends
    the current macro-cycle by the stall cycles of Fig. 2 for each request it
    serves.
    """

    interval_cycles: int
    _elapsed: int = 0
    requests: int = 0

    def __post_init__(self) -> None:
        if self.interval_cycles < 1:
            raise ValueError("interval_cycles must be >= 1")

    def advance(self, cycles: int) -> int:
        """Advance the timer; return the number of refreshes now due."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._elapsed += cycles
        due = self._elapsed // self.interval_cycles
        self._elapsed -= due * self.interval_cycles
        self.requests += due
        return due

    def reset(self) -> None:
        self._elapsed = 0
        self.requests = 0


class FrameBuffer:
    """Maps image (row, column) coordinates to DRAM addresses.

    The frame is stored in raster (row-major) order.  ``row_address`` /
    ``column_address`` give the address of a sample when a line is being
    traversed along a row or along a column, which is how the row and column
    passes of the transform address the frame.
    """

    def __init__(self, dram: ExternalDram, rows: int, cols: int, base_address: int = 0) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("frame dimensions must be positive")
        if base_address < 0 or base_address + rows * cols > dram.words:
            raise ValueError(
                f"frame of {rows}x{cols} at base {base_address} does not fit in "
                f"{dram.words}-word DRAM"
            )
        self.dram = dram
        self.rows = rows
        self.cols = cols
        self.base_address = base_address

    # -- address computation -----------------------------------------------------------
    def address(self, row: int, col: int) -> int:
        """DRAM address of pixel ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(
                f"pixel ({row}, {col}) outside frame of {self.rows}x{self.cols}"
            )
        return self.base_address + row * self.cols + col

    # -- pixel accesses (counted) ---------------------------------------------------------
    def read_pixel(self, row: int, col: int) -> int:
        return self.dram.read(self.address(row, col))

    def write_pixel(self, row: int, col: int, value: int) -> None:
        self.dram.write(self.address(row, col), value)

    # -- line accesses (counted, one DRAM access per sample) --------------------------------
    def read_row(self, row: int, length: Optional[int] = None) -> np.ndarray:
        """Read the first ``length`` samples of a row (counted per sample)."""
        length = self.cols if length is None else length
        return np.array(
            [self.read_pixel(row, col) for col in range(length)], dtype=np.int64
        )

    def write_row(self, row: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int64)
        for col, value in enumerate(values):
            self.write_pixel(row, col, int(value))

    def read_column(self, col: int, length: Optional[int] = None) -> np.ndarray:
        """Read the first ``length`` samples of a column (counted per sample)."""
        length = self.rows if length is None else length
        return np.array(
            [self.read_pixel(row, col) for row in range(length)], dtype=np.int64
        )

    def write_column(self, col: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int64)
        for row, value in enumerate(values):
            self.write_pixel(row, col, int(value))

    # -- bulk helpers (not counted) ----------------------------------------------------------
    def load_image(self, image: np.ndarray) -> None:
        """Bulk-load a full image (host-side fill, not counted as traffic)."""
        image = np.asarray(image, dtype=np.int64)
        if image.shape != (self.rows, self.cols):
            raise ValueError(
                f"image of shape {image.shape} does not match frame {self.rows}x{self.cols}"
            )
        self.dram.load(image, self.base_address)

    def dump_image(self) -> np.ndarray:
        """Bulk-read the full frame (host-side readback, not counted)."""
        flat = self.dram.dump(self.base_address, self.rows * self.cols)
        return flat.reshape(self.rows, self.cols)
