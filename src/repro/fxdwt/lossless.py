"""Lossless-compression verification (the central claim of §3).

"Lossless" in the paper means: forward transform, then inverse transform,
then rounding to integer pixels reproduces the original image bit-for-bit.
Because of finite-precision arithmetic this only holds if the word-length
plan leaves enough fractional bits at every scale — which is exactly what
the 32-bit word with Table II integer parts is designed to guarantee.

This module provides the verification report used by tests, examples and the
lossless benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..filters.catalog import get_bank
from ..filters.qmf import BiorthogonalBank
from ..fixedpoint.wordlength import WordLengthPlan, plan_word_lengths
from .transform import FixedPointDWT

__all__ = [
    "LosslessReport",
    "verify_lossless",
    "verify_lossless_batch",
    "lossless_word_length_search",
]


@dataclass(frozen=True)
class LosslessReport:
    """Result of one lossless round-trip check."""

    bank_name: str
    scales: int
    word_length: int
    image_shape: tuple
    lossless: bool
    max_abs_error: int
    mean_abs_error: float
    mismatched_pixels: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "LOSSLESS" if self.lossless else "LOSSY"
        return (
            f"[{status}] bank={self.bank_name} scales={self.scales} "
            f"word={self.word_length}b image={self.image_shape} "
            f"max|err|={self.max_abs_error} mismatches={self.mismatched_pixels}"
        )


def verify_lossless(
    image: np.ndarray,
    bank: BiorthogonalBank,
    scales: int,
    plan: Optional[WordLengthPlan] = None,
    rounding: str = "half_up",
) -> LosslessReport:
    """Run a fixed-point forward/inverse round trip and compare bit-for-bit."""
    engine = FixedPointDWT(bank, scales, plan=plan, rounding=rounding)
    image = np.asarray(image).astype(np.int64)
    reconstructed, _ = engine.roundtrip(image)
    diff = reconstructed - image
    mismatches = int(np.count_nonzero(diff))
    return LosslessReport(
        bank_name=bank.name,
        scales=scales,
        word_length=engine.plan.data_formats[1].word_length,
        image_shape=tuple(image.shape),
        lossless=mismatches == 0,
        max_abs_error=int(np.abs(diff).max()) if diff.size else 0,
        mean_abs_error=float(np.abs(diff).mean()) if diff.size else 0.0,
        mismatched_pixels=mismatches,
    )


def verify_lossless_batch(
    images: Sequence[np.ndarray],
    bank_name: str = "F2",
    scales: int = 4,
    engine: str = "fast",
) -> Tuple[List[LosslessReport], "object"]:
    """Round-trip a batch of images through the full coefficient-exact codec.

    Where :func:`verify_lossless` checks the bare transform arithmetic, this
    check exercises the complete compression path (fixed-point DWT → zig-zag
    → RLE → Rice and back) over many frames at once via the batched
    :mod:`repro.coding.pipeline`, returning one :class:`LosslessReport` per
    frame plus the pipeline's per-stage decode statistics.
    """
    from ..coding.pipeline import compress_frames, decompress_frames

    batch = compress_frames(
        images, codec="coefficient", scales=scales, engine=engine, bank=bank_name
    )
    decoded, stats = decompress_frames(batch)
    plans: Dict[int, WordLengthPlan] = {}
    reports: List[LosslessReport] = []
    for original, reconstructed, stream in zip(images, decoded, batch.streams):
        if stream.scales not in plans:
            plans[stream.scales] = plan_word_lengths(get_bank(bank_name), stream.scales)
        original = np.asarray(original).astype(np.int64)
        diff = reconstructed - original
        mismatches = int(np.count_nonzero(diff))
        reports.append(
            LosslessReport(
                bank_name=bank_name,
                scales=stream.scales,
                word_length=plans[stream.scales].data_formats[1].word_length,
                image_shape=tuple(original.shape),
                lossless=mismatches == 0,
                max_abs_error=int(np.abs(diff).max()) if diff.size else 0,
                mean_abs_error=float(np.abs(diff).mean()) if diff.size else 0.0,
                mismatched_pixels=mismatches,
            )
        )
    return reports, stats


def lossless_word_length_search(
    image: np.ndarray,
    bank_name: str,
    scales: int,
    word_lengths: range = range(16, 40, 2),
) -> Dict[int, LosslessReport]:
    """Sweep the datapath word length and report when losslessness is reached.

    This is the ablation behind the paper's choice of 32 bits: shorter words
    leave too few fractional bits at the deeper scales and the round trip
    becomes lossy; the sweep shows where the transition happens for a given
    filter bank and image.
    """
    bank = get_bank(bank_name)
    results: Dict[int, LosslessReport] = {}
    for word_length in word_lengths:
        try:
            plan = plan_word_lengths(bank, scales, word_length=word_length)
        except Exception:
            # Word too short to even hold the integer part at the deepest scale.
            results[word_length] = LosslessReport(
                bank_name=bank_name,
                scales=scales,
                word_length=word_length,
                image_shape=tuple(np.asarray(image).shape),
                lossless=False,
                max_abs_error=-1,
                mean_abs_error=-1.0,
                mismatched_pixels=-1,
            )
            continue
        results[word_length] = verify_lossless(image, bank, scales, plan=plan)
    return results
