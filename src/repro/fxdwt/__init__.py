"""Bit-accurate fixed-point DWT and lossless verification.

Public API
----------
``FixedPointDWT``
    Forward/inverse fixed-point transform with the paper's word-length plan.
``FixedPointPyramid``
    Integer subband container with per-scale formats.
``verify_lossless`` / ``lossless_word_length_search``
    Round-trip bit-exactness checks and the word-length ablation.
"""

from .lossless import LosslessReport, lossless_word_length_search, verify_lossless
from .transform import (
    FixedPointDWT,
    FixedPointPyramid,
    QuantizedFilter,
    quantize_filter,
    reconstruct_preview,
)

__all__ = [
    "FixedPointDWT",
    "FixedPointPyramid",
    "QuantizedFilter",
    "quantize_filter",
    "reconstruct_preview",
    "LosslessReport",
    "lossless_word_length_search",
    "verify_lossless",
]
