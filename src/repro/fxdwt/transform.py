"""Bit-accurate fixed-point 2-D DWT with scale-dependent integer part.

This is the software model of the arithmetic the paper's datapath performs:

* data and coefficients held in 32-bit two's-complement words,
* every convolution output produced by exact integer multiply-accumulate
  (the 32x32 multiplier with 64-bit accumulation),
* the result re-aligned to the format of the destination scale (the
  "Alignment" unit of Fig. 3, shifts stored in the configuration memory) and
  narrowed with the §4.3 round-half-up rule,
* the integer part of the destination format growing with the scale for the
  forward transform and shrinking for the inverse, per Table II.

The cycle-accurate architecture model of :mod:`repro.arch` is validated
against this transform for bit-exact equality, mirroring the paper's own
validation of the VHDL model against a software implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dwt.subbands import ScaleDetails, WaveletPyramid
from ..dwt.transform1d import max_scales_for_length
from ..filters.qmf import BiorthogonalBank, SymmetricFilter
from ..fixedpoint.fxarray import FxArray
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.rounding import round_half_up_shift, truncate_shift
from ..fixedpoint.wordlength import WordLengthPlan, plan_word_lengths

__all__ = [
    "QuantizedFilter",
    "quantize_filter",
    "FixedPointPyramid",
    "FixedPointDWT",
    "reconstruct_preview",
]


@dataclass(frozen=True)
class QuantizedFilter:
    """A filter whose taps have been quantised to stored integers."""

    name: str
    stored_taps: Tuple[int, ...]
    indices: Tuple[int, ...]
    fmt: QFormat

    def __len__(self) -> int:
        return len(self.stored_taps)

    def items(self) -> List[Tuple[int, int]]:
        return list(zip(self.indices, self.stored_taps))

    def to_real(self) -> List[float]:
        return [t / self.fmt.scale for t in self.stored_taps]


def quantize_filter(filt: SymmetricFilter, fmt: QFormat) -> QuantizedFilter:
    """Quantise filter taps to ``fmt`` (round to nearest, ties up)."""
    indices = []
    stored = []
    for n, c in filt.items():
        indices.append(n)
        stored.append(fmt.to_stored(c))
    return QuantizedFilter(
        name=filt.name, stored_taps=tuple(stored), indices=tuple(indices), fmt=fmt
    )


@dataclass
class FixedPointPyramid:
    """Output of the fixed-point forward transform.

    Subband arrays hold *stored integers* (``int64``); their real value is
    obtained through the per-scale format of ``plan``.
    """

    plan: WordLengthPlan
    approximation: np.ndarray
    details: List[ScaleDetails] = field(default_factory=list)

    @property
    def scales(self) -> int:
        return len(self.details)

    def format_for_scale(self, scale: int) -> QFormat:
        return self.plan.format_for_scale(scale)

    def approximation_real(self) -> np.ndarray:
        """Approximation subband converted back to real values."""
        fmt = self.format_for_scale(self.scales)
        return self.approximation.astype(float) / fmt.scale

    def detail_real(self, scale: int) -> Dict[str, np.ndarray]:
        """Detail subbands of ``scale`` converted back to real values."""
        fmt = self.format_for_scale(scale)
        entry = self.details[scale - 1]
        return {k: v.astype(float) / fmt.scale for k, v in entry.as_dict().items()}

    def to_float_pyramid(self) -> WaveletPyramid:
        """Convert to a real-valued :class:`WaveletPyramid` (for comparison
        against the floating-point reference transform)."""
        details = []
        for entry in self.details:
            fmt = self.format_for_scale(entry.scale)
            details.append(
                ScaleDetails(
                    scale=entry.scale,
                    hg=entry.hg.astype(float) / fmt.scale,
                    gh=entry.gh.astype(float) / fmt.scale,
                    gg=entry.gg.astype(float) / fmt.scale,
                )
            )
        return WaveletPyramid(
            approximation=self.approximation_real(), details=details
        )

    def max_abs_stored_per_scale(self) -> Dict[int, int]:
        """Largest stored magnitude per scale (overflow diagnostics)."""
        out: Dict[int, int] = {}
        for entry in self.details:
            out[entry.scale] = int(
                max(
                    np.abs(entry.hg).max(),
                    np.abs(entry.gh).max(),
                    np.abs(entry.gg).max(),
                )
            )
        out[self.scales] = max(
            out.get(self.scales, 0), int(np.abs(self.approximation).max())
        )
        return out


class FixedPointDWT:
    """Bit-accurate fixed-point forward/inverse 2-D DWT engine.

    Parameters
    ----------
    bank:
        Biorthogonal filter bank (one of Table I).
    scales:
        Number of decomposition scales ``S``.
    plan:
        Optional pre-built :class:`WordLengthPlan`; by default the paper's
        plan (32-bit words, Table II integer parts, 13-bit input) is derived
        from the bank.
    rounding:
        ``"half_up"`` (the paper's §4.3 rule, default) or ``"truncate"``;
        exposed so the ablation benchmarks can show why the rounding rule
        matters for losslessness.
    overflow_policy:
        Range-check policy applied after every alignment (``"raise"``,
        ``"saturate"`` or ``"wrap"``).  The paper's word-length plan is
        designed so that ``"raise"`` never triggers.
    """

    def __init__(
        self,
        bank: BiorthogonalBank,
        scales: int,
        plan: Optional[WordLengthPlan] = None,
        rounding: str = "half_up",
        overflow_policy: str = "raise",
    ) -> None:
        if scales < 1:
            raise ValueError("scales must be >= 1")
        if rounding not in ("half_up", "truncate"):
            raise ValueError(f"unknown rounding mode {rounding!r}")
        self.bank = bank
        self.scales = scales
        self.plan = plan if plan is not None else plan_word_lengths(bank, scales)
        if self.plan.scales < scales:
            raise ValueError(
                f"word-length plan covers {self.plan.scales} scales, need {scales}"
            )
        self.rounding = rounding
        self.overflow_policy = overflow_policy
        cfmt = self.plan.coefficient_format
        self._qh = quantize_filter(bank.h, cfmt)
        self._qg = quantize_filter(bank.g, cfmt)
        self._qht = quantize_filter(bank.ht, cfmt)
        self._qgt = quantize_filter(bank.gt, cfmt)

    # -- helpers -----------------------------------------------------------------
    def _shift_amount(self, source_frac: int, target_frac: int) -> int:
        shift = source_frac - target_frac
        if shift < 0:
            raise ValueError(
                f"alignment would need a left shift ({source_frac} -> {target_frac} "
                "fractional bits); the plan is inconsistent"
            )
        return shift

    def _narrow(self, acc: np.ndarray, shift: int, target: QFormat) -> np.ndarray:
        if self.rounding == "half_up":
            out = round_half_up_shift(acc, shift)
        else:
            out = truncate_shift(acc, shift)
        FxArray(out, target).check_range(self.overflow_policy)
        return np.asarray(out, dtype=np.int64)

    def _analysis_1d(
        self,
        data: np.ndarray,
        qfilt: QuantizedFilter,
        source_frac: int,
        target: QFormat,
    ) -> np.ndarray:
        """Decimated analysis convolution along the last axis, in integers."""
        n = data.shape[-1]
        if n % 2 != 0:
            raise ValueError(f"signal length {n} must be even")
        half = n // 2
        base = 2 * np.arange(half)
        acc = np.zeros(data.shape[:-1] + (half,), dtype=np.int64)
        for idx, stored in qfilt.items():
            acc += np.int64(stored) * data[..., np.mod(base + idx, n)]
        shift = self._shift_amount(source_frac + qfilt.fmt.fractional_bits,
                                   target.fractional_bits)
        return self._narrow(acc, shift, target)

    def _synthesis_1d(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        source_frac: int,
        target: QFormat,
    ) -> np.ndarray:
        """One synthesis stage along the last axis, in integers."""
        half = lo.shape[-1]
        out_len = 2 * half
        acc = np.zeros(lo.shape[:-1] + (out_len,), dtype=np.int64)
        positions = 2 * np.arange(half)
        for idx, stored in self._qht.items():
            np.add.at(acc, (..., np.mod(positions + idx, out_len)), np.int64(stored) * lo)
        for idx, stored in self._qgt.items():
            np.add.at(acc, (..., np.mod(positions + idx, out_len)), np.int64(stored) * hi)
        shift = self._shift_amount(
            source_frac + self.plan.coefficient_format.fractional_bits,
            target.fractional_bits,
        )
        return self._narrow(acc, shift, target)

    # -- forward -------------------------------------------------------------------
    def forward(self, image: np.ndarray) -> FixedPointPyramid:
        """Fixed-point forward transform of an integer image.

        ``image`` must contain integers representable in the plan's input
        format (12-bit medical pixels in the paper).
        """
        image = np.asarray(image)
        if image.ndim != 2:
            raise ValueError("expected a 2-D image")
        for size in image.shape:
            if max_scales_for_length(size) < self.scales:
                raise ValueError(
                    f"image dimension {size} does not support {self.scales} scales"
                )
        if not np.issubdtype(image.dtype, np.integer):
            if not np.all(image == np.round(image)):
                raise ValueError("input image must contain integer pixel values")
        # asarray: no copy when the input is already int64 (the transform
        # never mutates its input in place).
        data = np.asarray(image, dtype=np.int64)
        FxArray(data, self.plan.input_format).check_range("raise")

        details: List[ScaleDetails] = []
        source_frac = self.plan.input_format.fractional_bits
        for scale in range(1, self.scales + 1):
            target = self.plan.format_for_scale(scale)
            # Rows (last axis), then columns (transpose).
            row_lo = self._analysis_1d(data, self._qh, source_frac, target)
            row_hi = self._analysis_1d(data, self._qg, source_frac, target)
            frac = target.fractional_bits
            hh = self._analysis_1d(row_lo.T, self._qh, frac, target).T
            hg = self._analysis_1d(row_lo.T, self._qg, frac, target).T
            gh = self._analysis_1d(row_hi.T, self._qh, frac, target).T
            gg = self._analysis_1d(row_hi.T, self._qg, frac, target).T
            details.append(ScaleDetails(scale=scale, hg=hg, gh=gh, gg=gg))
            data = hh
            source_frac = frac
        return FixedPointPyramid(plan=self.plan, approximation=data, details=details)

    # -- inverse -------------------------------------------------------------------
    def inverse(self, pyramid: FixedPointPyramid) -> np.ndarray:
        """Fixed-point inverse transform; returns integer pixels.

        The final synthesis stage aligns directly into the input format
        (integer pixels), which is where the lossless property is judged.
        """
        if pyramid.scales != self.scales:
            raise ValueError(
                f"pyramid has {pyramid.scales} scales, engine configured for {self.scales}"
            )
        data = np.asarray(pyramid.approximation, dtype=np.int64)
        for scale in range(self.scales, 0, -1):
            source = self.plan.format_for_scale(scale)
            target = self.plan.format_for_scale(scale - 1)
            entry = pyramid.details[scale - 1]
            frac = source.fractional_bits
            # Undo the column transform first (columns were filtered last in
            # the forward pass); intermediates stay in the source format.
            row_lo = self._synthesis_1d(data.T, entry.hg.T, frac, source).T
            row_hi = self._synthesis_1d(entry.gh.T, entry.gg.T, frac, source).T
            # Then undo the row transform, landing in the coarser format.
            data = self._synthesis_1d(row_lo, row_hi, frac, target)
        # _synthesis_1d already returns int64; avoid a redundant full-image copy.
        return np.asarray(data, dtype=np.int64)

    def inverse_preview(self, pyramid: FixedPointPyramid, at_scale: int) -> np.ndarray:
        """Partial inverse: stop the synthesis ladder at ``at_scale``.

        Runs the same ladder as :meth:`inverse` but only for scales
        ``S .. at_scale+1``, so it needs only the approximation and the
        detail subbands *coarser* than ``at_scale`` — ``pyramid.details``
        entries for finer scales may be ``None`` placeholders (the
        prefix-decode path never materialises them).  ``at_scale=0`` is
        exactly :meth:`inverse`, bit for bit.

        For ``at_scale=k > 0`` the scale-``k`` approximation is narrowed
        from its data format to integer precision with the same §4.3
        rounding the ladder uses everywhere else, giving a
        ``(H/2^k, W/2^k)`` integer preview.  The preview carries the
        analysis filters' DC gain per descent (it *is* the transform's
        scale-``k`` average signal, whose dynamic range the Table II
        integer-bits schedule bounds); viewers normalise for display.
        """
        if pyramid.scales != self.scales:
            raise ValueError(
                f"pyramid has {pyramid.scales} scales, engine configured for {self.scales}"
            )
        if not 0 <= at_scale <= self.scales:
            raise ValueError(
                f"at_scale must be within [0, {self.scales}], got {at_scale}"
            )
        data = np.asarray(pyramid.approximation, dtype=np.int64)
        for scale in range(self.scales, at_scale, -1):
            source = self.plan.format_for_scale(scale)
            target = self.plan.format_for_scale(scale - 1)
            entry = pyramid.details[scale - 1]
            frac = source.fractional_bits
            row_lo = self._synthesis_1d(data.T, entry.hg.T, frac, source).T
            row_hi = self._synthesis_1d(entry.gh.T, entry.gg.T, frac, source).T
            data = self._synthesis_1d(row_lo, row_hi, frac, target)
        if at_scale == 0:
            return np.asarray(data, dtype=np.int64)
        fmt = self.plan.format_for_scale(at_scale)
        shift = self._shift_amount(
            fmt.fractional_bits, self.plan.input_format.fractional_bits
        )
        # The stored value's magnitude is bounded by the scale's integer
        # part, so the narrowed integers fit b_int(k) bits exactly.
        target = QFormat(word_length=fmt.integer_bits, integer_bits=fmt.integer_bits)
        return self._narrow(data, shift, target)

    # -- row-band ROI ----------------------------------------------------------------
    def _roi_windows(
        self, y0: int, y1: int, height: int
    ) -> List[Optional[Tuple[int, int]]]:
        """Per-scale row windows feeding output rows ``[y0, y1)``.

        ``windows[s]`` is the half-open row range needed at scale ``s``
        (``windows[0]`` is the request itself).  The contraction inverts
        the synthesis scatter ``out = 2*in + tap_index``; when a window
        would clamp at an array edge the wraparound (circular-extension)
        contributions come into play, so the window degrades to ``None`` —
        "use every row" — there and at every coarser scale.
        """
        taps = [idx for idx, _ in self._qht.items()] + [
            idx for idx, _ in self._qgt.items()
        ]
        min_idx, max_idx = min(taps), max(taps)
        windows: List[Optional[Tuple[int, int]]] = [(y0, y1)]
        rows = height
        for _ in range(1, self.scales + 1):
            rows //= 2
            previous = windows[-1]
            if previous is None:
                windows.append(None)
                continue
            a, b = previous
            lo = (a - max_idx + 1) // 2  # ceil((a - max_idx) / 2)
            hi = (b - 1 - min_idx) // 2 + 1
            windows.append((lo, hi) if 0 <= lo and hi <= rows else None)
        return windows

    def _synthesis_window(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        source_frac: int,
        target: QFormat,
        in_start: int,
        out_window: Tuple[int, int],
    ) -> np.ndarray:
        """One synthesis stage producing only output positions
        ``[out_window)`` from inputs whose global start index is
        ``in_start`` (``lo``/``hi`` already sliced to their window).

        Positions are global and unwrapped: the window ladder falls back
        to the full :meth:`_synthesis_1d` whenever a window clamps, and
        wraparound contributions exist *only* in that clamped case, so the
        masked scatter here is exact for every window that reaches it.
        """
        half = lo.shape[-1]
        o0, o1 = out_window
        acc = np.zeros(lo.shape[:-1] + (o1 - o0,), dtype=np.int64)
        positions = 2 * (in_start + np.arange(half))
        for source, qfilt in ((lo, self._qht), (hi, self._qgt)):
            for idx, stored in qfilt.items():
                local = positions + idx - o0
                mask = (local >= 0) & (local < o1 - o0)
                if mask.any():
                    np.add.at(
                        acc,
                        (..., local[mask]),
                        np.int64(stored) * source[..., mask],
                    )
        shift = self._shift_amount(
            source_frac + self.plan.coefficient_format.fractional_bits,
            target.fractional_bits,
        )
        return self._narrow(acc, shift, target)

    def inverse_roi(
        self, pyramid: FixedPointPyramid, y0: int, y1: int
    ) -> np.ndarray:
        """Inverse transform of just the output row band ``[y0, y1)``.

        Synthesises only the rows that contribute to the requested band —
        the vertical (column) synthesis runs windowed per scale, the
        horizontal one only over the surviving rows — and returns a
        ``(y1 - y0, W)`` integer image **bit-exact** to
        ``inverse(pyramid)[y0:y1]``.  Every subband is still needed (a
        row band draws on all scales), so the saving is synthesis compute
        and intermediate memory, not entropy-decode work.
        """
        if pyramid.scales != self.scales:
            raise ValueError(
                f"pyramid has {pyramid.scales} scales, engine configured for {self.scales}"
            )
        height = pyramid.approximation.shape[0] << self.scales
        if not 0 <= y0 < y1 <= height:
            raise ValueError(
                f"row band [{y0}, {y1}) must be non-empty and within [0, {height})"
            )
        windows = self._roi_windows(y0, y1, height)
        top = windows[self.scales]
        data = np.asarray(pyramid.approximation, dtype=np.int64)
        if top is not None:
            data = data[top[0] : top[1]]
        for scale in range(self.scales, 0, -1):
            source = self.plan.format_for_scale(scale)
            target = self.plan.format_for_scale(scale - 1)
            entry = pyramid.details[scale - 1]
            frac = source.fractional_bits
            in_win, out_win = windows[scale], windows[scale - 1]
            if in_win is None:
                # Clamped somewhere at or above this scale: full vertical
                # synthesis (wraparound handled by the mod scatter), then
                # keep only the rows the next stage needs.
                row_lo = self._synthesis_1d(data.T, entry.hg.T, frac, source).T
                row_hi = self._synthesis_1d(entry.gh.T, entry.gg.T, frac, source).T
                if out_win is not None:
                    row_lo = row_lo[out_win[0] : out_win[1]]
                    row_hi = row_hi[out_win[0] : out_win[1]]
            else:
                hg = entry.hg[in_win[0] : in_win[1]]
                gh = entry.gh[in_win[0] : in_win[1]]
                gg = entry.gg[in_win[0] : in_win[1]]
                row_lo = self._synthesis_window(
                    data.T, hg.T, frac, source, in_win[0], out_win
                ).T
                row_hi = self._synthesis_window(
                    gh.T, gg.T, frac, source, in_win[0], out_win
                ).T
            data = self._synthesis_1d(row_lo, row_hi, frac, target)
        return np.asarray(data, dtype=np.int64)

    # -- convenience -----------------------------------------------------------------
    def roundtrip(self, image: np.ndarray) -> Tuple[np.ndarray, FixedPointPyramid]:
        """Forward + inverse transform; returns ``(reconstructed, pyramid)``."""
        pyramid = self.forward(image)
        return self.inverse(pyramid), pyramid


#: Engine cache for :func:`reconstruct_preview` — quantising the synthesis
#: filters and deriving shift schedules is pure per-(bank, depth) setup, so
#: one engine per configuration is reused across calls (the same plan-reuse
#: the codecs get by holding their own engine).
_PREVIEW_ENGINES: Dict[Tuple[str, int, str], FixedPointDWT] = {}


def reconstruct_preview(
    pyramid: FixedPointPyramid,
    bank: BiorthogonalBank,
    at_scale: int,
    rounding: str = "half_up",
) -> np.ndarray:
    """Early-stopped inverse of a fixed-point pyramid (module-level helper).

    Reconstructs the scale-``at_scale`` approximation from only the
    subbands coarser than ``at_scale`` by stopping the synthesis ladder
    early (:meth:`FixedPointDWT.inverse_preview`), reusing one cached
    engine — quantised synthesis filters, word-length plan, shift
    schedule — per ``(bank, scales, rounding)`` configuration.
    """
    key = (bank.name, pyramid.scales, rounding)
    engine = _PREVIEW_ENGINES.get(key)
    if engine is None:
        engine = FixedPointDWT(
            bank, pyramid.scales, plan=pyramid.plan, rounding=rounding
        )
        _PREVIEW_ENGINES[key] = engine
    return engine.inverse_preview(pyramid, at_scale)
