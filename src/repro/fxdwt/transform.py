"""Bit-accurate fixed-point 2-D DWT with scale-dependent integer part.

This is the software model of the arithmetic the paper's datapath performs:

* data and coefficients held in 32-bit two's-complement words,
* every convolution output produced by exact integer multiply-accumulate
  (the 32x32 multiplier with 64-bit accumulation),
* the result re-aligned to the format of the destination scale (the
  "Alignment" unit of Fig. 3, shifts stored in the configuration memory) and
  narrowed with the §4.3 round-half-up rule,
* the integer part of the destination format growing with the scale for the
  forward transform and shrinking for the inverse, per Table II.

The cycle-accurate architecture model of :mod:`repro.arch` is validated
against this transform for bit-exact equality, mirroring the paper's own
validation of the VHDL model against a software implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dwt.subbands import ScaleDetails, WaveletPyramid
from ..dwt.transform1d import max_scales_for_length
from ..filters.qmf import BiorthogonalBank, SymmetricFilter
from ..fixedpoint.fxarray import FxArray
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.rounding import round_half_up_shift, truncate_shift
from ..fixedpoint.wordlength import WordLengthPlan, plan_word_lengths

__all__ = [
    "QuantizedFilter",
    "quantize_filter",
    "FixedPointPyramid",
    "FixedPointDWT",
]


@dataclass(frozen=True)
class QuantizedFilter:
    """A filter whose taps have been quantised to stored integers."""

    name: str
    stored_taps: Tuple[int, ...]
    indices: Tuple[int, ...]
    fmt: QFormat

    def __len__(self) -> int:
        return len(self.stored_taps)

    def items(self) -> List[Tuple[int, int]]:
        return list(zip(self.indices, self.stored_taps))

    def to_real(self) -> List[float]:
        return [t / self.fmt.scale for t in self.stored_taps]


def quantize_filter(filt: SymmetricFilter, fmt: QFormat) -> QuantizedFilter:
    """Quantise filter taps to ``fmt`` (round to nearest, ties up)."""
    indices = []
    stored = []
    for n, c in filt.items():
        indices.append(n)
        stored.append(fmt.to_stored(c))
    return QuantizedFilter(
        name=filt.name, stored_taps=tuple(stored), indices=tuple(indices), fmt=fmt
    )


@dataclass
class FixedPointPyramid:
    """Output of the fixed-point forward transform.

    Subband arrays hold *stored integers* (``int64``); their real value is
    obtained through the per-scale format of ``plan``.
    """

    plan: WordLengthPlan
    approximation: np.ndarray
    details: List[ScaleDetails] = field(default_factory=list)

    @property
    def scales(self) -> int:
        return len(self.details)

    def format_for_scale(self, scale: int) -> QFormat:
        return self.plan.format_for_scale(scale)

    def approximation_real(self) -> np.ndarray:
        """Approximation subband converted back to real values."""
        fmt = self.format_for_scale(self.scales)
        return self.approximation.astype(float) / fmt.scale

    def detail_real(self, scale: int) -> Dict[str, np.ndarray]:
        """Detail subbands of ``scale`` converted back to real values."""
        fmt = self.format_for_scale(scale)
        entry = self.details[scale - 1]
        return {k: v.astype(float) / fmt.scale for k, v in entry.as_dict().items()}

    def to_float_pyramid(self) -> WaveletPyramid:
        """Convert to a real-valued :class:`WaveletPyramid` (for comparison
        against the floating-point reference transform)."""
        details = []
        for entry in self.details:
            fmt = self.format_for_scale(entry.scale)
            details.append(
                ScaleDetails(
                    scale=entry.scale,
                    hg=entry.hg.astype(float) / fmt.scale,
                    gh=entry.gh.astype(float) / fmt.scale,
                    gg=entry.gg.astype(float) / fmt.scale,
                )
            )
        return WaveletPyramid(
            approximation=self.approximation_real(), details=details
        )

    def max_abs_stored_per_scale(self) -> Dict[int, int]:
        """Largest stored magnitude per scale (overflow diagnostics)."""
        out: Dict[int, int] = {}
        for entry in self.details:
            out[entry.scale] = int(
                max(
                    np.abs(entry.hg).max(),
                    np.abs(entry.gh).max(),
                    np.abs(entry.gg).max(),
                )
            )
        out[self.scales] = max(
            out.get(self.scales, 0), int(np.abs(self.approximation).max())
        )
        return out


class FixedPointDWT:
    """Bit-accurate fixed-point forward/inverse 2-D DWT engine.

    Parameters
    ----------
    bank:
        Biorthogonal filter bank (one of Table I).
    scales:
        Number of decomposition scales ``S``.
    plan:
        Optional pre-built :class:`WordLengthPlan`; by default the paper's
        plan (32-bit words, Table II integer parts, 13-bit input) is derived
        from the bank.
    rounding:
        ``"half_up"`` (the paper's §4.3 rule, default) or ``"truncate"``;
        exposed so the ablation benchmarks can show why the rounding rule
        matters for losslessness.
    overflow_policy:
        Range-check policy applied after every alignment (``"raise"``,
        ``"saturate"`` or ``"wrap"``).  The paper's word-length plan is
        designed so that ``"raise"`` never triggers.
    """

    def __init__(
        self,
        bank: BiorthogonalBank,
        scales: int,
        plan: Optional[WordLengthPlan] = None,
        rounding: str = "half_up",
        overflow_policy: str = "raise",
    ) -> None:
        if scales < 1:
            raise ValueError("scales must be >= 1")
        if rounding not in ("half_up", "truncate"):
            raise ValueError(f"unknown rounding mode {rounding!r}")
        self.bank = bank
        self.scales = scales
        self.plan = plan if plan is not None else plan_word_lengths(bank, scales)
        if self.plan.scales < scales:
            raise ValueError(
                f"word-length plan covers {self.plan.scales} scales, need {scales}"
            )
        self.rounding = rounding
        self.overflow_policy = overflow_policy
        cfmt = self.plan.coefficient_format
        self._qh = quantize_filter(bank.h, cfmt)
        self._qg = quantize_filter(bank.g, cfmt)
        self._qht = quantize_filter(bank.ht, cfmt)
        self._qgt = quantize_filter(bank.gt, cfmt)

    # -- helpers -----------------------------------------------------------------
    def _shift_amount(self, source_frac: int, target_frac: int) -> int:
        shift = source_frac - target_frac
        if shift < 0:
            raise ValueError(
                f"alignment would need a left shift ({source_frac} -> {target_frac} "
                "fractional bits); the plan is inconsistent"
            )
        return shift

    def _narrow(self, acc: np.ndarray, shift: int, target: QFormat) -> np.ndarray:
        if self.rounding == "half_up":
            out = round_half_up_shift(acc, shift)
        else:
            out = truncate_shift(acc, shift)
        FxArray(out, target).check_range(self.overflow_policy)
        return np.asarray(out, dtype=np.int64)

    def _analysis_1d(
        self,
        data: np.ndarray,
        qfilt: QuantizedFilter,
        source_frac: int,
        target: QFormat,
    ) -> np.ndarray:
        """Decimated analysis convolution along the last axis, in integers."""
        n = data.shape[-1]
        if n % 2 != 0:
            raise ValueError(f"signal length {n} must be even")
        half = n // 2
        base = 2 * np.arange(half)
        acc = np.zeros(data.shape[:-1] + (half,), dtype=np.int64)
        for idx, stored in qfilt.items():
            acc += np.int64(stored) * data[..., np.mod(base + idx, n)]
        shift = self._shift_amount(source_frac + qfilt.fmt.fractional_bits,
                                   target.fractional_bits)
        return self._narrow(acc, shift, target)

    def _synthesis_1d(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        source_frac: int,
        target: QFormat,
    ) -> np.ndarray:
        """One synthesis stage along the last axis, in integers."""
        half = lo.shape[-1]
        out_len = 2 * half
        acc = np.zeros(lo.shape[:-1] + (out_len,), dtype=np.int64)
        positions = 2 * np.arange(half)
        for idx, stored in self._qht.items():
            np.add.at(acc, (..., np.mod(positions + idx, out_len)), np.int64(stored) * lo)
        for idx, stored in self._qgt.items():
            np.add.at(acc, (..., np.mod(positions + idx, out_len)), np.int64(stored) * hi)
        shift = self._shift_amount(
            source_frac + self.plan.coefficient_format.fractional_bits,
            target.fractional_bits,
        )
        return self._narrow(acc, shift, target)

    # -- forward -------------------------------------------------------------------
    def forward(self, image: np.ndarray) -> FixedPointPyramid:
        """Fixed-point forward transform of an integer image.

        ``image`` must contain integers representable in the plan's input
        format (12-bit medical pixels in the paper).
        """
        image = np.asarray(image)
        if image.ndim != 2:
            raise ValueError("expected a 2-D image")
        for size in image.shape:
            if max_scales_for_length(size) < self.scales:
                raise ValueError(
                    f"image dimension {size} does not support {self.scales} scales"
                )
        if not np.issubdtype(image.dtype, np.integer):
            if not np.all(image == np.round(image)):
                raise ValueError("input image must contain integer pixel values")
        # asarray: no copy when the input is already int64 (the transform
        # never mutates its input in place).
        data = np.asarray(image, dtype=np.int64)
        FxArray(data, self.plan.input_format).check_range("raise")

        details: List[ScaleDetails] = []
        source_frac = self.plan.input_format.fractional_bits
        for scale in range(1, self.scales + 1):
            target = self.plan.format_for_scale(scale)
            # Rows (last axis), then columns (transpose).
            row_lo = self._analysis_1d(data, self._qh, source_frac, target)
            row_hi = self._analysis_1d(data, self._qg, source_frac, target)
            frac = target.fractional_bits
            hh = self._analysis_1d(row_lo.T, self._qh, frac, target).T
            hg = self._analysis_1d(row_lo.T, self._qg, frac, target).T
            gh = self._analysis_1d(row_hi.T, self._qh, frac, target).T
            gg = self._analysis_1d(row_hi.T, self._qg, frac, target).T
            details.append(ScaleDetails(scale=scale, hg=hg, gh=gh, gg=gg))
            data = hh
            source_frac = frac
        return FixedPointPyramid(plan=self.plan, approximation=data, details=details)

    # -- inverse -------------------------------------------------------------------
    def inverse(self, pyramid: FixedPointPyramid) -> np.ndarray:
        """Fixed-point inverse transform; returns integer pixels.

        The final synthesis stage aligns directly into the input format
        (integer pixels), which is where the lossless property is judged.
        """
        if pyramid.scales != self.scales:
            raise ValueError(
                f"pyramid has {pyramid.scales} scales, engine configured for {self.scales}"
            )
        data = np.asarray(pyramid.approximation, dtype=np.int64)
        for scale in range(self.scales, 0, -1):
            source = self.plan.format_for_scale(scale)
            target = self.plan.format_for_scale(scale - 1)
            entry = pyramid.details[scale - 1]
            frac = source.fractional_bits
            # Undo the column transform first (columns were filtered last in
            # the forward pass); intermediates stay in the source format.
            row_lo = self._synthesis_1d(data.T, entry.hg.T, frac, source).T
            row_hi = self._synthesis_1d(entry.gh.T, entry.gg.T, frac, source).T
            # Then undo the row transform, landing in the coarser format.
            data = self._synthesis_1d(row_lo, row_hi, frac, target)
        # _synthesis_1d already returns int64; avoid a redundant full-image copy.
        return np.asarray(data, dtype=np.int64)

    # -- convenience -----------------------------------------------------------------
    def roundtrip(self, image: np.ndarray) -> Tuple[np.ndarray, FixedPointPyramid]:
        """Forward + inverse transform; returns ``(reconstructed, pyramid)``."""
        pyramid = self.forward(image)
        return self.inverse(pyramid), pyramid
