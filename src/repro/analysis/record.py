"""Experiment result containers: measured rows + paper-vs-measured records.

Every experiment module in :mod:`repro.analysis.experiments` returns an
:class:`ExperimentResult`: the regenerated table/figure rows, a list of
:class:`Comparison` records pairing each headline paper value with the value
this reproduction measures, and free-text notes about known deviations.
EXPERIMENTS.md is essentially a rendering of these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .tabulate import format_table

__all__ = ["Comparison", "ExperimentResult"]


@dataclass(frozen=True)
class Comparison:
    """One paper-value-versus-measured-value record."""

    quantity: str
    paper_value: float
    measured_value: float
    unit: str = ""
    tolerance: float = 0.10  # relative tolerance considered "reproduced"

    @property
    def relative_error(self) -> float:
        """``(measured - paper) / |paper|`` (0 when both are zero)."""
        if self.paper_value == 0:
            return 0.0 if self.measured_value == 0 else float("inf")
        return (self.measured_value - self.paper_value) / abs(self.paper_value)

    @property
    def within_tolerance(self) -> bool:
        return abs(self.relative_error) <= self.tolerance

    def row(self) -> Sequence:
        return (
            self.quantity,
            self.paper_value,
            self.measured_value,
            self.unit,
            f"{100.0 * self.relative_error:+.1f}%",
            "ok" if self.within_tolerance else "DEVIATES",
        )


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    comparisons: List[Comparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, row: Sequence) -> None:
        self.rows.append(tuple(row))

    def add_comparison(
        self,
        quantity: str,
        paper_value: float,
        measured_value: float,
        unit: str = "",
        tolerance: float = 0.10,
    ) -> Comparison:
        comparison = Comparison(
            quantity=quantity,
            paper_value=paper_value,
            measured_value=measured_value,
            unit=unit,
            tolerance=tolerance,
        )
        self.comparisons.append(comparison)
        return comparison

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # -- summaries -----------------------------------------------------------------------
    @property
    def all_within_tolerance(self) -> bool:
        return all(c.within_tolerance for c in self.comparisons)

    def comparison_table(self) -> str:
        headers = ("quantity", "paper", "measured", "unit", "rel. error", "status")
        return format_table(headers, [c.row() for c in self.comparisons])

    def render(self, float_digits: int = 3) -> str:
        """Full human-readable report (table + comparisons + notes)."""
        parts = [
            format_table(
                self.headers,
                self.rows,
                float_digits=float_digits,
                title=f"[{self.experiment_id}] {self.title}",
            )
        ]
        if self.comparisons:
            parts.append("")
            parts.append("Paper vs measured:")
            parts.append(self.comparison_table())
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
