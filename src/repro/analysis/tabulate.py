"""Plain-text table rendering shared by experiments, examples and benches.

Nothing fancy: fixed-width ASCII tables with right-aligned numbers, because
every experiment in this reproduction prints its results as "the same rows
the paper's table shows" plus a paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["format_cell", "format_table"]

Cell = Union[str, int, float, None]


def format_cell(value: Cell, float_digits: int = 3) -> str:
    """Render one table cell: floats to ``float_digits`` places, None as ''."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if abs(value) >= 1e6 or (abs(value) < 1e-3 and value != 0.0):
            return f"{value:.3e}"
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_digits: int = 3,
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    rendered: List[List[str]] = [
        [format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    headers = [str(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)
