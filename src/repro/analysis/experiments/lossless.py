"""Experiment lossless — §3: bit-exact reconstruction with the 32-bit datapath.

The central functional claim of the paper: with 13-bit inputs, 32-bit
coefficients and 32-bit intermediate words whose integer part follows
Table II, the FDWT + IDWT round trip reproduces the original image exactly,
for all six Table I filter banks.  The experiment verifies the claim for
every bank on several image classes (CT phantom, MR-like slice, gradient,
checkerboard, random — the paper's own validation input) and also
demonstrates the converse: a word length that is too short breaks
losslessness, which is the ablation behind the 32-bit choice.
"""

from __future__ import annotations

from ...filters.catalog import get_bank
from ...filters.coefficients import FILTER_NAMES
from ...fxdwt.lossless import lossless_word_length_search, verify_lossless
from ...imaging.dataset import standard_dataset
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "lossless"
TITLE = "Section 3 - lossless reconstruction with the 32-bit variable-integer-part datapath"


def run(image_size: int = 64, scales: int = 4, short_word: int = 20) -> ExperimentResult:
    """Verify bit-exactness for every bank and workload; show the short-word ablation."""
    dataset = standard_dataset(size=image_size)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("filter bank", "image", "scales", "word length", "lossless", "max |error|"),
    )
    all_lossless = True
    for bank_name in FILTER_NAMES:
        bank = get_bank(bank_name)
        for image_name, image in dataset:
            report = verify_lossless(image, bank, scales)
            all_lossless = all_lossless and report.lossless
            result.add_row(
                (
                    bank_name,
                    image_name,
                    scales,
                    report.word_length,
                    report.lossless,
                    report.max_abs_error,
                )
            )
    result.add_comparison(
        "all banks x all workloads lossless at 32 bits",
        1.0,
        1.0 if all_lossless else 0.0,
        tolerance=0.0,
    )

    # Ablation: a short word length loses the property.
    sweep = lossless_word_length_search(
        dataset.get("ct_phantom"), "F2", scales, word_lengths=range(short_word, 34, 4)
    )
    for word_length, report in sweep.items():
        result.add_row(
            ("F2 (word-length sweep)", "ct_phantom", scales, word_length,
             report.lossless, report.max_abs_error)
        )
    shortest_lossless = min(
        (w for w, r in sweep.items() if r.lossless), default=None
    )
    if shortest_lossless is not None:
        result.add_row(
            ("F2 shortest lossless word in sweep", "ct_phantom", scales,
             shortest_lossless, True, 0)
        )
    result.add_note(
        "The paper's criterion is exact pixel equality after FDWT + IDWT.  All six banks "
        "pass on every workload with the 32-bit plan; the word-length sweep shows the "
        "property degrading when the word is shortened, which is the rationale for 32 bits."
    )
    return result
