"""Experiment headline — §5 conclusions: area, throughput, speedup, utilisation.

The paper's concluding claims for the 512x512, 12-bit, 6-scale, 13-tap
operating point at 33 MHz are:

* chip area ≈ 11.2 mm² (0.7 µm CMOS),
* 3.5 images/s,
* 154x faster than a 133 MHz Pentium,
* 99.04 % multiplier utilisation,
* one multiplier and N/2 + 32 on-chip memory words.

This experiment gathers all of them from the analytic models.
"""

from __future__ import annotations

from ...arch.accelerator import estimate_performance
from ...arch.config import paper_configuration
from ...arch.report import PAPER_PROPOSED_AREA_MM2, hardware_requirements, proposed_area_breakdown
from ...perf.speedup import PAPER_SPEEDUP, speedup_report
from ...perf.throughput import PAPER_IMAGES_PER_SECOND
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "headline"
TITLE = "Section 5 headline figures (512x512, 12-bit, 6 scales, 33 MHz)"

PAPER_UTILISATION_PERCENT = 99.04
PAPER_MEMORY_WORDS = 512 // 2 + 32


def run() -> ExperimentResult:
    """Reproduce every §5 headline number."""
    config = paper_configuration()
    performance = estimate_performance(config)
    area = proposed_area_breakdown(config)
    requirements = hardware_requirements(config)
    speedup = speedup_report(config)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("quantity", "paper", "measured"),
    )
    result.add_row(("datapath area (mm2)", PAPER_PROPOSED_AREA_MM2, area.total_mm2))
    result.add_row(("images per second", PAPER_IMAGES_PER_SECOND, performance.images_per_second))
    result.add_row(("speedup vs Pentium-133", PAPER_SPEEDUP, speedup.speedup))
    result.add_row(("multiplier utilisation (%)", PAPER_UTILISATION_PERCENT,
                    100.0 * performance.utilisation))
    result.add_row(("multipliers", 1, requirements.multipliers))
    result.add_row(("on-chip memory words", PAPER_MEMORY_WORDS, requirements.memory_words))
    result.add_row(("transform time (ms)", None, performance.transform_seconds * 1e3))

    result.add_comparison(
        "datapath area", PAPER_PROPOSED_AREA_MM2, area.total_mm2, unit="mm2", tolerance=0.10
    )
    result.add_comparison(
        "throughput", PAPER_IMAGES_PER_SECOND, performance.images_per_second,
        unit="images/s", tolerance=0.10,
    )
    result.add_comparison(
        "speedup vs Pentium", PAPER_SPEEDUP, speedup.speedup, unit="x", tolerance=0.05
    )
    result.add_comparison(
        "multiplier utilisation", PAPER_UTILISATION_PERCENT,
        100.0 * performance.utilisation, unit="%", tolerance=0.001,
    )
    result.add_comparison(
        "on-chip memory words", float(PAPER_MEMORY_WORDS),
        float(requirements.memory_words), unit="words", tolerance=0.0,
    )
    result.add_note(
        "Throughput and speedup come from the analytic cycle model (validated against the "
        "cycle-accurate simulator on small images); the area comes from the calibrated ES2 "
        "technology model."
    )
    return result
