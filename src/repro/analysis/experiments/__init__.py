"""One experiment module per paper table/figure (see DESIGN.md §4).

Each module exposes ``run(...) -> ExperimentResult``; the registry below
maps experiment ids to those callables so benches, examples and the
EXPERIMENTS.md generator can enumerate them uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..record import ExperimentResult
from . import eq2, fig1, fig2, fig3, fig4, headline, lossless, table1, table2, table3, table4, table5, table6

__all__ = ["EXPERIMENTS", "experiment_ids", "run_experiment", "run_all"]

#: Registry: experiment id -> run() callable.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "eq2": eq2.run,
    "headline": headline.run,
    "lossless": lossless.run,
}


def experiment_ids() -> List[str]:
    """All experiment ids, in DESIGN.md order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {experiment_ids()}"
        ) from exc
    return runner(**kwargs)


def run_all(**kwargs) -> Dict[str, ExperimentResult]:
    """Run every experiment (used by the EXPERIMENTS.md generator)."""
    return {experiment_id: runner() for experiment_id, runner in EXPERIMENTS.items()}
