"""Experiment fig3 — Fig. 3: the datapath block diagram.

Fig. 3 shows the proposed datapath: input buffer, filter-coefficient memory,
two-stage multiplier, 64-bit accumulator, alignment/rounding stage and the
output FIFO, with ``N/2 + 32`` on-chip memory words in total and a single
multiplier.  The experiment instantiates the cycle-accurate model with the
paper's structure, runs a small image through it and checks

* the component inventory (1 multiplier, 1 accumulator, N/2 + 32 words),
* bit-exact agreement with the software fixed-point transform (the paper's
  own VHDL-vs-software validation), and
* the lossless round trip through the hardware model.
"""

from __future__ import annotations

import numpy as np

from ...arch.accelerator import DwtAccelerator
from ...arch.config import ArchitectureConfig, paper_configuration
from ...arch.report import hardware_requirements, proposed_area_breakdown
from ...filters.catalog import get_bank
from ...fxdwt.transform import FixedPointDWT
from ...imaging.phantoms import random_image
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "fig3"
TITLE = "Fig. 3 - datapath block diagram (single MAC, N/2 + 32 on-chip words)"


def run(sim_image_size: int = 32, sim_scales: int = 3, seed: int = 0) -> ExperimentResult:
    """Check the datapath structure and its bit-exactness on a simulated run."""
    paper_config = paper_configuration()
    requirements = hardware_requirements(paper_config)
    area = proposed_area_breakdown(paper_config)

    sim_config = ArchitectureConfig(image_size=sim_image_size, scales=sim_scales)
    accelerator = DwtAccelerator(sim_config)
    image = random_image(sim_image_size, seed=seed)
    pyramid, forward_report = accelerator.forward(image)
    reconstructed, inverse_report = accelerator.inverse(pyramid)

    software = FixedPointDWT(get_bank(sim_config.bank_name), sim_scales)
    software_pyramid = software.forward(image)
    details_match = all(
        np.array_equal(getattr(pyramid.details[i], key), getattr(software_pyramid.details[i], key))
        for i in range(sim_scales)
        for key in ("hg", "gh", "gg")
    )
    approx_match = bool(np.array_equal(pyramid.approximation, software_pyramid.approximation))
    lossless = bool(np.array_equal(reconstructed, image))

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("quantity", "value"),
    )
    result.add_row(("multipliers", requirements.multipliers))
    result.add_row(("accumulators/adders", requirements.adders))
    result.add_row(("on-chip memory words (N=512)", requirements.memory_words))
    result.add_row(("datapath area (mm2, composed)", area.total_mm2))
    result.add_row(("simulated image", f"{sim_image_size}x{sim_image_size}, {sim_scales} scales"))
    result.add_row(("hardware == software (approximation)", approx_match))
    result.add_row(("hardware == software (all detail subbands)", details_match))
    result.add_row(("lossless round trip through the hardware model", lossless))
    result.add_row(("forward macro-cycles (simulated)", forward_report.macrocycles))
    result.add_row(("inverse macro-cycles (simulated)", inverse_report.macrocycles))
    result.add_row(("multiplier utilisation (simulated)", 100.0 * forward_report.utilisation))

    result.add_comparison(
        "number of multipliers", 1.0, float(requirements.multipliers), tolerance=0.0
    )
    result.add_comparison(
        "on-chip memory words (N/2 + 32)",
        float(paper_config.image_size // 2 + 32),
        float(requirements.memory_words),
        unit="words",
        tolerance=0.0,
    )
    result.add_comparison(
        "hardware/software bit-exact agreement",
        1.0,
        1.0 if (approx_match and details_match and lossless) else 0.0,
        tolerance=0.0,
    )
    result.add_note(
        "The cycle-accurate model is validated against the software fixed-point transform "
        "on small images (the paper validated its VHDL model against a software "
        "implementation on random images); the 512x512 figures use the analytic cycle model."
    )
    return result
