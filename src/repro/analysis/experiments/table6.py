"""Experiment table6 — Table VI: bounds on the output-FIFO depth per scale.

Write-after-read dependences between the in-place convolution passes impose
a minimum delay MIN(D) on the write-back of high-pass results; read-after-
write dependences with the following pass impose a maximum MAX(D).  Table VI
lists both bounds per scale for N=512, L=13.  The reproduction derives the
bounds from the read/write cycle schedules (not from closed forms) and
checks them cell by cell.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...arch.output_fifo import choose_fifo_depth, fifo_bounds_table
from ..record import ExperimentResult

__all__ = ["run", "PAPER_TABLE_VI"]

EXPERIMENT_ID = "table6"
TITLE = "Table VI - bounds on the output FIFO depth per scale (N=512, L=13)"

#: Table VI as printed: scale -> (MIN(D), MAX(D)).
PAPER_TABLE_VI: Dict[int, Tuple[int, int]] = {
    1: (250, 504),
    2: (122, 248),
    3: (58, 120),
    4: (26, 56),
    5: (10, 24),
    6: (2, 8),
}


def run(image_size: int = 512, scales: int = 6, half_filter_length: int = 6) -> ExperimentResult:
    """Regenerate Table VI from the dependence-distance analysis."""
    table = fifo_bounds_table(image_size, scales, half_filter_length)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=(
            "scale",
            "line length",
            "MIN(D) ours",
            "MIN(D) paper",
            "MAX(D) ours",
            "MAX(D) paper",
            "chosen D",
        ),
    )
    for scale, bounds in table.items():
        paper = PAPER_TABLE_VI.get(scale) if image_size == 512 else None
        chosen = choose_fifo_depth(bounds.line_length, half_filter_length)
        result.add_row(
            (
                scale,
                bounds.line_length,
                bounds.min_depth,
                paper[0] if paper else None,
                bounds.max_depth,
                paper[1] if paper else None,
                chosen,
            )
        )
        if paper is not None:
            result.add_comparison(
                f"MIN(D) scale {scale}", float(paper[0]), float(bounds.min_depth), tolerance=0.0
            )
            result.add_comparison(
                f"MAX(D) scale {scale}", float(paper[1]), float(bounds.max_depth), tolerance=0.0
            )
    result.add_note(
        "Both bounds are derived by enumerating the read/write cycles of every delayed "
        "position (no closed form is assumed); all twelve cells match the paper exactly, "
        "and MIN(D) <= MAX(D) at every scale so a feasible depth always exists."
    )
    return result
