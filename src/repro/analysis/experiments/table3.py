"""Experiment table3 — Table III: hardware requirements of prior architectures.

Rebuilds the Table III comparison (multipliers, memory words, silicon area
at 32-bit lossless precision, L=13, S=6, N=512, ES2 0.7 µm) for the four
prior architectures and the proposed one, and compares the modelled areas
with the values printed in the paper.

The printed formulas for this table are partially garbled in the available
copy; the reconstructions (documented per baseline class) are calibrated to
land near the published areas, and the claim being reproduced is the shape:
every prior architecture is more than an order of magnitude larger than the
proposed single-MAC datapath.
"""

from __future__ import annotations

from ...baselines.comparison import area_ratios, table_iii_comparison
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "table3"
TITLE = "Table III - hardware requirements of DWT architectures (32-bit, L=13, S=6, N=512)"


def run(
    filter_length: int = 13, scales: int = 6, image_size: int = 512, word_length: int = 32
) -> ExperimentResult:
    """Regenerate the Table III comparison."""
    rows = table_iii_comparison(
        filter_length=filter_length,
        scales=scales,
        image_size=image_size,
        word_length=word_length,
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=(
            "architecture",
            "multipliers",
            "memory words",
            "mult. area mm2",
            "memory area mm2",
            "total area mm2",
            "paper area mm2",
        ),
    )
    for row in rows:
        result.add_row(
            (
                row.name,
                row.multipliers,
                row.memory_words,
                row.multiplier_area_mm2,
                row.memory_area_mm2,
                row.total_area_mm2,
                row.paper_area_mm2,
            )
        )
        if row.paper_area_mm2 is not None:
            result.add_comparison(
                quantity=f"{row.name} area",
                paper_value=row.paper_area_mm2,
                measured_value=row.total_area_mm2,
                unit="mm2",
                tolerance=0.10,
            )
    ratios = area_ratios(rows)
    for name, ratio in ratios.items():
        result.add_row((f"{name} / proposed", None, None, None, None, ratio, None))
    result.add_note(
        "Prior-architecture multiplier/memory formulas are reconstructions (the printed "
        "formulas are garbled in the source text); areas are within ~5% of the printed "
        "values and every prior architecture is 14-23x larger than the proposed datapath."
    )
    return result
