"""Experiment fig1 — Fig. 1: the 2-D pyramid building block.

Fig. 1 shows one stage of the 2-D forward DWT: rows filtered by H/G with
column decimation, then columns filtered by H/G with row decimation,
producing the four subimages dHH, dHG, dGH, dGG; the HH subimage feeds the
next scale.  The experiment runs one stage (and a full S-scale pyramid) on a
phantom and checks the structural properties the figure encodes: subband
shapes, coefficient-count conservation, and the perfect-reconstruction
property of the building block.
"""

from __future__ import annotations

import numpy as np

from ...dwt.transform2d import analyze_2d_stage, fdwt_2d, idwt_2d, synthesize_2d_stage
from ...filters.catalog import get_bank
from ...imaging.phantoms import shepp_logan
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "fig1"
TITLE = "Fig. 1 - basic 2-D forward DWT building block (Mallat pyramid)"


def run(image_size: int = 64, scales: int = 3, bank_name: str = "F2") -> ExperimentResult:
    """Run one stage and a multi-scale pyramid; report the Fig. 1 structure."""
    bank = get_bank(bank_name)
    image = shepp_logan(image_size).astype(float)

    hh, details = analyze_2d_stage(image, bank)
    reconstructed = synthesize_2d_stage(hh, details, bank)
    stage_error = float(np.max(np.abs(reconstructed - image)))

    pyramid = fdwt_2d(image, bank, scales)
    full_reconstruction = idwt_2d(pyramid, bank)
    pyramid_error = float(np.max(np.abs(full_reconstruction - image)))

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("quantity", "value"),
    )
    result.add_row(("input image", f"{image_size}x{image_size}"))
    result.add_row(("dHH/dHG/dGH/dGG shape after one stage", f"{hh.shape[0]}x{hh.shape[1]}"))
    result.add_row(("one-stage reconstruction max error", stage_error))
    result.add_row(("scales in pyramid", pyramid.scales))
    result.add_row(("pyramid coefficient count", pyramid.coefficient_count()))
    result.add_row(("input pixel count", image.size))
    result.add_row(("full pyramid reconstruction max error", pyramid_error))

    result.add_comparison(
        "one-stage subband side length",
        paper_value=float(image_size // 2),
        measured_value=float(hh.shape[0]),
        tolerance=0.0,
    )
    result.add_comparison(
        "coefficient count equals pixel count",
        paper_value=float(image.size),
        measured_value=float(pyramid.coefficient_count()),
        tolerance=0.0,
    )
    result.add_comparison(
        "building-block reconstruction error below 0.5",
        paper_value=0.0,
        measured_value=0.0 if stage_error < 0.5 else stage_error,
        tolerance=0.0,
    )
    result.add_note(
        "Fig. 1 is a structural figure; the quantities checked are the decimated subband "
        "shapes, the conservation of the coefficient count and the invertibility of the "
        "stage, all of which the figure encodes."
    )
    return result
