"""Experiment table1 — Table I: the six Villasenor filter banks.

Regenerates the Table I rows (filter lengths, coefficients, Σ|cn|) from the
library's filter catalog and checks two things against the paper:

* the sum of absolute values of every expanded full filter matches the
  printed Σ|cn| column, and
* every bank achieves perfect reconstruction to well below the 1/2 LSB
  needed for lossless 12-bit reconstruction.
"""

from __future__ import annotations

from ...filters.catalog import get_bank
from ...filters.coefficients import FILTER_NAMES, TABLE_I
from ...filters.properties import perfect_reconstruction_error
from ...filters.qmf import expand_half_filter
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "table1"
TITLE = "Table I - best filters for wavelet image compression (Villasenor et al.)"


def run() -> ExperimentResult:
    """Regenerate Table I and compare the Σ|cn| column with the paper."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("bank", "filter", "L", "printed sum|cn|", "expanded sum|cn|", "PR error"),
    )
    for name in FILTER_NAMES:
        spec = TABLE_I[name]
        bank = get_bank(name)
        pr_error = perfect_reconstruction_error(bank)
        for role, half in (("H", spec.analysis_lowpass), ("Ht", spec.synthesis_lowpass)):
            expanded = expand_half_filter(half, f"{name}/{role}")
            result.add_row(
                (
                    name,
                    role,
                    half.length,
                    half.printed_abs_sum,
                    expanded.abs_sum,
                    pr_error,
                )
            )
            result.add_comparison(
                quantity=f"{name}/{role} sum|cn|",
                paper_value=half.printed_abs_sum,
                measured_value=expanded.abs_sum,
                tolerance=0.001,
            )
        result.add_comparison(
            quantity=f"{name} PR error below 0.5 LSB",
            paper_value=0.0,
            measured_value=0.0 if pr_error < 0.5 else pr_error,
            tolerance=0.0,
        )
    result.add_note(
        "Perfect-reconstruction residuals are bounded by the six-decimal precision "
        "of the printed coefficients (1e-3 .. 5e-3), far below the 0.5 threshold "
        "needed for lossless integer reconstruction."
    )
    return result
