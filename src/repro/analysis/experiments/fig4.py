"""Experiment fig4 — Fig. 4: input-buffer folding into two banks.

Fig. 4 shows how the 32-word input buffer is folded into two 16-word banks:
for even rows/columns the border data (2l = 12 words) sits at the top of
Bank1 and Bank2 streams the line in #rounds refills; for odd rows/columns
the banks swap roles.  The experiment regenerates the address map for both
parities, checks the geometric invariants (disjoint ranges covering the
32-word buffer, 2l border words) and replays line schedules to confirm the
peak working set fits the minimum buffer.
"""

from __future__ import annotations

from ...arch.input_buffer import (
    bank_layout,
    bank_size,
    minimum_buffer_size,
    rounded_buffer_size,
    simulate_line_occupancy,
)
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "fig4"
TITLE = "Fig. 4 - input buffer organisation (two banks, border data, #rounds)"


def run(half_filter_length: int = 6, line_lengths=(512, 256, 128, 64, 32)) -> ExperimentResult:
    """Regenerate the Fig. 4 address map and check the buffer invariants."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("quantity", "even rows/columns", "odd rows/columns"),
    )
    even = bank_layout(half_filter_length, "even")
    odd = bank_layout(half_filter_length, "odd")
    result.add_row(("border data addresses",
                    f"{even.border_range.start}..{even.border_range.stop - 1}",
                    f"{odd.border_range.start}..{odd.border_range.stop - 1}"))
    result.add_row(("streaming bank addresses",
                    f"{even.streaming_range.start}..{even.streaming_range.stop - 1}",
                    f"{odd.streaming_range.start}..{odd.streaming_range.stop - 1}"))
    result.add_row(("remainder addresses",
                    f"{even.remainder_range.start}..{even.remainder_range.stop - 1}",
                    f"{odd.remainder_range.start}..{odd.remainder_range.stop - 1}"))
    result.add_row(("total words", even.total_words, odd.total_words))

    result.add_comparison(
        "buffer size (words)", 32.0, float(rounded_buffer_size(half_filter_length)), tolerance=0.0
    )
    result.add_comparison(
        "bank size (words)", 16.0, float(bank_size(half_filter_length)), tolerance=0.0
    )
    result.add_comparison(
        "border words (2l)", float(2 * half_filter_length),
        float(len(even.border_range)), tolerance=0.0
    )
    result.add_comparison(
        "minimum buffer (4l+1)", 25.0, float(minimum_buffer_size(half_filter_length)),
        tolerance=0.0,
    )
    for line in line_lengths:
        occupancy = simulate_line_occupancy(line, half_filter_length)
        result.add_comparison(
            f"peak live words fits 4l+1 (line {line})",
            1.0,
            1.0 if occupancy.fits_minimum_buffer else 0.0,
            tolerance=0.0,
        )
    result.add_note(
        "The even/odd address maps cover the 32-word buffer exactly once each and swap "
        "roles between parities, as drawn in Fig. 4; the occupancy replay confirms the "
        "4l+1 sizing argument for every line length used by a 512x512, 6-scale transform."
    )
    return result
