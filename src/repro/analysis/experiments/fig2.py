"""Experiment fig2 — Fig. 2: the macro-cycle operation schedule.

Fig. 2 lists, cycle by cycle, what the DRAM manager, input buffer,
accumulator control and output FIFO do during one 13-cycle macro-cycle and
during the 6-cycle refresh extension, and the paper derives from it the
99.04 % multiplier utilisation.  The experiment regenerates the slot table,
checks its structural properties (one DRAM read and one write per
macro-cycle, L coefficient reads, load-then-accumulate control) and
reproduces the utilisation figure both in closed form and by running the
macro-cycle counter over a full-image workload.
"""

from __future__ import annotations

from ...arch.accelerator import forward_macrocycles
from ...arch.config import paper_configuration
from ...arch.scheduler import operation_schedule, simulate_utilisation, utilisation_formula
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "fig2"
TITLE = "Fig. 2 - macro-cycle operation schedule and multiplier utilisation"

PAPER_UTILISATION_PERCENT = 99.04


def run(image_size: int = 512, scales: int = 6) -> ExperimentResult:
    """Regenerate the Fig. 2 schedule and the 99.04% utilisation figure."""
    config = paper_configuration(image_size=image_size, scales=scales)
    normal = operation_schedule(config.macrocycle_cycles, refresh=False)
    extended = operation_schedule(
        config.macrocycle_cycles, refresh=True,
        refresh_stall_cycles=config.refresh_stall_cycles,
    )
    macrocycles = forward_macrocycles(image_size, scales)
    report = simulate_utilisation(macrocycles, config)
    closed_form = utilisation_formula(
        config.macrocycle_cycles,
        config.refresh_interval_macrocycles,
        config.refresh_stall_cycles,
    )

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("quantity", "value"),
    )
    result.add_row(("normal macro-cycle length", len(normal)))
    result.add_row(("extended macro-cycle length", len(extended)))
    result.add_row(("DRAM reads per macro-cycle", sum(1 for s in normal if s.dram_op == "rd")))
    result.add_row(("DRAM writes per macro-cycle", sum(1 for s in normal if s.dram_op == "wr")))
    result.add_row(("coefficient reads per macro-cycle",
                    sum(1 for s in normal if s.input_buffer_op.startswith("rd_cf"))))
    result.add_row(("acc 'load' cycles per macro-cycle",
                    sum(1 for s in normal if s.acc_ctl == "load")))
    result.add_row(("hold cycles in the refresh extension",
                    sum(1 for s in extended if s.acc_ctl == "hold")))
    result.add_row(("macro-cycles per refresh", config.refresh_interval_macrocycles))
    result.add_row(("forward-transform macro-cycles", macrocycles))
    result.add_row(("utilisation (full run)", 100.0 * report.utilisation))
    result.add_row(("utilisation (closed form)", 100.0 * closed_form))

    result.add_comparison(
        "normal macro-cycle cycles", 13.0, float(len(normal)), tolerance=0.0
    )
    result.add_comparison(
        "extended macro-cycle cycles", 19.0, float(len(extended)), tolerance=0.0
    )
    result.add_comparison(
        "multiplier utilisation",
        PAPER_UTILISATION_PERCENT,
        100.0 * report.utilisation,
        unit="%",
        tolerance=0.001,
    )
    result.add_note(
        "The refresh cadence (one 6-cycle extension every 48 macro-cycles) corresponds to a "
        "standard 15.6 us distributed DRAM refresh at the 25 ns design clock and reproduces "
        "the quoted 99.04% utilisation."
    )
    return result
