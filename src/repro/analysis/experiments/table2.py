"""Experiment table2 — Table II: minimum integer part b_int(s) per scale.

The paper's Table II gives, for every filter bank and scale 1..6, the
minimum number of integer bits (sign included) the 32-bit datapath word must
devote to the integer part so that the subband dynamic range never
overflows, for 12-bit (+ sign) input images.  The reproduction derives the
same numbers from the filter definitions (growth bounded by products of
Σ|h| and Σ|g|) rather than hard-coding the table, and compares cell by cell.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...filters.catalog import get_bank
from ...filters.coefficients import FILTER_NAMES
from ...fixedpoint.wordlength import integer_bits_schedule
from ..record import ExperimentResult

__all__ = ["run", "PAPER_TABLE_II"]

EXPERIMENT_ID = "table2"
TITLE = "Table II - minimum integer part b_int(s) per filter and scale"

#: Table II exactly as printed in the paper (scales 1..6).
PAPER_TABLE_II: Dict[str, Tuple[int, ...]] = {
    "F1": (15, 17, 19, 21, 23, 25),
    "F2": (16, 17, 19, 21, 23, 25),
    "F3": (15, 17, 19, 21, 23, 25),
    "F4": (16, 18, 20, 22, 24, 27),
    "F5": (15, 16, 17, 18, 19, 20),
    "F6": (16, 19, 21, 24, 26, 29),
}

SCALES = 6


def run() -> ExperimentResult:
    """Regenerate Table II from the dynamic-range analysis."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("filter",) + tuple(f"s={s}" for s in range(1, SCALES + 1)) + ("matches paper",),
    )
    for name in FILTER_NAMES:
        bank = get_bank(name)
        ours = tuple(integer_bits_schedule(bank, SCALES).values())
        paper = PAPER_TABLE_II[name]
        result.add_row((name,) + ours + (ours == paper,))
        for scale_index, (our_bits, paper_bits) in enumerate(zip(ours, paper), start=1):
            result.add_comparison(
                quantity=f"{name} b_int(s={scale_index})",
                paper_value=float(paper_bits),
                measured_value=float(our_bits),
                unit="bits",
                tolerance=0.0,
            )
    result.add_note(
        "Derived analytically from the filter absolute-coefficient sums with 13-bit "
        "(12-bit + sign) inputs; every cell matches the printed table exactly."
    )
    return result
