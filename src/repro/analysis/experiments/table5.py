"""Experiment table5 — Table V: multiplier access time and area.

The paper rejects the megacell-compiled 32x32 multiplier (50.88 ns access
time — too slow for a 25 ns clock) in favour of a 2-stage pipelined Wallace
multiplier (23.45 ns per stage, larger at 8.03 mm²).  The reproduction
rebuilds both rows from the structural multiplier models on top of the
calibrated ES2 0.7 µm cell parameters and checks the clock-feasibility
argument (compiled multiplier misses the 25 ns clock, pipelined one meets
it).
"""

from __future__ import annotations

from ...arch.multiplier import array_multiplier_estimate, wallace_multiplier_estimate
from ...technology.timing import PAPER_TABLE_V, meets_clock
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "table5"
TITLE = "Table V - 32x32 multiplier designs (ES2 compiled vs 2-stage pipelined Wallace)"

DESIGN_CLOCK_NS = 25.0


def run(bits: int = 32) -> ExperimentResult:
    """Regenerate Table V from the structural multiplier models."""
    array = array_multiplier_estimate(bits)
    wallace = wallace_multiplier_estimate(bits, pipeline_stages=2)
    paper_array, paper_wallace = PAPER_TABLE_V

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=(
            "design",
            "access time ns (ours)",
            "access time ns (paper)",
            "area mm2 (ours)",
            "area mm2 (paper)",
            "meets 25 ns clock",
        ),
    )
    result.add_row(
        (
            array.name,
            array.critical_path_ns,
            paper_array.access_time_ns,
            array.area_mm2,
            paper_array.area_mm2,
            meets_clock(array.critical_path_ns, DESIGN_CLOCK_NS),
        )
    )
    result.add_row(
        (
            wallace.name,
            wallace.critical_path_ns,
            paper_wallace.access_time_ns,
            wallace.area_mm2,
            paper_wallace.area_mm2,
            meets_clock(wallace.critical_path_ns, DESIGN_CLOCK_NS),
        )
    )
    result.add_comparison(
        "compiled multiplier access time", paper_array.access_time_ns,
        array.critical_path_ns, unit="ns", tolerance=0.02,
    )
    result.add_comparison(
        "compiled multiplier area", paper_array.area_mm2, array.area_mm2,
        unit="mm2", tolerance=0.02,
    )
    result.add_comparison(
        "pipelined multiplier access time", paper_wallace.access_time_ns,
        wallace.critical_path_ns, unit="ns", tolerance=0.02,
    )
    result.add_comparison(
        "pipelined multiplier area", paper_wallace.area_mm2, wallace.area_mm2,
        unit="mm2", tolerance=0.02,
    )
    result.add_note(
        "The cell delays/areas of the technology model are calibrated to the ES2 figures "
        "the paper prints, so Table V is a calibration check plus the structural argument "
        "(only the pipelined multiplier meets the 25 ns clock)."
    )
    return result
