"""Experiment eq2 — Eq. (1)/(2): MAC operation counts and the Pentium baseline.

§2 of the paper counts the MAC operations of the FDWT and quotes, for
N = 512, 13-tap filters and S = 6, a total of 8.99e6 MACs and 42 s of
computation on a 133 MHz Pentium.  The experiment reproduces the per-scale
and total counts with the closed form, cross-checks them with the
instrumented counter that walks the actual transform loops, and reports the
calibrated Pentium model.
"""

from __future__ import annotations

import numpy as np

from ...dwt.opcount import count_macs_instrumented, mac_count_formula
from ...filters.catalog import get_bank
from ...perf.opcount_model import PAPER_MAC_COUNT, WorkloadModel
from ...perf.software_baseline import PAPER_PENTIUM_SECONDS, PentiumBaseline
from ..record import ExperimentResult

__all__ = ["run"]

EXPERIMENT_ID = "eq2"
TITLE = "Eq. (1)/(2) - MAC operation counts and the Pentium-133 baseline"


def run(image_size: int = 512, scales: int = 6) -> ExperimentResult:
    """Reproduce the MAC-count worked example of section 2."""
    # The paper's worked example takes both filter lengths as 13.
    paper_style = WorkloadModel(image_size=image_size, scales=scales)
    true_f2 = WorkloadModel.for_bank(get_bank("F2"), image_size=image_size, scales=scales)
    baseline = PentiumBaseline()

    per_scale = mac_count_formula(image_size, 13, 13, scales)
    # Instrumented count on a small image, scaled analytically to N=512 per scale.
    probe_size = 64
    instrumented = count_macs_instrumented(
        np.zeros((probe_size, probe_size)), get_bank("F2"), min(scales, 6)
    )

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("quantity", "value"),
    )
    for scale, macs in per_scale.items():
        result.add_row((f"MACs at scale {scale} (L=13/13)", macs))
    result.add_row(("total MACs (L=13/13 closed form)", paper_style.total_macs()))
    result.add_row(("total MACs (true F2 lengths 13/11)", true_f2.total_macs()))
    result.add_row(("paper's quoted total", PAPER_MAC_COUNT))
    result.add_row(("instrumented probe (64x64, F2) scale-1 MACs", instrumented[1]))
    result.add_row(("closed form  (64x64, F2) scale-1 MACs",
                    mac_count_formula(probe_size, 13, 11, 1)[1]))
    result.add_row(("Pentium-133 model rate (MAC/s)", baseline.macs_per_second))
    result.add_row(("Pentium-133 predicted seconds (L=13/13)",
                    baseline.seconds_for_workload(paper_style)))

    result.add_comparison(
        "total FDWT MACs",
        PAPER_MAC_COUNT,
        float(paper_style.total_macs()),
        tolerance=0.02,
    )
    result.add_comparison(
        "Pentium FDWT time",
        PAPER_PENTIUM_SECONDS,
        baseline.seconds_for_workload(paper_style),
        unit="s",
        tolerance=0.02,
    )
    result.add_comparison(
        "instrumented == closed form (scale 1, 64x64)",
        float(mac_count_formula(probe_size, 13, 11, 1)[1]),
        float(instrumented[1]),
        tolerance=0.0,
    )
    result.add_note(
        "The closed form with both filter lengths taken as 13 gives 9.08e6 MACs (+1% of the "
        "paper's 8.99e6); with the true F2 lengths (13/11) it gives 8.39e6 (-7%).  The "
        "Pentium time is a calibration of the baseline model, not an independent measurement."
    )
    return result
