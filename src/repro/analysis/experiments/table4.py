"""Experiment table4 — Table IV: Bank2 reuse rounds per scale (input buffer).

The input buffer of §4.1 is folded into two 16-word banks (Fig. 4).  While a
512-sample line is processed, the streaming bank (Bank2) is refilled a
number of times that depends on the line length at each scale; Table IV
lists those "#rounds".  The reproduction derives them from the buffer
geometry and additionally replays the per-line schedule to confirm the live
working set never exceeds the 4l+1 = 25-word minimum the sizing argument
assumes.
"""

from __future__ import annotations

from typing import Dict

from ...arch.input_buffer import (
    bank2_rounds_table,
    bank_size,
    minimum_buffer_size,
    rounded_buffer_size,
    simulate_line_occupancy,
)
from ..record import ExperimentResult

__all__ = ["run", "PAPER_TABLE_IV"]

EXPERIMENT_ID = "table4"
TITLE = "Table IV - Bank2 utilisation (#rounds) per scale for a 512x512 image"

#: Table IV as printed: scale -> (row/column size, #rounds).
PAPER_TABLE_IV: Dict[int, int] = {1: 31, 2: 15, 3: 7, 4: 3, 5: 1, 6: 0}


def run(image_size: int = 512, scales: int = 6, half_filter_length: int = 6) -> ExperimentResult:
    """Regenerate Table IV and verify the minimum-buffer claim."""
    table = bank2_rounds_table(image_size, scales, half_filter_length)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=("scale", "line length", "#rounds (ours)", "#rounds (paper)", "peak live words"),
    )
    for scale, entry in table.items():
        line = entry["line_length"]
        occupancy = (
            simulate_line_occupancy(line, half_filter_length)
            if line > 2 * half_filter_length
            else None
        )
        peak = occupancy.max_live_words if occupancy else None
        paper_rounds = PAPER_TABLE_IV.get(scale)
        result.add_row((scale, line, entry["rounds"], paper_rounds, peak))
        if paper_rounds is not None and image_size == 512:
            result.add_comparison(
                quantity=f"#rounds at scale {scale}",
                paper_value=float(paper_rounds),
                measured_value=float(entry["rounds"]),
                tolerance=0.0,
            )
    result.add_comparison(
        quantity="minimum buffer size (4l+1)",
        paper_value=25.0,
        measured_value=float(minimum_buffer_size(half_filter_length)),
        unit="words",
        tolerance=0.0,
    )
    result.add_comparison(
        quantity="rounded buffer size",
        paper_value=32.0,
        measured_value=float(rounded_buffer_size(half_filter_length)),
        unit="words",
        tolerance=0.0,
    )
    result.add_comparison(
        quantity="bank size",
        paper_value=16.0,
        measured_value=float(bank_size(half_filter_length)),
        unit="words",
        tolerance=0.0,
    )
    result.add_note(
        "Peak live words come from replaying the per-macro-cycle read/retire schedule "
        "of one line; they never exceed the 25-word minimum, validating the Bsize=4l+1 "
        "sizing argument of section 4.1."
    )
    return result
