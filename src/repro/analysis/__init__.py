"""Experiment framework: table rendering, paper-vs-measured records, drivers.

Public API
----------
``run_experiment(id)`` / ``run_all()`` / ``EXPERIMENTS``
    One driver per paper table/figure (``table1`` .. ``table6``, ``fig1`` ..
    ``fig4``, ``eq2``, ``headline``, ``lossless``).
``ExperimentResult`` / ``Comparison``
    Result containers with paper-vs-measured comparison records.
``format_table``
    Plain-text table rendering.
"""

from .experiments import EXPERIMENTS, experiment_ids, run_all, run_experiment
from .record import Comparison, ExperimentResult
from .tabulate import format_cell, format_table

__all__ = [
    "EXPERIMENTS",
    "experiment_ids",
    "run_all",
    "run_experiment",
    "Comparison",
    "ExperimentResult",
    "format_cell",
    "format_table",
]
