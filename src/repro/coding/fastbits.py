"""Vectorised bit-level coding engine.

The scalar :class:`~repro.coding.bitstream.BitWriter` / ``BitReader`` pair
moves one bit per Python call, which makes them the wall-clock floor of the
whole codec.  This module provides array-native replacements that operate on
whole symbol blocks at once and are **wire-compatible** with the scalar pair:
a stream produced here decodes byte-for-byte with :class:`BitReader` and vice
versa.

Representation
--------------
A stream under construction is a ``uint8`` array holding one bit per element
(0 or 1, MSB-first order).  Values are expanded into that array with uint64
shift/or arithmetic (``pack_uint_fields``), and the finished stream is flushed
to bytes in one :func:`numpy.packbits` call — which also zero-pads the final
byte exactly like ``BitWriter.getvalue``.

Sequential decoding without Python loops
----------------------------------------
Variable-length codes (unary/Rice, Huffman) have a sequential dependency: the
start of symbol ``i + 1`` depends on the length of symbol ``i``.  The decoders
break that dependency with :func:`orbit`, which follows a precomputed
"successor" array through pointer doubling — ``O(n log n)`` array gathers
instead of ``O(total bits)`` Python iterations.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - optional compiled tier (numba is not a dependency)
    from numba import njit as _njit
except Exception:  # pragma: no cover - the numpy paths are the supported tier
    _njit = None

__all__ = [
    "pack_bits",
    "unpack_bits",
    "ragged_arange",
    "pack_uint_fields",
    "read_uint",
    "read_uints",
    "bit_windows64",
    "orbit",
]


def pack_bits(bits: np.ndarray) -> bytes:
    """Flush a 0/1 bit array (MSB-first) to bytes, zero-padding the last byte.

    Identical framing to ``BitWriter.getvalue`` for the same bit sequence.
    """
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()


def unpack_bits(data: bytes) -> np.ndarray:
    """Expand a byte string to a 0/1 ``uint8`` array (MSB-first per byte)."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for every count: [0..c0), [0..c1), ...

    The building block for expanding per-symbol code lengths into per-bit
    positions without a Python loop.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def pack_uint_fields(values: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Expand unsigned integers into an MSB-first 0/1 bit array.

    ``values[i]`` is written as a ``widths[i]``-bit big-endian field; fields
    are concatenated in order.  ``widths`` may be a scalar (uniform fields) or
    an array of per-field widths.  The result is a ``uint8`` bit array ready
    for :func:`pack_bits` (or concatenation with other field groups).
    """
    values = np.asarray(values, dtype=np.int64).ravel()
    widths = np.broadcast_to(np.asarray(widths, dtype=np.int64), values.shape)
    if values.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if int(widths.min()) < 0:
        raise ValueError("field widths must be non-negative")
    if int(values.min()) < 0:
        raise ValueError("pack_uint_fields encodes non-negative integers")
    narrow = widths < 63
    if np.any(values[narrow] >= (np.int64(1) << widths[narrow])):
        bad = np.flatnonzero(narrow & (values >= (np.int64(1) << np.minimum(widths, 62))))[0]
        raise ValueError(f"value {values[bad]} does not fit in {widths[bad]} bits")
    field = np.repeat(np.arange(values.size, dtype=np.int64), widths)
    shift = widths[field] - 1 - ragged_arange(widths)
    return (
        (values[field].astype(np.uint64) >> shift.astype(np.uint64)) & np.uint64(1)
    ).astype(np.uint8)


def read_uint(bits: np.ndarray, offset: int, width: int) -> int:
    """Read one ``width``-bit big-endian unsigned integer at bit ``offset``."""
    if width < 0:
        raise ValueError("width must be non-negative")
    if offset + width > bits.size:
        raise EOFError("bitstream exhausted")
    value = 0
    for bit in bits[offset : offset + width]:
        value = (value << 1) | int(bit)
    return value


def read_uints(bits: np.ndarray, offset: int, count: int, width: int) -> np.ndarray:
    """Read ``count`` consecutive ``width``-bit fields starting at ``offset``."""
    if count < 0 or width < 0:
        raise ValueError("count and width must be non-negative")
    if count == 0 or width == 0:
        return np.zeros(count, dtype=np.int64)
    end = offset + count * width
    if end > bits.size:
        raise EOFError("bitstream exhausted")
    block = bits[offset:end].reshape(count, width).astype(np.int64)
    weights = np.int64(1) << np.arange(width - 1, -1, -1, dtype=np.int64)
    return block @ weights


def bit_windows64(data) -> np.ndarray:
    """64-bit big-endian bit windows of a byte stream, one per byte offset.

    ``windows[i]`` holds bits ``8 * i .. 8 * i + 63`` of the stream (MSB
    first), zero-padded past the end — so
    ``(windows[p >> 3] << (p & 7)) >> (64 - w)`` peeks the ``w``-bit
    big-endian field at *any* bit position ``p`` (``w <= 57``) with two
    gathers.  The turbo decoders use this to read every candidate code word
    or remainder field of a block in one vector expression instead of one
    shift/or pass per bit.  Accepts anything :func:`numpy.frombuffer` does
    (``bytes``, ``bytearray``, ``memoryview`` — no copy of the input).
    """
    raw = np.frombuffer(data, dtype=np.uint8)
    n = raw.size
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    padded = np.zeros(n + 8, dtype=np.uint64)
    padded[:n] = raw
    windows = np.zeros(n, dtype=np.uint64)
    for i in range(8):
        windows |= padded[i : i + n] << np.uint64(56 - 8 * i)
    return windows


#: Block size of the :func:`orbit` jump table (must be a power of two).
_ORBIT_BLOCK = 32


if _njit is not None:  # pragma: no cover - exercised only when numba is installed

    @_njit(cache=True)
    def _orbit_walk_jit(successor, start, count):  # type: ignore[misc]
        out = np.empty(count, dtype=np.int64)
        position = start
        for i in range(count):
            out[i] = position
            position = successor[position]
        return out

else:
    _orbit_walk_jit = None


def orbit(successor: np.ndarray, start: int, count: int) -> np.ndarray:
    """First ``count`` iterates of ``t[0] = start, t[i+1] = successor[t[i]]``.

    ``successor`` must map ``[0, n)`` into ``[0, n)``.  The sequential chain
    is cut with a blocked jump table: ``successor`` is composed with itself
    ``log2(B)`` times to get the ``B``-fold jump, a short scalar walk places
    one anchor every ``B`` elements, and the gaps between anchors are filled
    with ``B`` vectorised gathers — ``O(n log B + count)`` array work instead
    of ``count`` Python iterations.
    """
    if count <= 0:
        return np.zeros(0, dtype=np.int64)
    successor = np.asarray(successor)
    if _orbit_walk_jit is not None:  # pragma: no cover - optional numba tier
        # Same walk, compiled: the cache-JIT'd kernel beats the blocked jump
        # table outright, and its output is identical by construction.
        return _orbit_walk_jit(np.ascontiguousarray(successor), start, count)
    if count <= 4 * _ORBIT_BLOCK:
        out = np.empty(count, dtype=np.int64)
        position = start
        for i in range(count):
            out[i] = position
            position = int(successor[position])
        return out
    # ``take(mode="clip")`` skips numpy's per-element bounds check (and the
    # int32 -> intp index conversion of fancy indexing); the contract above
    # guarantees every index is in range, so "clip" never alters a value.
    block_jump = successor
    for _ in range(_ORBIT_BLOCK.bit_length() - 1):
        block_jump = block_jump.take(block_jump, mode="clip")
    anchor_count = -(-count // _ORBIT_BLOCK)
    anchors = np.empty(anchor_count, dtype=np.int64)
    position = start
    for i in range(anchor_count):
        anchors[i] = position
        position = int(block_jump[position])
    lanes = np.empty((_ORBIT_BLOCK, anchor_count), dtype=np.int64)
    lanes[0] = anchors
    current = anchors.astype(successor.dtype, copy=False)
    for step in range(1, _ORBIT_BLOCK):
        current = successor.take(current, mode="clip")
        lanes[step] = current
    return lanes.T.reshape(-1)[:count]
