"""Lossless wavelet codecs (library extension beyond the paper).

Public API
----------
``LosslessWaveletCodec``
    Coefficient-exact back end for the paper's fixed-point DWT (bit-exact
    round trip; models the hardware-to-coder hand-off, does not shrink).
``STransformCodec``
    Compressive lossless codec based on the reversible integer S-transform.
``compress_frames`` / ``decompress_frames``
    Batched end-to-end pipeline over many frames with per-stage timing.
``CompressedImage`` / ``CompressedSImage`` / ``SubbandChunk``
    Compressed-stream containers with size/ratio accounting.
``rice_encode`` / ``huffman_encode`` / ``rle_encode`` and friends
    The underlying entropy-coding primitives.  Every block coder ships a
    vectorised implementation (built on :mod:`repro.coding.fastbits`) and a
    bit-by-bit ``*_scalar`` reference producing byte-identical streams.
"""

from .bitstream import BitReader, BitWriter
from .codec import CompressedImage, LosslessWaveletCodec, SubbandChunk
from .executor import (
    ParallelExecutor,
    default_workers,
    is_socket_workers,
    make_executor,
)
from .pipeline import (
    CompressedBatch,
    PipelineStats,
    Stage,
    StagePipeline,
    compress_frames,
    decode_pipeline,
    decompress_frames,
    encode_pipeline,
    max_dyadic_scales,
)
from .spec import (
    ENGINE_NAMES,
    TRANSFORM_ENGINE_NAMES,
    CodecFamily,
    CodecSpec,
    UnknownCodecError,
    codec_names,
    default_engine,
    get_family,
    register_codec,
)
from .s_transform import (
    CompressedSImage,
    STransformCodec,
    STransformPyramid,
    s_transform_forward_1d,
    s_transform_forward_2d,
    s_transform_inverse_1d,
    s_transform_inverse_2d,
    s_transform_inverse_roi,
)
from .huffman import (
    HuffmanCode,
    build_code_lengths,
    canonical_codes,
    huffman_decode,
    huffman_decode_scalar,
    huffman_decode_turbo,
    huffman_encode,
    huffman_encode_scalar,
)
from .mapper import flatten_pyramid, pyramid_scan, zigzag_decode, zigzag_encode
from .rice import (
    optimal_rice_parameter,
    rice_code_length,
    rice_cost_matrix,
    rice_decode,
    rice_decode_array,
    rice_decode_array_turbo,
    rice_decode_scalar,
    rice_decode_turbo,
    rice_decode_value,
    rice_encode,
    rice_encode_scalar,
    rice_encode_value,
)
from .rle import (
    LITERAL,
    ZERO_RUN,
    RleEvent,
    rle_decode,
    rle_decode_arrays,
    rle_encode,
    rle_encode_arrays,
    zero_fraction,
)


def __getattr__(name: str):
    # Resolved through the registry on access (not snapshotted at package
    # import) so `repro.coding.CODEC_NAMES` stays truthful after
    # register_codec(); codec_names() is the explicit call-time view.
    if name == "CODEC_NAMES":
        return codec_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BitReader",
    "BitWriter",
    "CompressedImage",
    "LosslessWaveletCodec",
    "SubbandChunk",
    "CODEC_NAMES",
    "CompressedBatch",
    "PipelineStats",
    "Stage",
    "StagePipeline",
    "compress_frames",
    "decode_pipeline",
    "decompress_frames",
    "encode_pipeline",
    "max_dyadic_scales",
    "ENGINE_NAMES",
    "TRANSFORM_ENGINE_NAMES",
    "CodecFamily",
    "CodecSpec",
    "UnknownCodecError",
    "codec_names",
    "default_engine",
    "get_family",
    "register_codec",
    "ParallelExecutor",
    "default_workers",
    "is_socket_workers",
    "make_executor",
    "CompressedSImage",
    "STransformCodec",
    "STransformPyramid",
    "s_transform_forward_1d",
    "s_transform_forward_2d",
    "s_transform_inverse_1d",
    "s_transform_inverse_2d",
    "s_transform_inverse_roi",
    "HuffmanCode",
    "build_code_lengths",
    "canonical_codes",
    "huffman_decode",
    "huffman_decode_scalar",
    "huffman_decode_turbo",
    "huffman_encode",
    "huffman_encode_scalar",
    "flatten_pyramid",
    "pyramid_scan",
    "zigzag_decode",
    "zigzag_encode",
    "optimal_rice_parameter",
    "rice_code_length",
    "rice_cost_matrix",
    "rice_decode",
    "rice_decode_array",
    "rice_decode_array_turbo",
    "rice_decode_scalar",
    "rice_decode_turbo",
    "rice_decode_value",
    "rice_encode",
    "rice_encode_scalar",
    "rice_encode_value",
    "LITERAL",
    "ZERO_RUN",
    "RleEvent",
    "rle_decode",
    "rle_decode_arrays",
    "rle_encode",
    "rle_encode_arrays",
    "zero_fraction",
]
