"""Zero run-length pre-coding for wavelet detail coefficients.

Wavelet detail subbands of medical images are dominated by zeros (or, for
noisy modalities, near-zeros that become zeros only when the image is
genuinely smooth).  Before entropy coding it is therefore worth replacing
runs of zeros by ``(ZERO_RUN, length)`` events and leaving non-zero
coefficients as ``(LITERAL, value)`` events.

The run-length layer is optional — the codec measures both variants — and
is completely lossless: ``rle_decode(rle_encode(x)) == x`` for every integer
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

__all__ = ["RleEvent", "LITERAL", "ZERO_RUN", "rle_encode", "rle_decode"]

#: Event kinds.
LITERAL = "literal"
ZERO_RUN = "zero_run"


@dataclass(frozen=True)
class RleEvent:
    """One run-length event: a literal value or a run of zeros."""

    kind: str
    value: int

    def __post_init__(self) -> None:
        if self.kind not in (LITERAL, ZERO_RUN):
            raise ValueError(f"unknown RLE event kind {self.kind!r}")
        if self.kind == ZERO_RUN and self.value < 1:
            raise ValueError("zero runs must have length >= 1")


def rle_encode(values: Iterable[int], max_run: int = 1 << 16) -> List[RleEvent]:
    """Encode an integer sequence into literal / zero-run events.

    ``max_run`` caps the length of a single run event (longer runs are split)
    so that run lengths always fit a bounded symbol alphabet.
    """
    if max_run < 1:
        raise ValueError("max_run must be >= 1")
    events: List[RleEvent] = []
    run = 0
    for value in np.asarray(list(values), dtype=np.int64):
        if value == 0:
            run += 1
            if run == max_run:
                events.append(RleEvent(ZERO_RUN, run))
                run = 0
        else:
            if run:
                events.append(RleEvent(ZERO_RUN, run))
                run = 0
            events.append(RleEvent(LITERAL, int(value)))
    if run:
        events.append(RleEvent(ZERO_RUN, run))
    return events


def rle_decode(events: Iterable[RleEvent]) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    out: List[int] = []
    for event in events:
        if event.kind == ZERO_RUN:
            out.extend([0] * event.value)
        else:
            out.append(event.value)
    return np.asarray(out, dtype=np.int64)


def zero_fraction(values: Iterable[int]) -> float:
    """Fraction of zero samples (diagnostic for whether RLE will pay off)."""
    arr = np.asarray(list(values), dtype=np.int64)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr == 0) / arr.size)


def compression_events_summary(events: List[RleEvent]) -> Tuple[int, int, int]:
    """``(literal count, zero-run count, total zeros covered)`` of an event list."""
    literals = sum(1 for e in events if e.kind == LITERAL)
    runs = sum(1 for e in events if e.kind == ZERO_RUN)
    zeros = sum(e.value for e in events if e.kind == ZERO_RUN)
    return literals, runs, zeros
