"""Zero run-length pre-coding for wavelet detail coefficients.

Wavelet detail subbands of medical images are dominated by zeros (or, for
noisy modalities, near-zeros that become zeros only when the image is
genuinely smooth).  Before entropy coding it is therefore worth replacing
runs of zeros by ``(ZERO_RUN, length)`` events and leaving non-zero
coefficients as ``(LITERAL, value)`` events.

The run-length layer is optional — the codec measures both variants — and
is completely lossless: ``rle_decode(rle_encode(x)) == x`` for every integer
sequence.

Two representations are provided:

* the event-object API (:func:`rle_encode` / :func:`rle_decode`), the scalar
  reference that materialises one :class:`RleEvent` per event, and
* the array API (:func:`rle_encode_arrays` / :func:`rle_decode_arrays`),
  which produces the exact same event sequence as two NumPy arrays — the
  run-symbol stream (run length, or 0 marking a literal) and the literal
  values — without any per-event Python objects.  This is what the
  vectorised codec feeds straight into the Rice coder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

__all__ = [
    "RleEvent",
    "LITERAL",
    "ZERO_RUN",
    "rle_encode",
    "rle_decode",
    "rle_encode_arrays",
    "rle_decode_arrays",
]

#: Event kinds.
LITERAL = "literal"
ZERO_RUN = "zero_run"

#: Default cap on a single run event (longer runs are split).
DEFAULT_MAX_RUN = 1 << 16


@dataclass(frozen=True)
class RleEvent:
    """One run-length event: a literal value or a run of zeros."""

    kind: str
    value: int

    def __post_init__(self) -> None:
        if self.kind not in (LITERAL, ZERO_RUN):
            raise ValueError(f"unknown RLE event kind {self.kind!r}")
        if self.kind == ZERO_RUN and self.value < 1:
            raise ValueError("zero runs must have length >= 1")


def rle_encode(values: Iterable[int], max_run: int = DEFAULT_MAX_RUN) -> List[RleEvent]:
    """Encode an integer sequence into literal / zero-run events.

    ``max_run`` caps the length of a single run event (longer runs are split)
    so that run lengths always fit a bounded symbol alphabet.  Scalar
    reference for :func:`rle_encode_arrays`.
    """
    if max_run < 1:
        raise ValueError("max_run must be >= 1")
    events: List[RleEvent] = []
    run = 0
    if isinstance(values, np.ndarray):
        arr = values.astype(np.int64, copy=False)
    else:
        arr = np.asarray(list(values), dtype=np.int64)
    for value in arr.ravel().tolist():
        if value == 0:
            run += 1
            if run == max_run:
                events.append(RleEvent(ZERO_RUN, run))
                run = 0
        else:
            if run:
                events.append(RleEvent(ZERO_RUN, run))
                run = 0
            events.append(RleEvent(LITERAL, int(value)))
    if run:
        events.append(RleEvent(ZERO_RUN, run))
    return events


def rle_decode(events: Iterable[RleEvent]) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    out: List[int] = []
    for event in events:
        if event.kind == ZERO_RUN:
            out.extend([0] * event.value)
        else:
            out.append(event.value)
    return np.asarray(out, dtype=np.int64)


# ---------------------------------------------------------------------------
# Vectorised array representation
# ---------------------------------------------------------------------------

def rle_encode_arrays(
    values: np.ndarray, max_run: int = DEFAULT_MAX_RUN
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised RLE returning ``(run_symbols, literal_values)``.

    ``run_symbols`` carries one entry per event in the exact order
    :func:`rle_encode` emits them: a positive value is a zero run of that
    length, a zero marks the next literal (a literal of value 0 never occurs,
    zeros always join runs).  ``literal_values`` are the signed literals in
    order.
    """
    if max_run < 1:
        raise ValueError("max_run must be >= 1")
    x = np.asarray(values, dtype=np.int64).ravel()
    nonzero = np.flatnonzero(x)
    literals = x[nonzero]
    # Zeros before each literal, and after the last one.
    gaps = np.diff(np.concatenate([[-1], nonzero])) - 1
    tail = int(x.size - (nonzero[-1] + 1)) if nonzero.size else int(x.size)
    full_runs = gaps // max_run
    partial = gaps % max_run
    events_per_literal = full_runs + (partial > 0) + 1
    tail_full = tail // max_run
    tail_partial = tail % max_run
    body = int(events_per_literal.sum())
    total = body + tail_full + (1 if tail_partial else 0)
    run_symbols = np.full(total, max_run, dtype=np.int64)
    offsets = np.cumsum(events_per_literal) - events_per_literal
    has_partial = partial > 0
    run_symbols[offsets[has_partial] + full_runs[has_partial]] = partial[has_partial]
    run_symbols[offsets + events_per_literal - 1] = 0
    if tail_partial:
        run_symbols[body + tail_full] = tail_partial
    return run_symbols, literals


def rle_decode_arrays(run_symbols: np.ndarray, literal_values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode_arrays`."""
    runs = np.asarray(run_symbols, dtype=np.int64).ravel()
    literals = np.asarray(literal_values, dtype=np.int64).ravel()
    if runs.size and int(runs.min()) < 0:
        raise ValueError("zero runs must have length >= 1")
    lengths = np.where(runs > 0, runs, 1)
    ends = np.cumsum(lengths)
    total = int(ends[-1]) if ends.size else 0
    out = np.zeros(total, dtype=np.int64)
    literal_positions = ends[runs == 0] - 1
    if literal_positions.size != literals.size:
        raise ValueError(
            f"run stream expects {literal_positions.size} literals, got {literals.size}"
        )
    out[literal_positions] = literals
    return out


def events_to_arrays(events: Iterable[RleEvent]) -> Tuple[np.ndarray, np.ndarray]:
    """Convert an event list to the ``(run_symbols, literal_values)`` form."""
    events = list(events)
    run_symbols = np.asarray(
        [e.value if e.kind == ZERO_RUN else 0 for e in events], dtype=np.int64
    )
    literals = np.asarray(
        [e.value for e in events if e.kind == LITERAL], dtype=np.int64
    )
    return run_symbols, literals


def zero_fraction(values: Iterable[int]) -> float:
    """Fraction of zero samples (diagnostic for whether RLE will pay off)."""
    if isinstance(values, np.ndarray):
        arr = values
    else:
        arr = np.asarray(list(values), dtype=np.int64)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr == 0) / arr.size)


def compression_events_summary(events: List[RleEvent]) -> Tuple[int, int, int]:
    """``(literal count, zero-run count, total zeros covered)`` of an event list."""
    literals = sum(1 for e in events if e.kind == LITERAL)
    runs = sum(1 for e in events if e.kind == ZERO_RUN)
    zeros = sum(e.value for e in events if e.kind == ZERO_RUN)
    return literals, runs, zeros
