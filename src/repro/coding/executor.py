"""Multi-core batch execution: shard a frame batch across a process pool.

The stage pipeline (:mod:`repro.coding.pipeline`) compresses frames
independently — nothing flows between frames except statistics — so a
batch parallelises by sharding: :class:`ParallelExecutor` deals frames
round-robin onto ``workers`` shards, runs each shard through the ordinary
serial pipeline in its own worker process, and reassembles streams (and
per-frame accelerator reports) in the original frame order.  Because every
worker runs exactly the code the serial path runs, the merged batch is
**byte-identical** to serial execution for every codec/engine/transform
combination; the property test in ``tests/coding/test_executor.py`` proves
it and the scaling benchmark (``benchmarks/bench_pipeline_parallel.py``)
measures the throughput.

``workers=1`` degenerates to the serial path — no pool, no pickling, the
exact code path :func:`~repro.coding.pipeline.compress_frames` runs.

Stats semantics: each worker's per-stage wall clocks are summed into the
merged :class:`~repro.coding.pipeline.PipelineStats` (so ``stage_seconds``
reads as CPU seconds across the pool) while ``wall_seconds`` records the
batch's true elapsed time and ``workers`` the pool size;
``throughput_mpixels_per_s`` uses the elapsed time, so parallel speedup
shows up directly.

The configuration travels to workers as a pickled
:class:`~repro.coding.spec.CodecSpec`; frames and compressed streams are
plain ``ndarray``/dataclass payloads, so no shared state exists between
workers and the pool can use any start method (``fork`` is preferred when
available — workers inherit the imported modules instead of re-importing).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .pipeline import (
    CompressedBatch,
    PipelineStats,
    compress_frames,
    decompress_frames,
)
from .spec import CodecSpec, reject_spec_overrides

__all__ = [
    "ParallelExecutor",
    "default_workers",
    "is_socket_workers",
    "make_executor",
    "merge_shard_results",
    "pool_context",
    "shard_indices",
]


def default_workers() -> int:
    """Worker count when none is given.

    The ``REPRO_WORKERS`` environment variable pins the count process-wide
    (the seam CI legs and benchmarks use to fix pool widths without
    plumbing kwargs, mirroring ``REPRO_ENGINE`` in
    :func:`~repro.coding.spec.default_engine`); otherwise it is the number
    of CPUs this process may actually use.
    """
    override = os.environ.get("REPRO_WORKERS", "").strip()
    if override:
        try:
            workers = int(override)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be a positive integer, got {override!r}"
            ) from None
        if workers < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {workers}")
        return workers
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def pool_context():
    """Prefer fork (workers inherit loaded modules); fall back to default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return None


def _compress_shard(
    spec: CodecSpec, frames: List[np.ndarray]
) -> Tuple[List, PipelineStats]:
    """Worker entry point: serial-compress one shard, return streams + stats."""
    batch = compress_frames(frames, spec=spec)
    return batch.streams, batch.stats


def _decompress_shard(
    spec: CodecSpec, streams: List
) -> Tuple[List[np.ndarray], PipelineStats]:
    """Worker entry point: serial-decode one shard's streams."""
    return decompress_frames(CompressedBatch.from_spec(spec, streams))


def shard_indices(count: int, shards: int) -> List[List[int]]:
    """Round-robin deal of ``count`` items onto at most ``shards`` shards.

    Round-robin (not contiguous split) so mixed-size batches balance: big
    and small frames interleave across shards instead of clustering.
    """
    shards = max(1, min(shards, count))
    return [list(range(i, count, shards)) for i in range(shards)]


def merge_shard_results(
    shards: List[List[int]],
    results: Sequence[Tuple[List, PipelineStats]],
    count: int,
) -> Tuple[List, PipelineStats]:
    """Reassemble per-shard ``(items, stats)`` results in original order.

    The inverse of :func:`shard_indices`: items return to their input
    positions, the per-shard :class:`PipelineStats` are merged, and
    accelerator reports (which arrive shard by shard) are restored to
    frame order so merged stats read exactly like serial stats.  Shared by
    the fork-pool executor and the socket-pool executor
    (:mod:`repro.coding.netexec`) — the merge, like the shard contract, is
    transport-independent.
    """
    merged_items: List = [None] * count
    stats = PipelineStats()
    for indices, (shard_items, shard_stats) in zip(shards, results):
        for position, item in zip(indices, shard_items):
            merged_items[position] = item
        stats.merge(shard_stats)
    if stats.accelerator_reports:
        ordered = sorted(
            (
                (position, report)
                for indices, (_, shard_stats) in zip(shards, results)
                for position, report in zip(indices, shard_stats.accelerator_reports)
            ),
            key=lambda pair: pair[0],
        )
        stats.accelerator_reports = [report for _, report in ordered]
    return merged_items, stats


def is_socket_workers(workers) -> bool:
    """Whether a ``workers=`` value names socket workers, not a pool width.

    Integers (and ``None``) mean a local fork pool; anything else — an
    ``"host:port,host:port"`` address string, a
    :class:`~repro.coding.netexec.WorkerPool`, a list of addresses — is
    handed to the socket-pool executor.  The helper lives here (not in
    :mod:`~repro.coding.netexec`) so call sites can branch without
    importing the network layer.
    """
    return workers is not None and not isinstance(workers, (int, np.integer))


def make_executor(workers):
    """Resolve a ``workers=`` value to the executor that runs it.

    ``None`` or an integer builds a :class:`ParallelExecutor` (local fork
    pool; 1 degenerates to serial).  Worker addresses
    (``"host:port,host:port"``), a list of addresses, or a ready
    :class:`~repro.coding.netexec.WorkerPool` build a
    :class:`~repro.coding.netexec.SocketPoolExecutor` over the remote
    workers — the seam that lets ``compress_frames(..., workers=...)``
    and every archive call site scale past one host with zero signature
    changes.
    """
    if not is_socket_workers(workers):
        return ParallelExecutor(None if workers is None else int(workers))
    from .netexec import SocketPoolExecutor

    if isinstance(workers, SocketPoolExecutor):
        return workers
    return SocketPoolExecutor(workers)


class ParallelExecutor:
    """Shards frame batches across a ``concurrent.futures`` process pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` means one worker per available CPU, ``1`` means
        run serially in this process (no pool at all).
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    # -- helpers ------------------------------------------------------------------------
    def _run_sharded(self, task, spec: CodecSpec, items: List) -> Tuple[List, PipelineStats]:
        """Fan ``items`` out over the pool; return per-item results in order."""
        shards = shard_indices(len(items), self.workers)
        began = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=len(shards), mp_context=pool_context()
        ) as pool:
            futures = [
                pool.submit(task, spec, [items[i] for i in indices])
                for indices in shards
            ]
            results = [future.result() for future in futures]
        wall = time.perf_counter() - began
        merged_items, stats = merge_shard_results(shards, results, len(items))
        stats.workers = len(shards)
        stats.wall_seconds = wall
        return merged_items, stats

    # -- public API ---------------------------------------------------------------------
    def compress(
        self,
        frames: Sequence[np.ndarray],
        spec: Optional[CodecSpec] = None,
        **spec_kwargs,
    ) -> CompressedBatch:
        """Compress a batch, sharded across the pool; byte-identical to serial."""
        if spec is None:
            spec = CodecSpec.from_kwargs(**spec_kwargs)
        else:
            reject_spec_overrides(spec_kwargs)
        frames = [np.asarray(frame) for frame in frames]
        if self.workers == 1 or len(frames) <= 1:
            return compress_frames(frames, spec=spec)
        streams, stats = self._run_sharded(_compress_shard, spec, frames)
        return CompressedBatch.from_spec(spec, streams, stats)

    def decompress(
        self, batch: CompressedBatch, spec: Optional[CodecSpec] = None
    ) -> Tuple[List[np.ndarray], PipelineStats]:
        """Decode a batch, sharded across the pool; bit-identical to serial."""
        spec = spec if spec is not None else batch.resolved_spec()
        if self.workers == 1 or len(batch.streams) <= 1:
            if batch.spec != spec:
                batch = CompressedBatch.from_spec(spec, batch.streams)
            return decompress_frames(batch)
        frames, stats = self._run_sharded(_decompress_shard, spec, list(batch.streams))
        return frames, stats
