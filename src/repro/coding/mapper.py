"""Coefficient mapping: signed wavelet coefficients <-> non-negative symbols.

Entropy coders work on non-negative integers; wavelet detail coefficients
are signed and concentrated around zero.  The standard *zig-zag* (folding)
map interleaves positive and negative values

    0, -1, +1, -2, +2, ...  ->  0, 1, 2, 3, 4, ...

preserving the magnitude ordering so that small-magnitude coefficients get
small symbols.  The module also defines the canonical subband scan order
(coarse to fine, as produced by :meth:`WaveletPyramid.iter_subbands`) used by
the codec to serialise a pyramid into a single symbol stream.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..dwt.subbands import WaveletPyramid
from ..fxdwt.transform import FixedPointPyramid

__all__ = [
    "zigzag_encode",
    "zigzag_decode",
    "pyramid_scan",
    "flatten_pyramid",
]


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to non-negative integers (0, -1, 1, -2, ... order).

    Branch-free folding: ``(v << 1) ^ (v >> 63)`` — the arithmetic shift
    produces an all-ones mask for negatives, so the xor turns ``2v`` into
    ``-2v - 1`` without a select.
    """
    values = np.asarray(values, dtype=np.int64)
    return (values << 1) ^ (values >> 63)


def zigzag_decode(symbols: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode` (branch-free unfolding)."""
    symbols = np.asarray(symbols, dtype=np.int64)
    if symbols.size and symbols.min() < 0:
        raise ValueError("zig-zag symbols must be non-negative")
    return (symbols >> 1) ^ -(symbols & 1)


def pyramid_scan(pyramid) -> Iterator[Tuple[str, int, np.ndarray]]:
    """Yield ``(kind, scale, 2-D band)`` for each subband, coarse first.

    Accepts either a float :class:`WaveletPyramid` or an integer
    :class:`FixedPointPyramid`; the coefficients are returned exactly as
    stored (the codec operates on stored integers so that the round trip is
    lossless by construction).
    """
    if isinstance(pyramid, FixedPointPyramid):
        yield "HH", pyramid.scales, np.asarray(pyramid.approximation)
        for entry in reversed(pyramid.details):
            for kind, band in entry.as_dict().items():
                yield kind, entry.scale, np.asarray(band)
        return
    if isinstance(pyramid, WaveletPyramid):
        for kind, scale, band in pyramid.iter_subbands():
            yield kind, scale, np.asarray(band)
        return
    raise TypeError(f"unsupported pyramid type {type(pyramid).__name__}")


def flatten_pyramid(pyramid) -> Tuple[List[Tuple[str, int, Tuple[int, int]]], np.ndarray]:
    """Serialise a pyramid into ``(subband descriptors, concatenated samples)``.

    The descriptor list records the kind, scale and shape of every subband in
    scan order, which is all the decoder needs to rebuild the pyramid
    structure from the flat coefficient stream.
    """
    descriptors: List[Tuple[str, int, Tuple[int, int]]] = []
    chunks: List[np.ndarray] = []
    for kind, scale, band in pyramid_scan(pyramid):
        descriptors.append((kind, scale, (int(band.shape[0]), int(band.shape[1]))))
        chunks.append(np.asarray(band, dtype=np.int64).ravel())
    samples = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
    return descriptors, samples
