"""Batched end-to-end compression pipeline (transform → map → entropy code).

The paper's motivating workload is an archive compressing *streams* of
medical images, not one frame at a time.  :func:`compress_frames` and
:func:`decompress_frames` run many images through a lossless codec in one
call, handle mixed frame sizes (the decomposition depth is clamped per frame
to what the dyadic geometry supports), and account wall-clock time per
pipeline stage so throughput regressions are attributable to a stage rather
than to "the codec".

Two codec families are supported, selected by name:

* ``"s-transform"`` — :class:`~repro.coding.s_transform.STransformCodec`,
  the compressive reversible-integer codec (the practical archive choice);
* ``"coefficient"`` — :class:`~repro.coding.codec.LosslessWaveletCodec`,
  the coefficient-exact back end of the paper's fixed-point DWT.

Both run on the vectorised entropy-coding engine by default;
``engine="scalar"`` swaps in the bit-by-bit reference implementations
(byte-identical output, used by the validation tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .codec import CompressedImage, LosslessWaveletCodec
from .s_transform import CompressedSImage, STransformCodec

__all__ = [
    "PipelineStats",
    "CompressedBatch",
    "max_dyadic_scales",
    "compress_frames",
    "decompress_frames",
]

#: Pipeline stage names, in dataflow order.
ENCODE_STAGES = ("transform", "entropy_encode")
DECODE_STAGES = ("entropy_decode", "inverse")


@dataclass
class PipelineStats:
    """Wall-clock accounting of one batched pipeline run."""

    frames: int = 0
    pixels: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def add_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes

    def throughput_mpixels_per_s(self) -> float:
        seconds = self.total_seconds
        return self.pixels / seconds / 1e6 if seconds > 0 else 0.0

    def render(self) -> str:
        """Human-readable per-stage breakdown."""
        lines = [
            f"{self.frames} frames, {self.pixels / 1e6:.2f} Mpixels, "
            f"{self.raw_bytes / 1024:.1f} kB -> {self.compressed_bytes / 1024:.1f} kB "
            f"(ratio {self.compression_ratio:.2f})"
        ]
        for stage, seconds in self.stage_seconds.items():
            share = 100.0 * seconds / self.total_seconds if self.total_seconds else 0.0
            lines.append(f"  {stage:<15} {1e3 * seconds:8.1f} ms  ({share:5.1f}%)")
        lines.append(
            f"  {'total':<15} {1e3 * self.total_seconds:8.1f} ms  "
            f"({self.throughput_mpixels_per_s():.1f} Mpixel/s)"
        )
        return "\n".join(lines)


@dataclass
class CompressedBatch:
    """Compressed representation of a batch of frames plus encode statistics."""

    codec: str
    engine: str
    codec_options: Dict
    streams: List[Union[CompressedImage, CompressedSImage]]
    stats: PipelineStats

    def __len__(self) -> int:
        return len(self.streams)

    @property
    def compressed_bytes(self) -> int:
        return sum(stream.compressed_bytes for stream in self.streams)

    @property
    def original_bytes(self) -> int:
        return sum(stream.original_bytes for stream in self.streams)

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


def max_dyadic_scales(shape: Tuple[int, int], limit: int = 16) -> int:
    """Deepest decomposition the frame geometry supports (0 if none).

    Every scale halves both dimensions, so scale ``s`` needs both sides
    divisible by ``2**s``.
    """
    scales = 0
    while scales < limit and all(
        int(side) % (1 << (scales + 1)) == 0 and int(side) >> (scales + 1) >= 1
        for side in shape
    ):
        scales += 1
    return scales


_CODEC_NAMES = ("s-transform", "coefficient")


def _make_codec(codec: str, scales: int, engine: str, options: Dict):
    if codec == "s-transform":
        return STransformCodec(scales=scales, engine=engine, **options)
    if codec == "coefficient":
        return LosslessWaveletCodec(scales=scales, engine=engine, **options)
    raise ValueError(f"unknown codec {codec!r} (expected one of {_CODEC_NAMES})")


class _CodecCache:
    """Per-scales codec instances (plan/word-length setup is amortised)."""

    def __init__(self, codec: str, engine: str, options: Dict) -> None:
        self.codec = codec
        self.engine = engine
        self.options = dict(options)
        self._instances: Dict[int, object] = {}

    def for_scales(self, scales: int):
        if scales not in self._instances:
            self._instances[scales] = _make_codec(
                self.codec, scales, self.engine, self.options
            )
        return self._instances[scales]


def _frame_scales(shape: Tuple[int, int], requested: int) -> int:
    supported = max_dyadic_scales(shape)
    scales = min(requested, supported)
    if scales < 1:
        raise ValueError(
            f"frame of shape {tuple(shape)} does not support a dyadic decomposition"
        )
    return scales


def compress_frames(
    frames: Sequence[np.ndarray],
    codec: str = "s-transform",
    scales: int = 4,
    engine: str = "fast",
    **codec_options,
) -> CompressedBatch:
    """Losslessly compress a batch of integer frames end to end.

    ``frames`` may mix sizes; each frame is decomposed to
    ``min(scales, deepest depth its geometry supports)``.  Per-stage
    wall-clock totals are accumulated in the returned batch's ``stats``.
    """
    cache = _CodecCache(codec, engine, codec_options)
    stats = PipelineStats()
    streams: List[Union[CompressedImage, CompressedSImage]] = []
    for frame in frames:
        frame = np.asarray(frame)
        instance = cache.for_scales(_frame_scales(frame.shape, scales))
        began = time.perf_counter()
        pyramid = instance.forward_transform(frame)
        transformed = time.perf_counter()
        stream = instance.encode_pyramid(pyramid, frame.shape)
        encoded = time.perf_counter()
        stats.add_stage("transform", transformed - began)
        stats.add_stage("entropy_encode", encoded - transformed)
        stats.frames += 1
        stats.pixels += int(frame.size)
        stats.raw_bytes += stream.original_bytes
        stats.compressed_bytes += stream.compressed_bytes
        streams.append(stream)
    return CompressedBatch(
        codec=codec,
        engine=engine,
        codec_options=dict(codec_options),
        streams=streams,
        stats=stats,
    )


def decompress_frames(
    batch: CompressedBatch,
    engine: Optional[str] = None,
) -> Tuple[List[np.ndarray], PipelineStats]:
    """Reconstruct every frame of a batch bit for bit.

    Returns ``(frames, stats)``; ``engine`` overrides the batch's engine
    (the streams are wire-compatible across engines).
    """
    cache = _CodecCache(batch.codec, engine or batch.engine, batch.codec_options)
    stats = PipelineStats()
    frames: List[np.ndarray] = []
    for stream in batch.streams:
        instance = cache.for_scales(stream.scales)
        began = time.perf_counter()
        pyramid = instance.decode_pyramid(stream)
        decoded = time.perf_counter()
        frame = instance.inverse_transform(pyramid)
        finished = time.perf_counter()
        stats.add_stage("entropy_decode", decoded - began)
        stats.add_stage("inverse", finished - decoded)
        stats.frames += 1
        stats.pixels += int(frame.size)
        stats.raw_bytes += stream.original_bytes
        stats.compressed_bytes += stream.compressed_bytes
        frames.append(frame)
    return frames, stats
