"""Batched end-to-end compression pipeline (transform → map → entropy code).

The paper's motivating workload is an archive compressing *streams* of
medical images, not one frame at a time.  :func:`compress_frames` and
:func:`decompress_frames` run many images through a lossless codec in one
call, handle mixed frame sizes (the decomposition depth is clamped per frame
to what the dyadic geometry supports), and account wall-clock time per
pipeline stage so throughput regressions are attributable to a stage rather
than to "the codec".

Two codec families are supported, selected by name:

* ``"s-transform"`` — :class:`~repro.coding.s_transform.STransformCodec`,
  the compressive reversible-integer codec (the practical archive choice);
* ``"coefficient"`` — :class:`~repro.coding.codec.LosslessWaveletCodec`,
  the coefficient-exact back end of the paper's fixed-point DWT.

Both run on the vectorised entropy-coding engine by default;
``engine="scalar"`` swaps in the bit-by-bit reference implementations
(byte-identical output, used by the validation tests).

The transform stage itself is also selectable.  ``transform="software"``
(default) runs the codec's own software transform; ``transform="accelerator"``
drives the cycle-accurate architecture model
(:class:`~repro.arch.accelerator.DwtAccelerator`) instead, giving a single
batched image → accelerator transform → entropy codec → bitstream path whose
per-frame :class:`~repro.arch.accelerator.AcceleratorRunReport`\\ s (cycles,
utilisation, DRAM traffic) are collected next to the per-stage wall-clock
stats.  The accelerator transform is bit-identical to the software
fixed-point transform, so streams are wire-compatible across transforms; it
is only available for the ``"coefficient"`` codec (the s-transform codec
uses a lifting transform the paper's datapath does not implement) and
requires square frames, as the architecture does.  ``transform_engine``
picks the accelerator engine (``"fast"`` whole-pass arrays by default,
``"scalar"`` for the per-macro-cycle reference).

The pipeline is also the compression engine of the persistent archive
layer (:mod:`repro.archive`): :class:`~repro.archive.writer.ArchiveWriter`
feeds :func:`compress_frames` output to disk as a random-access container,
and :class:`~repro.archive.reader.ArchiveReader` reassembles stored streams
into a :class:`CompressedBatch` for :func:`decompress_frames`, so on-disk
archives and in-memory batches share one codec path and one stats model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arch.accelerator import AcceleratorRunReport, DwtAccelerator
from ..arch.config import ArchitectureConfig
from ..filters.catalog import get_bank
from .codec import CompressedImage, LosslessWaveletCodec
from .s_transform import CompressedSImage, STransformCodec

__all__ = [
    "PipelineStats",
    "CompressedBatch",
    "CODEC_NAMES",
    "max_dyadic_scales",
    "compress_frames",
    "decompress_frames",
]

#: Transform-stage back ends of the batched pipeline.
TRANSFORMS = ("software", "accelerator")

#: Pipeline stage names, in dataflow order.
ENCODE_STAGES = ("transform", "entropy_encode")
DECODE_STAGES = ("entropy_decode", "inverse")


@dataclass
class PipelineStats:
    """Wall-clock accounting of one batched pipeline run."""

    frames: int = 0
    pixels: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: One run report per frame when the accelerator transform is used
    #: (empty on the software-transform path).
    accelerator_reports: List[AcceleratorRunReport] = field(default_factory=list)

    def add_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes

    def throughput_mpixels_per_s(self) -> float:
        seconds = self.total_seconds
        return self.pixels / seconds / 1e6 if seconds > 0 else 0.0

    def render(self) -> str:
        """Human-readable per-stage breakdown."""
        lines = [
            f"{self.frames} frames, {self.pixels / 1e6:.2f} Mpixels, "
            f"{self.raw_bytes / 1024:.1f} kB -> {self.compressed_bytes / 1024:.1f} kB "
            f"(ratio {self.compression_ratio:.2f})"
        ]
        for stage, seconds in self.stage_seconds.items():
            share = 100.0 * seconds / self.total_seconds if self.total_seconds else 0.0
            lines.append(f"  {stage:<15} {1e3 * seconds:8.1f} ms  ({share:5.1f}%)")
        lines.append(
            f"  {'total':<15} {1e3 * self.total_seconds:8.1f} ms  "
            f"({self.throughput_mpixels_per_s():.1f} Mpixel/s)"
        )
        return "\n".join(lines)


@dataclass
class CompressedBatch:
    """Compressed representation of a batch of frames plus encode statistics."""

    codec: str
    engine: str
    codec_options: Dict
    streams: List[Union[CompressedImage, CompressedSImage]]
    stats: PipelineStats
    transform: str = "software"

    def __len__(self) -> int:
        return len(self.streams)

    @property
    def compressed_bytes(self) -> int:
        return sum(stream.compressed_bytes for stream in self.streams)

    @property
    def original_bytes(self) -> int:
        return sum(stream.original_bytes for stream in self.streams)

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


def max_dyadic_scales(shape: Tuple[int, int], limit: int = 16) -> int:
    """Deepest decomposition the frame geometry supports (0 if none).

    Every scale halves both dimensions, so scale ``s`` needs both sides
    divisible by ``2**s``.
    """
    scales = 0
    while scales < limit and all(
        int(side) % (1 << (scales + 1)) == 0 and int(side) >> (scales + 1) >= 1
        for side in shape
    ):
        scales += 1
    return scales


#: Codec families the pipeline (and the archive container format) support.
CODEC_NAMES = ("s-transform", "coefficient")


def _make_codec(codec: str, scales: int, engine: str, options: Dict):
    if codec == "s-transform":
        return STransformCodec(scales=scales, engine=engine, **options)
    if codec == "coefficient":
        return LosslessWaveletCodec(scales=scales, engine=engine, **options)
    raise ValueError(f"unknown codec {codec!r} (expected one of {CODEC_NAMES})")


class _CodecCache:
    """Per-scales codec instances (plan/word-length setup is amortised)."""

    def __init__(self, codec: str, engine: str, options: Dict) -> None:
        self.codec = codec
        self.engine = engine
        self.options = dict(options)
        self._instances: Dict[int, object] = {}

    def for_scales(self, scales: int):
        if scales not in self._instances:
            self._instances[scales] = _make_codec(
                self.codec, scales, self.engine, self.options
            )
        return self._instances[scales]


def _frame_scales(shape: Tuple[int, int], requested: int) -> int:
    supported = max_dyadic_scales(shape)
    scales = min(requested, supported)
    if scales < 1:
        raise ValueError(
            f"frame of shape {tuple(shape)} does not support a dyadic decomposition"
        )
    return scales


class _AcceleratorCache:
    """Per-(size, scales) accelerator instances sharing the codec's plan.

    The accelerator is built from the codec's filter bank and word-length
    plan, so its pyramids are bit-identical to the codec's own software
    transform and the entropy-coded streams stay wire-compatible across
    transforms.
    """

    def __init__(self, engine: str) -> None:
        self.engine = engine
        self._instances: Dict[Tuple[int, int], DwtAccelerator] = {}

    def for_codec(self, codec: LosslessWaveletCodec, size: int, scales: int) -> DwtAccelerator:
        key = (size, scales)
        if key not in self._instances:
            # The architecture config looks the bank up by name, so the
            # codec's bank must be the catalog instance of that name — a
            # custom bank object would silently filter with different taps.
            try:
                catalog_bank = get_bank(codec.bank.name)
            except (KeyError, ValueError):
                catalog_bank = None
            if catalog_bank is not codec.bank:
                raise ValueError(
                    "transform='accelerator' requires a Table I catalog filter "
                    f"bank; the codec uses a custom bank {codec.bank.name!r}"
                )
            config = ArchitectureConfig(
                image_size=size, scales=scales, bank_name=codec.bank.name
            )
            self._instances[key] = DwtAccelerator(
                config, plan=codec.plan, engine=self.engine
            )
        return self._instances[key]


def _check_transform(transform: str, codec: str) -> str:
    if transform not in TRANSFORMS:
        raise ValueError(
            f"unknown transform {transform!r} (expected one of {TRANSFORMS})"
        )
    if transform == "accelerator" and codec != "coefficient":
        raise ValueError(
            "transform='accelerator' is only available for the 'coefficient' "
            "codec: the architecture model computes the filter-bank DWT, not "
            f"the {codec!r} codec's transform"
        )
    return transform


def _accelerator_frame(frame: np.ndarray, codec: LosslessWaveletCodec) -> np.ndarray:
    """Validate a frame for the accelerator path (square + declared bit depth)."""
    if frame.ndim != 2 or frame.shape[0] != frame.shape[1]:
        raise ValueError(
            "transform='accelerator' processes square frames only "
            f"(got shape {tuple(frame.shape)})"
        )
    return codec.validate_image(frame)


def compress_frames(
    frames: Sequence[np.ndarray],
    codec: str = "s-transform",
    scales: int = 4,
    engine: str = "fast",
    transform: str = "software",
    transform_engine: str = "fast",
    **codec_options,
) -> CompressedBatch:
    """Losslessly compress a batch of integer frames end to end.

    ``frames`` may mix sizes; each frame is decomposed to
    ``min(scales, deepest depth its geometry supports)``.  Per-stage
    wall-clock totals are accumulated in the returned batch's ``stats``.

    ``transform="accelerator"`` replaces the software transform stage with
    the cycle-accurate accelerator model (``"coefficient"`` codec, square
    frames); its per-frame run reports land in ``stats.accelerator_reports``
    and the streams stay bit-identical to the software path.
    ``transform_engine`` selects the accelerator engine (``"fast"`` by
    default, or ``"scalar"``).
    """
    _check_transform(transform, codec)
    cache = _CodecCache(codec, engine, codec_options)
    accelerators = _AcceleratorCache(transform_engine)
    stats = PipelineStats()
    streams: List[Union[CompressedImage, CompressedSImage]] = []
    for frame in frames:
        frame = np.asarray(frame)
        frame_scales = _frame_scales(frame.shape, scales)
        instance = cache.for_scales(frame_scales)
        began = time.perf_counter()
        if transform == "accelerator":
            frame = _accelerator_frame(frame, instance)
            accelerator = accelerators.for_codec(instance, frame.shape[0], frame_scales)
            pyramid, report = accelerator.forward(frame)
            stats.accelerator_reports.append(report)
        else:
            pyramid = instance.forward_transform(frame)
        transformed = time.perf_counter()
        stream = instance.encode_pyramid(pyramid, frame.shape)
        encoded = time.perf_counter()
        stats.add_stage("transform", transformed - began)
        stats.add_stage("entropy_encode", encoded - transformed)
        stats.frames += 1
        stats.pixels += int(frame.size)
        stats.raw_bytes += stream.original_bytes
        stats.compressed_bytes += stream.compressed_bytes
        streams.append(stream)
    return CompressedBatch(
        codec=codec,
        engine=engine,
        codec_options=dict(codec_options),
        streams=streams,
        stats=stats,
        transform=transform,
    )


def decompress_frames(
    batch: CompressedBatch,
    engine: Optional[str] = None,
    transform: Optional[str] = None,
    transform_engine: str = "fast",
) -> Tuple[List[np.ndarray], PipelineStats]:
    """Reconstruct every frame of a batch bit for bit.

    Returns ``(frames, stats)``; ``engine`` overrides the batch's engine and
    ``transform`` its transform back end (the streams are wire-compatible
    across engines *and* transforms, because the accelerator model is
    bit-identical to the software transform).
    """
    transform = _check_transform(transform or batch.transform, batch.codec)
    cache = _CodecCache(batch.codec, engine or batch.engine, batch.codec_options)
    accelerators = _AcceleratorCache(transform_engine)
    stats = PipelineStats()
    frames: List[np.ndarray] = []
    for stream in batch.streams:
        instance = cache.for_scales(stream.scales)
        began = time.perf_counter()
        pyramid = instance.decode_pyramid(stream)
        decoded = time.perf_counter()
        if transform == "accelerator":
            accelerator = accelerators.for_codec(
                instance, stream.image_shape[0], stream.scales
            )
            frame, report = accelerator.inverse(pyramid)
            stats.accelerator_reports.append(report)
        else:
            frame = instance.inverse_transform(pyramid)
        finished = time.perf_counter()
        stats.add_stage("entropy_decode", decoded - began)
        stats.add_stage("inverse", finished - decoded)
        stats.frames += 1
        stats.pixels += int(frame.size)
        stats.raw_bytes += stream.original_bytes
        stats.compressed_bytes += stream.compressed_bytes
        frames.append(frame)
    return frames, stats
