"""Batched compression pipeline, built from composable stages.

The paper's motivating workload is an archive compressing *streams* of
medical images, not one frame at a time.  :func:`compress_frames` and
:func:`decompress_frames` run many images through a lossless codec in one
call, handle mixed frame sizes (the decomposition depth is clamped per frame
to what the dyadic geometry supports), and account wall-clock time per
pipeline stage so throughput regressions are attributable to a stage rather
than to "the codec".

Configuration is a :class:`~repro.coding.spec.CodecSpec` — codec family,
entropy engine, transform back end, depth, bit depth, filter bank — and the
pipeline itself is a :class:`StagePipeline` of :class:`Stage` objects:

* encode: :class:`DecorrelateStage` (software or accelerator transform)
  → :class:`EntropyEncodeStage` (map + entropy code);
* decode: :class:`EntropyDecodeStage` → :class:`ReconstructStage`.

Each stage's wall clock is folded into :class:`PipelineStats` under the
stage's name, so the stats model is identical whether a batch ran through
the convenience functions, a custom stage composition, or the multi-core
:class:`~repro.coding.executor.ParallelExecutor` (``workers=N`` on either
convenience function shards the batch across a process pool and merges the
per-stage stats; the streams are byte-identical to serial execution).

The legacy keyword style (``codec=``, ``engine=``, ``transform=``,
``transform_engine=``, ``**codec_options``) keeps working: both entry
points funnel it through :meth:`CodecSpec.from_kwargs`.

``transform="accelerator"`` replaces the software transform with the
cycle-accurate architecture model
(:class:`~repro.arch.accelerator.DwtAccelerator`), giving a single batched
image → accelerator transform → entropy codec → bitstream path whose
per-frame :class:`~repro.arch.accelerator.AcceleratorRunReport`\\ s (cycles,
utilisation, DRAM traffic) are collected next to the per-stage wall-clock
stats.  The accelerator transform is bit-identical to the software
fixed-point transform, so streams are wire-compatible across transforms; it
is only available for the ``"coefficient"`` codec and requires square
frames, as the architecture does.

The pipeline is also the compression engine of the persistent archive
layer (:mod:`repro.archive`): :class:`~repro.archive.writer.ArchiveWriter`
feeds :func:`compress_frames` output to disk as a random-access container,
and :class:`~repro.archive.reader.ArchiveReader` reassembles stored streams
into a :class:`CompressedBatch` for :func:`decompress_frames`, so on-disk
archives and in-memory batches share one codec path and one stats model.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arch.accelerator import AcceleratorRunReport, DwtAccelerator
from ..filters.catalog import get_bank
from .codec import CompressedImage, LosslessWaveletCodec
from .s_transform import CompressedSImage
from .spec import CodecSpec, codec_names, reject_spec_overrides

__all__ = [
    "PipelineStats",
    "CompressedBatch",
    "CODEC_NAMES",
    "TRANSFORMS",
    "ENCODE_STAGES",
    "DECODE_STAGES",
    "max_dyadic_scales",
    "Stage",
    "DecorrelateStage",
    "EntropyEncodeStage",
    "EntropyDecodeStage",
    "ReconstructStage",
    "StagePipeline",
    "CodecResources",
    "FrameJob",
    "encode_pipeline",
    "decode_pipeline",
    "encode_frame",
    "compress_frames",
    "decompress_frames",
    "resource_cache_info",
    "clear_resource_cache",
]

def __getattr__(name: str):
    # CODEC_NAMES is kept for backward compatibility as a module attribute;
    # resolving it through the registry on access (instead of snapshotting a
    # tuple at import time) keeps it truthful if a codec family is
    # registered after this module was imported.  Note that
    # ``from repro.coding.pipeline import CODEC_NAMES`` still binds the
    # value current at that moment — use :func:`repro.coding.codec_names`
    # for a call-time view.
    if name == "CODEC_NAMES":
        return codec_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Transform-stage back ends of the batched pipeline.
TRANSFORMS = ("software", "accelerator")

#: Pipeline stage names, in dataflow order.
ENCODE_STAGES = ("transform", "entropy_encode")
DECODE_STAGES = ("entropy_decode", "inverse")


@dataclass
class PipelineStats:
    """Wall-clock accounting of one batched pipeline run.

    ``stage_seconds`` sums each stage's wall clock across frames — and, for
    parallel runs, across worker processes, so it reads as *CPU seconds*
    there while ``wall_seconds`` keeps the batch's elapsed time.
    """

    frames: int = 0
    pixels: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: One run report per frame when the accelerator transform is used
    #: (empty on the software-transform path).
    accelerator_reports: List[AcceleratorRunReport] = field(default_factory=list)
    #: Worker processes that produced these stats (1 = serial).
    workers: int = 1
    #: Elapsed wall clock of the whole batch when it ran in parallel
    #: (0.0 on the serial path, where ``total_seconds`` is the wall clock).
    wall_seconds: float = 0.0

    def add_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def merge(self, other: "PipelineStats") -> None:
        """Fold another run's stats into this one (counts and per-stage time).

        Runs merge sequentially: once either side carries a parallel wall
        clock, the merged ``wall_seconds`` is the *sum of both sides'
        elapsed time* (a serial side contributes its stage-second sum), so
        ``elapsed_seconds`` never drops a serial batch's time.
        """
        if self.wall_seconds > 0.0 or other.wall_seconds > 0.0:
            combined_wall = self.elapsed_seconds + other.elapsed_seconds
        else:
            combined_wall = 0.0  # all-serial: elapsed stays the stage sum
        self.frames += other.frames
        self.pixels += other.pixels
        self.raw_bytes += other.raw_bytes
        self.compressed_bytes += other.compressed_bytes
        for stage, seconds in other.stage_seconds.items():
            self.add_stage(stage, seconds)
        self.accelerator_reports.extend(other.accelerator_reports)
        self.workers = max(self.workers, other.workers)
        self.wall_seconds = combined_wall

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def elapsed_seconds(self) -> float:
        """Batch wall clock: ``wall_seconds`` when parallel, stage sum otherwise."""
        return self.wall_seconds if self.wall_seconds > 0.0 else self.total_seconds

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes

    def throughput_mpixels_per_s(self) -> float:
        seconds = self.elapsed_seconds
        return self.pixels / seconds / 1e6 if seconds > 0 else 0.0

    def render(self) -> str:
        """Human-readable per-stage breakdown."""
        lines = [
            f"{self.frames} frames, {self.pixels / 1e6:.2f} Mpixels, "
            f"{self.raw_bytes / 1024:.1f} kB -> {self.compressed_bytes / 1024:.1f} kB "
            f"(ratio {self.compression_ratio:.2f})"
        ]
        for stage, seconds in self.stage_seconds.items():
            share = 100.0 * seconds / self.total_seconds if self.total_seconds else 0.0
            lines.append(f"  {stage:<15} {1e3 * seconds:8.1f} ms  ({share:5.1f}%)")
        if self.wall_seconds > 0.0:
            # Parallel run: the stage rows above sum worker CPU time, so
            # print that denominator explicitly next to the elapsed total.
            lines.append(
                f"  {'cpu total':<15} {1e3 * self.total_seconds:8.1f} ms  "
                f"(across {self.workers} workers)"
            )
            label = "elapsed"
        else:
            label = "total"
        lines.append(
            f"  {label:<15} {1e3 * self.elapsed_seconds:8.1f} ms  "
            f"({self.throughput_mpixels_per_s():.1f} Mpixel/s)"
        )
        return "\n".join(lines)


@dataclass
class CompressedBatch:
    """Compressed representation of a batch of frames plus encode statistics.

    ``spec`` is the full :class:`CodecSpec` the batch was produced with;
    ``codec``/``engine``/``codec_options``/``transform`` mirror it for
    backward compatibility with pre-spec call sites.
    """

    codec: str
    engine: str
    codec_options: Dict
    streams: List[Union[CompressedImage, CompressedSImage]]
    stats: PipelineStats
    transform: str = "software"
    spec: Optional[CodecSpec] = None

    @classmethod
    def from_spec(
        cls,
        spec: CodecSpec,
        streams: List[Union[CompressedImage, CompressedSImage]],
        stats: Optional[PipelineStats] = None,
    ) -> "CompressedBatch":
        """Build a batch whose legacy mirror fields all derive from ``spec``."""
        return cls(
            codec=spec.codec,
            engine=spec.engine,
            codec_options=spec.codec_kwargs(),
            streams=streams,
            stats=stats if stats is not None else PipelineStats(),
            transform=spec.transform,
            spec=spec,
        )

    def __len__(self) -> int:
        return len(self.streams)

    def resolved_spec(self) -> CodecSpec:
        """The batch's spec, rebuilt from the legacy fields when unset."""
        if self.spec is not None:
            return self.spec
        return CodecSpec.from_kwargs(
            codec=self.codec,
            engine=self.engine,
            transform=self.transform,
            **self.codec_options,
        )

    @property
    def compressed_bytes(self) -> int:
        return sum(stream.compressed_bytes for stream in self.streams)

    @property
    def original_bytes(self) -> int:
        return sum(stream.original_bytes for stream in self.streams)

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


def max_dyadic_scales(shape: Tuple[int, int], limit: int = 16) -> int:
    """Deepest decomposition the frame geometry supports (0 if none).

    Every scale halves both dimensions, so scale ``s`` needs both sides
    divisible by ``2**s``.
    """
    scales = 0
    while scales < limit and all(
        int(side) % (1 << (scales + 1)) == 0 and int(side) >> (scales + 1) >= 1
        for side in shape
    ):
        scales += 1
    return scales


def _frame_scales(shape: Tuple[int, int], requested: int) -> int:
    supported = max_dyadic_scales(shape)
    scales = min(requested, supported)
    if scales < 1:
        raise ValueError(
            f"frame of shape {tuple(shape)} does not support a dyadic decomposition"
        )
    return scales


# ---------------------------------------------------------------------------
# Shared resources: process-wide LRU of codec and accelerator instances
# ---------------------------------------------------------------------------

class _InstanceLRU:
    """Thread-safe LRU of built instances, keyed by hashable tuples.

    The factory runs outside the lock (construction — word-length planning,
    architecture modelling — is the expensive part); a build race is
    resolved by keeping the first instance to land.
    """

    def __init__(self, maxsize: int = 64) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._items: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get_or_create(self, key: Tuple, factory: Callable[[], object]):
        with self._lock:
            if key in self._items:
                self._items.move_to_end(key)
                self.hits += 1
                return self._items[key]
        value = factory()
        with self._lock:
            existing = self._items.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            self.misses += 1
            self._items[key] = value
            while len(self._items) > self.maxsize:
                self._items.popitem(last=False)
        return value

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._items),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
            }

    def clear(self) -> None:
        with self._lock:
            self._items.clear()
            self.hits = 0
            self.misses = 0


#: Process-wide instance cache: codec construction amortises the word-length
#: plan across batches, CLI invocations in one process, ingest threads —
#: and, via fork, across the executor's and the sharded writer's worker
#: processes, which inherit the parent's warm cache.  Codecs only: their
#: state is fixed at construction, so one instance can serve concurrent
#: runs.  Accelerators stay per-:class:`CodecResources` — a
#: :class:`DwtAccelerator` run mutates its DRAM model and counters, so a
#: shared instance would corrupt concurrent encodes (and each one pins an
#: image-sized frame buffer, which a process-wide cache would never free).
_RESOURCE_CACHE = _InstanceLRU(maxsize=64)


def resource_cache_info() -> Dict[str, int]:
    """Size/hit statistics of the process-wide codec/accelerator cache."""
    return _RESOURCE_CACHE.info()


def clear_resource_cache() -> None:
    """Empty the process-wide codec/accelerator cache (tests, memory)."""
    _RESOURCE_CACHE.clear()


def _shared_cacheable(spec: CodecSpec) -> bool:
    """Whether a spec may key the process-wide cache.

    Specs carrying live objects (a :class:`BiorthogonalBank` instance, a
    word-length ``plan`` extra) compare by name/identity, so two of them
    can collide in a shared cache while meaning different coefficients;
    those stay in the per-:class:`CodecResources` caches instead.
    """
    return not spec.extras and (spec.bank is None or isinstance(spec.bank, str))


class CodecResources:
    """Codec and accelerator instances for one :class:`CodecSpec`.

    Codecs are fetched from the process-wide LRU keyed by
    ``(spec, scales)`` — the per-frame depth, because the spec's requested
    depth is clamped per frame — so word-length planning amortises across
    every pipeline run, archive call and shard worker in the process.
    Specs that are not safely shareable (see :func:`_shared_cacheable`)
    fall back to caches local to this object, which is exactly the old
    per-run behaviour.  Accelerator instances are always local to this
    object (keyed by ``(size, scales)``): an accelerator run mutates its
    DRAM model, so sharing one across concurrent runs is unsafe.
    """

    def __init__(self, spec: CodecSpec) -> None:
        self.spec = spec
        self._shared = _shared_cacheable(spec)
        self._codecs: Dict[int, object] = {}
        self._accelerators: Dict[Tuple[int, int], DwtAccelerator] = {}

    def codec_for(self, scales: int):
        if self._shared:
            return _RESOURCE_CACHE.get_or_create(
                ("codec", self.spec, scales), lambda: self.spec.build_codec(scales)
            )
        if scales not in self._codecs:
            self._codecs[scales] = self.spec.build_codec(scales)
        return self._codecs[scales]

    def accelerator_for(
        self, codec: LosslessWaveletCodec, size: int, scales: int
    ) -> DwtAccelerator:
        def build() -> DwtAccelerator:
            # The architecture config looks the bank up by name, so the
            # codec's bank must be the catalog instance of that name — a
            # custom bank object would silently filter with different taps.
            try:
                catalog_bank = get_bank(codec.bank.name)
            except (KeyError, ValueError):
                catalog_bank = None
            if catalog_bank is not codec.bank:
                raise ValueError(
                    "transform='accelerator' requires a Table I catalog filter "
                    f"bank; the codec uses a custom bank {codec.bank.name!r}"
                )
            return DwtAccelerator.from_spec(
                self.spec, image_size=size, scales=scales, plan=codec.plan
            )

        key = (size, scales)
        if key not in self._accelerators:
            self._accelerators[key] = build()
        return self._accelerators[key]


@dataclass
class FrameJob:
    """Everything a stage needs to process one frame."""

    spec: CodecSpec
    resources: CodecResources
    codec: object
    scales: int
    frame_shape: Tuple[int, int]
    stats: PipelineStats


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------

class Stage:
    """One step of the pipeline: a named ``value -> value`` transformation.

    Stages are stateless; per-frame state travels in the :class:`FrameJob`.
    :meth:`StagePipeline.run` times each stage and folds the wall clock into
    ``job.stats`` under :attr:`name`.
    """

    name = "stage"

    def process(self, value, job: FrameJob):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


def _accelerator_frame(frame: np.ndarray, codec: LosslessWaveletCodec) -> np.ndarray:
    """Validate a frame for the accelerator path (square + declared bit depth)."""
    if frame.ndim != 2 or frame.shape[0] != frame.shape[1]:
        raise ValueError(
            "transform='accelerator' processes square frames only "
            f"(got shape {tuple(frame.shape)})"
        )
    return codec.validate_image(frame)


class DecorrelateStage(Stage):
    """Frame → subband pyramid (software transform or accelerator model)."""

    name = "transform"

    def process(self, frame: np.ndarray, job: FrameJob):
        if job.spec.transform == "accelerator":
            frame = _accelerator_frame(frame, job.codec)
            accelerator = job.resources.accelerator_for(
                job.codec, frame.shape[0], job.scales
            )
            pyramid, report = accelerator.forward(frame)
            job.stats.accelerator_reports.append(report)
            return pyramid
        return job.codec.forward_transform(frame)


class EntropyEncodeStage(Stage):
    """Subband pyramid → entropy-coded compressed stream."""

    name = "entropy_encode"

    def process(self, pyramid, job: FrameJob):
        return job.codec.encode_pyramid(pyramid, job.frame_shape)


class EntropyDecodeStage(Stage):
    """Compressed stream → subband pyramid."""

    name = "entropy_decode"

    def process(self, stream, job: FrameJob):
        return job.codec.decode_pyramid(stream)


class ReconstructStage(Stage):
    """Subband pyramid → reconstructed frame (bit for bit)."""

    name = "inverse"

    def process(self, pyramid, job: FrameJob):
        if job.spec.transform == "accelerator":
            accelerator = job.resources.accelerator_for(
                job.codec, job.frame_shape[0], job.scales
            )
            frame, report = accelerator.inverse(pyramid)
            job.stats.accelerator_reports.append(report)
            return frame
        return job.codec.inverse_transform(pyramid)


class StagePipeline:
    """An ordered composition of stages with per-stage timing."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        self.stages: Tuple[Stage, ...] = tuple(stages)
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def run(self, value, job: FrameJob):
        """Push one value through every stage, timing each into ``job.stats``."""
        for stage in self.stages:
            began = time.perf_counter()
            value = stage.process(value, job)
            job.stats.add_stage(stage.name, time.perf_counter() - began)
        return value


def encode_pipeline() -> StagePipeline:
    """The standard encode composition: decorrelate → map + entropy code."""
    return StagePipeline([DecorrelateStage(), EntropyEncodeStage()])


def decode_pipeline() -> StagePipeline:
    """The standard decode composition: entropy decode → reconstruct."""
    return StagePipeline([EntropyDecodeStage(), ReconstructStage()])


# ---------------------------------------------------------------------------
# Batched entry points
# ---------------------------------------------------------------------------

def _resolve_spec(
    spec: Optional[CodecSpec],
    codec: Optional[str],
    scales: Optional[int],
    engine: Optional[str],
    transform: Optional[str],
    transform_engine: Optional[str],
    codec_options: Dict,
) -> CodecSpec:
    if spec is not None:
        # The legacy keywords all default to None so an explicit value is
        # distinguishable — mixing them with spec= is rejected instead of
        # silently losing the keyword.
        reject_spec_overrides(
            codec_options,
            codec=codec,
            scales=scales,
            engine=engine,
            transform=transform,
            transform_engine=transform_engine,
        )
        return spec
    return CodecSpec.from_kwargs(
        codec=codec if codec is not None else "s-transform",
        scales=scales if scales is not None else 4,
        # None falls through to CodecSpec's default_engine() resolution
        # (fast, unless REPRO_ENGINE forces a tier).
        engine=engine,
        transform=transform if transform is not None else "software",
        transform_engine=transform_engine if transform_engine is not None else "fast",
        **codec_options,
    )


def encode_frame(
    frame: np.ndarray,
    spec: CodecSpec,
    resources: CodecResources,
    stats: PipelineStats,
    pipeline: Optional[StagePipeline] = None,
) -> Union[CompressedImage, CompressedSImage]:
    """Compress one frame through the encode pipeline, folding its stage
    timings and counters into ``stats``.

    This is the single-frame unit :func:`compress_frames` loops over; the
    streaming ingest front end (:mod:`repro.archive.ingest`) calls it
    directly so frames can flow one at a time without a materialised batch.
    """
    if pipeline is None:
        pipeline = encode_pipeline()
    frame = np.asarray(frame)
    frame_scales = _frame_scales(frame.shape, spec.scales)
    job = FrameJob(
        spec=spec,
        resources=resources,
        codec=resources.codec_for(frame_scales),
        scales=frame_scales,
        frame_shape=(int(frame.shape[0]), int(frame.shape[1])),
        stats=stats,
    )
    stream = pipeline.run(frame, job)
    stats.frames += 1
    stats.pixels += int(frame.size)
    stats.raw_bytes += stream.original_bytes
    stats.compressed_bytes += stream.compressed_bytes
    return stream


def compress_frames(
    frames: Sequence[np.ndarray],
    codec: Optional[str] = None,
    scales: Optional[int] = None,
    engine: Optional[str] = None,
    transform: Optional[str] = None,
    transform_engine: Optional[str] = None,
    spec: Optional[CodecSpec] = None,
    workers: int = 1,
    **codec_options,
) -> CompressedBatch:
    """Losslessly compress a batch of integer frames end to end.

    ``frames`` may mix sizes; each frame is decomposed to
    ``min(scales, deepest depth its geometry supports)``.  Per-stage
    wall-clock totals are accumulated in the returned batch's ``stats``.

    The configuration is either a ready-made ``spec``
    (:class:`~repro.coding.spec.CodecSpec`) or the legacy keywords, which
    are folded into one via :meth:`CodecSpec.from_kwargs` (omitted
    keywords mean s-transform codec, 4 scales, software transform and the
    :func:`~repro.coding.spec.default_engine` entropy tier — ``fast``, or
    ``scalar``/``turbo`` when ``REPRO_ENGINE`` forces one).  Passing
    ``spec`` together with any explicit keyword is an error, never a
    silent override.

    ``workers=N`` (N > 1) shards the batch across a process pool
    (:class:`~repro.coding.executor.ParallelExecutor`);
    ``workers="host:port,host:port"`` (or a
    :class:`~repro.coding.netexec.WorkerPool`) shards it across remote
    socket workers instead (:class:`~repro.coding.netexec.SocketPoolExecutor`).
    Either way the streams are byte-identical to the serial run and
    ``stats.wall_seconds`` records the parallel elapsed time.

    ``transform="accelerator"`` replaces the software transform stage with
    the cycle-accurate accelerator model (``"coefficient"`` codec, square
    frames); its per-frame run reports land in ``stats.accelerator_reports``
    and the streams stay bit-identical to the software path.
    """
    spec = _resolve_spec(
        spec, codec, scales, engine, transform, transform_engine, codec_options
    )
    if workers != 1:
        from .executor import make_executor

        return make_executor(workers).compress(frames, spec)
    resources = CodecResources(spec)
    pipeline = encode_pipeline()
    stats = PipelineStats()
    streams: List[Union[CompressedImage, CompressedSImage]] = [
        encode_frame(frame, spec, resources, stats, pipeline) for frame in frames
    ]
    return CompressedBatch.from_spec(spec, streams, stats)


def decompress_frames(
    batch: CompressedBatch,
    engine: Optional[str] = None,
    transform: Optional[str] = None,
    transform_engine: Optional[str] = None,
    workers: int = 1,
) -> Tuple[List[np.ndarray], PipelineStats]:
    """Reconstruct every frame of a batch bit for bit.

    Returns ``(frames, stats)``; ``engine`` overrides the batch's engine,
    ``transform`` its transform back end and ``transform_engine`` its
    accelerator engine — each only when given, so an omitted override
    keeps the batch spec's stored value (the streams are wire-compatible
    across engines *and* transforms, because the accelerator model is
    bit-identical to the software transform).  ``workers=N`` decodes the
    batch through the process-pool executor.
    """
    base = batch.resolved_spec()
    spec = base.replace(
        engine=engine or batch.engine,
        transform=transform or batch.transform,
        transform_engine=(
            transform_engine if transform_engine is not None else base.transform_engine
        ),
    )
    if workers != 1:
        from .executor import make_executor

        return make_executor(workers).decompress(batch, spec=spec)
    resources = CodecResources(spec)
    pipeline = decode_pipeline()
    stats = PipelineStats()
    frames: List[np.ndarray] = []
    for stream in batch.streams:
        job = FrameJob(
            spec=spec,
            resources=resources,
            codec=resources.codec_for(stream.scales),
            scales=stream.scales,
            frame_shape=(int(stream.image_shape[0]), int(stream.image_shape[1])),
            stats=stats,
        )
        frame = pipeline.run(stream, job)
        stats.frames += 1
        stats.pixels += int(frame.size)
        stats.raw_bytes += stream.original_bytes
        stats.compressed_bytes += stream.compressed_bytes
        frames.append(frame)
    return frames, stats
