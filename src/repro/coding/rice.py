"""Rice (Golomb power-of-two) coding of non-negative integers.

Rice codes are the standard low-complexity entropy coder for wavelet and
predictive residuals (they are what lossless JPEG-LS and CCSDS use).  A
symbol ``s`` is coded with parameter ``k`` as the unary quotient
``s >> k`` followed by the ``k`` low-order bits.  The optimal ``k`` tracks
the mean of the symbols; :func:`optimal_rice_parameter` picks it per block
by exhaustive search over a small range (exact, and cheap for the block
sizes used here).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .bitstream import BitReader, BitWriter

__all__ = [
    "rice_encode_value",
    "rice_decode_value",
    "rice_encode",
    "rice_decode",
    "rice_code_length",
    "optimal_rice_parameter",
]

#: Largest Rice parameter considered by the optimiser (32-bit symbols).
MAX_RICE_PARAMETER = 30


def rice_encode_value(writer: BitWriter, value: int, k: int) -> None:
    """Append the Rice code of one non-negative ``value`` with parameter ``k``."""
    if value < 0:
        raise ValueError("Rice codes encode non-negative integers")
    if not 0 <= k <= MAX_RICE_PARAMETER:
        raise ValueError(f"Rice parameter {k} outside [0, {MAX_RICE_PARAMETER}]")
    quotient = value >> k
    writer.write_unary(quotient)
    if k:
        writer.write_uint(value & ((1 << k) - 1), k)


def rice_decode_value(reader: BitReader, k: int) -> int:
    """Read one Rice-coded value with parameter ``k``."""
    if not 0 <= k <= MAX_RICE_PARAMETER:
        raise ValueError(f"Rice parameter {k} outside [0, {MAX_RICE_PARAMETER}]")
    quotient = reader.read_unary()
    remainder = reader.read_uint(k) if k else 0
    return (quotient << k) | remainder


def rice_code_length(value: int, k: int) -> int:
    """Length in bits of the Rice code of ``value`` with parameter ``k``."""
    if value < 0:
        raise ValueError("Rice codes encode non-negative integers")
    return (value >> k) + 1 + k


def optimal_rice_parameter(symbols: Sequence[int], max_k: int = MAX_RICE_PARAMETER) -> int:
    """Parameter ``k`` minimising the total code length of ``symbols``.

    Exhaustive search; ties resolve to the smallest ``k``.  An empty block
    returns 0.
    """
    arr = np.asarray(list(symbols), dtype=np.int64)
    if arr.size == 0:
        return 0
    if arr.min() < 0:
        raise ValueError("Rice codes encode non-negative integers")
    best_k = 0
    best_bits: Optional[int] = None
    for k in range(0, max_k + 1):
        bits = int(np.sum(arr >> k)) + arr.size * (1 + k)
        if best_bits is None or bits < best_bits:
            best_bits = bits
            best_k = k
    return best_k


def rice_encode(symbols: Iterable[int], k: Optional[int] = None) -> bytes:
    """Encode a block of non-negative symbols; returns ``header + payload``.

    The chosen parameter (one byte) and the symbol count (four bytes) are
    stored in front of the payload so that :func:`rice_decode` is
    self-contained.
    """
    block = [int(s) for s in symbols]
    if any(s < 0 for s in block):
        raise ValueError("Rice codes encode non-negative integers")
    if k is None:
        k = optimal_rice_parameter(block)
    writer = BitWriter()
    writer.write_uint(k, 8)
    writer.write_uint(len(block), 32)
    for symbol in block:
        rice_encode_value(writer, symbol, k)
    return writer.getvalue()


def rice_decode(data: bytes) -> List[int]:
    """Inverse of :func:`rice_encode`."""
    reader = BitReader(data)
    k = reader.read_uint(8)
    count = reader.read_uint(32)
    return [rice_decode_value(reader, k) for _ in range(count)]
